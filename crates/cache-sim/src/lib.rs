//! Cache-hierarchy substrate for the IR-ORAM reproduction.
//!
//! The paper's system (Table I) has a two-level data-cache hierarchy — a
//! 2-way 256 KB L1 and an 8-way 2 MB LLC — in front of the ORAM controller,
//! plus several small ORAM-internal caches (the PLB, the dedicated tree-top
//! cache). All of them are instances of the generic [`SetAssocCache`] here.
//!
//! The crate also provides [`DirtyLruScanner`], the small state machine from
//! the paper's IR-DWB design (Fig. 9): a register `Ptr` that round-robins
//! across LLC sets looking for a *dirty LRU* entry to early-write-back when a
//! dummy ORAM slot comes up.
//!
//! # Examples
//!
//! ```
//! use iroram_cache::{CacheConfig, SetAssocCache};
//!
//! let mut c = SetAssocCache::new(CacheConfig::new(64, 4));
//! assert!(!c.access(0x100, false)); // cold miss
//! c.insert(0x100, false);
//! assert!(c.access(0x100, true)); // hit, now dirty
//! assert!(c.probe(0x100).map(|line| line.dirty).unwrap_or(false));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod dwb;
mod hierarchy;

pub use cache::{CacheConfig, CacheStats, EvictedLine, IndexKind, LineInfo, SetAssocCache};
pub use dwb::DirtyLruScanner;
pub use hierarchy::{AccessOutcome, HierarchyConfig, HierarchyStats, MemoryHierarchy};
