//! A generic set-associative, write-back cache model.

use iroram_hash::mix64;
use iroram_sim_engine::{SnapError, SnapReader, SnapWriter};
use serde::{Deserialize, Serialize};

/// How a line address is mapped to a set index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IndexKind {
    /// Classic low-order-bits indexing (`addr % sets`), as in the L1/LLC.
    LowBits,
    /// Avalanche-hashed indexing, used where the paper calls for hashing the
    /// address to spread pathological strides (IR-Stash hashes with MD5; the
    /// cheap mixer here is distribution-equivalent for simulation, and the
    /// protocol crate's S-Stash uses real MD5).
    Hashed,
}

/// Configuration of a [`SetAssocCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Number of sets (need not be a power of two).
    pub sets: usize,
    /// Ways per set.
    pub assoc: usize,
    /// Set-index function.
    pub index: IndexKind,
}

impl CacheConfig {
    /// A low-bits-indexed configuration with `sets` sets of `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(sets: usize, assoc: usize) -> Self {
        assert!(sets > 0 && assoc > 0, "cache dimensions must be nonzero");
        CacheConfig {
            sets,
            assoc,
            index: IndexKind::LowBits,
        }
    }

    /// Same, with hashed indexing.
    pub fn hashed(sets: usize, assoc: usize) -> Self {
        CacheConfig {
            index: IndexKind::Hashed,
            ..CacheConfig::new(sets, assoc)
        }
    }

    /// Total line capacity.
    pub fn capacity(&self) -> usize {
        self.sets * self.assoc
    }
}

/// A line evicted by an insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvictedLine {
    /// The evicted line's address.
    pub addr: u64,
    /// Whether it was dirty (needs write-back).
    pub dirty: bool,
}

/// A non-perturbing view of a resident line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineInfo {
    /// The line's address.
    pub addr: u64,
    /// Whether the line is dirty.
    pub dirty: bool,
    /// Whether the line is the LRU entry of its set.
    pub is_lru: bool,
}

/// Hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Lines inserted.
    pub fills: u64,
    /// Dirty lines evicted.
    pub dirty_evictions: u64,
    /// Clean lines evicted.
    pub clean_evictions: u64,
}

impl CacheStats {
    /// Hit rate over all lookups (0 when never accessed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    addr: u64,
    dirty: bool,
    last_use: u64,
    valid: bool,
}

const EMPTY: Line = Line {
    addr: 0,
    dirty: false,
    last_use: 0,
    valid: false,
};

/// A set-associative, write-back, write-allocate cache with true-LRU
/// replacement.
///
/// Addresses are cache-line granular (the caller strips the offset bits).
/// The model stores no data payloads — only tags and dirty state — because
/// the simulators track contents elsewhere.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    // lint: allow(snapshot-drift, configuration, fixed at construction for the whole run)
    cfg: CacheConfig,
    lines: Vec<Line>,
    tick: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        SetAssocCache {
            cfg,
            lines: vec![EMPTY; cfg.capacity()],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The set index for `addr`.
    #[inline]
    pub fn set_of(&self, addr: u64) -> usize {
        let h = match self.cfg.index {
            IndexKind::LowBits => addr,
            IndexKind::Hashed => mix64(addr),
        };
        let sets = self.cfg.sets as u64;
        // Set counts are runtime values, so spell out the shift/mask form
        // for the (universal in practice) power-of-two geometries — this
        // sits on the per-access hot path of every cache level.
        if sets.is_power_of_two() {
            (h & (sets - 1)) as usize
        } else {
            (h % sets) as usize
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.cfg.sets
    }

    #[inline]
    fn set_range(&self, set: usize) -> std::ops::Range<usize> {
        let base = set * self.cfg.assoc;
        base..base + self.cfg.assoc
    }

    /// Looks up `addr`; on a hit, updates LRU and (for writes) the dirty
    /// bit, and returns `true`. On a miss returns `false` **without**
    /// allocating — pair with [`SetAssocCache::insert`] to model the fill.
    pub fn access(&mut self, addr: u64, is_write: bool) -> bool {
        self.tick += 1;
        let range = self.set_range(self.set_of(addr));
        for line in &mut self.lines[range] {
            if line.valid && line.addr == addr {
                line.last_use = self.tick;
                line.dirty |= is_write;
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        false
    }

    /// Inserts `addr` (e.g. on fill after a miss), evicting the set's LRU
    /// line if the set is full. Returns the evicted line, if any.
    ///
    /// Inserting an address that is already resident just refreshes its LRU
    /// position and ORs the dirty bit, returning `None`.
    pub fn insert(&mut self, addr: u64, dirty: bool) -> Option<EvictedLine> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(self.set_of(addr));
        let slice = &mut self.lines[range];
        // Already resident?
        if let Some(line) = slice.iter_mut().find(|l| l.valid && l.addr == addr) {
            line.last_use = tick;
            line.dirty |= dirty;
            return None;
        }
        self.stats.fills += 1;
        // Free way?
        if let Some(line) = slice.iter_mut().find(|l| !l.valid) {
            *line = Line {
                addr,
                dirty,
                last_use: tick,
                valid: true,
            };
            return None;
        }
        // Evict LRU.
        let victim = slice
            .iter_mut()
            .min_by_key(|l| l.last_use)
            .expect("nonzero associativity");
        let evicted = EvictedLine {
            addr: victim.addr,
            dirty: victim.dirty,
        };
        if evicted.dirty {
            self.stats.dirty_evictions += 1;
        } else {
            self.stats.clean_evictions += 1;
        }
        *victim = Line {
            addr,
            dirty,
            last_use: tick,
            valid: true,
        };
        Some(evicted)
    }

    /// Non-perturbing lookup: returns line info without touching LRU state.
    pub fn probe(&self, addr: u64) -> Option<LineInfo> {
        let set = self.set_of(addr);
        let range = self.set_range(set);
        let lru_tick = self.lines[range.clone()]
            .iter()
            .filter(|l| l.valid)
            .map(|l| l.last_use)
            .min();
        self.lines[range]
            .iter()
            .find(|l| l.valid && l.addr == addr)
            .map(|l| LineInfo {
                addr: l.addr,
                dirty: l.dirty,
                is_lru: Some(l.last_use) == lru_tick,
            })
    }

    /// Removes `addr` if resident, returning its dirty state.
    pub fn invalidate(&mut self, addr: u64) -> Option<bool> {
        let range = self.set_range(self.set_of(addr));
        for line in &mut self.lines[range] {
            if line.valid && line.addr == addr {
                line.valid = false;
                return Some(line.dirty);
            }
        }
        None
    }

    /// Sets the dirty bit of `addr` if resident, **without** touching LRU
    /// state (models a write-back from an inner cache level, which is not a
    /// demand reference). Returns whether the line was found.
    pub fn set_dirty(&mut self, addr: u64) -> bool {
        let range = self.set_range(self.set_of(addr));
        for line in &mut self.lines[range] {
            if line.valid && line.addr == addr {
                line.dirty = true;
                return true;
            }
        }
        false
    }

    /// Clears the dirty bit of `addr` if resident (IR-DWB's "mark the entry
    /// clean" step). Returns whether the line was found.
    pub fn mark_clean(&mut self, addr: u64) -> bool {
        let range = self.set_range(self.set_of(addr));
        for line in &mut self.lines[range] {
            if line.valid && line.addr == addr {
                line.dirty = false;
                return true;
            }
        }
        false
    }

    /// The LRU entry of `set`, if the set has any valid line.
    pub fn lru_of_set(&self, set: usize) -> Option<LineInfo> {
        assert!(set < self.cfg.sets, "set {set} out of range");
        self.lines[self.set_range(set)]
            .iter()
            .filter(|l| l.valid)
            .min_by_key(|l| l.last_use)
            .map(|l| LineInfo {
                addr: l.addr,
                dirty: l.dirty,
                is_lru: true,
            })
    }

    /// Iterates over all resident lines (for invariant checks and flushes).
    pub fn iter(&self) -> impl Iterator<Item = LineInfo> + '_ {
        self.lines.iter().filter(|l| l.valid).map(|l| LineInfo {
            addr: l.addr,
            dirty: l.dirty,
            is_lru: false,
        })
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// Whether no line is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes the full tag array, LRU clock and statistics for a
    /// checkpoint. Geometry (the config) is not written — it is rebuilt
    /// from the run configuration on restore.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_usize(self.lines.len());
        for line in &self.lines {
            w.put_u64(line.addr);
            w.put_bool(line.dirty);
            w.put_u64(line.last_use);
            w.put_bool(line.valid);
        }
        w.put_u64(self.tick);
        w.put_u64(self.stats.hits);
        w.put_u64(self.stats.misses);
        w.put_u64(self.stats.fills);
        w.put_u64(self.stats.dirty_evictions);
        w.put_u64(self.stats.clean_evictions);
    }

    /// Restores the state captured by [`SetAssocCache::save_state`] into a
    /// cache of the same geometry.
    ///
    /// # Errors
    ///
    /// [`SnapError::Corrupt`] if the snapshot's line count does not match
    /// this cache's capacity; any [`SnapError`] on a truncated payload.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.take_seq_len(18)?;
        if n != self.lines.len() {
            return Err(SnapError::Corrupt("cache geometry mismatch"));
        }
        for line in &mut self.lines {
            line.addr = r.take_u64()?;
            line.dirty = r.take_bool()?;
            line.last_use = r.take_u64()?;
            line.valid = r.take_bool()?;
        }
        self.tick = r.take_u64()?;
        self.stats = CacheStats {
            hits: r.take_u64()?,
            misses: r.take_u64()?,
            fills: r.take_u64()?,
            dirty_evictions: r.take_u64()?,
            clean_evictions: r.take_u64()?,
        };
        Ok(())
    }

    /// Invalidates everything (context-switch model). Returns the dirty
    /// lines that would need write-back.
    pub fn flush(&mut self) -> Vec<EvictedLine> {
        let mut out = Vec::new();
        for line in &mut self.lines {
            if line.valid {
                if line.dirty {
                    out.push(EvictedLine {
                        addr: line.addr,
                        dirty: true,
                    });
                }
                line.valid = false;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = SetAssocCache::new(CacheConfig::new(4, 2));
        assert!(!c.access(10, false));
        assert_eq!(c.insert(10, false), None);
        assert!(c.access(10, false));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = SetAssocCache::new(CacheConfig::new(1, 2));
        c.insert(1, false);
        c.insert(2, false);
        c.access(1, false); // 2 becomes LRU
        let ev = c.insert(3, false).expect("eviction");
        assert_eq!(ev.addr, 2);
        assert!(!ev.dirty);
        assert!(c.probe(1).is_some() && c.probe(3).is_some());
    }

    #[test]
    fn write_sets_dirty_and_eviction_reports_it() {
        let mut c = SetAssocCache::new(CacheConfig::new(1, 1));
        c.insert(5, false);
        c.access(5, true);
        let ev = c.insert(6, false).unwrap();
        assert_eq!(ev, EvictedLine { addr: 5, dirty: true });
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn insert_existing_merges_dirty() {
        let mut c = SetAssocCache::new(CacheConfig::new(1, 2));
        c.insert(5, false);
        assert_eq!(c.insert(5, true), None);
        assert!(c.probe(5).unwrap().dirty);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn probe_does_not_touch_lru() {
        let mut c = SetAssocCache::new(CacheConfig::new(1, 2));
        c.insert(1, false);
        c.insert(2, false);
        let _ = c.probe(1); // must NOT refresh 1
        let ev = c.insert(3, false).unwrap();
        assert_eq!(ev.addr, 1);
    }

    #[test]
    fn probe_reports_lru_flag() {
        let mut c = SetAssocCache::new(CacheConfig::new(1, 2));
        c.insert(1, false);
        c.insert(2, false);
        assert!(c.probe(1).unwrap().is_lru);
        assert!(!c.probe(2).unwrap().is_lru);
    }

    #[test]
    fn invalidate_and_mark_clean() {
        let mut c = SetAssocCache::new(CacheConfig::new(2, 2));
        c.insert(4, true);
        assert!(c.mark_clean(4));
        assert_eq!(c.invalidate(4), Some(false));
        assert_eq!(c.invalidate(4), None);
        assert!(!c.mark_clean(4));
    }

    #[test]
    fn lru_of_set_finds_dirty_lru() {
        let mut c = SetAssocCache::new(CacheConfig::new(1, 3));
        c.insert(1, true);
        c.insert(2, false);
        c.insert(3, false);
        let lru = c.lru_of_set(0).unwrap();
        assert_eq!(lru.addr, 1);
        assert!(lru.dirty);
        assert!(c.lru_of_set(0).unwrap().is_lru);
    }

    #[test]
    fn hashed_index_spreads_strided_addresses() {
        // Stride equal to set count: low-bits indexing maps all to one set,
        // hashed indexing spreads them.
        let sets = 64;
        let mut low = SetAssocCache::new(CacheConfig::new(sets, 1));
        let mut hashed = SetAssocCache::new(CacheConfig::hashed(sets, 1));
        for i in 0..64u64 {
            low.insert(i * sets as u64, false);
            hashed.insert(i * sets as u64, false);
        }
        assert_eq!(low.len(), 1, "low-bits: all conflict into one set");
        assert!(hashed.len() > 32, "hashed: most addresses survive");
    }

    #[test]
    fn flush_returns_dirty_lines() {
        let mut c = SetAssocCache::new(CacheConfig::new(4, 2));
        c.insert(1, true);
        c.insert(2, false);
        c.insert(3, true);
        let mut dirty: Vec<u64> = c.flush().into_iter().map(|e| e.addr).collect();
        dirty.sort_unstable();
        assert_eq!(dirty, vec![1, 3]);
        assert!(c.is_empty());
    }

    #[test]
    fn stats_hit_rate() {
        let mut c = SetAssocCache::new(CacheConfig::new(4, 2));
        c.insert(1, false);
        c.access(1, false);
        c.access(2, false);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn save_restore_round_trips_lru_and_stats() {
        let mut c = SetAssocCache::new(CacheConfig::new(2, 2));
        c.insert(1, true);
        c.insert(2, false);
        c.access(1, false);
        c.access(9, false); // miss: perturbs stats
        let mut w = SnapWriter::new();
        c.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut fresh = SetAssocCache::new(CacheConfig::new(2, 2));
        let mut r = SnapReader::new(&bytes);
        fresh.restore_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(fresh.stats(), c.stats());
        // LRU order must survive: 2 is LRU in its set after the refresh of 1.
        assert_eq!(fresh.probe(2).unwrap().is_lru, c.probe(2).unwrap().is_lru);
        // Behavioural equivalence: same evictions after restore.
        assert_eq!(fresh.insert(5, false), c.insert(5, false));
    }

    #[test]
    fn restore_rejects_geometry_mismatch() {
        let c = SetAssocCache::new(CacheConfig::new(2, 2));
        let mut w = SnapWriter::new();
        c.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut other = SetAssocCache::new(CacheConfig::new(4, 2));
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(
            other.restore_state(&mut r),
            Err(SnapError::Corrupt(_))
        ));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn lru_of_set_bounds() {
        let c = SetAssocCache::new(CacheConfig::new(2, 1));
        let _ = c.lru_of_set(2);
    }
}
