//! The IR-DWB dirty-LRU candidate scanner (paper Fig. 9, subtask 1).
//!
//! IR-DWB keeps "a register `Ptr` that points to the dirty LRU entry of one
//! LLC cache set", round-robining across sets when the LLC is idle. If no
//! candidate is found after a full sweep, the search pauses for 1000 cycles
//! and restarts from a random set.

use iroram_sim_engine::{Cycle, SimRng, SnapError, SnapReader, SnapWriter};

use crate::SetAssocCache;

/// State machine that hunts for dirty LRU LLC entries to early-write-back.
#[derive(Debug, Clone)]
pub struct DirtyLruScanner {
    set_ptr: usize,
    /// Candidate currently pointed at (the paper's `Ptr` register).
    candidate: Option<u64>,
    /// Whether the candidate is locked by an in-flight write-back sequence.
    locked: bool,
    paused_until: Cycle,
    // lint: allow(snapshot-drift, configuration (the paper's fixed 1000-cycle pause))
    pause_cycles: u64,
}

impl DirtyLruScanner {
    /// Creates a scanner with the paper's 1000-cycle pause.
    pub fn new() -> Self {
        Self::with_pause(1000)
    }

    /// Creates a scanner that pauses `pause_cycles` after a fruitless sweep.
    pub fn with_pause(pause_cycles: u64) -> Self {
        DirtyLruScanner {
            set_ptr: 0,
            candidate: None,
            locked: false,
            paused_until: Cycle::ZERO,
            pause_cycles,
        }
    }

    /// The current candidate address, if any.
    pub fn candidate(&self) -> Option<u64> {
        self.candidate
    }

    /// Whether the candidate is locked (write-back in progress).
    pub fn is_locked(&self) -> bool {
        self.locked
    }

    /// Locks the current candidate for a write-back sequence. Returns the
    /// locked address, or `None` if there is no candidate.
    pub fn lock(&mut self) -> Option<u64> {
        if self.candidate.is_some() {
            self.locked = true;
        }
        self.candidate
    }

    /// Releases the candidate (write-back finished or aborted).
    pub fn release(&mut self) {
        self.candidate = None;
        self.locked = false;
    }

    /// Serializes the sweep cursor, candidate register and pause deadline
    /// for a checkpoint (`pause_cycles` is configuration and not written).
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_usize(self.set_ptr);
        w.put_opt_u64(self.candidate);
        w.put_bool(self.locked);
        w.put_u64(self.paused_until.raw());
    }

    /// Restores the state captured by [`DirtyLruScanner::save_state`].
    ///
    /// # Errors
    ///
    /// Any [`SnapError`] on a truncated or corrupt payload.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.set_ptr = r.take_usize()?;
        self.candidate = r.take_opt_u64()?;
        self.locked = r.take_bool()?;
        self.paused_until = Cycle(r.take_u64()?);
        Ok(())
    }

    /// Advances the search by up to one full sweep of the LLC sets.
    ///
    /// Models the idle-time round-robin: validates or refreshes the
    /// candidate against the cache's current state. Per the paper, if the
    /// pointed entry "is accessed and thus no longer an LRU entry, we clear
    /// `Ptr` (even if it is locked)" — the caller should check
    /// [`DirtyLruScanner::candidate`] going `None` to abort an in-flight
    /// sequence.
    pub fn step(&mut self, llc: &SetAssocCache, now: Cycle, rng: &mut SimRng) {
        // Validate the existing candidate first.
        if let Some(addr) = self.candidate {
            match llc.probe(addr) {
                Some(info) if info.is_lru && info.dirty => return, // still good
                _ => {
                    // No longer the dirty LRU: clear Ptr, even if locked.
                    self.candidate = None;
                    self.locked = false;
                }
            }
        }
        if now < self.paused_until {
            return;
        }
        let sets = llc.sets();
        for _ in 0..sets {
            let set = self.set_ptr;
            self.set_ptr = (self.set_ptr + 1) % sets;
            if let Some(lru) = llc.lru_of_set(set) {
                if lru.dirty {
                    self.candidate = Some(lru.addr);
                    return;
                }
            }
        }
        // Fruitless sweep: pause, restart from a random set.
        self.paused_until = now + self.pause_cycles;
        self.set_ptr = rng.next_below(sets as u64) as usize;
    }
}

impl Default for DirtyLruScanner {
    fn default() -> Self {
        DirtyLruScanner::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheConfig;

    fn llc() -> SetAssocCache {
        SetAssocCache::new(CacheConfig::new(4, 2))
    }

    #[test]
    fn finds_dirty_lru() {
        let mut cache = llc();
        cache.insert(0, true); // set 0
        cache.insert(1, false); // set 1
        let mut s = DirtyLruScanner::new();
        let mut rng = SimRng::seed_from(1);
        s.step(&cache, Cycle(0), &mut rng);
        assert_eq!(s.candidate(), Some(0));
    }

    #[test]
    fn skips_clean_lru() {
        let mut cache = llc();
        // Set 0: clean LRU (addr 0), dirty MRU (addr 4).
        cache.insert(0, false);
        cache.insert(4, true);
        cache.access(4, true);
        let mut s = DirtyLruScanner::new();
        let mut rng = SimRng::seed_from(1);
        s.step(&cache, Cycle(0), &mut rng);
        // addr 4 is not LRU, addr 0 is clean → no candidate in set 0.
        assert_ne!(s.candidate(), Some(4));
    }

    #[test]
    fn pauses_after_fruitless_sweep() {
        let cache = llc(); // empty: no candidates
        let mut s = DirtyLruScanner::with_pause(1000);
        let mut rng = SimRng::seed_from(2);
        s.step(&cache, Cycle(0), &mut rng);
        assert_eq!(s.candidate(), None);
        // Now dirty data appears, but the scanner is paused.
        let mut cache = cache;
        cache.insert(0, true);
        s.step(&cache, Cycle(500), &mut rng);
        assert_eq!(s.candidate(), None, "should still be paused");
        s.step(&cache, Cycle(1000), &mut rng);
        assert_eq!(s.candidate(), Some(0));
    }

    #[test]
    fn clears_candidate_when_no_longer_lru() {
        let mut cache = llc();
        cache.insert(0, true);
        cache.insert(4, false); // same set 0
        let mut s = DirtyLruScanner::new();
        let mut rng = SimRng::seed_from(3);
        s.step(&cache, Cycle(0), &mut rng);
        assert_eq!(s.candidate(), Some(0));
        assert_eq!(s.lock(), Some(0));
        // Access 0 → it becomes MRU; candidate must clear even while locked.
        cache.access(0, false);
        s.step(&cache, Cycle(1), &mut rng);
        assert_ne!(s.candidate(), Some(0));
        assert!(!s.is_locked());
    }

    #[test]
    fn clears_candidate_when_cleaned() {
        let mut cache = llc();
        cache.insert(0, true);
        let mut s = DirtyLruScanner::new();
        let mut rng = SimRng::seed_from(4);
        s.step(&cache, Cycle(0), &mut rng);
        assert_eq!(s.candidate(), Some(0));
        cache.mark_clean(0);
        s.step(&cache, Cycle(1), &mut rng);
        assert_ne!(s.candidate(), Some(0));
    }

    #[test]
    fn save_restore_round_trips_candidate_and_pause() {
        let mut cache = llc();
        cache.insert(0, true);
        let mut s = DirtyLruScanner::with_pause(500);
        let mut rng = SimRng::seed_from(9);
        s.step(&cache, Cycle(0), &mut rng);
        s.lock();
        let mut w = SnapWriter::new();
        s.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut fresh = DirtyLruScanner::with_pause(500);
        let mut r = SnapReader::new(&bytes);
        fresh.restore_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(fresh.candidate(), Some(0));
        assert!(fresh.is_locked());
    }

    #[test]
    fn lock_and_release() {
        let mut cache = llc();
        cache.insert(8, true);
        let mut s = DirtyLruScanner::new();
        let mut rng = SimRng::seed_from(5);
        assert_eq!(s.lock(), None, "nothing to lock yet");
        s.step(&cache, Cycle(0), &mut rng);
        assert_eq!(s.lock(), Some(8));
        assert!(s.is_locked());
        s.release();
        assert_eq!(s.candidate(), None);
        assert!(!s.is_locked());
    }
}
