//! The two-level data-cache hierarchy in front of the ORAM controller.

use iroram_sim_engine::{SnapError, SnapReader, SnapWriter};
use serde::{Deserialize, Serialize};

use crate::{CacheConfig, SetAssocCache};

/// Where an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessOutcome {
    /// Hit in the L1 data cache.
    L1Hit,
    /// Missed L1, hit the LLC.
    LlcHit,
    /// Missed both levels; the line was filled and the request must go to
    /// memory (the ORAM controller).
    Miss,
}

/// Hierarchy configuration (line counts; lines are 64 B as in Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// L1 sets.
    pub l1_sets: usize,
    /// L1 associativity (paper: 2-way).
    pub l1_assoc: usize,
    /// LLC sets.
    pub llc_sets: usize,
    /// LLC associativity (paper: 8-way).
    pub llc_assoc: usize,
}

impl HierarchyConfig {
    /// The paper's Table I sizes: 256 KB 2-way L1, 2 MB 8-way LLC
    /// (64 B lines → 2048 L1 sets, 4096 LLC sets).
    pub fn paper() -> Self {
        HierarchyConfig {
            l1_sets: 2048,
            l1_assoc: 2,
            llc_sets: 4096,
            llc_assoc: 8,
        }
    }

    /// A proportionally scaled-down configuration for reduced protected
    /// spaces (`scale` divides the line counts; associativities are kept).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero or exceeds the set counts.
    pub fn scaled(scale: usize) -> Self {
        let p = Self::paper();
        assert!(scale > 0 && scale <= p.llc_sets && scale <= p.l1_sets);
        HierarchyConfig {
            l1_sets: (p.l1_sets / scale).max(1),
            l1_assoc: p.l1_assoc,
            llc_sets: (p.llc_sets / scale).max(1),
            llc_assoc: p.llc_assoc,
        }
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig::paper()
    }
}

/// Aggregate hierarchy statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// Total accesses issued to the hierarchy.
    pub accesses: u64,
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// LLC hits (of L1 misses).
    pub llc_hits: u64,
    /// Misses to memory.
    pub misses: u64,
    /// Read misses to memory.
    pub read_misses: u64,
    /// Write misses to memory.
    pub write_misses: u64,
    /// Dirty LLC lines evicted to memory.
    pub dirty_writebacks: u64,
}

/// An inclusive L1 + LLC hierarchy with immediate fill.
///
/// `access` models the complete transaction tag-wise: on a miss the line is
/// filled into both levels right away and any dirty LLC victim is reported
/// for memory write-back. The timing simulator charges latencies separately;
/// this keeps cache state independent of ORAM service order, which is the
/// standard trace-simulation simplification.
///
/// # Examples
///
/// ```
/// use iroram_cache::{AccessOutcome, HierarchyConfig, MemoryHierarchy};
/// let mut h = MemoryHierarchy::new(HierarchyConfig { l1_sets: 4, l1_assoc: 1, llc_sets: 16, llc_assoc: 2 });
/// let (outcome, wb) = h.access(42, false);
/// assert_eq!(outcome, AccessOutcome::Miss);
/// assert_eq!(wb, None);
/// assert_eq!(h.access(42, false).0, AccessOutcome::L1Hit);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l1: SetAssocCache,
    llc: SetAssocCache,
    stats: HierarchyStats,
}

impl MemoryHierarchy {
    /// Creates an empty hierarchy.
    pub fn new(cfg: HierarchyConfig) -> Self {
        MemoryHierarchy {
            l1: SetAssocCache::new(CacheConfig::new(cfg.l1_sets, cfg.l1_assoc)),
            llc: SetAssocCache::new(CacheConfig::new(cfg.llc_sets, cfg.llc_assoc)),
            stats: HierarchyStats::default(),
        }
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Immutable view of the LLC (for the IR-DWB scanner).
    pub fn llc(&self) -> &SetAssocCache {
        &self.llc
    }

    /// Clears the dirty bit of an LLC line (IR-DWB early write-back
    /// completion). Returns whether the line was present.
    pub fn llc_mark_clean(&mut self, addr: u64) -> bool {
        self.llc.mark_clean(addr)
    }

    /// Whether an LLC line is currently dirty.
    pub fn llc_is_dirty(&self, addr: u64) -> bool {
        self.llc.probe(addr).map(|l| l.dirty).unwrap_or(false)
    }

    /// Issues one access. Returns the hit level and, if an LLC victim had to
    /// be written back to memory, its address.
    ///
    /// This is the common-case API; delayed-remap ORAM policies also need
    /// *clean* evictions — use [`MemoryHierarchy::access_full`] for those.
    pub fn access(&mut self, addr: u64, is_write: bool) -> (AccessOutcome, Option<u64>) {
        let (outcome, evicted) = self.access_full(addr, is_write);
        (outcome, evicted.filter(|e| e.dirty).map(|e| e.addr))
    }

    /// Issues one access, reporting any LLC eviction (clean or dirty).
    pub fn access_full(
        &mut self,
        addr: u64,
        is_write: bool,
    ) -> (AccessOutcome, Option<crate::EvictedLine>) {
        self.stats.accesses += 1;
        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        if self.l1.access(addr, is_write) {
            self.stats.l1_hits += 1;
            return (AccessOutcome::L1Hit, None);
        }
        let mut wb = None;
        let outcome = if self.llc.access(addr, is_write) {
            self.stats.llc_hits += 1;
            AccessOutcome::LlcHit
        } else {
            self.stats.misses += 1;
            if is_write {
                self.stats.write_misses += 1;
            } else {
                self.stats.read_misses += 1;
            }
            // Fill LLC; handle inclusive victim.
            if let Some(victim) = self.llc.insert(addr, is_write) {
                wb = self.handle_llc_victim(victim.addr, victim.dirty);
            }
            AccessOutcome::Miss
        };
        // Fill L1; a dirty L1 victim folds into the LLC (inclusive).
        if let Some(victim) = self.l1.insert(addr, is_write) {
            if victim.dirty && !self.llc.set_dirty(victim.addr) {
                // Inclusion should make this unreachable, but stay safe.
                self.llc.insert(victim.addr, true);
            }
        }
        (outcome, wb)
    }

    fn handle_llc_victim(&mut self, addr: u64, mut dirty: bool) -> Option<crate::EvictedLine> {
        // Inclusion: the L1 copy must go too; merge its dirty state.
        if let Some(l1_dirty) = self.l1.invalidate(addr) {
            dirty |= l1_dirty;
        }
        if dirty {
            self.stats.dirty_writebacks += 1;
        }
        Some(crate::EvictedLine { addr, dirty })
    }

    /// Serializes both cache levels and the aggregate statistics for a
    /// checkpoint.
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.l1.save_state(w);
        self.llc.save_state(w);
        w.put_u64(self.stats.accesses);
        w.put_u64(self.stats.reads);
        w.put_u64(self.stats.writes);
        w.put_u64(self.stats.l1_hits);
        w.put_u64(self.stats.llc_hits);
        w.put_u64(self.stats.misses);
        w.put_u64(self.stats.read_misses);
        w.put_u64(self.stats.write_misses);
        w.put_u64(self.stats.dirty_writebacks);
    }

    /// Restores the state captured by [`MemoryHierarchy::save_state`] into
    /// a hierarchy of the same geometry.
    ///
    /// # Errors
    ///
    /// Any [`SnapError`] from the underlying cache restores (geometry
    /// mismatch, truncation, corruption).
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.l1.restore_state(r)?;
        self.llc.restore_state(r)?;
        self.stats = HierarchyStats {
            accesses: r.take_u64()?,
            reads: r.take_u64()?,
            writes: r.take_u64()?,
            l1_hits: r.take_u64()?,
            llc_hits: r.take_u64()?,
            misses: r.take_u64()?,
            read_misses: r.take_u64()?,
            write_misses: r.take_u64()?,
            dirty_writebacks: r.take_u64()?,
        };
        Ok(())
    }

    /// Flushes both levels (context switch), returning dirty line addresses
    /// needing memory write-back.
    pub fn flush(&mut self) -> Vec<u64> {
        let mut dirty: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        for e in self.l1.flush() {
            dirty.insert(e.addr);
        }
        for e in self.llc.flush() {
            dirty.insert(e.addr);
        }
        dirty.into_iter().collect()
    }

    /// Misses per kilo-*access* (the experiment harness converts to MPKI
    /// using instruction counts from the trace).
    pub fn miss_rate(&self) -> f64 {
        if self.stats.accesses == 0 {
            0.0
        } else {
            self.stats.misses as f64 / self.stats.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig {
            l1_sets: 2,
            l1_assoc: 1,
            llc_sets: 4,
            llc_assoc: 2,
        })
    }

    #[test]
    fn miss_fill_hit_sequence() {
        let mut h = small();
        assert_eq!(h.access(0, false).0, AccessOutcome::Miss);
        assert_eq!(h.access(0, false).0, AccessOutcome::L1Hit);
        let s = h.stats();
        assert_eq!(s.accesses, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.l1_hits, 1);
    }

    #[test]
    fn llc_hit_after_l1_eviction() {
        let mut h = small();
        h.access(0, false); // L1 set 0
        h.access(2, false); // L1 set 0 → evicts 0 from L1, stays in LLC
        assert_eq!(h.access(0, false).0, AccessOutcome::LlcHit);
    }

    #[test]
    fn dirty_writeback_on_llc_eviction() {
        let mut h = small();
        h.access(0, true); // dirty in set 0 of LLC (llc sets=4: addr%4)
        // Fill two more lines mapping to LLC set 0 to force eviction.
        h.access(4, false);
        let (_, wb) = h.access(8, false);
        assert_eq!(wb, Some(0), "dirty line 0 must be written back");
        assert_eq!(h.stats().dirty_writebacks, 1);
    }

    #[test]
    fn clean_eviction_produces_no_writeback() {
        let mut h = small();
        h.access(0, false);
        h.access(4, false);
        let (_, wb) = h.access(8, false);
        assert_eq!(wb, None);
    }

    #[test]
    fn l1_dirty_victim_folds_into_llc() {
        let mut h = small();
        h.access(0, true); // dirty in both
        h.access(2, false); // evicts 0 from L1 (set 0), dirtiness folds to LLC
        // Evict 0 from LLC: sets=4, so 0,4,8 map to set 0.
        h.access(4, false);
        let (_, wb) = h.access(8, false);
        assert_eq!(wb, Some(0), "dirtiness must survive the L1→LLC fold");
    }

    #[test]
    fn inclusion_invalidates_l1_on_llc_eviction() {
        let mut h = small();
        h.access(0, false); // in L1 + LLC
        h.access(4, false); // LLC set 0 now {0,4}; L1 set 0 holds 4
        h.access(8, false); // evicts LRU (0) from LLC
        // 0 must now be a full miss again, not an L1 hit.
        assert_eq!(h.access(0, false).0, AccessOutcome::Miss);
    }

    #[test]
    fn dirty_l1_copy_merges_on_llc_eviction() {
        let mut h = small();
        h.access(0, true); // dirty in L1 (and LLC tag dirty too here)
        h.access(4, false);
        let (_, wb) = h.access(8, false); // evict 0 from LLC while L1 copy dirty
        assert_eq!(wb, Some(0));
    }

    #[test]
    fn flush_collects_all_dirty() {
        let mut h = small();
        h.access(0, true);
        h.access(1, true);
        h.access(2, false);
        let dirty = h.flush();
        assert_eq!(dirty, vec![0, 1]);
        assert_eq!(h.access(0, false).0, AccessOutcome::Miss);
    }

    #[test]
    fn paper_config_dimensions() {
        let p = HierarchyConfig::paper();
        // 2048 × 2 × 64 B = 256 KB; 4096 × 8 × 64 B = 2 MB.
        assert_eq!(p.l1_sets * p.l1_assoc * 64, 256 * 1024);
        assert_eq!(p.llc_sets * p.llc_assoc * 64, 2 * 1024 * 1024);
        let s = HierarchyConfig::scaled(16);
        assert_eq!(s.llc_sets, 256);
        assert_eq!(s.l1_assoc, 2);
    }

    #[test]
    fn save_restore_preserves_future_behaviour() {
        let mut h = small();
        for i in 0..32u64 {
            h.access(i % 7, i % 3 == 0);
        }
        let mut w = SnapWriter::new();
        h.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut fresh = MemoryHierarchy::new(HierarchyConfig {
            l1_sets: 2,
            l1_assoc: 1,
            llc_sets: 4,
            llc_assoc: 2,
        });
        let mut r = SnapReader::new(&bytes);
        fresh.restore_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(fresh.stats(), h.stats());
        for i in 0..32u64 {
            assert_eq!(fresh.access_full(i % 5, i % 4 == 0), h.access_full(i % 5, i % 4 == 0));
        }
        assert_eq!(fresh.stats(), h.stats());
    }

    #[test]
    fn stats_read_write_split() {
        let mut h = small();
        h.access(0, false);
        h.access(16, true);
        let s = h.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.read_misses, 1);
        assert_eq!(s.write_misses, 1);
        assert!(h.miss_rate() > 0.99);
    }
}
