//! Physical address decomposition.

use serde::{Deserialize, Serialize};

/// How line addresses interleave across channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Interleave {
    /// Consecutive cache lines rotate across channels (maximizes parallelism
    /// for streaming accesses such as ORAM path reads).
    CacheLine,
    /// Whole rows rotate across channels (keeps a row's lines on one
    /// channel).
    Row,
}

/// Decoded coordinates of a cache-line address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodedAddr {
    /// Memory channel.
    pub channel: u32,
    /// Bank within the channel (rank folded into bank for this model).
    pub bank: u32,
    /// DRAM row within the bank.
    pub row: u64,
    /// Column (line slot) within the row.
    pub col: u32,
}

/// Maps flat cache-line addresses to (channel, bank, row, column).
///
/// Addresses are *line* addresses (one unit = one 64 B cache line). The
/// mapping places `lines_per_row` consecutive (post-interleave) lines in one
/// row and rotates rows across banks, the standard open-page-friendly
/// XOR-free layout used by USIMM's default address mapper.
///
/// # Examples
///
/// ```
/// use iroram_dram::{AddressMapping, Interleave};
/// let m = AddressMapping::new(4, 8, 128, Interleave::CacheLine);
/// let d0 = m.decode(0);
/// let d1 = m.decode(1);
/// assert_ne!(d0.channel, d1.channel); // line-interleaved
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMapping {
    channels: u32,
    banks: u32,
    lines_per_row: u32,
    interleave: Interleave,
}

impl AddressMapping {
    /// Creates a mapping.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(channels: u32, banks: u32, lines_per_row: u32, interleave: Interleave) -> Self {
        assert!(
            channels > 0 && banks > 0 && lines_per_row > 0,
            "address mapping dimensions must be nonzero"
        );
        AddressMapping {
            channels,
            banks,
            lines_per_row,
            interleave,
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> u32 {
        self.channels
    }

    /// Banks per channel.
    pub fn banks(&self) -> u32 {
        self.banks
    }

    /// Lines per DRAM row.
    pub fn lines_per_row(&self) -> u32 {
        self.lines_per_row
    }

    /// Decodes a line address.
    pub fn decode(&self, line_addr: u64) -> DecodedAddr {
        // The dimensions are runtime values, so without help the compiler
        // emits real 64-bit divisions here — and the scheduler decodes
        // every request of every batch. All stock geometries are powers of
        // two, so strength-reduce to shift/mask when possible.
        #[inline(always)]
        fn divmod(v: u64, d: u64) -> (u64, u64) {
            if d.is_power_of_two() {
                (v >> d.trailing_zeros(), v & (d - 1))
            } else {
                (v / d, v % d)
            }
        }
        let ch_u64 = self.channels as u64;
        let lpr = self.lines_per_row as u64;
        let banks = self.banks as u64;
        match self.interleave {
            Interleave::CacheLine => {
                let (within, channel) = divmod(line_addr, ch_u64);
                let (row_seq, col) = divmod(within, lpr);
                let (row, bank) = divmod(row_seq, banks);
                DecodedAddr {
                    channel: channel as u32,
                    bank: bank as u32,
                    row,
                    col: col as u32,
                }
            }
            Interleave::Row => {
                let (row_seq, col) = divmod(line_addr, lpr);
                let (rest, channel) = divmod(row_seq, ch_u64);
                let (row, bank) = divmod(rest, banks);
                DecodedAddr {
                    channel: channel as u32,
                    bank: bank as u32,
                    row,
                    col: col as u32,
                }
            }
        }
    }
}

impl Default for AddressMapping {
    /// Paper-scale default: 4 channels (Table I), 8 banks, 8 KB rows
    /// (128 × 64 B lines), cache-line interleaved.
    fn default() -> Self {
        AddressMapping::new(4, 8, 128, Interleave::CacheLine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_line_interleave_rotates_channels() {
        let m = AddressMapping::default();
        for a in 0..16u64 {
            assert_eq!(m.decode(a).channel, (a % 4) as u32);
        }
    }

    #[test]
    fn contiguous_lines_share_row_within_channel() {
        let m = AddressMapping::default();
        // Lines 0,4,8,… are channel 0; the first 128 of them share row 0 of
        // bank 0.
        let first = m.decode(0);
        for i in 0..128u64 {
            let d = m.decode(i * 4);
            assert_eq!(d.channel, 0);
            assert_eq!(d.row, first.row);
            assert_eq!(d.bank, first.bank);
            assert_eq!(d.col, i as u32);
        }
        // The 129th rotates to the next bank.
        let next = m.decode(128 * 4);
        assert_eq!(next.bank, first.bank + 1);
    }

    #[test]
    fn row_interleave_keeps_row_on_one_channel() {
        let m = AddressMapping::new(4, 8, 128, Interleave::Row);
        let c0 = m.decode(0).channel;
        for a in 0..128u64 {
            assert_eq!(m.decode(a).channel, c0);
        }
        assert_ne!(m.decode(128).channel, c0);
    }

    #[test]
    fn decode_is_injective_on_window() {
        use std::collections::HashSet;
        for il in [Interleave::CacheLine, Interleave::Row] {
            let m = AddressMapping::new(2, 4, 16, il);
            let set: HashSet<(u32, u32, u64, u32)> = (0..4096u64)
                .map(|a| {
                    let d = m.decode(a);
                    (d.channel, d.bank, d.row, d.col)
                })
                .collect();
            assert_eq!(set.len(), 4096);
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn rejects_zero_dims() {
        let _ = AddressMapping::new(0, 8, 128, Interleave::CacheLine);
    }
}
