//! A USIMM-style DRAM memory-system model.
//!
//! The IR-ORAM paper evaluates on USIMM, "a trace-based simulator … for
//! cycle-accurate DRAM memory simulation" (Section V). This crate is the
//! from-scratch Rust substitute: a transaction-level DDR3 model with
//!
//! * per-channel command/data-bus serialization,
//! * per-bank row-buffer state machines with activate / precharge /
//!   CAS timing constraints ([`DramTimings`]),
//! * FR-FCFS scheduling (row hits first, then oldest) within a reorder
//!   window ([`DramSystem`]),
//! * configurable address interleaving ([`AddressMapping`]), and
//! * the ORAM **subtree data layout** of Ren et al. \[25\] that packs small
//!   subtrees into DRAM rows so a path access enjoys row-buffer hits
//!   ([`SubtreeLayout`]).
//!
//! Timing is expressed in DRAM clock cycles (800 MHz for the paper's
//! DDR3-1600 configuration); callers convert with
//! [`iroram_sim_engine::ClockRatio`].
//!
//! # Examples
//!
//! ```
//! use iroram_dram::{DramConfig, DramSystem, MemRequest};
//! use iroram_sim_engine::Cycle;
//!
//! let mut dram = DramSystem::new(DramConfig::default());
//! let done = dram.schedule_batch(&[
//!     MemRequest::read(0x0, Cycle(0)),
//!     MemRequest::write(0x40, Cycle(0)),
//! ]);
//! assert_eq!(done.len(), 2);
//! assert!(done[0].completion > Cycle(0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod address;
mod bank;
mod subtree;
mod system;
mod timing;

pub use address::{AddressMapping, DecodedAddr, Interleave};
pub use bank::BankState;
pub use subtree::{PathTable, SubtreeLayout};
pub use system::{Completion, DramConfig, DramStats, DramSystem, MemRequest};
#[cfg(any(test, feature = "reference-scheduler"))]
pub use system::reference;
pub use timing::DramTimings;
