//! The top-level DRAM system: channels, scheduling, statistics.

use iroram_sim_engine::{Cycle, SnapError, SnapReader, SnapWriter};
use serde::{Deserialize, Serialize};

use crate::{AddressMapping, BankState, DecodedAddr, DramTimings};

/// A single cache-line memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRequest {
    /// Flat line address (one unit = one 64 B line).
    pub line_addr: u64,
    /// Write (true) or read (false).
    pub is_write: bool,
    /// Arrival time at the memory controller, in DRAM cycles.
    pub arrival: Cycle,
}

impl MemRequest {
    /// A read of `line_addr` arriving at `arrival`.
    pub fn read(line_addr: u64, arrival: Cycle) -> Self {
        MemRequest {
            line_addr,
            is_write: false,
            arrival,
        }
    }

    /// A write of `line_addr` arriving at `arrival`.
    pub fn write(line_addr: u64, arrival: Cycle) -> Self {
        MemRequest {
            line_addr,
            is_write: true,
            arrival,
        }
    }
}

/// The completion record for one scheduled request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Completion {
    /// Index of the request within its submitted batch.
    pub index: usize,
    /// Cycle at which the last data beat transfers.
    pub completion: Cycle,
    /// Whether the access hit an open row.
    pub row_hit: bool,
}

/// DRAM system configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Address mapping (channels, banks, row size, interleave).
    pub mapping: AddressMapping,
    /// Timing parameters.
    pub timings: DramTimings,
    /// FR-FCFS reorder window: how many oldest queued requests per channel
    /// the scheduler examines when hunting for a row hit.
    pub reorder_window: usize,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            mapping: AddressMapping::default(),
            timings: DramTimings::default(),
            reorder_window: 16,
        }
    }
}

/// Aggregate statistics over a system's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Requests that hit an open row.
    pub row_hits: u64,
    /// Requests that found the bank empty (activate only).
    pub row_empties: u64,
    /// Requests that conflicted with a different open row.
    pub row_conflicts: u64,
    /// Total requests served.
    pub requests: u64,
    /// Total read requests served.
    pub reads: u64,
    /// Total write requests served.
    pub writes: u64,
    /// Sum of (completion − arrival) over all requests, for mean latency.
    pub total_latency: u64,
    /// Busy data-bus cycles summed over channels.
    pub bus_busy_cycles: u64,
    /// Completion time of the latest request so far.
    pub last_completion: u64,
}

impl DramStats {
    /// Row-buffer hit rate over all served requests.
    pub fn row_hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.requests as f64
        }
    }

    /// Mean service latency in DRAM cycles.
    pub fn mean_latency(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.requests as f64
        }
    }

    /// Achieved data-bus utilization (busy cycles / elapsed cycles / channels).
    pub fn bus_utilization(&self, channels: u32) -> f64 {
        if self.last_completion == 0 {
            0.0
        } else {
            self.bus_busy_cycles as f64 / (self.last_completion as f64 * channels as f64)
        }
    }

    /// Folds another stats record into this one (counter sums plus the
    /// `last_completion` max). Every field is commutative, so absorbing
    /// per-channel deltas in channel order equals the old per-request
    /// interleaved accumulation bit for bit.
    fn absorb(&mut self, d: &DramStats) {
        self.row_hits += d.row_hits;
        self.row_empties += d.row_empties;
        self.row_conflicts += d.row_conflicts;
        self.requests += d.requests;
        self.reads += d.reads;
        self.writes += d.writes;
        self.total_latency += d.total_latency;
        self.bus_busy_cycles += d.bus_busy_cycles;
        self.last_completion = self.last_completion.max(d.last_completion);
    }
}

#[derive(Debug, Clone)]
struct Channel {
    banks: Vec<BankState>,
    bus_free: Cycle,
    /// Direction of the last data burst (for read↔write turnaround).
    last_was_write: Option<bool>,
}

/// A request with its address decoded exactly once, at enqueue. The channel
/// is implicit (one scratch queue per channel), so the FR-FCFS scan reads
/// `(bank, row)` straight from the entry instead of re-dividing the line
/// address on every window iteration.
#[derive(Debug, Clone, Copy)]
struct DecodedRequest {
    /// Position of the request in the submitted batch.
    orig_idx: u32,
    bank: u32,
    row: u64,
    is_write: bool,
    arrival: Cycle,
    /// Set once the request has been scheduled; served entries stay in
    /// place (no tail shifting) and the scan skips them.
    served: bool,
}

/// A multi-channel DRAM memory system with FR-FCFS scheduling.
///
/// The model is transaction-level: callers submit batches of requests (e.g.
/// all the block reads of one ORAM path) with [`DramSystem::schedule_batch`]
/// and receive per-request completion times. Bank and bus state persist
/// across batches, so sustained-bandwidth effects (queueing, row locality,
/// write recovery) accumulate naturally.
///
/// Within a batch the scheduler serves each channel's queue with FR-FCFS:
/// among the oldest `reorder_window` pending requests it prefers one hitting
/// an open row, falling back to the oldest. Across batches service is FIFO,
/// matching a memory controller whose queues drain faster than the ORAM
/// controller refills them.
#[derive(Debug, Clone)]
pub struct DramSystem {
    // lint: allow(snapshot-drift, configuration, fixed at construction for the whole run)
    cfg: DramConfig,
    channels: Vec<Channel>,
    stats: DramStats,
    /// Count of completions computed earlier than their request's arrival.
    /// A completion before arrival is a scheduler bug, not a zero-latency
    /// request, so this is kept out of [`DramStats`] (it is not a property
    /// of the modeled memory system) and asserted zero by the audit layer.
    latency_underflows: u64,
    /// Per-channel scratch queues for [`DramSystem::schedule_batch`]:
    /// cleared at the start of every batch, never deallocated, so the
    /// steady state schedules with zero heap traffic.
    // lint: allow(snapshot-drift, per-call scratch, cleared before each use)
    queues: Vec<Vec<DecodedRequest>>,
    /// Direct-placement completion buffer: slot `i` receives request `i`'s
    /// completion as it is scheduled, so no final sort is needed.
    // lint: allow(snapshot-drift, per-call scratch, cleared before each use)
    out: Vec<Completion>,
    /// Worker count for intra-batch channel-parallel scheduling (1 =
    /// always serial). Channels are independent by construction, so any
    /// value yields byte-identical completions and stats; the threshold
    /// [`DramSystem::PARALLEL_MIN_BATCH`] keeps small batches serial.
    // lint: allow(snapshot-drift, configuration; worker count never changes completions)
    sched_threads: u32,
    /// Per-channel completion scratch for the parallel path: each worker
    /// emits into its own channel's buffer, and the deterministic merge
    /// scatters them into `out` in fixed channel order.
    // lint: allow(snapshot-drift, per-call scratch, cleared before each use)
    pouts: Vec<Vec<Completion>>,
    /// Test hook: skip the host-core clamp on `sched_threads` so the
    /// parallel machinery is exercised even on single-core hosts.
    // lint: allow(snapshot-drift, test hook, fixed at construction)
    ignore_core_clamp: bool,
}

/// The host's core count, probed once: workers are pure CPU-bound, so
/// spawning more of them than cores only adds scoped-thread overhead.
fn host_cores() -> usize {
    static CORES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CORES.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

impl DramSystem {
    /// Creates a system in the all-banks-idle state.
    pub fn new(cfg: DramConfig) -> Self {
        let channels: Vec<Channel> = (0..cfg.mapping.channels())
            .map(|_| Channel {
                banks: vec![BankState::new(); cfg.mapping.banks() as usize],
                bus_free: Cycle::ZERO,
                last_was_write: None,
            })
            .collect();
        let queues = vec![Vec::new(); channels.len()];
        let pouts = vec![Vec::new(); channels.len()];
        DramSystem {
            cfg,
            channels,
            stats: DramStats::default(),
            latency_underflows: 0,
            queues,
            out: Vec::new(),
            sched_threads: 1,
            pouts,
            ignore_core_clamp: false,
        }
    }

    /// Batches smaller than this always schedule serially, whatever
    /// `sched_threads` says: a per-path ORAM batch (tens of requests) is
    /// far too small to amortize spawning scoped workers, so the threshold
    /// keeps the default simulation loop on the zero-overhead serial path
    /// while large batches (benches, bulk replays) fan out.
    pub const PARALLEL_MIN_BATCH: usize = 64;

    /// Sets the worker count for intra-batch channel-parallel scheduling.
    /// `0` and `1` both mean serial. Scheduling output is byte-identical
    /// for every value: channels never share state, and the merge reads
    /// them back in fixed channel order.
    pub fn set_sched_threads(&mut self, n: u32) {
        self.sched_threads = n.max(1);
    }

    /// Current intra-batch scheduling worker count (as configured; the
    /// batch dispatch additionally clamps to the host's core count).
    pub fn sched_threads(&self) -> u32 {
        self.sched_threads
    }

    /// Disables the host-core clamp on the worker count. Testing hook:
    /// correctness tests use this to force the parallel dispatch + merge
    /// path on hosts with fewer cores than `sched_threads`.
    #[doc(hidden)]
    pub fn set_ignore_core_clamp(&mut self, on: bool) {
        self.ignore_core_clamp = on;
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Number of requests whose computed completion preceded their arrival.
    /// Always zero for a correct scheduler; the audit layer asserts it.
    pub fn latency_underflows(&self) -> u64 {
        self.latency_underflows
    }

    /// Schedules a batch of requests, returning one [`Completion`] per
    /// request in the order of the input slice (the `index` field also
    /// records the position).
    ///
    /// All requests are fully served; the returned completion times may
    /// exceed any request's arrival by the queueing delay implied by bank
    /// and bus contention.
    pub fn schedule_batch(&mut self, requests: &[MemRequest]) -> Vec<Completion> {
        #[cfg(any(test, feature = "reference-scheduler"))]
        if reference::forced() {
            return self.schedule_batch_reference(requests);
        }
        self.run_batch(requests);
        self.out.clone()
    }

    /// Convenience: schedules a batch and returns the latest completion time
    /// (the phase-done time the ORAM controller waits on), or `at` for an
    /// empty batch. This is the allocation-free path the ORAM controllers
    /// sit on: completions land in the internal buffer and only the fold
    /// result escapes.
    pub fn schedule_batch_done(&mut self, requests: &[MemRequest], at: Cycle) -> Cycle {
        #[cfg(any(test, feature = "reference-scheduler"))]
        if reference::forced() {
            return self
                .schedule_batch_reference(requests)
                .into_iter()
                .map(|c| c.completion)
                .fold(at, Cycle::max);
        }
        at.max(self.run_batch(requests))
    }

    /// The FR-FCFS scheduling core. Fills `self.out` (slot `i` = request
    /// `i`'s completion) and returns the latest completion in the batch
    /// ([`Cycle::ZERO`] for an empty batch).
    ///
    /// Uses the persistent per-channel scratch queues: each request is
    /// decoded exactly once at enqueue, and served entries are flagged in
    /// place (index-cursor scan) rather than removed, so a batch performs no
    /// heap allocation and no tail shifting once the scratch has warmed up.
    fn run_batch(&mut self, requests: &[MemRequest]) -> Cycle {
        let t = self.cfg.timings;
        let window = self.cfg.reorder_window.max(1);
        // Clamp to the host: on a box with fewer cores than the configured
        // worker count, extra scoped threads cost spawn overhead and win
        // nothing. The clamp never changes results — only who computes them.
        let mut threads = (self.sched_threads as usize).max(1);
        if !self.ignore_core_clamp {
            threads = threads.min(host_cores());
        }
        let DramSystem {
            cfg,
            channels,
            stats,
            latency_underflows,
            queues,
            out,
            pouts,
            ..
        } = self;
        // Partition into the per-channel scratch queues, decoding once.
        for q in queues.iter_mut() {
            q.clear();
        }
        for (i, req) in requests.iter().enumerate() {
            let d = decode_once(&cfg.mapping, req.line_addr);
            // lint: allow(panic, decode returns channel < cfg.mapping.channels() == queues.len() by construction)
            queues[d.channel as usize].push(DecodedRequest {
                orig_idx: i as u32,
                bank: d.bank,
                row: d.row,
                is_write: req.is_write,
                arrival: req.arrival,
                served: false,
            });
        }
        out.clear();
        let placeholder = Completion {
            index: 0,
            completion: Cycle::ZERO,
            row_hit: false,
        };
        out.resize(requests.len(), placeholder);
        let mut latest = Cycle::ZERO;
        let parallel =
            threads > 1 && channels.len() > 1 && requests.len() >= Self::PARALLEL_MIN_BATCH;
        if parallel {
            // Fan the channels out across scoped workers (the same
            // scoped-thread worker-loop shape as the experiment runner's
            // `par_map`). Each worker owns a disjoint contiguous chunk of
            // (channel, queue, scratch, delta) rows, so no simulated state
            // is ever shared; the merge below reads the per-channel
            // results back in fixed channel order, making the output
            // independent of thread count and interleaving.
            for p in pouts.iter_mut() {
                p.clear();
            }
            let mut deltas = vec![ChannelDelta::new(); channels.len()];
            let mut work: Vec<(
                &mut Channel,
                &mut Vec<DecodedRequest>,
                &mut Vec<Completion>,
                &mut ChannelDelta,
            )> = channels
                .iter_mut()
                .zip(queues.iter_mut())
                .zip(pouts.iter_mut())
                .zip(deltas.iter_mut())
                .map(|(((ch, q), p), d)| (ch, q, p, d))
                .collect();
            let chunk = work.len().div_ceil(threads.min(work.len()));
            // Scoped workers compute independent per-channel results; the
            // serial merge below is in fixed channel order, so scheduling
            // output never depends on thread timing. (This is one of the
            // two sanctioned thread-order sites — see iroram-lint.)
            std::thread::scope(|s| {
                for slice in work.chunks_mut(chunk) {
                    s.spawn(move || {
                        for (ch, queue, pout, delta) in slice.iter_mut() {
                            **delta = scan_channel(&t, window, ch, queue, &mut |c| pout.push(c));
                        }
                    });
                }
            });
            // Deterministic merge: channel order, then emission order
            // within a channel — exactly the serial loop's order.
            for (pout, delta) in pouts.iter().zip(deltas.iter()) {
                for c in pout {
                    // lint: allow(panic, completion index < requests.len() == out.len() by construction)
                    out[c.index] = *c;
                }
                stats.absorb(&delta.stats);
                *latency_underflows += delta.underflows;
                latest = latest.max(delta.latest);
            }
        } else {
            for (ch, queue) in channels.iter_mut().zip(queues.iter_mut()) {
                let delta = scan_channel(&t, window, ch, queue, &mut |c| {
                    // Direct placement: request i's completion goes to slot
                    // i, so the batch needs no final sort.
                    // lint: allow(panic, completion index < requests.len() == out.len() by construction)
                    out[c.index] = c;
                });
                stats.absorb(&delta.stats);
                *latency_underflows += delta.underflows;
                latest = latest.max(delta.latest);
            }
        }
        latest
    }

    /// Serializes all persistent scheduling state — per-bank row/timing
    /// state, per-channel bus and turnaround state, lifetime statistics and
    /// the underflow counter — for a checkpoint. The per-batch scratch
    /// buffers are excluded: they are cleared at the start of every batch,
    /// and checkpoints are only taken between batches.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_usize(self.channels.len());
        for ch in &self.channels {
            w.put_usize(ch.banks.len());
            for b in &ch.banks {
                b.save_state(w);
            }
            w.put_u64(ch.bus_free.raw());
            w.put_u8(match ch.last_was_write {
                None => 0,
                Some(false) => 1,
                Some(true) => 2,
            });
        }
        w.put_u64(self.stats.row_hits);
        w.put_u64(self.stats.row_empties);
        w.put_u64(self.stats.row_conflicts);
        w.put_u64(self.stats.requests);
        w.put_u64(self.stats.reads);
        w.put_u64(self.stats.writes);
        w.put_u64(self.stats.total_latency);
        w.put_u64(self.stats.bus_busy_cycles);
        w.put_u64(self.stats.last_completion);
        w.put_u64(self.latency_underflows);
    }

    /// Restores the state captured by [`DramSystem::save_state`] into a
    /// system built from the same configuration.
    ///
    /// # Errors
    ///
    /// [`SnapError::Corrupt`] if the snapshot's channel/bank geometry does
    /// not match this system; any [`SnapError`] on truncation.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let nch = r.take_seq_len(8)?;
        if nch != self.channels.len() {
            return Err(SnapError::Corrupt("DRAM channel count mismatch"));
        }
        for ch in &mut self.channels {
            let nb = r.take_seq_len(8)?;
            if nb != ch.banks.len() {
                return Err(SnapError::Corrupt("DRAM bank count mismatch"));
            }
            for b in &mut ch.banks {
                b.restore_state(r)?;
            }
            ch.bus_free = Cycle(r.take_u64()?);
            ch.last_was_write = match r.take_u8()? {
                0 => None,
                1 => Some(false),
                2 => Some(true),
                _ => return Err(SnapError::Corrupt("bad bus-direction tag")),
            };
        }
        self.stats = DramStats {
            row_hits: r.take_u64()?,
            row_empties: r.take_u64()?,
            row_conflicts: r.take_u64()?,
            requests: r.take_u64()?,
            reads: r.take_u64()?,
            writes: r.take_u64()?,
            total_latency: r.take_u64()?,
            bus_busy_cycles: r.take_u64()?,
            last_completion: r.take_u64()?,
        };
        self.latency_underflows = r.take_u64()?;
        Ok(())
    }

    /// Models a refresh-ish global row closure (used between benchmark runs
    /// and by tests).
    pub fn close_all_rows(&mut self, at: Cycle) {
        let t = self.cfg.timings;
        for ch in &mut self.channels {
            for b in &mut ch.banks {
                b.close_row(at, &t);
            }
        }
    }
}

/// What one channel's FR-FCFS scan produced, accumulated locally so the
/// scan can run off-thread and be folded into the system totals afterwards.
#[derive(Debug, Clone, Copy)]
struct ChannelDelta {
    stats: DramStats,
    underflows: u64,
    latest: Cycle,
}

impl ChannelDelta {
    fn new() -> Self {
        ChannelDelta {
            stats: DramStats::default(),
            underflows: 0,
            latest: Cycle::ZERO,
        }
    }
}

/// The FR-FCFS scan for one channel: serves every entry in `queue`,
/// emitting one [`Completion`] per request (in service order) and returning
/// the channel's stats delta. This is the single scheduling core shared by
/// the serial and channel-parallel paths of [`DramSystem::run_batch`]; it
/// touches only its own channel's banks/bus, which is what makes the
/// parallel fan-out trivially deterministic.
fn scan_channel(
    t: &DramTimings,
    window: usize,
    ch: &mut Channel,
    queue: &mut [DecodedRequest],
    emit: &mut impl FnMut(Completion),
) -> ChannelDelta {
    let mut delta = ChannelDelta::new();
    // `head` is the oldest unserved entry; everything before it is
    // served. Picks are always within `window` unserved entries of
    // `head`, so the skip loops below touch at most a window's worth
    // of served holes.
    let mut head = 0usize;
    let mut remaining = queue.len();
    while remaining > 0 {
        // lint: allow(panic, head < queue.len(): `remaining` unserved entries all sit at or after head)
        while queue[head].served {
            head += 1;
        }
        // FR-FCFS: among the window of oldest requests, pick the
        // first row hit; otherwise the oldest. A hit may only be
        // hoisted over the oldest request if it has arrived by the
        // time the channel could start serving that oldest request —
        // otherwise the channel would idle-wait on a future arrival
        // while an already-arrived request sits queued (priority
        // inversion that the latency-underflow audit flagged).
        // lint: allow(panic, head was just positioned on an unserved entry)
        let hoist_gate = queue[head].arrival.max(ch.bus_free);
        let limit = window.min(remaining);
        let mut pick = head;
        let mut seen = 0usize;
        // Probe by reference off a subslice: the window scan is the hottest
        // loop in the scheduler, and iterating dodges both the per-probe
        // bounds check and a full `DecodedRequest` copy per probe.
        // lint: allow(panic, head < queue.len(): positioned on an unserved entry above)
        for (off, e) in queue[head..].iter().enumerate() {
            if e.served {
                continue;
            }
            // lint: allow(panic, decode returns bank < cfg.mapping.banks() == ch.banks.len() by construction)
            if e.arrival <= hoist_gate && ch.banks[e.bank as usize].would_hit(e.row) {
                pick = head + off;
                break;
            }
            seen += 1;
            if seen == limit {
                break;
            }
        }
        // lint: allow(panic, pick indexes an unserved entry found by the scan above)
        let e = &mut queue[pick];
        e.served = true;
        remaining -= 1;
        let e = *e;
        if pick == head {
            head += 1;
        }
        // lint: allow(panic, decode returns bank < cfg.mapping.banks() == ch.banks.len() by construction)
        let acc = ch.banks[e.bank as usize].access(e.row, e.is_write, e.arrival, t);
        // Data transfer: CAS + CL (or CWL) to first beat, bus holds
        // for t_burst; serialize on the channel data bus.
        let lat = if e.is_write { t.cwl } else { t.cl };
        // Channel-level read↔write turnaround: switching the data
        // bus direction costs bus idle time (write-to-read pays
        // tWTR; read-to-write pays the CL/CWL offset plus a bubble).
        let turnaround = match ch.last_was_write {
            Some(last) if last != e.is_write => {
                if last {
                    t.t_wtr + 2
                } else {
                    (t.cl - t.cwl) + 2
                }
            }
            _ => 0,
        };
        let data_start = (acc.cas_issue + lat).max(ch.bus_free + turnaround);
        let completion = data_start + t.t_burst;
        ch.bus_free = completion;
        ch.last_was_write = Some(e.is_write);
        // Account.
        delta.stats.requests += 1;
        if e.is_write {
            delta.stats.writes += 1;
        } else {
            delta.stats.reads += 1;
        }
        if acc.row_hit {
            delta.stats.row_hits += 1;
        } else if acc.row_empty {
            delta.stats.row_empties += 1;
        } else {
            delta.stats.row_conflicts += 1;
        }
        match completion.raw().checked_sub(e.arrival.raw()) {
            Some(lat) => delta.stats.total_latency += lat,
            None => {
                // Completion before arrival means the scheduler
                // violated causality; record it for the audit
                // instead of silently clamping to zero latency.
                delta.underflows += 1;
                debug_assert!(
                    false,
                    "DRAM completion {completion} precedes arrival {}",
                    e.arrival
                );
            }
        }
        delta.stats.bus_busy_cycles += t.t_burst;
        delta.stats.last_completion = delta.stats.last_completion.max(completion.raw());
        delta.latest = delta.latest.max(completion);
        emit(Completion {
            index: e.orig_idx as usize,
            completion,
            row_hit: acc.row_hit,
        });
    }
    delta
}

/// The scheduler's only call into [`AddressMapping::decode`] — a wrapper so
/// tests can count invocations and assert the decode-once contract (exactly
/// one decode per request per batch).
#[inline]
fn decode_once(mapping: &AddressMapping, line_addr: u64) -> DecodedAddr {
    #[cfg(test)]
    decode_count::note();
    mapping.decode(line_addr)
}

/// Test-only decode-call counter behind [`decode_once`].
#[cfg(test)]
pub(crate) mod decode_count {
    use std::cell::Cell;

    thread_local! {
        static CALLS: Cell<u64> = const { Cell::new(0) };
    }

    pub(crate) fn note() {
        CALLS.with(|c| c.set(c.get() + 1));
    }

    /// Decode calls made by the scheduler on this thread so far.
    pub(crate) fn calls() -> u64 {
        CALLS.with(Cell::get)
    }
}

/// Runtime switch routing [`DramSystem::schedule_batch`] (and `_done`)
/// through the naive reference scheduler, so differential tests can run a
/// whole simulation against the pre-optimization implementation. The switch
/// is thread-local: equivalence tests force it on their own thread (run
/// cells with `jobs = 1`) without perturbing parallel neighbours.
#[cfg(any(test, feature = "reference-scheduler"))]
pub mod reference {
    use std::cell::Cell;

    thread_local! {
        static FORCE: Cell<bool> = const { Cell::new(false) };
    }

    /// Forces (or releases) the reference scheduler on this thread.
    pub fn force(on: bool) {
        FORCE.with(|f| f.set(on));
    }

    /// Whether the reference scheduler is forced on this thread.
    pub fn forced() -> bool {
        FORCE.with(Cell::get)
    }
}

/// The pre-optimization scheduler, kept verbatim as the differential-testing
/// oracle for the decoded-request pipeline: allocate-per-batch queues, a
/// decode per scan candidate, `remove(pick)` tail shifts, and a final sort.
/// Every report must be byte-identical whichever implementation runs.
#[cfg(any(test, feature = "reference-scheduler"))]
impl DramSystem {
    /// [`DramSystem::schedule_batch`] as originally written (naive FR-FCFS).
    pub fn schedule_batch_reference(&mut self, requests: &[MemRequest]) -> Vec<Completion> {
        let t = self.cfg.timings;
        let window = self.cfg.reorder_window.max(1);
        // Partition into per-channel queues, keeping original indices.
        let nch = self.channels.len();
        let mut queues: Vec<Vec<(usize, MemRequest)>> = vec![Vec::new(); nch];
        for (i, req) in requests.iter().enumerate() {
            let d = self.cfg.mapping.decode(req.line_addr);
            queues[d.channel as usize].push((i, *req));
        }
        let mut out = Vec::with_capacity(requests.len());
        for (ch_idx, mut queue) in queues.into_iter().enumerate() {
            let ch = &mut self.channels[ch_idx];
            while !queue.is_empty() {
                let scan = queue.len().min(window);
                let hoist_gate = queue[0].1.arrival.max(ch.bus_free);
                let pick = queue[..scan]
                    .iter()
                    .position(|(_, r)| {
                        let d = self.cfg.mapping.decode(r.line_addr);
                        r.arrival <= hoist_gate && ch.banks[d.bank as usize].would_hit(d.row)
                    })
                    .unwrap_or(0);
                let (orig_idx, req) = queue.remove(pick);
                let d = self.cfg.mapping.decode(req.line_addr);
                let acc = ch.banks[d.bank as usize].access(d.row, req.is_write, req.arrival, &t);
                let lat = if req.is_write { t.cwl } else { t.cl };
                let turnaround = match ch.last_was_write {
                    Some(last) if last != req.is_write => {
                        if last {
                            t.t_wtr + 2
                        } else {
                            (t.cl - t.cwl) + 2
                        }
                    }
                    _ => 0,
                };
                let data_start = (acc.cas_issue + lat).max(ch.bus_free + turnaround);
                let completion = data_start + t.t_burst;
                ch.bus_free = completion;
                ch.last_was_write = Some(req.is_write);
                self.stats.requests += 1;
                if req.is_write {
                    self.stats.writes += 1;
                } else {
                    self.stats.reads += 1;
                }
                if acc.row_hit {
                    self.stats.row_hits += 1;
                } else if acc.row_empty {
                    self.stats.row_empties += 1;
                } else {
                    self.stats.row_conflicts += 1;
                }
                match completion.raw().checked_sub(req.arrival.raw()) {
                    Some(lat) => self.stats.total_latency += lat,
                    None => {
                        self.latency_underflows += 1;
                        debug_assert!(
                            false,
                            "DRAM completion {completion} precedes arrival {}",
                            req.arrival
                        );
                    }
                }
                self.stats.bus_busy_cycles += t.t_burst;
                self.stats.last_completion = self.stats.last_completion.max(completion.raw());
                out.push(Completion {
                    index: orig_idx,
                    completion,
                    row_hit: acc.row_hit,
                });
            }
        }
        out.sort_by_key(|c| c.index);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Interleave;

    fn sys() -> DramSystem {
        DramSystem::new(DramConfig::default())
    }

    #[test]
    fn single_read_latency() {
        let mut d = sys();
        let done = d.schedule_batch(&[MemRequest::read(0, Cycle(0))]);
        let t = DramTimings::ddr3_1600();
        // Empty bank: activate + tRCD + CL + burst.
        assert_eq!(done[0].completion, Cycle(t.t_rcd + t.cl + t.t_burst));
        assert!(!done[0].row_hit);
    }

    #[test]
    fn sequential_lines_fan_out_across_channels() {
        let mut d = sys();
        let reqs: Vec<MemRequest> = (0..4).map(|i| MemRequest::read(i, Cycle(0))).collect();
        let done = d.schedule_batch(&reqs);
        // All four should finish at the same time (independent channels).
        let t0 = done[0].completion;
        assert!(done.iter().all(|c| c.completion == t0));
    }

    #[test]
    fn same_row_accesses_become_hits() {
        let mut d = sys();
        // Lines 0,4,8,… land in channel 0, same row.
        let reqs: Vec<MemRequest> = (0..8).map(|i| MemRequest::read(i * 4, Cycle(0))).collect();
        let done = d.schedule_batch(&reqs);
        let hits = done.iter().filter(|c| c.row_hit).count();
        assert_eq!(hits, 7, "all but the opener should hit");
        assert!(d.stats().row_hit_rate() > 0.8);
    }

    #[test]
    fn row_conflicts_are_slower_than_hits() {
        let mapping = AddressMapping::new(1, 1, 16, Interleave::CacheLine);
        let cfg = DramConfig {
            mapping,
            ..DramConfig::default()
        };
        // Same bank, alternating rows → conflicts.
        let mut d = DramSystem::new(cfg);
        let conflict_reqs: Vec<MemRequest> = (0..8)
            .map(|i| MemRequest::read((i % 2) * 16, Cycle(0)))
            .collect();
        let conflict_done = d.schedule_batch_done(&conflict_reqs, Cycle(0));

        let mut d2 = DramSystem::new(cfg);
        let hit_reqs: Vec<MemRequest> = (0..8).map(|i| MemRequest::read(i, Cycle(0))).collect();
        let hit_done = d2.schedule_batch_done(&hit_reqs, Cycle(0));
        assert!(
            conflict_done > hit_done,
            "conflicts {conflict_done} vs hits {hit_done}"
        );
    }

    #[test]
    fn frfcfs_prefers_row_hits() {
        // Two requests to row A (open), one to row B interleaved between
        // them in queue order; FR-FCFS should serve A,A before B... but the
        // conflict request arrived first so FCFS would do B first. Verify the
        // hit count is higher than strict FCFS would give.
        let mapping = AddressMapping::new(1, 1, 16, Interleave::CacheLine);
        let cfg = DramConfig {
            mapping,
            reorder_window: 8,
            ..DramConfig::default()
        };
        let mut d = DramSystem::new(cfg);
        // Open row 0.
        d.schedule_batch(&[MemRequest::read(0, Cycle(0))]);
        // Queue: B(row1), A(row0), A(row0).
        let done = d.schedule_batch(&[
            MemRequest::read(16, Cycle(0)),
            MemRequest::read(1, Cycle(0)),
            MemRequest::read(2, Cycle(0)),
        ]);
        let hits = done.iter().filter(|c| c.row_hit).count();
        assert_eq!(hits, 2, "both row-0 requests should be served as hits first");
        // And the row-1 request finishes last.
        assert!(done[0].completion > done[1].completion);
    }

    #[test]
    fn bank_state_persists_across_batches() {
        let mut d = sys();
        d.schedule_batch(&[MemRequest::read(0, Cycle(0))]);
        let again = d.schedule_batch(&[MemRequest::read(0, Cycle(1000))]);
        assert!(again[0].row_hit);
    }

    #[test]
    fn close_all_rows_clears_hits() {
        let mut d = sys();
        d.schedule_batch(&[MemRequest::read(0, Cycle(0))]);
        d.close_all_rows(Cycle(100));
        let again = d.schedule_batch(&[MemRequest::read(0, Cycle(1000))]);
        assert!(!again[0].row_hit);
    }

    #[test]
    fn stats_accumulate() {
        let mut d = sys();
        let reqs: Vec<MemRequest> = (0..100)
            .map(|i| {
                if i % 3 == 0 {
                    MemRequest::write(i, Cycle(0))
                } else {
                    MemRequest::read(i, Cycle(0))
                }
            })
            .collect();
        d.schedule_batch(&reqs);
        let s = d.stats();
        assert_eq!(s.requests, 100);
        assert_eq!(s.reads + s.writes, 100);
        assert_eq!(s.writes, 34);
        assert!(s.mean_latency() > 0.0);
        assert!(s.bus_utilization(4) > 0.0);
        assert_eq!(s.row_hits + s.row_empties + s.row_conflicts, 100);
    }

    #[test]
    fn empty_batch_done_returns_at() {
        let mut d = sys();
        assert_eq!(d.schedule_batch_done(&[], Cycle(42)), Cycle(42));
    }

    #[test]
    fn frfcfs_does_not_hoist_future_arrivals() {
        // Regression: the row-hit preference used to ignore arrival times,
        // so a row hit arriving far in the future was hoisted over an
        // already-arrived older request, stalling the channel (and inflating
        // the older request's latency by the whole wait).
        let mapping = AddressMapping::new(1, 1, 16, Interleave::CacheLine);
        let cfg = DramConfig {
            mapping,
            reorder_window: 8,
            ..DramConfig::default()
        };
        let mut d = DramSystem::new(cfg);
        // Open row 0.
        d.schedule_batch(&[MemRequest::read(0, Cycle(0))]);
        // Oldest request targets row 1 and has arrived; a row-0 hit arrives
        // only at cycle 10 000. FCFS order must win: the arrived request is
        // served first and completes long before the future arrival.
        let done = d.schedule_batch(&[
            MemRequest::read(16, Cycle(0)),
            MemRequest::read(1, Cycle(10_000)),
        ]);
        assert!(
            done[0].completion < Cycle(10_000),
            "arrived request was stalled behind a future arrival: {}",
            done[0].completion
        );
        assert!(done[1].completion > Cycle(10_000));
        assert_eq!(d.latency_underflows(), 0);
    }

    #[test]
    fn arrival_time_floors_service() {
        let mut d = sys();
        let done = d.schedule_batch(&[MemRequest::read(0, Cycle(10_000))]);
        assert!(done[0].completion > Cycle(10_000));
    }

    /// A shuffled multi-channel batch mixing rows, banks, directions and
    /// arrivals — enough to exercise hoisting, turnaround and cross-channel
    /// interleaving in one go.
    fn shuffled_batch(n: u64) -> Vec<MemRequest> {
        (0..n)
            .map(|i| {
                // A multiplicative shuffle (odd constant => bijection mod 2^k
                // ranges is not needed; spread is what matters).
                let addr = (i * 2654435761) % 40_000;
                if i % 3 == 0 {
                    MemRequest::write(addr, Cycle(i * 7 % 50))
                } else {
                    MemRequest::read(addr, Cycle(i * 5 % 50))
                }
            })
            .collect()
    }

    #[test]
    fn decode_runs_exactly_once_per_request_per_batch() {
        let mut d = sys();
        let reqs = shuffled_batch(64);
        let before = decode_count::calls();
        d.schedule_batch(&reqs);
        assert_eq!(
            decode_count::calls() - before,
            64,
            "decode must run exactly N times for an N-request batch"
        );
        // And again for the allocation-free done path.
        let before = decode_count::calls();
        d.schedule_batch_done(&reqs, Cycle(0));
        assert_eq!(decode_count::calls() - before, 64);
    }

    #[test]
    fn completions_are_in_input_order_for_shuffled_batch() {
        let mut d = sys();
        let reqs = shuffled_batch(100);
        let done = d.schedule_batch(&reqs);
        assert_eq!(done.len(), reqs.len());
        for (i, c) in done.iter().enumerate() {
            assert_eq!(c.index, i, "slot {i} holds completion for request {}", c.index);
        }
    }

    #[test]
    fn matches_reference_scheduler_across_batches() {
        // Same request stream through both implementations, multiple batches
        // so bank/bus state differences would accumulate and surface.
        let cfgs = [
            DramConfig::default(),
            DramConfig {
                mapping: AddressMapping::new(1, 2, 8, Interleave::CacheLine),
                reorder_window: 4,
                ..DramConfig::default()
            },
            DramConfig {
                mapping: AddressMapping::new(2, 4, 16, Interleave::Row),
                reorder_window: 1,
                ..DramConfig::default()
            },
        ];
        for cfg in cfgs {
            let mut fast = DramSystem::new(cfg);
            let mut naive = DramSystem::new(cfg);
            for batch in 0..8u64 {
                let reqs = shuffled_batch(48 + batch * 7);
                let a = fast.schedule_batch(&reqs);
                let b = naive.schedule_batch_reference(&reqs);
                assert_eq!(a, b, "batch {batch}");
                assert_eq!(fast.stats(), naive.stats(), "stats after batch {batch}");
                assert_eq!(fast.latency_underflows(), naive.latency_underflows());
            }
        }
    }

    #[test]
    fn reference_force_switch_routes_public_api() {
        let reqs = shuffled_batch(32);
        let mut a = sys();
        let mut b = sys();
        reference::force(true);
        let forced = a.schedule_batch(&reqs);
        let forced_done = b.schedule_batch_done(&reqs, Cycle(3));
        reference::force(false);
        let mut c = sys();
        let mut d = sys();
        assert_eq!(forced, c.schedule_batch(&reqs));
        assert_eq!(forced_done, d.schedule_batch_done(&reqs, Cycle(3)));
    }

    #[test]
    fn parallel_scheduling_matches_serial_and_reference() {
        // Large batches cross PARALLEL_MIN_BATCH and fan out across scoped
        // workers; every thread count must produce the serial (and
        // reference) schedule bit for bit, batch after batch.
        for threads in [2u32, 3, 4, 8] {
            let mut par = sys();
            par.set_sched_threads(threads);
            // Exercise the real parallel dispatch even on single-core CI.
            par.set_ignore_core_clamp(true);
            let mut ser = sys();
            let mut naive = sys();
            for batch in 0..4u64 {
                let n = DramSystem::PARALLEL_MIN_BATCH as u64 * 4 + batch * 11;
                let reqs = shuffled_batch(n);
                let a = par.schedule_batch(&reqs);
                let b = ser.schedule_batch(&reqs);
                let c = naive.schedule_batch_reference(&reqs);
                assert_eq!(a, b, "threads {threads} batch {batch}");
                assert_eq!(b, c, "threads {threads} batch {batch} vs reference");
                assert_eq!(par.stats(), ser.stats());
                assert_eq!(par.latency_underflows(), ser.latency_underflows());
            }
        }
    }

    #[test]
    fn small_batches_stay_serial_and_identical_under_sched_threads() {
        // Below the threshold the parallel path must not engage (no
        // observable difference, and the same completions either way).
        let mut par = sys();
        par.set_sched_threads(4);
        let mut ser = sys();
        for batch in 0..6u64 {
            let reqs = shuffled_batch(DramSystem::PARALLEL_MIN_BATCH as u64 - 1 - batch);
            assert_eq!(par.schedule_batch(&reqs), ser.schedule_batch(&reqs));
        }
        assert_eq!(par.stats(), ser.stats());
    }

    #[test]
    fn sched_threads_zero_means_serial() {
        let mut d = sys();
        d.set_sched_threads(0);
        assert_eq!(d.sched_threads(), 1);
        let done = d.schedule_batch(&shuffled_batch(300));
        assert_eq!(done.len(), 300);
    }

    #[test]
    fn save_restore_continues_schedule_identically() {
        let mut live = sys();
        live.schedule_batch(&shuffled_batch(128));
        let mut w = SnapWriter::new();
        live.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut fresh = sys();
        let mut r = SnapReader::new(&bytes);
        fresh.restore_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(fresh.stats(), live.stats());
        for batch in 0..3u64 {
            let reqs = shuffled_batch(40 + batch * 9);
            assert_eq!(fresh.schedule_batch(&reqs), live.schedule_batch(&reqs));
            assert_eq!(fresh.stats(), live.stats(), "batch {batch}");
        }
    }

    #[test]
    fn restore_rejects_geometry_mismatch() {
        let live = sys();
        let mut w = SnapWriter::new();
        live.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut other = DramSystem::new(DramConfig {
            mapping: AddressMapping::new(1, 2, 8, Interleave::CacheLine),
            ..DramConfig::default()
        });
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(
            other.restore_state(&mut r),
            Err(SnapError::Corrupt(_))
        ));
    }

    #[test]
    fn scratch_buffers_persist_and_stay_clean_across_batches() {
        let mut d = sys();
        // A big batch warms the scratch; a following small batch must not
        // see stale entries (wrong stats/completions would betray leakage).
        d.schedule_batch(&shuffled_batch(256));
        let before = d.stats().requests;
        let done = d.schedule_batch(&shuffled_batch(3));
        assert_eq!(done.len(), 3);
        assert_eq!(d.stats().requests - before, 3);
    }
}
