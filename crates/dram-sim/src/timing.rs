//! DRAM timing parameters.

use serde::{Deserialize, Serialize};

/// DDR timing constraints, in DRAM clock cycles.
///
/// Defaults model DDR3-1600 (800 MHz bus, 11-11-11-28), matching the paper's
/// Table I DRAM clock. Only the constraints that matter at transaction
/// granularity are modelled; sub-command effects (tFAW, tRRD across a burst
/// of activates) are folded into the per-bank activate spacing.
///
/// # Examples
///
/// ```
/// use iroram_dram::DramTimings;
/// let t = DramTimings::ddr3_1600();
/// assert_eq!(t.cl, 11);
/// assert!(t.row_cycle() >= t.t_ras + t.t_rp);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramTimings {
    /// CAS (read) latency: column command to first data beat.
    pub cl: u64,
    /// CAS write latency: column-write command to first data beat.
    pub cwl: u64,
    /// Activate to column command.
    pub t_rcd: u64,
    /// Precharge duration.
    pub t_rp: u64,
    /// Activate to precharge (row must stay open at least this long).
    pub t_ras: u64,
    /// Data burst duration on the bus (BL8 at DDR = 4 bus cycles).
    pub t_burst: u64,
    /// Column-to-column command spacing within a bank group.
    pub t_ccd: u64,
    /// Write recovery: last write data beat to precharge of same bank.
    pub t_wr: u64,
    /// Write-to-read turnaround on the same rank.
    pub t_wtr: u64,
    /// Activate-to-activate spacing between different banks (tRRD).
    pub t_rrd: u64,
}

impl DramTimings {
    /// DDR3-1600 11-11-11-28 timings.
    pub fn ddr3_1600() -> Self {
        DramTimings {
            cl: 11,
            cwl: 8,
            t_rcd: 11,
            t_rp: 11,
            t_ras: 28,
            t_burst: 4,
            t_ccd: 4,
            t_wr: 12,
            t_wtr: 6,
            t_rrd: 5,
        }
    }

    /// Row cycle time tRC = tRAS + tRP: minimum spacing between activates to
    /// the same bank.
    pub fn row_cycle(&self) -> u64 {
        self.t_ras + self.t_rp
    }

    /// Latency of an isolated row-hit read (command to last data beat).
    pub fn hit_read_latency(&self) -> u64 {
        self.cl + self.t_burst
    }

    /// Latency of an isolated row-miss read (precharge + activate + read).
    pub fn miss_read_latency(&self) -> u64 {
        self.t_rp + self.t_rcd + self.cl + self.t_burst
    }
}

impl Default for DramTimings {
    fn default() -> Self {
        DramTimings::ddr3_1600()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr3_sanity() {
        let t = DramTimings::ddr3_1600();
        assert_eq!(t.row_cycle(), 39);
        assert_eq!(t.hit_read_latency(), 15);
        assert_eq!(t.miss_read_latency(), 37);
        assert!(t.cwl < t.cl);
    }

    #[test]
    fn default_is_ddr3() {
        assert_eq!(DramTimings::default(), DramTimings::ddr3_1600());
    }
}
