//! The ORAM subtree data layout (Ren et al. \[25\]).
//!
//! Laying out the ORAM tree node-by-node in level order scatters a path's
//! buckets across DRAM rows, so every level costs a row activation. The
//! subtree layout instead packs each `g`-level subtree contiguously: a path
//! then touches one subtree per `g` levels, and within a subtree all of its
//! blocks share one (or a few) DRAM rows. The paper's baseline "adopts the
//! subtree layout to improve row buffer hits" (Section VI), so ours does too.
//!
//! The layout supports **per-level bucket sizes** (`Z` values), which is what
//! IR-Alloc changes; shrinking `Z` at middle levels shrinks those subtrees
//! and the address space accordingly.

use serde::{Deserialize, Serialize};

/// Maps ORAM tree coordinates (level, bucket, slot) to flat cache-line
/// addresses using the subtree layout.
///
/// # Examples
///
/// ```
/// use iroram_dram::SubtreeLayout;
/// // A 4-level tree with uniform Z=4, grouped 2 levels per subtree.
/// let layout = SubtreeLayout::new(&[4, 4, 4, 4], 2);
/// assert_eq!(layout.total_lines(), 4 * (1 + 2 + 4 + 8));
/// let path = layout.path_slots(0b101, 0);
/// assert_eq!(path.len(), 4 * 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubtreeLayout {
    z_per_level: Vec<u32>,
    group_height: u32,
    /// For each level: base address of its group's subtree region.
    group_base: Vec<u64>,
    /// For each level: size in lines of one subtree of its group.
    subtree_size: Vec<u64>,
    /// For each level: offset of this level's first slot inside a subtree.
    level_offset: Vec<u64>,
    /// For each level: `level - group_start_level`.
    depth_in_group: Vec<u32>,
    total_lines: u64,
}

impl SubtreeLayout {
    /// Creates a layout for a tree whose level `l` buckets hold
    /// `z_per_level[l]` blocks, grouping `group_height` levels per subtree.
    ///
    /// Levels with `Z = 0` (e.g. a tree top that lives entirely on-chip under
    /// IR-Alloc) occupy no memory; addressing them panics.
    ///
    /// # Panics
    ///
    /// Panics if `z_per_level` is empty or `group_height == 0`.
    pub fn new(z_per_level: &[u32], group_height: u32) -> Self {
        assert!(!z_per_level.is_empty(), "tree must have at least one level");
        assert!(group_height > 0, "group height must be nonzero");
        let levels = z_per_level.len();
        let g = group_height as usize;
        let mut group_base = vec![0u64; levels];
        let mut subtree_size = vec![0u64; levels];
        let mut level_offset = vec![0u64; levels];
        let mut depth_in_group = vec![0u32; levels];
        let mut base = 0u64;
        let mut s = 0usize;
        while s < levels {
            let end = (s + g).min(levels);
            // Size of one subtree rooted at level s.
            let mut size = 0u64;
            for l in s..end {
                level_offset[l] = size;
                depth_in_group[l] = (l - s) as u32;
                size += (1u64 << (l - s)) * z_per_level[l] as u64;
            }
            for l in s..end {
                group_base[l] = base;
                subtree_size[l] = size;
            }
            base += size * (1u64 << s);
            s = end;
        }
        SubtreeLayout {
            z_per_level: z_per_level.to_vec(),
            group_height,
            group_base,
            subtree_size,
            level_offset,
            depth_in_group,
            total_lines: base,
        }
    }

    /// Number of tree levels.
    pub fn levels(&self) -> usize {
        self.z_per_level.len()
    }

    /// The `Z` value (bucket slot count) of `level`.
    pub fn z_of(&self, level: usize) -> u32 {
        self.z_per_level[level]
    }

    /// Total memory footprint in cache lines.
    pub fn total_lines(&self) -> u64 {
        self.total_lines
    }

    /// Line address of `slot` of bucket `bucket` (index within its level) at
    /// `level`.
    ///
    /// # Panics
    ///
    /// Panics if coordinates are out of range or the level has `Z = 0`.
    pub fn slot_addr(&self, level: usize, bucket: u64, slot: u32) -> u64 {
        let z = self.z_per_level[level];
        assert!(z > 0, "level {level} is not memory-backed (Z=0)");
        assert!(slot < z, "slot {slot} out of range for Z={z}");
        assert!(
            bucket < (1u64 << level),
            "bucket {bucket} out of range at level {level}"
        );
        let d = self.depth_in_group[level];
        let root_idx = bucket >> d;
        let within = bucket & ((1u64 << d) - 1);
        self.group_base[level]
            + root_idx * self.subtree_size[level]
            + self.level_offset[level]
            + within * z as u64
            + slot as u64
    }

    /// Bucket index at `level` on the path to `leaf` (a value in
    /// `[0, 2^(levels-1))`).
    #[inline]
    pub fn path_bucket(&self, leaf: u64, level: usize) -> u64 {
        leaf >> (self.levels() - 1 - level)
    }

    /// All slot addresses on the path to `leaf`, for levels in
    /// `[from_level, levels)`, skipping levels with `Z = 0`.
    ///
    /// The `from_level` parameter models a tree-top cache: cached levels
    /// produce no memory traffic.
    pub fn path_slots(&self, leaf: u64, from_level: usize) -> Vec<u64> {
        let mut out = Vec::new();
        for level in from_level..self.levels() {
            let z = self.z_per_level[level];
            if z == 0 {
                continue;
            }
            let bucket = self.path_bucket(leaf, level);
            let base = self.slot_addr(level, bucket, 0);
            out.extend(base..base + z as u64);
        }
        out
    }

    /// Number of blocks a path access touches in memory from `from_level`
    /// down (the paper's "PL" metric, e.g. 43 for IR-Alloc1).
    pub fn path_len(&self, from_level: usize) -> u64 {
        self.z_per_level[from_level.min(self.levels())..]
            .iter()
            .map(|&z| z as u64)
            .sum()
    }

    /// Precomputes the path→line-address fill table for paths addressed
    /// from `from_level` down.
    ///
    /// The subtree layout is fixed at construction, so everything about a
    /// path's addresses except the leaf is static: per memory-backed level,
    /// the leaf→bucket shift, the bucket→subtree split, and the combined
    /// base offset. [`PathTable::fill_reads`] then generates a whole path's
    /// requests with two shifts, a mask and two multiplies per level — no
    /// asserts, no allocation.
    pub fn path_table(&self, from_level: usize) -> PathTable {
        let mut rows = Vec::new();
        let mut path_len = 0usize;
        for level in from_level..self.levels() {
            let z = self.z_per_level[level];
            if z == 0 {
                continue;
            }
            rows.push(PathRow {
                shift: (self.levels() - 1 - level) as u32,
                depth: self.depth_in_group[level],
                base: self.group_base[level] + self.level_offset[level],
                subtree_size: self.subtree_size[level],
                z,
            });
            path_len += z as usize;
        }
        PathTable { rows, path_len }
    }
}

/// Per-level precomputed constants for one memory-backed level of a
/// [`PathTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct PathRow {
    /// `levels - 1 - level`: shifts a leaf down to this level's bucket.
    shift: u32,
    /// Depth of the level inside its subtree group.
    depth: u32,
    /// `group_base + level_offset`, folded into one constant.
    base: u64,
    /// Lines per subtree of this level's group.
    subtree_size: u64,
    /// Bucket slot count at this level.
    z: u32,
}

/// A precomputed path→line-address table (see
/// [`SubtreeLayout::path_table`]): turns per-access address arithmetic into
/// a table fill over reused buffers. Produces exactly the addresses of
/// [`SubtreeLayout::path_slots`], in the same order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathTable {
    rows: Vec<PathRow>,
    path_len: usize,
}

impl PathTable {
    /// Number of lines one path access touches (the paper's "PL").
    pub fn path_len(&self) -> usize {
        self.path_len
    }

    /// True when the paths to `leaf_a` and `leaf_b` touch at least one
    /// common **memory-backed** bucket — the bucket-sharing condition a
    /// k-deep access pipeline must treat as a conflict (two overlapped
    /// accesses to a shared bucket would race on its slots).
    ///
    /// Sharing at any memory level implies sharing at the shallowest one
    /// (paths that diverge never re-converge), so a single shift compare at
    /// the first memory-backed row decides it. Levels above `from_level` or
    /// with `Z = 0` live on-chip and cannot conflict; a fully on-chip table
    /// reports no conflicts.
    pub fn paths_share_memory_bucket(&self, leaf_a: u64, leaf_b: u64) -> bool {
        match self.rows.first() {
            Some(top) => (leaf_a >> top.shift) == (leaf_b >> top.shift),
            None => false,
        }
    }

    /// Clears `out` and fills it with one read request per line on the
    /// path to `leaf`, all arriving at `arrival`, each address displaced by
    /// `offset` (ρ's small tree lives after the main tree's region).
    pub fn fill_reads(
        &self,
        leaf: u64,
        offset: u64,
        arrival: iroram_sim_engine::Cycle,
        out: &mut Vec<crate::MemRequest>,
    ) {
        out.clear();
        out.reserve(self.path_len);
        for r in &self.rows {
            let bucket = leaf >> r.shift;
            let root = bucket >> r.depth;
            let within = bucket & ((1u64 << r.depth) - 1);
            let base = offset + r.base + root * r.subtree_size + within * r.z as u64;
            for addr in base..base + r.z as u64 {
                out.push(crate::MemRequest::read(addr, arrival));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn uniform_tree_total() {
        let l = SubtreeLayout::new(&[4; 5], 3);
        assert_eq!(l.total_lines(), 4 * 31);
    }

    #[test]
    fn addresses_are_unique_and_dense() {
        let layout = SubtreeLayout::new(&[4, 4, 2, 2, 3, 4], 2);
        let mut seen = HashSet::new();
        for level in 0..layout.levels() {
            for bucket in 0..(1u64 << level) {
                for slot in 0..layout.z_of(level) {
                    let a = layout.slot_addr(level, bucket, slot);
                    assert!(a < layout.total_lines());
                    assert!(seen.insert(a), "duplicate address {a}");
                }
            }
        }
        assert_eq!(seen.len() as u64, layout.total_lines());
    }

    #[test]
    fn path_bucket_heap_walk() {
        let layout = SubtreeLayout::new(&[4; 4], 2);
        // leaf index 0b101 = 5 of 8.
        assert_eq!(layout.path_bucket(5, 0), 0);
        assert_eq!(layout.path_bucket(5, 1), 1);
        assert_eq!(layout.path_bucket(5, 2), 2);
        assert_eq!(layout.path_bucket(5, 3), 5);
    }

    #[test]
    fn path_slots_skip_cached_and_zero_levels() {
        let layout = SubtreeLayout::new(&[0, 0, 2, 4], 2);
        let p = layout.path_slots(3, 0);
        assert_eq!(p.len(), 6);
        let p2 = layout.path_slots(3, 3);
        assert_eq!(p2.len(), 4);
        assert_eq!(layout.path_len(0), 6);
        assert_eq!(layout.path_len(2), 6);
        assert_eq!(layout.path_len(3), 4);
    }

    #[test]
    fn paper_pl_arithmetic() {
        // Paper Section IV-B: Z=0 for [0,9], Z=2 for [10,16], Z=3 for
        // [17,19], Z=4 for [20,24] gives PL=43.
        let mut z = vec![0u32; 25];
        z[10..=16].fill(2);
        z[17..=19].fill(3);
        z[20..=24].fill(4);
        let layout = SubtreeLayout::new(&z, 4);
        assert_eq!(layout.path_len(0), 43);
        // Baseline with 10-level top cache: 15 × 4 = 60.
        let base = SubtreeLayout::new(&[4u32; 25], 4);
        assert_eq!(base.path_len(10), 60);
        assert_eq!(base.path_len(0), 100);
    }

    #[test]
    fn subtree_is_contiguous() {
        // With group height 3 and uniform Z, the slots of one subtree
        // (root level 3 tree of depth 3) must be contiguous.
        let layout = SubtreeLayout::new(&[4; 6], 3);
        // Group for levels 3..6; subtree of root bucket 2 at level 3.
        let mut addrs = Vec::new();
        for level in 3..6 {
            let first = 2u64 << (level - 3);
            let count = 1u64 << (level - 3);
            for b in first..first + count {
                for s in 0..4 {
                    addrs.push(layout.slot_addr(level, b, s));
                }
            }
        }
        addrs.sort_unstable();
        let lo = addrs[0];
        let expect: Vec<u64> = (lo..lo + addrs.len() as u64).collect();
        assert_eq!(addrs, expect, "subtree not contiguous");
    }

    #[test]
    fn path_visits_one_subtree_per_group() {
        // A path within one group touches exactly one subtree, so its
        // addresses within the group span at most subtree_size lines.
        let layout = SubtreeLayout::new(&[4; 9], 3);
        let leaf = 0b1011_0110 & 0xff;
        for group_start in [0usize, 3, 6] {
            let mut addrs = Vec::new();
            for level in group_start..group_start + 3 {
                let b = layout.path_bucket(leaf, level);
                for s in 0..4 {
                    addrs.push(layout.slot_addr(level, b, s));
                }
            }
            let span = addrs.iter().max().unwrap() - addrs.iter().min().unwrap();
            assert!(
                span < 4 * 7,
                "group at {group_start} spans {span} lines (> one subtree)"
            );
        }
    }

    #[test]
    #[should_panic(expected = "not memory-backed")]
    fn zero_level_addressing_panics() {
        let layout = SubtreeLayout::new(&[0, 4], 2);
        let _ = layout.slot_addr(0, 0, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bucket_bounds_checked() {
        let layout = SubtreeLayout::new(&[4, 4], 2);
        let _ = layout.slot_addr(1, 2, 0);
    }

    #[test]
    fn path_table_matches_path_slots() {
        use iroram_sim_engine::Cycle;
        let shapes: [(&[u32], u32, usize); 4] = [
            (&[4, 4, 4, 4, 4, 4], 2, 0),
            (&[0, 0, 2, 4, 4], 2, 0),
            (&[4, 4, 2, 2, 3, 4], 3, 2),
            (&[4; 9], 4, 0),
        ];
        let mut out = Vec::new();
        for (z, g, from) in shapes {
            let layout = SubtreeLayout::new(z, g);
            let table = layout.path_table(from);
            assert_eq!(table.path_len() as u64, layout.path_len(from));
            for leaf in 0..(1u64 << (layout.levels() - 1)) {
                table.fill_reads(leaf, 0, Cycle(7), &mut out);
                let expect = layout.path_slots(leaf, from);
                let got: Vec<u64> = out.iter().map(|r| r.line_addr).collect();
                assert_eq!(got, expect, "leaf {leaf} of {z:?} group {g} from {from}");
                assert!(out.iter().all(|r| !r.is_write && r.arrival == Cycle(7)));
            }
        }
    }

    #[test]
    fn bucket_sharing_matches_address_intersection() {
        // The shift-compare fast path must agree with literally
        // intersecting the two paths' address sets, for every leaf pair.
        let shapes: [(&[u32], u32, usize); 3] = [
            (&[4, 4, 4, 4, 4], 2, 0),
            (&[0, 0, 2, 4, 4], 2, 0),
            (&[4; 6], 3, 2),
        ];
        for (z, g, from) in shapes {
            let layout = SubtreeLayout::new(z, g);
            let table = layout.path_table(from);
            let leaves = 1u64 << (layout.levels() - 1);
            for a in 0..leaves {
                let sa: HashSet<u64> = layout.path_slots(a, from).into_iter().collect();
                for b in 0..leaves {
                    let sb: HashSet<u64> = layout.path_slots(b, from).into_iter().collect();
                    let expect = !sa.is_disjoint(&sb);
                    assert_eq!(
                        table.paths_share_memory_bucket(a, b),
                        expect,
                        "leaves {a},{b} of {z:?} from {from}"
                    );
                }
            }
        }
    }

    #[test]
    fn fully_cached_table_never_conflicts() {
        let layout = SubtreeLayout::new(&[4, 4, 4], 2);
        let table = layout.path_table(3);
        assert!(!table.paths_share_memory_bucket(0, 0));
    }

    #[test]
    fn path_table_offset_displaces_all_addresses() {
        use iroram_sim_engine::Cycle;
        let layout = SubtreeLayout::new(&[4; 5], 2);
        let table = layout.path_table(0);
        let (mut plain, mut displaced) = (Vec::new(), Vec::new());
        table.fill_reads(9, 0, Cycle(0), &mut plain);
        table.fill_reads(9, 1000, Cycle(0), &mut displaced);
        let shifted: Vec<u64> = plain.iter().map(|r| r.line_addr + 1000).collect();
        let got: Vec<u64> = displaced.iter().map(|r| r.line_addr).collect();
        assert_eq!(got, shifted);
    }
}
