//! Per-bank row-buffer state machine.

use iroram_sim_engine::{Cycle, SnapError, SnapReader, SnapWriter};
use serde::{Deserialize, Serialize};

use crate::DramTimings;

/// The row-buffer and timing state of one DRAM bank.
///
/// The bank tracks which row is open and the earliest cycles at which the
/// next activate or column command may issue. [`BankState::access`] applies
/// one read or write to the bank, returning the cycle at which the request's
/// data transfer may begin (before bus arbitration) and whether it was a row
/// hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankState {
    open_row: Option<u64>,
    /// Earliest cycle the next activate may issue (tRC / tRP chains).
    next_act: Cycle,
    /// Earliest cycle the next column command may issue.
    next_cas: Cycle,
    /// Earliest cycle a precharge may issue (tRAS / tWR chains).
    next_pre: Cycle,
}

/// Outcome of timing one access against a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankAccess {
    /// Cycle the column command issues.
    pub cas_issue: Cycle,
    /// Whether the access hit the open row.
    pub row_hit: bool,
    /// Whether the bank had no open row (first touch / after refresh model).
    pub row_empty: bool,
}

impl BankState {
    /// A bank with no open row and no timing debts.
    pub fn new() -> Self {
        BankState {
            open_row: None,
            next_act: Cycle::ZERO,
            next_cas: Cycle::ZERO,
            next_pre: Cycle::ZERO,
        }
    }

    /// The currently open row, if any.
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// Returns whether an access to `row` at this point would be a row hit.
    pub fn would_hit(&self, row: u64) -> bool {
        self.open_row == Some(row)
    }

    /// Times one access to `row` arriving at `at`, updating bank state.
    ///
    /// Returns when the CAS command issues; the caller adds CL/CWL and burst
    /// time and arbitrates the data bus.
    pub fn access(&mut self, row: u64, is_write: bool, at: Cycle, t: &DramTimings) -> BankAccess {
        let (row_hit, row_empty, cas_ready) = match self.open_row {
            Some(open) if open == row => (true, false, self.next_cas.max(at)),
            Some(_) => {
                // Conflict: precharge then activate then CAS.
                let pre_issue = self.next_pre.max(at);
                let act_issue = (pre_issue + t.t_rp).max(self.next_act);
                self.open_row = Some(row);
                self.next_act = act_issue + t.row_cycle();
                self.next_pre = act_issue + t.t_ras;
                (false, false, act_issue + t.t_rcd)
            }
            None => {
                // Empty: just activate.
                let act_issue = self.next_act.max(at);
                self.open_row = Some(row);
                self.next_act = act_issue + t.row_cycle();
                self.next_pre = act_issue + t.t_ras;
                (false, true, act_issue + t.t_rcd)
            }
        };
        let cas_issue = cas_ready.max(self.next_cas);
        self.next_cas = cas_issue + t.t_ccd;
        if is_write {
            // Write recovery delays a future precharge of this bank.
            let write_done = cas_issue + t.cwl + t.t_burst;
            self.next_pre = self.next_pre.max(write_done + t.t_wr);
            // And write-to-read turnaround delays the next CAS slightly.
            self.next_cas = self.next_cas.max(write_done + t.t_wtr);
        }
        BankAccess {
            cas_issue,
            row_hit,
            row_empty,
        }
    }

    /// Serializes the open row and timing debts for a checkpoint.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_opt_u64(self.open_row);
        w.put_u64(self.next_act.raw());
        w.put_u64(self.next_cas.raw());
        w.put_u64(self.next_pre.raw());
    }

    /// Restores the state captured by [`BankState::save_state`].
    ///
    /// # Errors
    ///
    /// Any [`SnapError`] on a truncated or corrupt payload.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.open_row = r.take_opt_u64()?;
        self.next_act = Cycle(r.take_u64()?);
        self.next_cas = Cycle(r.take_u64()?);
        self.next_pre = Cycle(r.take_u64()?);
        Ok(())
    }

    /// Models a refresh-like event: closes the row.
    pub fn close_row(&mut self, at: Cycle, t: &DramTimings) {
        if self.open_row.take().is_some() {
            let pre_issue = self.next_pre.max(at);
            self.next_act = self.next_act.max(pre_issue + t.t_rp);
        }
    }
}

impl Default for BankState {
    fn default() -> Self {
        BankState::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> DramTimings {
        DramTimings::ddr3_1600()
    }

    #[test]
    fn empty_bank_first_access_activates() {
        let mut b = BankState::new();
        let a = b.access(7, false, Cycle(100), &t());
        assert!(!a.row_hit);
        assert!(a.row_empty);
        assert_eq!(a.cas_issue, Cycle(100 + 11)); // tRCD after activate
        assert_eq!(b.open_row(), Some(7));
    }

    #[test]
    fn row_hit_is_fast() {
        let mut b = BankState::new();
        let first = b.access(7, false, Cycle(0), &t());
        let second = b.access(7, false, first.cas_issue + 10, &t());
        assert!(second.row_hit);
        // Only CAS spacing applies.
        assert_eq!(second.cas_issue, first.cas_issue + 10);
    }

    #[test]
    fn row_conflict_pays_precharge_activate() {
        let mut b = BankState::new();
        let first = b.access(7, false, Cycle(0), &t());
        let conflict = b.access(9, false, first.cas_issue, &t());
        assert!(!conflict.row_hit && !conflict.row_empty);
        // At least tRAS must elapse from activate before precharge, then
        // tRP + tRCD before the new CAS.
        assert!(conflict.cas_issue.raw() >= t().t_ras + t().t_rp + t().t_rcd);
        assert_eq!(b.open_row(), Some(9));
    }

    #[test]
    fn back_to_back_hits_respect_ccd() {
        let mut b = BankState::new();
        let a0 = b.access(1, false, Cycle(0), &t());
        let a1 = b.access(1, false, Cycle(0), &t());
        assert_eq!(a1.cas_issue, a0.cas_issue + t().t_ccd);
    }

    #[test]
    fn write_recovery_delays_conflict() {
        let tm = t();
        let mut read_bank = BankState::new();
        let mut write_bank = BankState::new();
        read_bank.access(1, false, Cycle(0), &tm);
        write_bank.access(1, true, Cycle(0), &tm);
        let after_read = read_bank.access(2, false, Cycle(0), &tm);
        let after_write = write_bank.access(2, false, Cycle(0), &tm);
        assert!(
            after_write.cas_issue > after_read.cas_issue,
            "write recovery should delay the following row conflict"
        );
    }

    #[test]
    fn save_restore_round_trips_timing_debts() {
        let tm = t();
        let mut b = BankState::new();
        b.access(7, true, Cycle(10), &tm);
        b.access(9, false, Cycle(20), &tm);
        let mut w = SnapWriter::new();
        b.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut fresh = BankState::new();
        let mut r = SnapReader::new(&bytes);
        fresh.restore_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(fresh, b);
        assert_eq!(fresh.access(9, false, Cycle(30), &tm), b.access(9, false, Cycle(30), &tm));
    }

    #[test]
    fn close_row_forces_empty_activate() {
        let tm = t();
        let mut b = BankState::new();
        b.access(3, false, Cycle(0), &tm);
        b.close_row(Cycle(100), &tm);
        assert_eq!(b.open_row(), None);
        let a = b.access(3, false, Cycle(200), &tm);
        assert!(!a.row_hit && a.row_empty);
    }
}
