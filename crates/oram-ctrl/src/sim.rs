//! Full-system simulation driver and reports.

use std::path::PathBuf;

use serde::{Deserialize, Serialize};

use iroram_cache::{AccessOutcome, HierarchyStats, MemoryHierarchy};
use iroram_dram::DramStats;
use iroram_protocol::{BlockAddr, IntegrityStats, ProtocolStats};
use iroram_sim_engine::{
    checkpoint, profiler, Cycle, FaultPlan, SnapError, SnapReader, SnapWriter,
};
use iroram_trace::{Bench, WorkloadGen};

use crate::audit::AuditReport;
use crate::controller::StashPressure;
use crate::cpu::IssueCheck;
use crate::dwb::DwbStats;
use crate::{
    OramRequest, RhoController, Scheme, SimError, SlotStats, SystemConfig, TimedController,
    TraceCpu,
};

/// Demand-queue depth at which the core stalls (miss-queue back-pressure).
const MAX_QUEUE: usize = 16;

/// Where a run checkpoints and which configuration the snapshot belongs to.
///
/// The fingerprint is stamped into every snapshot header and checked on
/// restore, so a snapshot written for one cell can never resume another:
/// a mismatch is a typed [`SnapError::ConfigMismatch`], not silent
/// divergence.
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    /// Snapshot file (written atomically: temp sibling + rename).
    pub path: PathBuf,
    /// Configuration fingerprint (the experiment journal's cell key).
    pub fingerprint: u64,
}

/// How long to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunLimit {
    /// Memory operations to replay from the workload.
    pub mem_ops: u64,
}

impl RunLimit {
    /// Run for `n` memory operations.
    pub fn mem_ops(n: u64) -> Self {
        RunLimit { mem_ops: n }
    }
}

/// The scheme-appropriate timed backend.
#[derive(Debug)]
pub enum Backend {
    /// Single-tree controller (everything except ρ).
    Single(Box<TimedController>),
    /// The dual-tree ρ controller (boxed: it embeds two full protocol
    /// instances and dwarfs the single-tree variant).
    Rho(Box<RhoController>),
}

macro_rules! delegate {
    ($self:ident, $b:ident => $e:expr) => {
        match $self {
            Backend::Single($b) => $e,
            Backend::Rho($b) => $e,
        }
    };
}

impl Backend {
    /// Builds the backend for `cfg`.
    pub fn new(cfg: &SystemConfig) -> Self {
        if cfg.scheme.uses_rho() {
            Backend::Rho(Box::new(RhoController::new(cfg)))
        } else {
            Backend::Single(Box::new(TimedController::new(cfg)))
        }
    }

    fn front_try(&mut self, addr: BlockAddr, now: Cycle) -> Option<Cycle> {
        delegate!(self, b => b.front_try(addr, now))
    }

    fn submit(&mut self, req: OramRequest) {
        delegate!(self, b => b.submit(req))
    }

    fn on_llc_eviction(&mut self, addr: BlockAddr, dirty: bool, now: Cycle, id: u64) {
        delegate!(self, b => b.on_llc_eviction(addr, dirty, now, id))
    }

    fn take_completions(&mut self) -> Vec<(u64, Cycle)> {
        delegate!(self, b => b.take_completions())
    }

    fn advance_until(&mut self, now: Cycle, h: &mut MemoryHierarchy) -> Result<(), SimError> {
        delegate!(self, b => b.advance_until(now, h))
    }

    fn advance_until_complete(
        &mut self,
        id: u64,
        h: &mut MemoryHierarchy,
    ) -> Result<Cycle, SimError> {
        delegate!(self, b => b.advance_until_complete(id, h))
    }

    fn advance_until_queue_below(
        &mut self,
        limit: usize,
        h: &mut MemoryHierarchy,
    ) -> Result<Cycle, SimError> {
        delegate!(self, b => b.advance_until_queue_below(limit, h))
    }

    fn drain(&mut self, h: &mut MemoryHierarchy) -> Result<Cycle, SimError> {
        delegate!(self, b => b.drain(h))
    }

    fn integrity_stats(&self) -> IntegrityStats {
        delegate!(self, b => b.integrity_stats())
    }

    fn fault_injected(&self) -> iroram_sim_engine::InjectedFaults {
        delegate!(self, b => b.fault_injected())
    }

    fn refetch_penalty_cycles(&self) -> u64 {
        delegate!(self, b => b.refetch_penalty_cycles())
    }

    fn stash_pressure(&self) -> StashPressure {
        delegate!(self, b => b.stash_pressure())
    }

    fn queue_len(&self) -> usize {
        delegate!(self, b => b.queue_len())
    }

    fn slot_stats(&self) -> SlotStats {
        delegate!(self, b => *b.slot_stats())
    }

    fn dram_stats(&self) -> DramStats {
        delegate!(self, b => *b.dram_stats())
    }

    fn protocol_stats(&self) -> (ProtocolStats, Option<ProtocolStats>) {
        match self {
            Backend::Single(b) => (b.protocol.stats().clone(), None),
            Backend::Rho(b) => (b.main.stats().clone(), Some(b.small.stats().clone())),
        }
    }

    fn dwb_stats(&self) -> Option<DwbStats> {
        match self {
            Backend::Single(b) => b.dwb_stats(),
            Backend::Rho(_) => None,
        }
    }

    /// Runs the end-of-run audit sweep (no-op when auditing is off).
    fn final_audit(&mut self, h: &MemoryHierarchy) {
        delegate!(self, b => b.final_audit(h))
    }

    /// The audit results (None unless the config enabled auditing).
    pub fn audit_report(&self) -> Option<AuditReport> {
        delegate!(self, b => b.audit_report())
    }

    /// Per-level `(used, capacity)` of the (main) tree.
    pub fn utilization(&self) -> Vec<(u64, u64)> {
        match self {
            Backend::Single(b) => b.protocol.utilization_per_level(),
            Backend::Rho(b) => b.main.utilization_per_level(),
        }
    }

    /// Path slots processed so far (the checkpoint cadence counter).
    pub fn slots_done(&self) -> u64 {
        delegate!(self, b => b.slots_done())
    }

    /// Serializes the backend (variant tag + controller state).
    pub fn save_state(&self, w: &mut SnapWriter) {
        match self {
            Backend::Single(b) => {
                w.put_u8(0);
                b.save_state(w);
            }
            Backend::Rho(b) => {
                w.put_u8(1);
                b.save_state(w);
            }
        }
    }

    /// Restores state written by [`Backend::save_state`] into a freshly
    /// built backend for the same configuration.
    ///
    /// # Errors
    ///
    /// [`SnapError`] when the payload is malformed or was written by the
    /// other backend variant.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        match (r.take_u8()?, self) {
            (0, Backend::Single(b)) => b.restore_state(r),
            (1, Backend::Rho(b)) => b.restore_state(r),
            _ => Err(SnapError::Corrupt("backend variant mismatch")),
        }
    }
}

/// Fault-injection and integrity accounting for one run. All-zero when no
/// fault plan was active and the memory image stayed clean.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// DRAM line corruptions injected by the fault plan.
    pub injected_corruptions: u64,
    /// Corruptions the integrity layer detected on a path read.
    pub detected: u64,
    /// Detected corruptions repaired by the modelled re-fetch.
    pub recovered: u64,
    /// Corruptions consumed by the protocol without detection.
    pub undetected: u64,
    /// Transient bank stalls injected.
    pub bank_stalls: u64,
    /// Total DRAM cycles added by bank stalls.
    pub stall_cycles: u64,
    /// Stash-pressure storms (bg-eviction suppression windows) started.
    pub storms: u64,
    /// Trace records the fault plan mangled.
    pub mangled_records: u64,
    /// Malformed trace records rejected by input validation.
    pub rejected_records: u64,
    /// CPU cycles of re-fetch penalty charged for detected corruption.
    pub refetch_penalty_cycles: u64,
}

/// Results of one full-system run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Scheme simulated.
    pub scheme: Scheme,
    /// Workload name.
    pub workload: String,
    /// Execution time in CPU cycles (trace issue + memory drain).
    pub cycles: u64,
    /// Instructions represented by the replayed trace window.
    pub instructions: u64,
    /// Memory operations replayed.
    pub mem_ops: u64,
    /// Protocol statistics (main tree for ρ).
    pub protocol: ProtocolStats,
    /// Small-tree protocol statistics (ρ only).
    pub protocol_small: Option<ProtocolStats>,
    /// Slot accounting.
    pub slots: SlotStats,
    /// DRAM statistics.
    pub dram: DramStats,
    /// Cache-hierarchy statistics.
    pub hierarchy: HierarchyStats,
    /// IR-DWB statistics, when the engine ran.
    pub dwb: Option<DwbStats>,
    /// Fault-injection and integrity accounting (all-zero when clean).
    #[serde(default)]
    pub faults: FaultStats,
    /// Stash pressure observed over the run.
    #[serde(default)]
    pub stash: StashPressure,
}

impl SimReport {
    /// Instructions per cycle achieved.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Measured read MPKI (LLC read misses per kilo-instruction).
    pub fn read_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.hierarchy.read_misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Measured write MPKI.
    pub fn write_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.hierarchy.write_misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Speedup of `self` relative to `base` (>1 means faster).
    pub fn speedup_over(&self, base: &SimReport) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            base.cycles as f64 / self.cycles as f64
        }
    }

    /// Total PosMap path accesses (main + small trees).
    pub fn posmap_paths(&self) -> u64 {
        self.protocol.posmap_paths()
            + self
                .protocol_small
                .as_ref()
                .map_or(0, ProtocolStats::posmap_paths)
    }

    /// Total paths of all types.
    pub fn total_paths(&self) -> u64 {
        self.protocol.total_paths()
            + self
                .protocol_small
                .as_ref()
                .map_or(0, ProtocolStats::total_paths)
    }
}

/// The full-system simulation entry points.
#[derive(Debug)]
pub struct Simulation;

impl Simulation {
    /// Runs `bench`'s calibrated workload on `cfg`.
    ///
    /// # Panics
    ///
    /// Panics on [`SimError`]; use [`Simulation::try_run_bench`] to handle
    /// failures.
    pub fn run_bench(cfg: &SystemConfig, bench: Bench, limit: RunLimit) -> SimReport {
        Self::try_run_bench(cfg, bench, limit)
            .unwrap_or_else(|e| panic!("simulation failed: {e}"))
    }

    /// Fallible form of [`Simulation::run_bench`].
    pub fn try_run_bench(
        cfg: &SystemConfig,
        bench: Bench,
        limit: RunLimit,
    ) -> Result<SimReport, SimError> {
        let gen = WorkloadGen::for_bench(bench, cfg.data_blocks(), cfg.seed);
        Ok(Self::try_run_audited(cfg, gen, limit, bench.name())?.0)
    }

    /// Like [`Simulation::run_bench`], also returning the audit results
    /// (Some iff `cfg.audit`).
    ///
    /// # Panics
    ///
    /// Panics on [`SimError`]; use [`Simulation::try_run_bench_audited`].
    pub fn run_bench_audited(
        cfg: &SystemConfig,
        bench: Bench,
        limit: RunLimit,
    ) -> (SimReport, Option<AuditReport>) {
        Self::try_run_bench_audited(cfg, bench, limit)
            .unwrap_or_else(|e| panic!("simulation failed: {e}"))
    }

    /// Fallible form of [`Simulation::run_bench_audited`].
    pub fn try_run_bench_audited(
        cfg: &SystemConfig,
        bench: Bench,
        limit: RunLimit,
    ) -> Result<(SimReport, Option<AuditReport>), SimError> {
        let gen = WorkloadGen::for_bench(bench, cfg.data_blocks(), cfg.seed);
        Self::try_run_audited(cfg, gen, limit, bench.name())
    }

    /// Runs an arbitrary workload generator on `cfg`.
    ///
    /// # Panics
    ///
    /// Panics on [`SimError`].
    pub fn run(
        cfg: &SystemConfig,
        gen: WorkloadGen,
        limit: RunLimit,
        workload: &str,
    ) -> SimReport {
        Self::try_run_audited(cfg, gen, limit, workload)
            .unwrap_or_else(|e| panic!("simulation failed: {e}"))
            .0
    }

    /// Like [`Simulation::run`], also returning the audit results (Some iff
    /// `cfg.audit`). Auditing observes only: the [`SimReport`] is identical
    /// with the flag on or off.
    ///
    /// # Panics
    ///
    /// Panics on [`SimError`]; use [`Simulation::try_run_audited`].
    pub fn run_audited(
        cfg: &SystemConfig,
        gen: WorkloadGen,
        limit: RunLimit,
        workload: &str,
    ) -> (SimReport, Option<AuditReport>) {
        Self::try_run_audited(cfg, gen, limit, workload)
            .unwrap_or_else(|e| panic!("simulation failed: {e}"))
    }

    /// Fallible form of [`Simulation::run_audited`]: every controller-level
    /// failure (stash overflow past the hard limit, stuck requests,
    /// malformed trace records with no fault plan to blame) surfaces as a
    /// typed [`SimError`] instead of a panic.
    pub fn try_run_audited(
        cfg: &SystemConfig,
        gen: WorkloadGen,
        limit: RunLimit,
        workload: &str,
    ) -> Result<(SimReport, Option<AuditReport>), SimError> {
        Self::try_run_checkpointed(cfg, gen, limit, workload, None)
    }

    /// Like [`Simulation::try_run_audited`], with crash-consistent
    /// checkpointing. With `Some(spec)` and `cfg.checkpoint_interval > 0`,
    /// the complete simulation state is snapshotted to `spec.path` every
    /// `checkpoint_interval` path slots; on entry an existing snapshot for
    /// the same fingerprint resumes the run mid-cell, and the finished
    /// report is byte-identical to an uninterrupted run's. The last
    /// mid-run snapshot is left on disk; callers that no longer need to
    /// resume (the sweep runner, once the report is journaled) delete it.
    ///
    /// # Errors
    ///
    /// [`SimError`] as for the uncheckpointed form, plus
    /// [`SimError::Snapshot`] for a corrupt, mismatched, or unwritable
    /// snapshot.
    pub fn try_run_checkpointed(
        cfg: &SystemConfig,
        mut gen: WorkloadGen,
        limit: RunLimit,
        workload: &str,
        ckpt: Option<&CheckpointSpec>,
    ) -> Result<(SimReport, Option<AuditReport>), SimError> {
        let mut backend = Backend::new(cfg);
        let mut hierarchy = MemoryHierarchy::new(cfg.hierarchy);
        let mut cpu = TraceCpu::new(cfg.rob_insts, cfg.ipc, cfg.mshrs);
        let mut next_id: u64 = 1;
        let mut last_completion = Cycle::ZERO;

        // Trace-level fault stream (record mangling), independent of the
        // controller's plan so the two draw from distinct sequences.
        let mut trace_plan = FaultPlan::new(&cfg.faults, cfg.seed ^ 0xFA01_7C02);
        let data_blocks = cfg.data_blocks();
        let mut rejected_records = 0u64;
        let mut record_index = 0u64;
        let mut ops = 0u64;

        // Resume from an existing snapshot, if one matches.
        let mut last_ckpt_slots = 0u64;
        if let Some(spec) = ckpt {
            if let Some((header, payload)) = checkpoint::load(&spec.path)? {
                if header.fingerprint != spec.fingerprint {
                    return Err(SimError::Snapshot(SnapError::ConfigMismatch {
                        expected: spec.fingerprint,
                        found: header.fingerprint,
                    }));
                }
                let mut r = SnapReader::new(&payload);
                ops = r.take_u64()?;
                record_index = r.take_u64()?;
                rejected_records = r.take_u64()?;
                next_id = r.take_u64()?;
                last_completion = Cycle(r.take_u64()?);
                gen.restore_state(&mut r)?;
                cpu.restore_state(&mut r)?;
                hierarchy.restore_state(&mut r)?;
                // lint: allow(secret-flow, snapshot payload is operator-visible checkpoint bytes, not ORAM block contents)
                match (r.take_u8()?, &mut trace_plan) {
                    (0, None) => {}
                    (1, Some(p)) => p.restore_state(&mut r)?,
                    _ => {
                        return Err(SimError::Snapshot(SnapError::Corrupt(
                            "trace-plan presence mismatch",
                        )))
                    }
                }
                backend.restore_state(&mut r)?;
                r.finish()?;
                last_ckpt_slots = header.slots_done;
            }
        }

        while ops < limit.mem_ops {
            // Checkpoint cadence: between records the machine is quiescent
            // (no partially applied path access), so this is a consistent
            // cut of the whole simulation state.
            if let Some(spec) = ckpt {
                let slots = backend.slots_done();
                if cfg.checkpoint_interval > 0
                    && slots >= last_ckpt_slots + cfg.checkpoint_interval
                {
                    let mut w = SnapWriter::new();
                    w.put_u64(ops);
                    w.put_u64(record_index);
                    w.put_u64(rejected_records);
                    w.put_u64(next_id);
                    w.put_u64(last_completion.0);
                    gen.save_state(&mut w);
                    cpu.save_state(&mut w);
                    hierarchy.save_state(&mut w);
                    match &trace_plan {
                        None => w.put_u8(0),
                        Some(p) => {
                            w.put_u8(1);
                            p.save_state(&mut w);
                        }
                    }
                    backend.save_state(&mut w);
                    checkpoint::persist(&spec.path, spec.fingerprint, slots, &w.into_bytes())?;
                    last_ckpt_slots = slots;
                }
            }
            let mut rec = gen.next_record();
            let index = record_index;
            record_index += 1;
            if let Some(plan) = &mut trace_plan {
                if let Some(m) = plan.mangle_record() {
                    // Push the address out of the configured population, as
                    // a bit flip in a stored trace would.
                    rec.addr = data_blocks + (m % data_blocks.max(1));
                }
            }
            if rec.addr >= data_blocks {
                if trace_plan.is_some() {
                    // Under fault injection, validation drops the record
                    // and the run continues (the robustness contract).
                    rejected_records += 1;
                    continue;
                }
                return Err(SimError::MalformedRecord {
                    index,
                    addr: rec.addr,
                    data_blocks,
                });
            }
            loop {
                match cpu.try_issue(rec.gap) {
                    IssueCheck::Ready(t) => {
                        if backend.queue_len() >= MAX_QUEUE {
                            backend.advance_until_queue_below(MAX_QUEUE, &mut hierarchy)?;
                            for (id, done) in backend.take_completions() {
                                last_completion = last_completion.max(done);
                                cpu.complete(id, done);
                            }
                            continue;
                        }
                        let addr = BlockAddr(rec.addr);
                        let (outcome, evicted) = {
                            let _p = profiler::enter(profiler::Phase::Llc);
                            hierarchy.access_full(rec.addr, rec.is_write)
                        };
                        let mut latency = match outcome {
                            AccessOutcome::L1Hit => cfg.l1_hit_lat,
                            AccessOutcome::LlcHit => cfg.llc_hit_lat,
                            AccessOutcome::Miss => 0,
                        };
                        let mut submitted_read: Option<u64> = None;
                        if outcome == AccessOutcome::Miss {
                            if backend.front_try(addr, t).is_some() {
                                latency = cfg.front_hit_lat;
                            } else {
                                let id = next_id;
                                next_id += 1;
                                backend.submit(OramRequest {
                                    id,
                                    addr,
                                    arrival: t,
                                    blocking: !rec.is_write,
                                });
                                if !rec.is_write {
                                    submitted_read = Some(id);
                                }
                            }
                        }
                        if let Some(ev) = evicted {
                            let id = next_id;
                            next_id += 1;
                            backend.on_llc_eviction(BlockAddr(ev.addr), ev.dirty, t, id);
                        }
                        cpu.issue(rec.gap, t, latency);
                        if let Some(id) = submitted_read {
                            cpu.add_miss(id);
                        }
                        ops += 1;
                        backend.advance_until(cpu.cursor(), &mut hierarchy)?;
                        for (id, done) in backend.take_completions() {
                            last_completion = last_completion.max(done);
                            cpu.complete(id, done);
                        }
                        break;
                    }
                    IssueCheck::Blocked(req) => {
                        backend.advance_until_complete(req, &mut hierarchy)?;
                        for (id, done) in backend.take_completions() {
                            last_completion = last_completion.max(done);
                            cpu.complete(id, done);
                        }
                    }
                }
            }
        }
        // Drain the remaining memory work (queued writes, write-backs).
        let drain_end = backend.drain(&mut hierarchy)?;
        for (id, done) in backend.take_completions() {
            last_completion = last_completion.max(done);
            cpu.complete(id, done);
        }
        let cycles = cpu
            .cursor()
            .max(last_completion)
            .max(cpu.last_known_completion())
            .max(drain_end)
            .raw();

        backend.final_audit(&hierarchy);
        let audit = backend.audit_report();
        let (protocol, protocol_small) = backend.protocol_stats();
        let istats = backend.integrity_stats();
        let injected = backend.fault_injected();
        let faults = FaultStats {
            injected_corruptions: istats.injected,
            detected: istats.detected,
            recovered: istats.recovered,
            undetected: istats.undetected,
            bank_stalls: injected.stalls,
            stall_cycles: injected.stall_cycles,
            storms: injected.storms,
            mangled_records: injected.mangled_records,
            rejected_records,
            refetch_penalty_cycles: backend.refetch_penalty_cycles(),
        };
        let report = SimReport {
            scheme: cfg.scheme,
            workload: workload.to_owned(),
            cycles,
            instructions: cpu.instructions(),
            mem_ops: ops,
            protocol,
            protocol_small,
            slots: backend.slot_stats(),
            dram: backend.dram_stats(),
            hierarchy: *hierarchy.stats(),
            dwb: backend.dwb_stats(),
            faults,
            stash: backend.stash_pressure(),
        };
        // The last mid-run snapshot (if any) is left on disk: deleting it
        // is the caller's call, once the report is safely persisted. Tests
        // also resume from it to prove restored runs match uninterrupted
        // ones.
        Ok((report, audit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iroram_cache::HierarchyConfig;
    use iroram_protocol::{TreeTopMode, ZAllocation};

    fn tiny(scheme: Scheme) -> SystemConfig {
        let mut cfg = SystemConfig::scaled(scheme);
        cfg.oram.levels = 10;
        cfg.oram.data_blocks = 1 << 11;
        cfg.oram.zalloc = ZAllocation::uniform(10, 4);
        cfg.oram.treetop = TreeTopMode::Dedicated { levels: 4 };
        cfg.oram.plb_sets = 8;
        cfg.oram.plb_ways = 2;
        cfg.hierarchy = HierarchyConfig {
            l1_sets: 16,
            l1_assoc: 2,
            llc_sets: 64,
            llc_assoc: 4,
        };
        cfg.with_scheme(scheme)
    }

    #[test]
    fn all_schemes_run_to_completion() {
        for scheme in crate::ALL_SCHEMES {
            let cfg = tiny(scheme);
            let report = Simulation::run_bench(&cfg, Bench::Gcc, RunLimit::mem_ops(2_000));
            assert_eq!(report.mem_ops, 2_000, "{scheme:?}");
            assert!(report.cycles > 0, "{scheme:?}");
            assert!(report.instructions > 2_000, "{scheme:?}");
            assert!(report.ipc() > 0.0, "{scheme:?}");
        }
    }

    #[test]
    fn heavier_workloads_take_longer() {
        let cfg = tiny(Scheme::Baseline);
        let light = Simulation::run_bench(&cfg, Bench::Xal, RunLimit::mem_ops(3_000));
        let heavy = Simulation::run_bench(&cfg, Bench::Xz, RunLimit::mem_ops(3_000));
        // Heavy misses more and therefore has more path traffic per op.
        assert!(heavy.total_paths() > light.total_paths());
    }

    #[test]
    fn timing_protection_issues_dummies() {
        let cfg = tiny(Scheme::Baseline);
        let report = Simulation::run_bench(&cfg, Bench::Gcc, RunLimit::mem_ops(2_000));
        assert!(
            report.slots.dummy_slots > 0,
            "a light benchmark must have idle slots → dummies"
        );
        let mut no_tp = cfg.clone();
        no_tp.timing_protection = false;
        let r2 = Simulation::run_bench(&no_tp, Bench::Gcc, RunLimit::mem_ops(2_000));
        assert_eq!(r2.slots.dummy_slots, 0);
    }

    #[test]
    fn reports_are_deterministic() {
        let cfg = tiny(Scheme::IrOram);
        let a = Simulation::run_bench(&cfg, Bench::Mcf, RunLimit::mem_ops(1_500));
        let b = Simulation::run_bench(&cfg, Bench::Mcf, RunLimit::mem_ops(1_500));
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.protocol, b.protocol);
        assert_eq!(a.slots, b.slots);
    }

    #[test]
    fn mpki_accounting() {
        let cfg = tiny(Scheme::Baseline);
        let r = Simulation::run_bench(&cfg, Bench::Lbm, RunLimit::mem_ops(4_000));
        assert!(r.write_mpki() > r.read_mpki(), "lbm is write-dominated");
        assert!(r.read_mpki() >= 0.0);
    }

    #[test]
    fn audit_is_clean_and_does_not_perturb() {
        for scheme in crate::ALL_SCHEMES {
            let cfg = tiny(scheme);
            let plain = Simulation::run_bench(&cfg, Bench::Gcc, RunLimit::mem_ops(2_000));
            let mut audited = cfg.clone();
            audited.audit = true;
            let (report, audit) =
                Simulation::run_bench_audited(&audited, Bench::Gcc, RunLimit::mem_ops(2_000));
            let audit = audit.expect("audit enabled");
            assert!(
                audit.checks > 100,
                "{scheme:?}: audit barely ran ({} checks)",
                audit.checks
            );
            assert!(
                audit.is_clean(),
                "{scheme:?}: {} violations, e.g. {:?}",
                audit.violations,
                audit.samples.first()
            );
            // "Audits observe, they don't perturb": every reported number
            // must be identical with auditing on.
            assert_eq!(report.cycles, plain.cycles, "{scheme:?}");
            assert_eq!(report.protocol, plain.protocol, "{scheme:?}");
            assert_eq!(report.slots, plain.slots, "{scheme:?}");
            assert_eq!(report.dram, plain.dram, "{scheme:?}");
            assert_eq!(report.hierarchy, plain.hierarchy, "{scheme:?}");
        }
    }

    #[test]
    fn audit_report_absent_when_disabled() {
        let cfg = tiny(Scheme::Baseline);
        let (_, audit) =
            Simulation::run_bench_audited(&cfg, Bench::Gcc, RunLimit::mem_ops(500));
        assert!(audit.is_none());
    }

    #[test]
    fn irdwb_converts_some_dummies_on_writeheavy() {
        let cfg = tiny(Scheme::IrDwb);
        let r = Simulation::run_bench(&cfg, Bench::Gcc, RunLimit::mem_ops(4_000));
        let d = r.dwb.expect("engine enabled");
        assert!(
            d.converted_slots > 0,
            "gcc has dummies and dirty lines to convert"
        );
    }
}
