//! The always-available audit subsystem: a differential functional oracle
//! plus timing, DRAM-conservation, cache-coherence and structural audits.
//!
//! Enabled by [`crate::SystemConfig::audit`]; the controllers then thread an
//! [`AuditState`] through every access. The audits **observe only** — they
//! never write payloads, draw randomness, touch statistics, or change
//! timing — so a run with auditing on is bit-identical (in every reported
//! number) to the same run with auditing off.
//!
//! What is checked, and the paper invariant each check guards:
//!
//! * **Functional oracle** — a plain `addr → payload` shadow map. The first
//!   time the ORAM serves a block the oracle learns its payload; every later
//!   serve must return the same value (payloads are conserved across path
//!   remaps, escrow round-trips and tree-top migration). This is Path
//!   ORAM's basic storage contract \[27\].
//! * **Timing schedule** — with timing protection on, slot `k+1` must issue
//!   at exactly `max(t_k + T, read-phase completion of slot k)` for every
//!   scheme: the obliviousness contract (one indistinguishable path per `T`,
//!   paced only by the public occupancy rule).
//! * **DRAM conservation** — every path access issues exactly `Σ Z_l` line
//!   reads plus `Σ Z_l` line writes for the configured `ZAllocation`
//!   (IR-Alloc's path-length accounting, Section IV-C), and the DRAM model
//!   never completes a request before its arrival.
//! * **Structural audits** — periodically (and at end of run) the whole
//!   protocol state is swept by `PathOram::check_invariants`: single
//!   residence, path/leaf consistency, escrow exclusivity, per-level bucket
//!   `Z` bounds, and the tree-top store's internal coherence (S-Stash
//!   TT-pointer ↔ entry agreement).
//! * **IR-DWB coherence** — the dirty-LRU scanner's candidate/lock state
//!   must always agree with the engine's victim and with the LLC's view of
//!   the line (checked every slot via `DwbEngine::check_coherence`).

use std::collections::BTreeMap;

use iroram_sim_engine::{Cycle, FloorRing, SnapError, SnapReader, SnapWriter};

/// How many violation messages are stored verbatim (the count is exact;
/// only the sample list is capped).
const MAX_SAMPLES: usize = 32;

/// Slots between whole-structure invariant sweeps.
pub(crate) const STRUCTURAL_PERIOD: u64 = 256;

/// Audit results for one run (merged across controllers for ρ's two trees).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Individual checks performed.
    pub checks: u64,
    /// Checks that failed.
    pub violations: u64,
    /// Up to [`MAX_SAMPLES`] violation messages, in discovery order.
    pub samples: Vec<String>,
}

impl AuditReport {
    /// Whether every check passed.
    pub fn is_clean(&self) -> bool {
        self.violations == 0
    }
}

/// Per-controller audit state (see the module docs for the check list).
#[derive(Debug)]
pub(crate) struct AuditState {
    /// The functional oracle: block address → last known payload.
    oracle: BTreeMap<u64, u64>,
    /// Expected issue time of the next slot (None before the first slot or
    /// when timing protection is off).
    expected_slot: Option<Cycle>,
    /// Independent re-derivation of the depth-`k` pacing floor: the audit
    /// keeps its own ring of read-phase completions, so a pipelined
    /// controller's schedule is validated against `(t + T).max(floor of
    /// the access k slots back)` — which at depth 1 is exactly the serial
    /// occupancy rule.
    floors: FloorRing,
    /// DRAM latency underflows already reported (the counter is cumulative).
    seen_underflows: u64,
    /// Lines the pipelined controller had deferred in its write buffer
    /// after the previous slot (the conservation ledger's carry; 0
    /// serially).
    pending_write_lines: u64,
    /// Slots processed (drives the periodic structural sweep).
    slots: u64,
    checks: u64,
    violations: u64,
    samples: Vec<String>,
}

impl AuditState {
    /// Audit state validating a depth-`pipeline_depth` schedule (pass the
    /// controller's *effective* depth; `1` = the serial rule).
    pub(crate) fn new(pipeline_depth: u32) -> Self {
        AuditState {
            oracle: BTreeMap::new(),
            expected_slot: None,
            floors: FloorRing::new(pipeline_depth),
            seen_underflows: 0,
            pending_write_lines: 0,
            slots: 0,
            checks: 0,
            violations: 0,
            samples: Vec::new(),
        }
    }

    /// Records a failed check.
    pub(crate) fn violation(&mut self, msg: String) {
        self.checks += 1;
        self.violations += 1;
        if self.samples.len() < MAX_SAMPLES {
            self.samples.push(msg);
        }
    }

    /// Records a passed check.
    pub(crate) fn passed(&mut self) {
        self.checks += 1;
    }

    /// Oracle check: the ORAM served `addr` with payload `got`. Learns the
    /// value on first sight, compares on every later serve.
    pub(crate) fn oracle_read(&mut self, addr: u64, got: u64) {
        self.checks += 1;
        match self.oracle.insert(addr, got) {
            Some(expected) if expected != got => {
                self.violations += 1;
                if self.samples.len() < MAX_SAMPLES {
                    self.samples.push(format!(
                        "oracle: blk#{addr} served payload {got:#x}, shadow map holds {expected:#x}"
                    ));
                }
            }
            _ => {}
        }
    }

    /// Timing-schedule check for a slot issued at `t`. `read_floor` is the
    /// CPU-clock completion of this slot's read phase (the occupancy floor
    /// binding the slot `depth` positions later under the pipelined pacing
    /// rule; at depth 1, the floor for the very next slot). With `tp` off
    /// there is no schedule.
    pub(crate) fn note_slot(&mut self, t: Cycle, t_interval: u64, read_floor: Cycle, tp: bool) {
        if !tp {
            self.expected_slot = None;
            return;
        }
        self.checks += 1;
        if let Some(expected) = self.expected_slot {
            if t != expected {
                self.violations += 1;
                if self.samples.len() < MAX_SAMPLES {
                    self.samples.push(format!(
                        "timing: slot issued at {t}, schedule requires exactly {expected}"
                    ));
                }
            }
        }
        self.floors.push(read_floor);
        self.expected_slot = Some((t + t_interval).max(self.floors.floor()));
    }

    /// DRAM-conservation check for one finished path: the path touched
    /// `got_lines` memory slots (`expected_lines` per the `ZAllocation`),
    /// the DRAM request counter grew by `dram_delta`, and the DRAM model has
    /// seen `underflows` completion-before-arrival events in total.
    ///
    /// `pending_lines` is the size of the write-back batch the pipelined
    /// controller has deferred *after* this slot (always 0 serially). The
    /// request-count identity becomes a running write ledger: each slot's
    /// scheduled requests plus the change in deferred lines must equal one
    /// read and one write per touched slot — so overlapped schedules are
    /// held to the same conservation law, just shifted by the one batch
    /// legitimately in the write buffer.
    pub(crate) fn check_conservation(
        &mut self,
        got_lines: u64,
        expected_lines: u64,
        dram_delta: u64,
        underflows: u64,
        pending_lines: u64,
    ) {
        if got_lines == expected_lines {
            self.passed();
        } else {
            self.violation(format!(
                "conservation: path touched {got_lines} memory slots, Z allocation sums to {expected_lines}"
            ));
        }
        if dram_delta + pending_lines == 2 * got_lines + self.pending_write_lines {
            self.passed();
        } else {
            self.violation(format!(
                "conservation: path issued {dram_delta} DRAM requests with {pending_lines} deferred \
                 ({} were deferred before), expected one read + one write per touched slot ({})",
                self.pending_write_lines,
                2 * got_lines
            ));
        }
        self.pending_write_lines = pending_lines;
        if underflows > self.seen_underflows {
            self.violation(format!(
                "dram: {} request(s) completed before their arrival cycle",
                underflows - self.seen_underflows
            ));
            self.seen_underflows = underflows;
        }
    }

    /// Counts a processed slot; true when a periodic structural sweep is
    /// due.
    pub(crate) fn structural_due(&mut self) -> bool {
        self.slots += 1;
        self.slots.is_multiple_of(STRUCTURAL_PERIOD)
    }

    /// Folds a structural invariant-check result in, labelling failures
    /// with `what` (e.g. "main tree").
    pub(crate) fn note_structural<E: std::fmt::Display>(
        &mut self,
        what: &str,
        result: Result<(), E>,
    ) {
        match result {
            Ok(()) => self.passed(),
            Err(e) => self.violation(format!("structure ({what}): {e}")),
        }
    }

    /// Serializes the audit's state (oracle shadow map, pacing schedule,
    /// conservation carries, counters, samples) for a checkpoint snapshot,
    /// so a restored audited run keeps validating with full history.
    pub(crate) fn save_state(&self, w: &mut SnapWriter) {
        w.put_usize(self.oracle.len());
        for (&addr, &payload) in &self.oracle {
            w.put_u64(addr);
            w.put_u64(payload);
        }
        w.put_opt_u64(self.expected_slot.map(|c| c.0));
        self.floors.save_state(w);
        w.put_u64(self.seen_underflows);
        w.put_u64(self.pending_write_lines);
        w.put_u64(self.slots);
        w.put_u64(self.checks);
        w.put_u64(self.violations);
        w.put_usize(self.samples.len());
        for s in &self.samples {
            w.put_str(s);
        }
    }

    /// Restores state written by [`AuditState::save_state`].
    pub(crate) fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.take_seq_len(16)?;
        self.oracle.clear();
        let mut last: Option<u64> = None;
        for _ in 0..n {
            let addr = r.take_u64()?;
            let payload = r.take_u64()?;
            if last.is_some_and(|prev| prev >= addr) {
                return Err(SnapError::Corrupt("oracle entries out of order"));
            }
            last = Some(addr);
            self.oracle.insert(addr, payload);
        }
        self.expected_slot = r.take_opt_u64()?.map(Cycle);
        self.floors.restore_state(r)?;
        self.seen_underflows = r.take_u64()?;
        self.pending_write_lines = r.take_u64()?;
        self.slots = r.take_u64()?;
        self.checks = r.take_u64()?;
        self.violations = r.take_u64()?;
        let samples = r.take_seq_len(8)?;
        if samples > MAX_SAMPLES {
            return Err(SnapError::Corrupt("more samples than the cap"));
        }
        self.samples.clear();
        for _ in 0..samples {
            self.samples.push(r.take_str()?.to_owned());
        }
        Ok(())
    }

    /// The report so far.
    pub(crate) fn report(&self) -> AuditReport {
        AuditReport {
            checks: self.checks,
            violations: self.violations,
            samples: self.samples.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_learns_then_detects_divergence() {
        let mut a = AuditState::new(1);
        a.oracle_read(7, 0xAB);
        a.oracle_read(7, 0xAB);
        assert_eq!(a.report().violations, 0);
        a.oracle_read(7, 0xCD);
        let r = a.report();
        assert_eq!(r.violations, 1);
        assert!(r.samples[0].contains("blk#7"));
        // The oracle tracks the served value, so a repeat of the new value
        // is consistent again (one corruption event, not a cascade).
        a.oracle_read(7, 0xCD);
        assert_eq!(a.report().violations, 1);
    }

    #[test]
    fn timing_audit_requires_exact_schedule() {
        let mut a = AuditState::new(1);
        let t = 100;
        a.note_slot(Cycle(100), t, Cycle(150), true);
        // Next slot must be max(100+100, 150) = 200.
        a.note_slot(Cycle(200), t, Cycle(350), true);
        assert_eq!(a.report().violations, 0);
        // Occupancy floor dominates: expected 350, not 300.
        a.note_slot(Cycle(300), t, Cycle(0), true);
        assert_eq!(a.report().violations, 1);
        assert!(a.report().samples[0].contains("timing"));
    }

    #[test]
    fn timing_audit_validates_overlapped_schedules_at_depth_two() {
        // At depth 2 the floor comes from the access two slots back, so a
        // slot may issue while the previous access's read is still in
        // flight — and the serial rule would flag exactly that schedule.
        let t = 100;
        let mut deep = AuditState::new(2);
        deep.note_slot(Cycle(100), t, Cycle(900), true);
        // Slot 1's floor (900) does not bind slot 2 at depth 2.
        deep.note_slot(Cycle(200), t, Cycle(950), true);
        // Slot 3 is floored by slot 1's read completion (900).
        deep.note_slot(Cycle(900), t, Cycle(1000), true);
        assert_eq!(deep.report().violations, 0);
        // The depth-2 schedule is exact, not a lower bound: slot 4 must
        // issue at max(900 + T, slot 2's floor) = 1000, not earlier.
        deep.note_slot(Cycle(940), t, Cycle(1100), true);
        assert_eq!(deep.report().violations, 1);

        let mut serial = AuditState::new(1);
        serial.note_slot(Cycle(100), t, Cycle(900), true);
        serial.note_slot(Cycle(200), t, Cycle(950), true);
        assert_eq!(
            serial.report().violations,
            1,
            "the serial rule rejects the overlapped schedule"
        );
    }

    #[test]
    fn timing_audit_disabled_without_protection() {
        let mut a = AuditState::new(1);
        a.note_slot(Cycle(100), 100, Cycle(0), false);
        a.note_slot(Cycle(777), 100, Cycle(0), false);
        assert_eq!(a.report().checks, 0);
    }

    #[test]
    fn conservation_audit_checks_both_ledgers() {
        let mut a = AuditState::new(1);
        a.check_conservation(36, 36, 72, 0, 0);
        assert!(a.report().is_clean());
        a.check_conservation(35, 36, 70, 0, 0);
        assert_eq!(a.report().violations, 1);
        a.check_conservation(36, 36, 71, 0, 0);
        assert_eq!(a.report().violations, 2);
        // Underflows report once per new event, not per path.
        a.check_conservation(36, 36, 72, 2, 0);
        a.check_conservation(36, 36, 72, 2, 0);
        assert_eq!(a.report().violations, 3);
    }

    /// Pipelined conservation: the deferred write batch is a ledger carry,
    /// not a loss — each slot's scheduled requests plus the carry change
    /// must still equal one read + one write per touched slot.
    #[test]
    fn conservation_audit_carries_the_deferred_write_batch() {
        let mut a = AuditState::new(4);
        // First pipelined slot: 36 reads scheduled, all 36 writes deferred.
        a.check_conservation(36, 36, 36, 0, 36);
        assert!(a.report().is_clean());
        // Steady state: 36 reads + the previous 36 writes land; 36 defer.
        a.check_conservation(36, 36, 72, 0, 36);
        assert!(a.report().is_clean());
        // A dropped write batch (only the reads landed, nothing deferred)
        // must trip the ledger.
        a.check_conservation(36, 36, 36, 0, 0);
        assert_eq!(a.report().violations, 1);
    }

    #[test]
    fn sample_list_is_capped_but_count_exact() {
        let mut a = AuditState::new(1);
        for i in 0..100 {
            a.violation(format!("v{i}"));
        }
        let r = a.report();
        assert_eq!(r.violations, 100);
        assert_eq!(r.samples.len(), MAX_SAMPLES);
    }
}
