//! # IR-ORAM: a timed full-system Path ORAM simulator
//!
//! This crate is the reproduction of **"IR-ORAM: Path Access Type Based
//! Memory Intensity Reduction for Path-ORAM"** (Raoufi, Zhang & Yang,
//! HPCA 2022). It assembles the workspace substrates — the functional Path
//! ORAM protocol (`iroram-protocol`), the DDR3 memory system
//! (`iroram-dram`), the cache hierarchy (`iroram-cache`) and the calibrated
//! workloads (`iroram-trace`) — into a cycle-level simulator of a secure
//! processor whose off-chip traffic is protected by Path ORAM with timing-
//! channel defense (one path access per `T` cycles).
//!
//! The [`Scheme`] enum selects between the paper's configurations:
//!
//! | Scheme | What it models |
//! |---|---|
//! | [`Scheme::Baseline`] | Path ORAM + Freecursive + 10-level dedicated tree-top cache + subtree layout + background eviction |
//! | [`Scheme::Rho`] | the ρ relaxed-hierarchical ORAM baseline \[23\] (small tree, 1:2 fixed issue pattern, delayed remap) |
//! | [`Scheme::IrAlloc`] | IR-Alloc: utilization-aware per-level bucket sizes |
//! | [`Scheme::IrStash`] | IR-Stash: the double-indexed S-Stash tree top |
//! | [`Scheme::IrDwb`] | IR-DWB: dummy paths converted to early write-backs |
//! | [`Scheme::IrOram`] | all three IR techniques combined |
//! | [`Scheme::LlcD`] | Baseline + delayed block remapping |
//! | [`Scheme::IrAllocStashOnLlcD`] | IR-Alloc + IR-Stash on the LLC-D baseline (Fig. 11) |
//!
//! # Examples
//!
//! ```no_run
//! use ir_oram::{RunLimit, Scheme, Simulation, SystemConfig};
//! use iroram_trace::Bench;
//!
//! let cfg = SystemConfig::scaled(Scheme::IrOram);
//! let report = Simulation::run_bench(&cfg, Bench::Gcc, RunLimit::mem_ops(50_000));
//! println!("{} cycles, {} dummy paths", report.cycles, report.protocol.dummy_paths);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
mod config;
mod controller;
mod cpu;
mod dwb;
mod error;
pub mod pipeline;
mod rho;
mod sim;

pub use audit::AuditReport;
pub use config::{Scheme, SystemConfig, ALL_SCHEMES};
pub use controller::{
    OramRequest, ReqId, SlotStats, StashPressure, TimedController, DEGRADED_ADMIT_PERIOD,
    OVERFLOW_GRACE_SLOTS,
};
pub use cpu::TraceCpu;
pub use dwb::{DwbEngine, DwbStats};
pub use error::SimError;
pub use iroram_protocol::IntegrityStats;
pub use rho::RhoController;
pub use sim::{Backend, CheckpointSpec, FaultStats, RunLimit, SimReport, Simulation};
