//! Typed simulation errors.
//!
//! The timed controllers and the simulation loop report recoverable failure
//! conditions as [`SimError`] values instead of panicking, so a harness
//! driving many cells in parallel can classify, retry, or skip a failed
//! cell without poisoning its worker pool. Path ORAM treats stash overflow
//! as a probabilistic failure mode (Stefanov et al.), so it is modelled as
//! a *transient* error: a bounded deterministic retry (with a fresh fault
//! stream) is legitimate recovery.

/// A recoverable simulation failure, propagated to the experiment runner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The stash exceeded its hard limit (soft capacity is a pressure
    /// signal; the hard limit is the modelled SRAM's physical size).
    StashOverflow {
        /// Stash occupancy when the limit was breached.
        occupancy: usize,
        /// The hard limit in force.
        hard_limit: usize,
        /// Slot index at which the overflow was observed.
        slot: u64,
    },
    /// A request can never complete: the controller has no pending work
    /// that could produce it (indicates a harness bug, not a fault).
    RequestStuck {
        /// The stuck request's id.
        id: u64,
    },
    /// A trace record's address lies outside the configured block
    /// population (corrupted trace input).
    MalformedRecord {
        /// Zero-based index of the offending record.
        index: u64,
        /// The out-of-range address.
        addr: u64,
        /// The configured data-block population.
        data_blocks: u64,
    },
    /// The protocol rejected a block access (unmapped address, or an
    /// escrow-policy violation): a controller sequencing bug surfaced as a
    /// typed error instead of a protocol panic. Not transient — replaying
    /// the same schedule reproduces it.
    Protocol(iroram_protocol::AccessError),
    /// A checkpoint snapshot could not be written, read, or applied
    /// (I/O failure, framing defect, config mismatch, or state that does
    /// not fit the running configuration). Not transient — the snapshot on
    /// disk does not change between attempts.
    Snapshot(iroram_sim_engine::SnapError),
}

impl From<iroram_protocol::AccessError> for SimError {
    fn from(e: iroram_protocol::AccessError) -> Self {
        SimError::Protocol(e)
    }
}

impl From<iroram_sim_engine::SnapError> for SimError {
    fn from(e: iroram_sim_engine::SnapError) -> Self {
        SimError::Snapshot(e)
    }
}

impl SimError {
    /// Whether a deterministic retry is a sound response (true for fault
    /// classes that model transient physical conditions).
    pub fn is_transient(&self) -> bool {
        matches!(self, SimError::StashOverflow { .. })
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::StashOverflow {
                occupancy,
                hard_limit,
                slot,
            } => write!(
                f,
                "stash overflow at slot {slot}: {occupancy} blocks exceed the hard limit of {hard_limit}"
            ),
            SimError::RequestStuck { id } => {
                write!(f, "request {id} cannot complete: no work pending")
            }
            SimError::MalformedRecord {
                index,
                addr,
                data_blocks,
            } => write!(
                f,
                "trace record {index} is malformed: address {addr:#x} outside the {data_blocks}-block population"
            ),
            SimError::Protocol(e) => write!(f, "protocol rejected access: {e}"),
            SimError::Snapshot(e) => write!(f, "checkpoint snapshot: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_overflow_is_transient() {
        let overflow = SimError::StashOverflow {
            occupancy: 1700,
            hard_limit: 1600,
            slot: 9,
        };
        assert!(overflow.is_transient());
        assert!(!SimError::RequestStuck { id: 3 }.is_transient());
        assert!(!SimError::MalformedRecord {
            index: 0,
            addr: 1,
            data_blocks: 1
        }
        .is_transient());
        let escrow = SimError::from(iroram_protocol::AccessError::NotEscrowed(
            iroram_protocol::BlockAddr(7),
        ));
        assert!(!escrow.is_transient());
        assert!(escrow.to_string().contains("not escrowed"));
        let snap = SimError::from(iroram_sim_engine::SnapError::BadChecksum);
        assert!(!snap.is_transient());
        assert!(snap.to_string().contains("checkpoint snapshot"));
    }

    #[test]
    fn display_messages_carry_context() {
        let e = SimError::MalformedRecord {
            index: 41,
            addr: 0xFFFF,
            data_blocks: 512,
        };
        let msg = e.to_string();
        assert!(msg.contains("record 41"));
        assert!(msg.contains("512-block"));
    }
}
