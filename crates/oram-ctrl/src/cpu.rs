//! The trace-driven out-of-order core model.
//!
//! A standard trace-simulation approximation of the paper's 4-issue,
//! 128-entry-ROB core (Table I): instructions retire at the issue width;
//! a read miss lets younger instructions proceed until it reaches the head
//! of the reorder window, at which point the core stalls until the data
//! returns ("stall on use at ROB head"). Store misses retire through the
//! write buffer and never stall directly — their cost arrives as ORAM queue
//! back-pressure.

use iroram_sim_engine::{Cycle, SnapError, SnapReader, SnapWriter};

use crate::ReqId;

/// Outcome of asking the core whether the next memory op may issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueCheck {
    /// The op may issue at this cycle.
    Ready(Cycle),
    /// The core is stalled: the given outstanding request must complete
    /// first.
    Blocked(ReqId),
}

#[derive(Debug, Clone, Copy)]
struct Miss {
    inst_no: u64,
    req: ReqId,
    done: Option<Cycle>,
}

/// The trace-driven core.
#[derive(Debug, Clone)]
pub struct TraceCpu {
    // lint: allow(snapshot-drift, configuration, fixed at construction for the whole run)
    rob: u64,
    // lint: allow(snapshot-drift, configuration, fixed at construction for the whole run)
    ipc: u64,
    // lint: allow(snapshot-drift, configuration; restore validates the snapshot against it)
    mshrs: usize,
    cursor: Cycle,
    inst_count: u64,
    outstanding: Vec<Miss>,
}

impl TraceCpu {
    /// Creates a core with the given reorder window (instructions), issue
    /// width (instructions/cycle) and outstanding-read-miss limit.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(rob: u64, ipc: u64, mshrs: usize) -> Self {
        assert!(rob > 0 && ipc > 0 && mshrs > 0, "core parameters must be nonzero");
        TraceCpu {
            rob,
            ipc,
            mshrs,
            cursor: Cycle::ZERO,
            inst_count: 0,
            outstanding: Vec::new(),
        }
    }

    /// Current pipeline time.
    pub fn cursor(&self) -> Cycle {
        self.cursor
    }

    /// Instructions processed so far.
    pub fn instructions(&self) -> u64 {
        self.inst_count
    }

    /// Number of outstanding read misses.
    pub fn outstanding_misses(&self) -> usize {
        self.outstanding.len()
    }

    /// Whether any outstanding miss is still incomplete.
    pub fn has_incomplete_miss(&self) -> bool {
        self.outstanding.iter().any(|m| m.done.is_none())
    }

    /// Checks whether the next memory op (after `gap` instructions) can
    /// issue, applying the ROB-head and MSHR constraints. Does not mutate
    /// retirement state — call [`TraceCpu::issue`] once `Ready`.
    pub fn try_issue(&mut self, gap: u32) -> IssueCheck {
        let inst_next = self.inst_count + gap as u64 + 1;
        let mut t = self.cursor + gap as u64 / self.ipc;
        // ROB: any miss older than the window must have completed.
        for m in &self.outstanding {
            if inst_next.saturating_sub(m.inst_no) > self.rob {
                match m.done {
                    Some(done) => t = t.max(done),
                    None => return IssueCheck::Blocked(m.req),
                }
            }
        }
        // MSHRs: if full, the oldest miss must drain first.
        if self.outstanding.len() >= self.mshrs {
            let oldest = self
                .outstanding
                .iter()
                .min_by_key(|m| m.inst_no)
                .expect("nonempty");
            match oldest.done {
                Some(done) => t = t.max(done),
                None => return IssueCheck::Blocked(oldest.req),
            }
        }
        IssueCheck::Ready(t)
    }

    /// Commits the issue of the next memory op at `at` (from a `Ready`
    /// check), charging `latency` pipeline cycles (cache-hit service), and
    /// retires any constraint-expired misses.
    pub fn issue(&mut self, gap: u32, at: Cycle, latency: u64) {
        let inst_next = self.inst_count + gap as u64 + 1;
        self.outstanding.retain(|m| {
            !(inst_next.saturating_sub(m.inst_no) > self.rob
                && m.done.is_some_and(|d| d <= at))
        });
        if self.outstanding.len() >= self.mshrs {
            // The Ready check guaranteed the oldest is complete.
            let oldest_idx = self
                .outstanding
                .iter()
                .enumerate()
                .min_by_key(|(_, m)| m.inst_no)
                .map(|(i, _)| i)
                .expect("nonempty");
            self.outstanding.swap_remove(oldest_idx);
        }
        self.inst_count = inst_next;
        self.cursor = at + latency;
    }

    /// Registers a read miss issued as the op at the current instruction
    /// position.
    pub fn add_miss(&mut self, req: ReqId) {
        self.outstanding.push(Miss {
            inst_no: self.inst_count,
            req,
            done: None,
        });
    }

    /// Records the completion time of an outstanding read miss.
    pub fn complete(&mut self, req: ReqId, done: Cycle) {
        for m in &mut self.outstanding {
            if m.req == req {
                m.done = Some(done);
            }
        }
    }

    /// The latest known completion among outstanding misses (for final
    /// execution-time accounting).
    pub fn last_known_completion(&self) -> Cycle {
        self.outstanding
            .iter()
            .filter_map(|m| m.done)
            .fold(Cycle::ZERO, Cycle::max)
    }

    /// Serializes the core's logical state (pipeline cursor, retired
    /// instruction count, outstanding misses) for a checkpoint snapshot.
    /// The ROB/IPC/MSHR parameters are configuration, not state.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_u64(self.cursor.0);
        w.put_u64(self.inst_count);
        w.put_usize(self.outstanding.len());
        for m in &self.outstanding {
            w.put_u64(m.inst_no);
            w.put_u64(m.req);
            w.put_opt_u64(m.done.map(|c| c.0));
        }
    }

    /// Restores state written by [`TraceCpu::save_state`].
    ///
    /// # Errors
    ///
    /// [`SnapError`] when the payload is malformed or holds more
    /// outstanding misses than this core's MSHR limit.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.cursor = Cycle(r.take_u64()?);
        self.inst_count = r.take_u64()?;
        let n = r.take_seq_len(17)?;
        if n > self.mshrs {
            return Err(SnapError::Corrupt("more outstanding misses than MSHRs"));
        }
        self.outstanding.clear();
        for _ in 0..n {
            let inst_no = r.take_u64()?;
            let req = r.take_u64()?;
            let done = r.take_opt_u64()?.map(Cycle);
            self.outstanding.push(Miss { inst_no, req, done });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_advances_time_by_gap_over_ipc() {
        let mut cpu = TraceCpu::new(128, 4, 8);
        match cpu.try_issue(40) {
            IssueCheck::Ready(t) => {
                assert_eq!(t, Cycle(10));
                cpu.issue(40, t, 2);
                assert_eq!(cpu.cursor(), Cycle(12));
                assert_eq!(cpu.instructions(), 41);
            }
            IssueCheck::Blocked(_) => panic!("nothing outstanding"),
        }
    }

    #[test]
    fn rob_blocks_on_old_incomplete_miss() {
        let mut cpu = TraceCpu::new(128, 4, 8);
        let IssueCheck::Ready(t) = cpu.try_issue(0) else {
            panic!()
        };
        cpu.issue(0, t, 0);
        cpu.add_miss(42);
        // Within the window: free to continue.
        assert!(matches!(cpu.try_issue(100), IssueCheck::Ready(_)));
        let IssueCheck::Ready(t) = cpu.try_issue(100) else {
            panic!()
        };
        cpu.issue(100, t, 0);
        // Now 101 insts past the miss; next op at +50 exceeds the 128 window.
        assert_eq!(cpu.try_issue(50), IssueCheck::Blocked(42));
        // Completion unblocks and floors the issue time.
        cpu.complete(42, Cycle(5000));
        match cpu.try_issue(50) {
            IssueCheck::Ready(t) => assert!(t >= Cycle(5000)),
            IssueCheck::Blocked(_) => panic!("completed miss must unblock"),
        }
    }

    #[test]
    fn mshr_limit_blocks() {
        let mut cpu = TraceCpu::new(10_000, 4, 2);
        for r in 0..2 {
            let IssueCheck::Ready(t) = cpu.try_issue(1) else {
                panic!()
            };
            cpu.issue(1, t, 0);
            cpu.add_miss(r);
        }
        assert_eq!(cpu.try_issue(1), IssueCheck::Blocked(0));
        cpu.complete(0, Cycle(77));
        match cpu.try_issue(1) {
            IssueCheck::Ready(t) => {
                assert!(t >= Cycle(77));
                cpu.issue(1, t, 0);
                assert_eq!(cpu.outstanding_misses(), 1, "oldest drained");
            }
            IssueCheck::Blocked(_) => panic!("MSHR should free after completion"),
        }
    }

    #[test]
    fn retired_misses_leave_the_window() {
        let mut cpu = TraceCpu::new(64, 4, 8);
        let IssueCheck::Ready(t) = cpu.try_issue(0) else {
            panic!()
        };
        cpu.issue(0, t, 0);
        cpu.add_miss(1);
        cpu.complete(1, Cycle(100));
        // Issue far past the window: the completed miss retires.
        let IssueCheck::Ready(t) = cpu.try_issue(200) else {
            panic!()
        };
        cpu.issue(200, t, 0);
        assert_eq!(cpu.outstanding_misses(), 0);
        assert_eq!(cpu.last_known_completion(), Cycle::ZERO);
    }

    #[test]
    fn completion_floor_applies_to_issue_time() {
        let mut cpu = TraceCpu::new(8, 1, 8);
        let IssueCheck::Ready(t) = cpu.try_issue(0) else {
            panic!()
        };
        cpu.issue(0, t, 0);
        cpu.add_miss(9);
        cpu.complete(9, Cycle(1_000));
        // Next op is beyond the tiny ROB → must wait for cycle 1000.
        match cpu.try_issue(20) {
            IssueCheck::Ready(t) => assert!(t >= Cycle(1_000)),
            IssueCheck::Blocked(_) => panic!("known completion should not block"),
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn rejects_zero_params() {
        let _ = TraceCpu::new(0, 4, 8);
    }
}
