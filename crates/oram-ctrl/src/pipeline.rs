//! The k-deep access pipeline of the timed controllers.
//!
//! The serial controllers issue one path access at a time: each slot's
//! issue time is floored at the previous access's read completion
//! (`next_slot = (t + T).max(read_floor)`). With
//! [`SystemConfig::pipeline_depth`](crate::SystemConfig) `= k > 1`, up to
//! `k` accesses are in flight at once:
//!
//! * **Pacing** — the floor comes from the access `k` slots back (a
//!   [`FloorRing`] of recent read floors), so request `i+1`'s path read
//!   overlaps request `i`'s write-back across the DRAM channels. The
//!   issue *rate* is still one slot per `T` cycles minimum, and the floor
//!   is derived only from DRAM read completions — the same
//!   workload-independent quantities as the serial rule — so the timing
//!   channel argument is unchanged.
//! * **Write deferral** — the write-back batch of slot `i` is not handed
//!   to the memory controller until slot `i+1`'s read batch has been
//!   scheduled, so in the per-bank queues the younger *read* outranks the
//!   older *write* (the read-priority write buffer every real memory
//!   controller implements). Serially the calls land read/write/read/
//!   write…, which silently serializes consecutive paths on every shared
//!   bank; deferral is what makes the overlap the pacing rule permits
//!   actually materialize. At most one batch is deferred at a time — each
//!   slot flushes its predecessor — so the write backlog is bounded and
//!   the bank state still throttles issue through the read floor.
//! * **Conflicts** — two in-flight paths that share a memory-backed bucket
//!   (decided by [`PathTable::paths_share_memory_bucket`]) would race on
//!   that bucket's slots, so the younger path's DRAM batch is held until
//!   the older path's write-back retires. Functionally the younger
//!   access's blocks simply wait in the stash escrow (delayed remap) or
//!   F-Stash until then — the protocol state machine is already serial, so
//!   only the modeled timing must account for the hold. A conflict with
//!   the still-deferred batch flushes it first (write-before-read on a
//!   genuinely shared bucket), then holds the read at its completion.
//! * **Speculation** — while request `i` occupies the protocol, request
//!   `i+1`'s PosMap resolution is performed speculatively so its first
//!   path can issue the moment a slot frees. A mismatch (the speculated
//!   request was served on-chip meanwhile) discards the cached resolution.
//!
//! Depth 1 (the default) takes none of these paths: the controllers keep
//! the verbatim serial assignment, which is what makes depth-1 reports
//! byte-identical to pre-pipeline builds. The [`serial`] switch forces
//! depth 1 regardless of configuration — the reference twin used by the
//! equivalence suite, mirroring `iroram_dram::reference`.

use std::collections::VecDeque;

use iroram_dram::PathTable;
use iroram_protocol::BlockAddr;
use iroram_sim_engine::{Cycle, FloorRing, SnapError, SnapReader, SnapWriter};

/// One scheduled-but-unretired path access.
#[derive(Debug, Clone, Copy)]
struct InFlightPath {
    /// Leaf of the path (within its tree).
    leaf: u64,
    /// Which tree the path belongs to (ρ's small tree vs main; always
    /// `false` for the single-tree controller). Paths in different trees
    /// occupy disjoint DRAM regions and never conflict.
    small_tree: bool,
    /// DRAM-clock time the path's write phase retires.
    write_done: Cycle,
}

/// Metadata of the one write-back batch currently deferred behind the
/// next slot's read (the request buffer itself lives in the controller's
/// reusable scratch).
#[derive(Debug, Clone, Copy)]
pub struct PendingWrite {
    /// Leaf of the path whose write-back is deferred.
    pub leaf: u64,
    /// Tree the path belongs to.
    pub small_tree: bool,
    /// DRAM-clock read completion of the path — the arrival the write
    /// batch carries when it is eventually flushed.
    pub read_done: Cycle,
}

/// Counters the pipeline accumulates (surfaced via controller accessors;
/// deliberately *not* part of `SimReport`, whose encoding is frozen).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Bucket-sharing conflicts that held a path's DRAM batch.
    pub conflicts: u64,
    /// Speculative PosMap resolutions consumed by the request they
    /// predicted.
    pub spec_hits: u64,
    /// Speculative resolutions discarded (request served on-chip first, or
    /// a different request arrived).
    pub spec_misses: u64,
    /// Write-back batches deferred behind the following read batch.
    pub deferred_writes: u64,
}

/// Pipeline state of one timed controller. Exists only at effective depth
/// ≥ 2 — depth-1 controllers carry `None` and run the untouched serial
/// code path.
#[derive(Debug)]
pub struct PipelineState {
    ring: FloorRing,
    inflight: VecDeque<InFlightPath>,
    spec: Option<(BlockAddr, VecDeque<BlockAddr>)>,
    pending: Option<PendingWrite>,
    stats: PipelineStats,
}

impl PipelineState {
    /// Pipeline state for `cfg_depth`, or `None` when the effective depth
    /// (after the [`serial`] force switch) is 1 and the serial code path
    /// should run.
    pub fn new(cfg_depth: u32) -> Option<PipelineState> {
        let depth = effective_depth(cfg_depth);
        (depth > 1).then(|| PipelineState {
            ring: FloorRing::new(depth),
            inflight: VecDeque::with_capacity(depth as usize),
            spec: None,
            pending: None,
            stats: PipelineStats::default(),
        })
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    /// Applies the depth-k pacing rule for a slot issued at `t` whose read
    /// phase floors at `read_floor`: records the floor and returns the next
    /// slot time `(t + t_interval).max(oldest floor in the window)`.
    pub fn pace(&mut self, t: Cycle, t_interval: u64, read_floor: Cycle) -> Cycle {
        self.ring.push(read_floor);
        (t + t_interval).max(self.ring.floor())
    }

    /// Checks the new path to `leaf` against unretired in-flight paths of
    /// the same tree; on a shared memory bucket, returns the held DRAM
    /// arrival (the latest conflicting write-back retirement) and counts
    /// the conflict. `arrival` is the un-held DRAM arrival of the new path.
    pub fn conflict_hold(
        &mut self,
        table: &PathTable,
        leaf: u64,
        small_tree: bool,
        arrival: Cycle,
    ) -> Option<Cycle> {
        let hold = self
            .inflight
            .iter()
            .filter(|p| {
                p.small_tree == small_tree
                    && p.write_done > arrival
                    && table.paths_share_memory_bucket(p.leaf, leaf)
            })
            .map(|p| p.write_done)
            .max()?;
        self.stats.conflicts += 1;
        Some(hold)
    }

    /// Records a just-scheduled path as in flight; at most `depth` paths
    /// are tracked (older ones have retired by the pacing rule).
    pub fn record(&mut self, leaf: u64, small_tree: bool, write_done: Cycle) {
        if self.inflight.len() == self.ring.depth() {
            self.inflight.pop_front();
        }
        self.inflight.push_back(InFlightPath {
            leaf,
            small_tree,
            write_done,
        });
    }

    /// Defers a just-read path's write-back: the controller keeps the
    /// batch in its scratch buffer and flushes it only after the next
    /// slot's read has been scheduled. At most one batch is ever pending
    /// (the previous one is flushed before this is called).
    pub fn stash_write(&mut self, leaf: u64, small_tree: bool, read_done: Cycle) {
        debug_assert!(self.pending.is_none(), "unflushed write batch");
        self.pending = Some(PendingWrite {
            leaf,
            small_tree,
            read_done,
        });
        self.stats.deferred_writes += 1;
    }

    /// Takes the deferred write-back's metadata for flushing, if any.
    pub fn take_pending(&mut self) -> Option<PendingWrite> {
        self.pending.take()
    }

    /// Whether a new path to `leaf` shares a memory bucket with the
    /// still-deferred write batch of the same tree — if so the caller must
    /// flush that batch *before* scheduling the read (write-before-read on
    /// a genuinely shared bucket) and the event counts as a conflict.
    pub fn pending_conflicts(&mut self, table: &PathTable, leaf: u64, small_tree: bool) -> bool {
        let hit = self.pending.as_ref().is_some_and(|p| {
            p.small_tree == small_tree && table.paths_share_memory_bucket(p.leaf, leaf)
        });
        // lint: allow(secret-flow, conflict bookkeeping on revealed leaves; both operands are public path addresses)
        if hit {
            self.stats.conflicts += 1;
        }
        hit
    }

    /// Caches a speculative PosMap resolution for the predicted next
    /// request `addr`.
    pub fn set_spec(&mut self, addr: BlockAddr, pm: VecDeque<BlockAddr>) {
        self.spec = Some((addr, pm));
    }

    /// Consumes the speculative resolution if it predicted `addr`; a
    /// mismatch discards it (the caller resolves normally).
    pub fn take_spec(&mut self, addr: BlockAddr) -> Option<VecDeque<BlockAddr>> {
        match self.spec.take() {
            Some((spec_addr, pm)) if spec_addr == addr => {
                self.stats.spec_hits += 1;
                Some(pm)
            }
            Some(_) => {
                self.stats.spec_misses += 1;
                None
            }
            None => None,
        }
    }

    /// Whether a speculative resolution is already cached.
    pub fn has_spec(&self) -> bool {
        self.spec.is_some()
    }

    /// Serializes the pipeline's logical state (floor ring, in-flight
    /// paths, cached speculation, deferred-write metadata, counters) for a
    /// checkpoint snapshot.
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.ring.save_state(w);
        w.put_usize(self.inflight.len());
        for p in &self.inflight {
            w.put_u64(p.leaf);
            w.put_bool(p.small_tree);
            w.put_u64(p.write_done.0);
        }
        match &self.spec {
            None => w.put_u8(0),
            Some((addr, pm)) => {
                w.put_u8(1);
                w.put_u64(addr.0);
                w.put_usize(pm.len());
                for a in pm {
                    w.put_u64(a.0);
                }
            }
        }
        match &self.pending {
            None => w.put_u8(0),
            Some(p) => {
                w.put_u8(1);
                w.put_u64(p.leaf);
                w.put_bool(p.small_tree);
                w.put_u64(p.read_done.0);
            }
        }
        w.put_u64(self.stats.conflicts);
        w.put_u64(self.stats.spec_hits);
        w.put_u64(self.stats.spec_misses);
        w.put_u64(self.stats.deferred_writes);
    }

    /// Restores state written by [`PipelineState::save_state`] into a
    /// freshly built pipeline of the same configured depth.
    ///
    /// # Errors
    ///
    /// [`SnapError`] when the payload is malformed or does not fit this
    /// pipeline's depth.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.ring.restore_state(r)?;
        let n = r.take_seq_len(17)?;
        if n > self.ring.depth() {
            return Err(SnapError::Corrupt("more in-flight paths than depth"));
        }
        self.inflight.clear();
        for _ in 0..n {
            let leaf = r.take_u64()?;
            let small_tree = r.take_bool()?;
            let write_done = Cycle(r.take_u64()?);
            self.inflight.push_back(InFlightPath {
                leaf,
                small_tree,
                write_done,
            });
        }
        self.spec = match r.take_u8()? {
            0 => None,
            1 => {
                let addr = BlockAddr(r.take_u64()?);
                let len = r.take_seq_len(8)?;
                let mut pm = VecDeque::with_capacity(len);
                for _ in 0..len {
                    pm.push_back(BlockAddr(r.take_u64()?));
                }
                Some((addr, pm))
            }
            _ => return Err(SnapError::Corrupt("bad speculation tag")),
        };
        self.pending = match r.take_u8()? {
            0 => None,
            1 => Some(PendingWrite {
                leaf: r.take_u64()?,
                small_tree: r.take_bool()?,
                read_done: Cycle(r.take_u64()?),
            }),
            _ => return Err(SnapError::Corrupt("bad pending-write tag")),
        };
        self.stats.conflicts = r.take_u64()?;
        self.stats.spec_hits = r.take_u64()?;
        self.stats.spec_misses = r.take_u64()?;
        self.stats.deferred_writes = r.take_u64()?;
        Ok(())
    }
}

/// The configured depth after clamping (`0` deserializes from field-absent
/// shims) and the [`serial`] force switch.
pub fn effective_depth(cfg_depth: u32) -> u32 {
    #[cfg(any(test, feature = "serial-pipeline"))]
    if serial::forced() {
        return 1;
    }
    cfg_depth.max(1)
}

/// Thread-local switch forcing every controller built while it is on to
/// the serial (depth-1) pipeline, whatever the config says — the reference
/// twin for differential tests, mirroring `iroram_dram::reference`.
#[cfg(any(test, feature = "serial-pipeline"))]
pub mod serial {
    use std::cell::Cell;

    thread_local! {
        static FORCE: Cell<bool> = const { Cell::new(false) };
    }

    /// Forces (or releases) the serial pipeline on this thread.
    pub fn force(on: bool) {
        FORCE.with(|f| f.set(on));
    }

    /// Whether the serial pipeline is forced on this thread.
    pub fn forced() -> bool {
        FORCE.with(Cell::get)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_one_has_no_pipeline_state() {
        assert!(PipelineState::new(0).is_none());
        assert!(PipelineState::new(1).is_none());
        assert!(PipelineState::new(2).is_some());
    }

    #[test]
    fn force_serial_wins_over_config() {
        serial::force(true);
        assert_eq!(effective_depth(4), 1);
        assert!(PipelineState::new(4).is_none());
        serial::force(false);
        assert_eq!(effective_depth(4), 4);
    }

    #[test]
    fn pacing_overlaps_up_to_depth() {
        let mut p = PipelineState::new(2).expect("depth 2");
        // First access: a huge read floor does not stall the second slot.
        let next = p.pace(Cycle(1000), 500, Cycle(90_000));
        assert_eq!(next, Cycle(1500));
        // Second access: the first access's floor now binds.
        let next = p.pace(Cycle(1500), 500, Cycle(91_000));
        assert_eq!(next, Cycle(90_000));
    }

    #[test]
    fn conflicts_only_within_a_tree_and_while_unretired() {
        use iroram_dram::SubtreeLayout;
        let table = SubtreeLayout::new(&[4; 5], 2).path_table(2);
        let mut p = PipelineState::new(4).expect("depth 4");
        p.record(0b0000, false, Cycle(500));
        // Same top bucket, same tree, unretired: held until write_done.
        assert_eq!(p.conflict_hold(&table, 0b0001, false, Cycle(100)), Some(Cycle(500)));
        // Different tree: disjoint DRAM regions, no conflict.
        assert_eq!(p.conflict_hold(&table, 0b0001, true, Cycle(100)), None);
        // Disjoint top bucket: no shared memory bucket.
        assert_eq!(p.conflict_hold(&table, 0b1100, false, Cycle(100)), None);
        // Already retired by the new arrival: no hold.
        assert_eq!(p.conflict_hold(&table, 0b0001, false, Cycle(600)), None);
        assert_eq!(p.stats().conflicts, 1);
    }

    #[test]
    fn deferred_write_flushes_on_bucket_conflict_only() {
        use iroram_dram::SubtreeLayout;
        let table = SubtreeLayout::new(&[4; 5], 2).path_table(2);
        let mut p = PipelineState::new(2).expect("depth 2");
        assert!(p.take_pending().is_none());
        p.stash_write(0b0000, false, Cycle(700));
        // Disjoint top bucket or other tree: the batch stays deferred.
        assert!(!p.pending_conflicts(&table, 0b1100, false));
        assert!(!p.pending_conflicts(&table, 0b0001, true));
        // Shared bucket, same tree: flush-first, counted as a conflict.
        assert!(p.pending_conflicts(&table, 0b0001, false));
        let pw = p.take_pending().expect("pending");
        assert_eq!(
            (pw.leaf, pw.small_tree, pw.read_done),
            (0, false, Cycle(700))
        );
        assert!(p.take_pending().is_none(), "take drains");
        assert_eq!(p.stats().conflicts, 1);
        assert_eq!(p.stats().deferred_writes, 1);
    }

    #[test]
    fn speculation_hits_only_on_the_predicted_address() {
        let mut p = PipelineState::new(2).expect("depth 2");
        assert!(p.take_spec(BlockAddr(7)).is_none());
        p.set_spec(BlockAddr(7), VecDeque::from([BlockAddr(100)]));
        assert!(p.has_spec());
        assert_eq!(
            p.take_spec(BlockAddr(7)),
            Some(VecDeque::from([BlockAddr(100)]))
        );
        p.set_spec(BlockAddr(7), VecDeque::new());
        assert!(p.take_spec(BlockAddr(8)).is_none(), "mismatch discards");
        let s = p.stats();
        assert_eq!((s.spec_hits, s.spec_misses), (1, 1));
    }
}
