//! The ρ (relaxed hierarchical ORAM) baseline \[23\].
//!
//! ρ adds a second, smaller ORAM tree that absorbs most accesses: recently
//! used blocks live in the small tree (cheap paths), cold blocks in the main
//! tree. To defend the timing channel with two path lengths, paths issue in
//! a **fixed pattern** — the paper evaluates 1 main-tree access per 2
//! small-tree accesses — with dummies of the matching kind inserted when a
//! slot has no real work. The main tree runs the delayed remapping policy
//! (a block fetched into the small tree leaves the main tree and is
//! re-inserted when evicted from the small tree).
//!
//! This models exactly the behaviour the paper measures against: the
//! average win from cheaper small-tree paths, and the pathology on
//! low-locality benchmarks (mcf) where most requests need scarce main-tree
//! slots and the fixed pattern inflates dummy traffic.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use iroram_cache::MemoryHierarchy;
use iroram_dram::{DramSystem, MemRequest, PathTable, SubtreeLayout};
use iroram_protocol::{
    BlockAddr, IntegrityStats, OramConfig, PathOram, PathRecord, RemapPolicy, TreeTopMode,
    ZAllocation,
};
use iroram_sim_engine::{
    profiler, ClockRatio, Cycle, FaultPlan, InjectedFaults, SnapError, SnapReader, SnapWriter,
};

use crate::audit::{AuditReport, AuditState};
use crate::controller::{
    restore_addr_deque, restore_req, save_addr_deque, save_req, DEGRADED_ADMIT_PERIOD,
    OVERFLOW_GRACE_SLOTS,
};
use crate::pipeline::{self, PipelineState, PipelineStats};
use crate::{OramRequest, ReqId, SimError, SlotStats, StashPressure, SystemConfig};

#[derive(Debug)]
enum MainWork {
    Request {
        req: OramRequest,
        pm: VecDeque<BlockAddr>,
        /// Whether to install into the small tree on completion (locality
        /// hint captured at submit time: the PosMap₁ entry was already
        /// PLB-resident).
        install: bool,
    },
    Wb {
        addr: BlockAddr,
        pm: VecDeque<BlockAddr>,
    },
}

#[derive(Debug)]
enum SmallWork {
    /// A demand access that hit the small-tree directory.
    Hit {
        req: OramRequest,
        slot: u64,
        pm: VecDeque<BlockAddr>,
    },
    /// Installation of a freshly fetched block into its small slot.
    Install {
        slot: u64,
        pm: VecDeque<BlockAddr>,
    },
}

fn save_main_work(w: &mut SnapWriter, work: &MainWork) {
    match work {
        MainWork::Request { req, pm, install } => {
            w.put_u8(1);
            save_req(w, req);
            save_addr_deque(w, pm);
            w.put_bool(*install);
        }
        MainWork::Wb { addr, pm } => {
            w.put_u8(2);
            w.put_u64(addr.0);
            save_addr_deque(w, pm);
        }
    }
}

fn restore_main_work(r: &mut SnapReader<'_>) -> Result<MainWork, SnapError> {
    match r.take_u8()? {
        1 => {
            let req = restore_req(r)?;
            let pm = restore_addr_deque(r)?;
            let install = r.take_bool()?;
            Ok(MainWork::Request { req, pm, install })
        }
        2 => {
            let addr = BlockAddr(r.take_u64()?);
            let pm = restore_addr_deque(r)?;
            Ok(MainWork::Wb { addr, pm })
        }
        _ => Err(SnapError::Corrupt("bad main-work tag")),
    }
}

fn save_small_work(w: &mut SnapWriter, work: &SmallWork) {
    match work {
        SmallWork::Hit { req, slot, pm } => {
            w.put_u8(1);
            save_req(w, req);
            w.put_u64(*slot);
            save_addr_deque(w, pm);
        }
        SmallWork::Install { slot, pm } => {
            w.put_u8(2);
            w.put_u64(*slot);
            save_addr_deque(w, pm);
        }
    }
}

fn restore_small_work(r: &mut SnapReader<'_>) -> Result<SmallWork, SnapError> {
    match r.take_u8()? {
        1 => {
            let req = restore_req(r)?;
            let slot = r.take_u64()?;
            let pm = restore_addr_deque(r)?;
            Ok(SmallWork::Hit { req, slot, pm })
        }
        2 => {
            let slot = r.take_u64()?;
            let pm = restore_addr_deque(r)?;
            Ok(SmallWork::Install { slot, pm })
        }
        _ => Err(SnapError::Corrupt("bad small-work tag")),
    }
}

/// The dual-tree ρ controller.
#[derive(Debug)]
pub struct RhoController {
    /// Main-tree protocol (delayed remapping).
    pub main: PathOram,
    /// Small-tree protocol (immediate remapping, on-chip position map).
    pub small: PathOram,
    dram: DramSystem,
    // lint: allow(snapshot-drift, precomputed from the layout at construction)
    main_table: PathTable,
    // lint: allow(snapshot-drift, precomputed from the layout at construction)
    small_table: PathTable,
    // lint: allow(snapshot-drift, configuration, fixed at construction for the whole run)
    small_offset: u64,
    /// Reused path request buffer (reads rewritten in place into writes).
    // lint: allow(snapshot-drift, per-call scratch, cleared before each use)
    reqs_buf: Vec<MemRequest>,
    /// Pipelined mode's deferred write-back batch (read-priority write
    /// buffer, shared by both trees — the slot schedule is one stream).
    /// Always empty at effective depth 1.
    write_buf: Vec<MemRequest>,
    /// small slot → resident data address.
    slots: Vec<Option<u64>>,
    /// data address → small slot.
    directory: BTreeMap<u64, u64>,
    last_use: Vec<u64>,
    use_tick: u64,
    // lint: allow(snapshot-drift, configuration, fixed at construction for the whole run)
    t_interval: u64,
    // lint: allow(snapshot-drift, configuration, fixed at construction for the whole run)
    timing_protection: bool,
    // lint: allow(snapshot-drift, configuration (a pure cycle-ratio converter))
    clock: ClockRatio,
    // lint: allow(snapshot-drift, configuration, fixed at construction for the whole run)
    decrypt_lat: u64,
    // lint: allow(snapshot-drift, configuration, fixed at construction for the whole run)
    front_hit_lat: u64,
    next_slot: Cycle,
    slot_idx: u64,
    main_queue: VecDeque<MainWork>,
    current_main: Option<MainWork>,
    small_queue: VecDeque<SmallWork>,
    current_small: Option<SmallWork>,
    /// The k-deep access pipeline, shared across both trees' slots; `None`
    /// at effective depth 1 (see [`crate::pipeline`]). ρ resolves PosMap
    /// chains at submit time, so only pacing and conflict detection apply.
    pipe: Option<PipelineState>,
    completions: Vec<(ReqId, Cycle)>,
    slot_stats: SlotStats,
    last_write_done: Cycle,
    /// Recently missed addresses (install gate).
    // lint: allow(snapshot-drift, rebuilt from the serialized reuse_order deque on restore)
    reuse_filter: BTreeSet<u64>,
    reuse_order: VecDeque<u64>,
    // lint: allow(snapshot-drift, configuration; restore validates the snapshot against it)
    reuse_capacity: usize,
    /// Audit state (main tree only: small-tree slots are re-used by
    /// different data blocks, so their payloads carry no oracle contract).
    audit: Option<Box<AuditState>>,
    /// Fault plan (None when every rate is zero — the common case).
    faults: Option<FaultPlan>,
    /// CPU cycles charged per detected-and-repaired corrupted bucket.
    // lint: allow(snapshot-drift, configuration, fixed at construction for the whole run)
    refetch_lat: u64,
    /// Hard limit on either stash; staying over it past the bounded grace
    /// is a transient `SimError`.
    // lint: allow(snapshot-drift, configuration, fixed at construction for the whole run)
    stash_hard_limit: usize,
    /// Degradation watermark (¾ of the hard limit); see
    /// [`crate::TimedController`].
    // lint: allow(snapshot-drift, configuration, fixed at construction for the whole run)
    degrade_watermark: usize,
    /// Integrity detections (both trees) already charged a penalty.
    seen_detected: u64,
    penalty_cycles: u64,
    /// Whether a stash-pressure storm suppresses bg eviction this slot.
    storm_now: bool,
    was_bg_pending: bool,
    overflow_slots: u64,
    bg_escalations: u64,
    /// Degraded-mode slot count (see [`StashPressure::degraded_slots`]).
    degraded_slots: u64,
    /// Admissions deferred by the degradation throttle.
    throttled_admissions: u64,
    /// Consecutive slots a stash has sat over the hard limit.
    overflow_grace: u64,
    slots_done: u64,
}

impl RhoController {
    /// Builds the ρ controller: the main tree from `cfg.oram` (forced to
    /// delayed remapping) plus a small tree four levels shorter with `Z=2`
    /// and a fully on-chip position map.
    pub fn new(cfg: &SystemConfig) -> Self {
        let mut main_cfg = cfg.oram.clone();
        main_cfg.remap = RemapPolicy::Delayed;
        let main = PathOram::new(main_cfg);

        let small_levels = cfg.oram.levels.saturating_sub(2).max(3);
        let small_cfg = OramConfig {
            levels: small_levels,
            data_blocks: 1u64 << (small_levels - 1),
            zalloc: ZAllocation::from_z(vec![2; small_levels]),
            treetop: TreeTopMode::None,
            stash_capacity: cfg.oram.stash_capacity,
            // Big enough to hold the whole small position map on-chip.
            plb_sets: 512,
            plb_ways: 4,
            remap: RemapPolicy::Immediate,
            max_bg_evicts_per_access: cfg.oram.max_bg_evicts_per_access,
            encrypt_payloads: cfg.oram.encrypt_payloads,
            integrity: cfg.oram.integrity,
            seed: cfg.oram.seed ^ 0x5A11,
        };
        let mut small = PathOram::new(small_cfg);
        // Warm the small PLB so the on-chip position map never misses.
        let n_small = small.config().data_blocks;
        for a in (0..n_small).step_by(16) {
            for pm in small.posmap_resolve(BlockAddr(a)) {
                small.fetch_posmap_block(pm);
            }
        }
        small.reset_stats();

        let cached = cfg.oram.treetop.cached_levels();
        let main_layout = SubtreeLayout::new(&main.layout().memory_z(cached), cfg.subtree_group);
        let small_layout =
            SubtreeLayout::new(&small.layout().memory_z(0), cfg.subtree_group);
        let small_offset = main_layout.total_lines();
        let n_slots = n_small as usize;
        RhoController {
            main,
            small,
            dram: {
                let mut d = DramSystem::new(cfg.dram);
                d.set_sched_threads(cfg.sched_threads);
                d
            },
            main_table: main_layout.path_table(0),
            small_table: small_layout.path_table(0),
            small_offset,
            reqs_buf: Vec::new(),
            write_buf: Vec::new(),
            slots: vec![None; n_slots],
            directory: BTreeMap::new(),
            last_use: vec![0; n_slots],
            use_tick: 0,
            t_interval: cfg.t_interval,
            timing_protection: cfg.timing_protection,
            clock: cfg.clock,
            decrypt_lat: cfg.decrypt_lat,
            front_hit_lat: cfg.front_hit_lat,
            next_slot: Cycle(cfg.t_interval),
            slot_idx: 0,
            main_queue: VecDeque::new(),
            current_main: None,
            small_queue: VecDeque::new(),
            current_small: None,
            pipe: PipelineState::new(cfg.pipeline_depth),
            completions: Vec::new(),
            slot_stats: SlotStats::default(),
            last_write_done: Cycle::ZERO,
            reuse_filter: BTreeSet::new(),
            reuse_order: VecDeque::new(),
            reuse_capacity: 2 * n_slots,
            audit: cfg.audit.then(|| {
                Box::new(AuditState::new(pipeline::effective_depth(
                    cfg.pipeline_depth,
                )))
            }),
            faults: FaultPlan::new(&cfg.faults, cfg.seed ^ 0xFA01_7C01),
            refetch_lat: cfg.refetch_lat,
            stash_hard_limit: cfg.effective_stash_hard_limit(),
            degrade_watermark: cfg.effective_stash_hard_limit() / 4 * 3,
            seen_detected: 0,
            penalty_cycles: 0,
            storm_now: false,
            was_bg_pending: false,
            overflow_slots: 0,
            bg_escalations: 0,
            degraded_slots: 0,
            throttled_admissions: 0,
            overflow_grace: 0,
            slots_done: 0,
        }
    }

    /// The audit results so far (None unless `cfg.audit` was set).
    pub fn audit_report(&self) -> Option<AuditReport> {
        self.audit.as_ref().map(|a| a.report())
    }

    /// End-of-run audit: a final structural sweep of both trees. No-op when
    /// auditing is off.
    pub fn final_audit(&mut self, _hierarchy: &MemoryHierarchy) {
        let Some(audit) = &mut self.audit else { return };
        audit.note_structural("main tree", self.main.check_invariants());
        audit.note_structural("small tree", self.small.check_invariants());
    }

    /// DRAM statistics (shared by both trees).
    pub fn dram_stats(&self) -> &iroram_dram::DramStats {
        self.dram.stats()
    }

    /// Slot accounting.
    pub fn slot_stats(&self) -> &SlotStats {
        &self.slot_stats
    }

    /// Pipeline counters, if the controller runs at effective depth > 1.
    pub fn pipeline_stats(&self) -> Option<PipelineStats> {
        self.pipe.as_ref().map(PipelineState::stats)
    }

    /// Merged integrity counters of both trees.
    pub fn integrity_stats(&self) -> IntegrityStats {
        let m = self.main.integrity_stats();
        let s = self.small.integrity_stats();
        IntegrityStats {
            injected: m.injected + s.injected,
            detected: m.detected + s.detected,
            recovered: m.recovered + s.recovered,
            undetected: m.undetected + s.undetected,
        }
    }

    /// Counters for faults the plan actually injected (zeros with no plan).
    pub fn fault_injected(&self) -> InjectedFaults {
        self.faults
            .as_ref()
            .map(|p| p.injected())
            .unwrap_or_default()
    }

    /// Total CPU cycles of re-fetch penalty charged for detected
    /// corruption.
    pub fn refetch_penalty_cycles(&self) -> u64 {
        self.penalty_cycles
    }

    /// Stash pressure (main-tree soft capacity; occupancy high-water mark
    /// over both stashes).
    pub fn stash_pressure(&self) -> StashPressure {
        StashPressure {
            soft_capacity: self.main.config().stash_capacity as u64,
            max_occupancy: self.main.stash_peak().max(self.small.stash_peak()) as u64,
            overflow_slots: self.overflow_slots,
            bg_escalations: self.bg_escalations,
            degraded_slots: self.degraded_slots,
            throttled_admissions: self.throttled_admissions,
        }
    }

    /// Slots processed so far (the checkpoint trigger and the snapshot
    /// header's progress field).
    pub fn slots_done(&self) -> u64 {
        self.slots_done
    }

    /// Serializes the controller's complete logical state into a checkpoint
    /// payload. Configuration-derived structures (path tables, layouts,
    /// scratch buffers) are rebuilt by the constructor, not stored.
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.main.save_state(w);
        self.small.save_state(w);
        self.dram.save_state(w);
        w.put_usize(self.write_buf.len());
        for req in &self.write_buf {
            w.put_u64(req.line_addr);
            w.put_bool(req.is_write);
            w.put_u64(req.arrival.0);
        }
        w.put_usize(self.slots.len());
        for s in &self.slots {
            w.put_opt_u64(*s);
        }
        w.put_usize(self.directory.len());
        for (&addr, &slot) in &self.directory {
            w.put_u64(addr);
            w.put_u64(slot);
        }
        w.put_usize(self.last_use.len());
        for &tick in &self.last_use {
            w.put_u64(tick);
        }
        w.put_u64(self.use_tick);
        w.put_u64(self.next_slot.0);
        w.put_u64(self.slot_idx);
        w.put_usize(self.main_queue.len());
        for work in &self.main_queue {
            save_main_work(w, work);
        }
        match &self.current_main {
            None => w.put_u8(0),
            Some(work) => {
                w.put_u8(1);
                save_main_work(w, work);
            }
        }
        w.put_usize(self.small_queue.len());
        for work in &self.small_queue {
            save_small_work(w, work);
        }
        match &self.current_small {
            None => w.put_u8(0),
            Some(work) => {
                w.put_u8(1);
                save_small_work(w, work);
            }
        }
        match &self.pipe {
            None => w.put_u8(0),
            Some(p) => {
                w.put_u8(1);
                p.save_state(w);
            }
        }
        w.put_usize(self.completions.len());
        for &(id, done) in &self.completions {
            w.put_u64(id);
            w.put_u64(done.0);
        }
        w.put_u64(self.slot_stats.total_slots);
        w.put_u64(self.slot_stats.real_slots);
        w.put_u64(self.slot_stats.bg_slots);
        w.put_u64(self.slot_stats.dummy_slots);
        w.put_u64(self.slot_stats.converted_slots);
        w.put_u64(self.last_write_done.0);
        w.put_usize(self.reuse_order.len());
        for &addr in &self.reuse_order {
            w.put_u64(addr);
        }
        match &self.audit {
            None => w.put_u8(0),
            Some(a) => {
                w.put_u8(1);
                a.save_state(w);
            }
        }
        match &self.faults {
            None => w.put_u8(0),
            Some(p) => {
                w.put_u8(1);
                p.save_state(w);
            }
        }
        w.put_u64(self.seen_detected);
        w.put_u64(self.penalty_cycles);
        w.put_bool(self.storm_now);
        w.put_bool(self.was_bg_pending);
        w.put_u64(self.overflow_slots);
        w.put_u64(self.bg_escalations);
        w.put_u64(self.degraded_slots);
        w.put_u64(self.throttled_admissions);
        w.put_u64(self.overflow_grace);
        w.put_u64(self.slots_done);
    }

    /// Restores state written by [`RhoController::save_state`] into a
    /// freshly constructed controller for the same configuration.
    ///
    /// # Errors
    ///
    /// [`SnapError`] when the payload is malformed or inconsistent with
    /// this controller's configuration (slot-table size, reuse-filter
    /// capacity, component presence).
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.main.restore_state(r)?;
        self.small.restore_state(r)?;
        self.dram.restore_state(r)?;
        let n = r.take_seq_len(17)?;
        self.write_buf.clear();
        for _ in 0..n {
            let line_addr = r.take_u64()?;
            let is_write = r.take_bool()?;
            let arrival = Cycle(r.take_u64()?);
            self.write_buf.push(MemRequest {
                line_addr,
                is_write,
                arrival,
            });
        }
        let n = r.take_seq_len(1)?;
        if n != self.slots.len() {
            return Err(SnapError::Corrupt("small-tree slot table size mismatch"));
        }
        for s in &mut self.slots {
            *s = r.take_opt_u64()?;
        }
        let n = r.take_seq_len(16)?;
        if n > self.slots.len() {
            return Err(SnapError::Corrupt("directory larger than the slot table"));
        }
        self.directory.clear();
        let mut last_addr = None;
        for _ in 0..n {
            let addr = r.take_u64()?;
            let slot = r.take_u64()?;
            if last_addr.is_some_and(|prev| addr <= prev) {
                return Err(SnapError::Corrupt("directory entries out of order"));
            }
            last_addr = Some(addr);
            if slot as usize >= self.slots.len() {
                return Err(SnapError::Corrupt("directory points past the slot table"));
            }
            self.directory.insert(addr, slot);
        }
        let n = r.take_seq_len(8)?;
        if n != self.last_use.len() {
            return Err(SnapError::Corrupt("LRU table size mismatch"));
        }
        for tick in &mut self.last_use {
            *tick = r.take_u64()?;
        }
        self.use_tick = r.take_u64()?;
        self.next_slot = Cycle(r.take_u64()?);
        self.slot_idx = r.take_u64()?;
        let n = r.take_seq_len(9)?;
        self.main_queue.clear();
        for _ in 0..n {
            let work = restore_main_work(r)?;
            self.main_queue.push_back(work);
        }
        self.current_main = match r.take_u8()? {
            0 => None,
            1 => Some(restore_main_work(r)?),
            _ => return Err(SnapError::Corrupt("bad current-main tag")),
        };
        let n = r.take_seq_len(9)?;
        self.small_queue.clear();
        for _ in 0..n {
            let work = restore_small_work(r)?;
            self.small_queue.push_back(work);
        }
        self.current_small = match r.take_u8()? {
            0 => None,
            1 => Some(restore_small_work(r)?),
            _ => return Err(SnapError::Corrupt("bad current-small tag")),
        };
        match (r.take_u8()?, &mut self.pipe) {
            (0, None) => {}
            (1, Some(p)) => p.restore_state(r)?,
            _ => return Err(SnapError::Corrupt("pipeline presence mismatch")),
        }
        let n = r.take_seq_len(16)?;
        self.completions.clear();
        for _ in 0..n {
            let id = r.take_u64()?;
            let done = Cycle(r.take_u64()?);
            self.completions.push((id, done));
        }
        self.slot_stats.total_slots = r.take_u64()?;
        self.slot_stats.real_slots = r.take_u64()?;
        self.slot_stats.bg_slots = r.take_u64()?;
        self.slot_stats.dummy_slots = r.take_u64()?;
        self.slot_stats.converted_slots = r.take_u64()?;
        self.last_write_done = Cycle(r.take_u64()?);
        let n = r.take_seq_len(8)?;
        if n > self.reuse_capacity {
            return Err(SnapError::Corrupt("reuse filter larger than its capacity"));
        }
        self.reuse_order.clear();
        self.reuse_filter.clear();
        for _ in 0..n {
            let addr = r.take_u64()?;
            if !self.reuse_filter.insert(addr) {
                return Err(SnapError::Corrupt("duplicate reuse-filter entry"));
            }
            self.reuse_order.push_back(addr);
        }
        match (r.take_u8()?, &mut self.audit) {
            (0, None) => {}
            (1, Some(a)) => a.restore_state(r)?,
            _ => return Err(SnapError::Corrupt("audit presence mismatch")),
        }
        match (r.take_u8()?, &mut self.faults) {
            (0, None) => {}
            (1, Some(p)) => p.restore_state(r)?,
            _ => return Err(SnapError::Corrupt("fault-plan presence mismatch")),
        }
        self.seen_detected = r.take_u64()?;
        self.penalty_cycles = r.take_u64()?;
        self.storm_now = r.take_bool()?;
        self.was_bg_pending = r.take_bool()?;
        self.overflow_slots = r.take_u64()?;
        self.bg_escalations = r.take_u64()?;
        self.degraded_slots = r.take_u64()?;
        self.throttled_admissions = r.take_u64()?;
        self.overflow_grace = r.take_u64()?;
        self.slots_done = r.take_u64()?;
        Ok(())
    }

    /// Demand-queue depth (for CPU back-pressure).
    pub fn queue_len(&self) -> usize {
        self.main_queue.len() + self.small_queue.len()
    }

    /// Whether real work remains in either tree.
    pub fn has_real_work(&self) -> bool {
        self.current_main.is_some()
            || self.current_small.is_some()
            || !self.main_queue.is_empty()
            || !self.small_queue.is_empty()
            || self.main.bg_evict_pending()
            || self.small.bg_evict_pending()
    }

    fn touch(&mut self, slot: u64) {
        self.use_tick += 1;
        self.last_use[slot as usize] = self.use_tick;
    }

    /// On-chip front check: the small-tree stash for directory residents,
    /// the main stash otherwise.
    pub fn front_try(&mut self, addr: BlockAddr, now: Cycle) -> Option<Cycle> {
        if let Some(&slot) = self.directory.get(&addr.0) {
            self.touch(slot);
            return self
                .small
                .front_access(BlockAddr(slot), None)
                .map(|_| now + self.front_hit_lat);
        }
        // Not small-resident → escrow cannot hit (escrow == small-resident),
        // so this only serves genuine main-stash residents.
        let (_, payload) = self.main.front_access(addr, None)?;
        if let Some(audit) = &mut self.audit {
            audit.oracle_read(addr.0, payload);
        }
        Some(now + self.front_hit_lat)
    }

    /// Submits a demand request.
    pub fn submit(&mut self, req: OramRequest) {
        if let Some(&slot) = self.directory.get(&req.addr.0) {
            self.touch(slot);
            let pm = {
                let _p = profiler::enter(profiler::Phase::PosMap);
                self.small.posmap_resolve(BlockAddr(slot)).into()
            };
            self.small_queue.push_back(SmallWork::Hit { req, slot, pm });
        } else {
            let pm: VecDeque<BlockAddr> = {
                let _p = profiler::enter(profiler::Phase::PosMap);
                self.main.posmap_resolve(req.addr).into()
            };
            // Install only blocks with observed re-reference behaviour: a
            // miss whose address was missed before (within the filter
            // window) has mid-range reuse worth caching in the small tree;
            // a streaming sweep or a uniform-random probe does not.
            let install = self.reuse_filter.contains(&req.addr.0);
            self.remember_miss(req.addr.0);
            self.main_queue
                .push_back(MainWork::Request { req, pm, install });
        }
    }

    /// Records a missed address in the bounded reuse filter.
    fn remember_miss(&mut self, addr: u64) {
        if self.reuse_filter.insert(addr) {
            self.reuse_order.push_back(addr);
            if self.reuse_order.len() > self.reuse_capacity {
                if let Some(old) = self.reuse_order.pop_front() {
                    self.reuse_filter.remove(&old);
                }
            }
        }
    }

    /// LLC eviction notification.
    pub fn on_llc_eviction(&mut self, addr: BlockAddr, dirty: bool, _now: Cycle, _id: ReqId) {
        if self.directory.contains_key(&addr.0) {
            // Block is small-tree resident; its content is already owned by
            // the small tree (dirty data merges on the next small access).
            return;
        }
        if self.main.is_escrowed(addr) {
            let pm = {
                let _p = profiler::enter(profiler::Phase::PosMap);
                self.main.posmap_resolve(addr).into()
            };
            self.main_queue.push_back(MainWork::Wb { addr, pm });
        } else if dirty {
            // Still mapped in the main tree: a write access re-fetches it.
            let pm = {
                let _p = profiler::enter(profiler::Phase::PosMap);
                self.main.posmap_resolve(addr).into()
            };
            self.main_queue.push_back(MainWork::Request {
                req: OramRequest {
                    id: u64::MAX,
                    addr,
                    arrival: _now,
                    blocking: false,
                },
                pm,
                install: false,
            });
        }
    }

    /// Drains accumulated completions.
    pub fn take_completions(&mut self) -> Vec<(ReqId, Cycle)> {
        std::mem::take(&mut self.completions)
    }

    /// Processes every slot due at or before `now`.
    pub fn advance_until(
        &mut self,
        now: Cycle,
        hierarchy: &mut MemoryHierarchy,
    ) -> Result<(), SimError> {
        while self.next_slot <= now {
            self.process_slot(hierarchy)?;
        }
        Ok(())
    }

    /// Advances until request `id` completes. An unknown request (never
    /// submitted) surfaces as [`SimError::RequestStuck`].
    pub fn advance_until_complete(
        &mut self,
        id: ReqId,
        hierarchy: &mut MemoryHierarchy,
    ) -> Result<Cycle, SimError> {
        loop {
            if let Some(&(_, done)) = self.completions.iter().find(|&&(rid, _)| rid == id) {
                return Ok(done);
            }
            if !self.has_real_work() {
                return Err(SimError::RequestStuck { id });
            }
            self.process_slot(hierarchy)?;
        }
    }

    /// Advances until the demand queues drop below `limit`.
    pub fn advance_until_queue_below(
        &mut self,
        limit: usize,
        hierarchy: &mut MemoryHierarchy,
    ) -> Result<Cycle, SimError> {
        while self.queue_len() >= limit {
            self.process_slot(hierarchy)?;
        }
        Ok(self.next_slot)
    }

    /// Runs until all real work drains.
    pub fn drain(&mut self, hierarchy: &mut MemoryHierarchy) -> Result<Cycle, SimError> {
        while self.has_real_work() {
            self.process_slot(hierarchy)?;
        }
        // Pipelined: the last slot's write-back is still deferred — land it
        // so the run's DRAM traffic and retirement time are complete.
        self.flush_writes();
        Ok(self.last_write_done.max(self.next_slot))
    }

    /// Issues one slot following the 1 main : 2 small fixed pattern.
    pub fn process_slot(&mut self, _hierarchy: &mut MemoryHierarchy) -> Result<(), SimError> {
        if let Some(audit) = &mut self.audit {
            if audit.structural_due() {
                audit.note_structural("main tree", self.main.check_invariants());
                audit.note_structural("small tree", self.small.check_invariants());
            }
        }
        // Fault plan: one storm/corruption decision per slot (corruption
        // targets the main tree — the off-chip bulk of ρ's storage).
        self.storm_now = false;
        if let Some(plan) = &mut self.faults {
            self.storm_now = plan.storm_active();
            if let Some((pick, mask)) = plan.corrupt_line() {
                self.inject_corruption(pick, mask);
            }
        }
        // Stash pressure over both trees, plus the hard limit.
        let occupancy = self.main.stash_len().max(self.small.stash_len());
        // lint: allow(secret-flow, overflow stats counter; occupancy never alters the issued DRAM schedule)
        if occupancy > self.main.config().stash_capacity {
            self.overflow_slots += 1;
        }
        let pending = self.main.bg_evict_pending() || self.small.bg_evict_pending();
        if pending && !self.was_bg_pending {
            self.bg_escalations += 1;
        }
        self.was_bg_pending = pending;
        // Graceful degradation mirrors the single-tree controller: over the
        // watermark new-work admission throttles; over the hard limit a
        // bounded grace window lets eviction recover before the typed
        // overflow error fires.
        let degraded = occupancy > self.degrade_watermark;
        // lint: allow(secret-flow, degraded-slot stats counter; the admission gate below is the sanctioned throttle)
        if degraded {
            self.degraded_slots += 1;
        }
        // lint: allow(secret-flow, documented graceful-degradation exit; clean runs stay under the watermark so the schedule is unchanged)
        if occupancy > self.stash_hard_limit {
            self.overflow_grace += 1;
            if self.overflow_grace > OVERFLOW_GRACE_SLOTS {
                return Err(SimError::StashOverflow {
                    occupancy,
                    hard_limit: self.stash_hard_limit,
                    slot: self.slots_done,
                });
            }
        } else {
            self.overflow_grace = 0;
        }
        // Degraded admission gate (see the single-tree controller): full
        // stop above the hard limit, one-in-DEGRADED_ADMIT_PERIOD admission
        // between the watermark and the hard limit so throttling can never
        // stall the run outright.
        let throttle = occupancy > self.stash_hard_limit
            || (degraded && !self.slots_done.is_multiple_of(DEGRADED_ADMIT_PERIOD));
        self.slots_done += 1;
        let t = self.next_slot;
        let is_main = self.slot_idx.is_multiple_of(3);
        self.slot_idx += 1;
        let issued = if is_main {
            self.main_slot(t, throttle)?
        } else {
            self.small_slot(t, throttle)?
        };
        self.slot_stats.total_slots += 1;
        match issued {
            Some((path, is_small_tree, completes)) => {
                self.slot_stats.real_slots += 1;
                self.finish_path(t, path, is_small_tree, completes);
            }
            None => {
                if self.timing_protection {
                    self.slot_stats.dummy_slots += 1;
                    let (path, small) = {
                        let _p = profiler::enter(profiler::Phase::Stash);
                        if is_main {
                            (self.main.dummy_path(), false)
                        } else {
                            (self.small.dummy_path(), true)
                        }
                    };
                    self.finish_path(t, path, small, None);
                } else {
                    self.slot_stats.total_slots -= 1; // idle, not a slot
                    self.next_slot = t + self.t_interval;
                }
            }
        }
        Ok(())
    }

    /// Maps a fault-plan corruption draw onto one main-tree memory bucket
    /// slot and flips its stored payload.
    fn inject_corruption(&mut self, pick: u64, mask: u64) {
        let cached = self.main.config().treetop.cached_levels();
        let levels = self.main.config().levels;
        if cached >= levels {
            return;
        }
        let span = (levels - cached) as u64;
        let level = cached + (pick % span) as usize;
        let bucket = (pick >> 8) % (1u64 << level);
        let z = self.main.layout().z_of(level) as u64;
        let slot = ((pick >> 40) % z) as u32;
        self.main.inject_tree_fault(level, bucket, slot, mask);
    }

    /// Finds the path for a main-tree slot.
    #[allow(clippy::type_complexity)]
    fn main_slot(
        &mut self,
        t: Cycle,
        throttle: bool,
    ) -> Result<Option<(PathRecord, bool, Option<ReqId>)>, SimError> {
        loop {
            match self.current_main.take() {
                Some(MainWork::Request {
                    req,
                    mut pm,
                    install,
                }) => {
                    if let Some(pm_addr) = pm.pop_front() {
                        let rec = {
                            let _p = profiler::enter(profiler::Phase::PosMap);
                            self.main.fetch_posmap_block(pm_addr)
                        };
                        if let Some(audit) = &mut self.audit {
                            audit.oracle_read(pm_addr.0, rec.payload);
                        }
                        self.current_main = Some(MainWork::Request { req, pm, install });
                        if let Some(&p) = rec.paths.first() {
                            return Ok(Some((p, false, None)));
                        }
                        continue;
                    }
                    // A duplicate request may find the block already
                    // small-resident (escrowed) — serve it without a path.
                    if self.main.is_escrowed(req.addr)
                        || self.directory.contains_key(&req.addr.0)
                        || self.main.front_access(req.addr, None).is_some()
                    {
                        if req.blocking {
                            self.completions.push((req.id, t + self.front_hit_lat));
                        }
                        continue;
                    }
                    // Data phase: fetch, then install into the small tree —
                    // but only blocks showing locality (their PosMap₁ entry
                    // was PLB-resident). Installing every random-access
                    // block would churn the small tree with install/evict
                    // traffic for data that will never be re-referenced,
                    // which is not what ρ's hierarchy does for streaming /
                    // pointer-chasing workloads.
                    let rec = {
                        let _p = profiler::enter(profiler::Phase::Stash);
                        self.main.data_access(req.addr, None)?
                    };
                    if let Some(audit) = &mut self.audit {
                        audit.oracle_read(req.addr.0, rec.payload);
                    }
                    let completes = req.blocking.then_some(req.id);
                    if install {
                        self.schedule_install(req.addr);
                    } else if self.main.is_escrowed(req.addr) {
                        // Not worth caching: send it straight back to the
                        // main tree (a free stash insert under delayed
                        // remapping — the PosMap is already resolved).
                        self.main.delayed_insert_block(req.addr)?;
                    }
                    match rec.paths.first() {
                        Some(&p) => return Ok(Some((p, false, completes))),
                        None => {
                            if let Some(id) = completes {
                                self.completions.push((id, t + self.front_hit_lat));
                            }
                            continue;
                        }
                    }
                }
                Some(MainWork::Wb { addr, mut pm }) => {
                    if let Some(pm_addr) = pm.pop_front() {
                        let rec = {
                            let _p = profiler::enter(profiler::Phase::PosMap);
                            self.main.fetch_posmap_block(pm_addr)
                        };
                        if let Some(audit) = &mut self.audit {
                            audit.oracle_read(pm_addr.0, rec.payload);
                        }
                        self.current_main = Some(MainWork::Wb { addr, pm });
                        if let Some(&p) = rec.paths.first() {
                            return Ok(Some((p, false, None)));
                        }
                        continue;
                    }
                    if self.main.is_escrowed(addr) {
                        self.main.delayed_insert_block(addr)?;
                    }
                    continue;
                }
                None => {}
            }
            if !self.storm_now && self.main.bg_evict_pending() {
                self.slot_stats.bg_slots += 1;
                let path = {
                    let _p = profiler::enter(profiler::Phase::Stash);
                    self.main.bg_evict_once()
                };
                return Ok(Some((path, false, None)));
            }
            // Degraded mode: queued work waits while background eviction
            // (which already outranks admission) drains the stash.
            if throttle {
                if !self.main_queue.is_empty() {
                    self.throttled_admissions += 1;
                }
                return Ok(None);
            }
            if let Some(work) = self.main_queue.pop_front() {
                self.current_main = Some(work);
                continue;
            }
            return Ok(None);
        }
    }

    /// Finds the path for a small-tree slot.
    #[allow(clippy::type_complexity)]
    fn small_slot(
        &mut self,
        t: Cycle,
        throttle: bool,
    ) -> Result<Option<(PathRecord, bool, Option<ReqId>)>, SimError> {
        loop {
            match self.current_small.take() {
                Some(SmallWork::Hit { req, slot, mut pm }) => {
                    if let Some(pm_addr) = pm.pop_front() {
                        let rec = {
                            let _p = profiler::enter(profiler::Phase::PosMap);
                            self.small.fetch_posmap_block(pm_addr)
                        };
                        self.current_small = Some(SmallWork::Hit { req, slot, pm });
                        if let Some(&p) = rec.paths.first() {
                            return Ok(Some((p, true, None)));
                        }
                        continue;
                    }
                    let rec = {
                        let _p = profiler::enter(profiler::Phase::Stash);
                        self.small.data_access(BlockAddr(slot), None)?
                    };
                    let completes = req.blocking.then_some(req.id);
                    match rec.paths.first() {
                        Some(&p) => return Ok(Some((p, true, completes))),
                        None => {
                            if let Some(id) = completes {
                                self.completions.push((id, t + self.front_hit_lat));
                            }
                            continue;
                        }
                    }
                }
                Some(SmallWork::Install { slot, mut pm }) => {
                    if let Some(pm_addr) = pm.pop_front() {
                        let rec = {
                            let _p = profiler::enter(profiler::Phase::PosMap);
                            self.small.fetch_posmap_block(pm_addr)
                        };
                        self.current_small = Some(SmallWork::Install { slot, pm });
                        if let Some(&p) = rec.paths.first() {
                            return Ok(Some((p, true, None)));
                        }
                        continue;
                    }
                    let rec = {
                        let _p = profiler::enter(profiler::Phase::Stash);
                        self.small.data_access(BlockAddr(slot), None)?
                    };
                    match rec.paths.first() {
                        Some(&p) => return Ok(Some((p, true, None))),
                        None => continue,
                    }
                }
                None => {}
            }
            if !self.storm_now && self.small.bg_evict_pending() {
                self.slot_stats.bg_slots += 1;
                let path = {
                    let _p = profiler::enter(profiler::Phase::Stash);
                    self.small.bg_evict_once()
                };
                return Ok(Some((path, true, None)));
            }
            if throttle {
                if !self.small_queue.is_empty() {
                    self.throttled_admissions += 1;
                }
                return Ok(None);
            }
            if let Some(work) = self.small_queue.pop_front() {
                self.current_small = Some(work);
                continue;
            }
            return Ok(None);
        }
    }

    /// Allocates a small-tree slot for `addr` (evicting the LRU resident if
    /// needed) and enqueues the install path.
    fn schedule_install(&mut self, addr: BlockAddr) {
        let slot = match self.slots.iter().position(Option::is_none) {
            Some(free) => free as u64,
            None => {
                let victim = (0..self.slots.len())
                    .min_by_key(|&i| self.last_use[i])
                    .expect("small tree has slots") as u64;
                let old = self.slots[victim as usize]
                    .take()
                    .expect("occupied victim");
                self.directory.remove(&old);
                // The evicted block returns to the main tree.
                let pm = {
                    let _p = profiler::enter(profiler::Phase::PosMap);
                    self.main.posmap_resolve(BlockAddr(old)).into()
                };
                self.main_queue.push_back(MainWork::Wb {
                    addr: BlockAddr(old),
                    pm,
                });
                victim
            }
        };
        self.slots[slot as usize] = Some(addr.0);
        self.directory.insert(addr.0, slot);
        self.touch(slot);
        let pm = {
            let _p = profiler::enter(profiler::Phase::PosMap);
            self.small.posmap_resolve(BlockAddr(slot)).into()
        };
        self.small_queue.push_back(SmallWork::Install { slot, pm });
    }

    /// Flushes the deferred write-back batch (pipelined mode) into the
    /// memory controller, records the path as in flight for conflict
    /// detection, and returns the write completion — `None` when nothing
    /// was pending.
    fn flush_writes(&mut self) -> Option<Cycle> {
        let pending = self.pipe.as_mut()?.take_pending()?;
        let write_done = self
            .dram
            .schedule_batch_done(&self.write_buf, pending.read_done);
        self.write_buf.clear();
        if let Some(pipe) = &mut self.pipe {
            pipe.record(pending.leaf, pending.small_tree, write_done);
        }
        self.last_write_done = self
            .last_write_done
            .max(self.clock.slow_to_fast(write_done));
        Some(write_done)
    }

    /// Lines of the deferred write-back batch still awaiting flush (0 in
    /// serial mode); [`RhoController::drain`] flushes it.
    pub fn deferred_write_lines(&self) -> u64 {
        self.write_buf.len() as u64
    }

    /// Schedules a path's DRAM traffic (small-tree paths use the address
    /// region after the main tree).
    fn finish_path(
        &mut self,
        t: Cycle,
        path: PathRecord,
        small_tree: bool,
        completes: Option<ReqId>,
    ) {
        let _phase = profiler::enter(profiler::Phase::DramSchedule);
        let table = if small_tree {
            &self.small_table
        } else {
            &self.main_table
        };
        let req_before = self.dram.stats().requests;
        // Transient bank stall (see `TimedController::finish_path`).
        let stall = self.faults.as_mut().map_or(0, |p| p.bank_stall());
        let mut arrival = self.clock.fast_to_slow(t) + stall;
        // Pipelined: a path sharing a memory bucket with the still-deferred
        // write batch flushes it first (write-before-read on a shared
        // bucket); one sharing with an older unretired in-flight path of
        // the same tree is held until its write-back retires (the trees
        // occupy disjoint DRAM regions, so cross-tree paths never
        // conflict).
        if self
            .pipe
            .as_mut()
            // lint: allow(secret-flow, leaf already revealed by this path access; the conflict check compares only public path addresses)
            .is_some_and(|p| p.pending_conflicts(table, path.leaf.0, small_tree))
        {
            if let Some(done) = self.flush_writes() {
                arrival = arrival.max(done);
            }
        }
        let (table, offset) = if small_tree {
            (&self.small_table, self.small_offset)
        } else {
            (&self.main_table, 0)
        };
        if let Some(pipe) = &mut self.pipe {
            // lint: allow(secret-flow, leaf already revealed by this path access; the hold compares only public path addresses)
            if let Some(hold) = pipe.conflict_hold(table, path.leaf.0, small_tree, arrival) {
                arrival = hold;
            }
        }
        table.fill_reads(path.leaf.0, offset, arrival, &mut self.reqs_buf);
        let lines = self.reqs_buf.len() as u64;
        let read_done = self.dram.schedule_batch_done(&self.reqs_buf, arrival);
        let write_done = if self.pipe.is_some() {
            // Read-priority write-back (see `TimedController::finish_path`):
            // flush the previous slot's deferred writes behind this read,
            // then defer our own batch the same way.
            self.flush_writes();
            self.write_buf.clear();
            self.write_buf.extend(self.reqs_buf.iter().map(|r| {
                let mut w = *r;
                w.is_write = true;
                w.arrival = read_done;
                w
            }));
            if let Some(pipe) = &mut self.pipe {
                pipe.stash_write(path.leaf.0, small_tree, read_done);
            }
            None
        } else {
            // Write-back touches the same lines: rewrite the batch in place
            // rather than building a second request vector.
            for r in &mut self.reqs_buf {
                r.is_write = true;
                r.arrival = read_done;
            }
            Some(self.dram.schedule_batch_done(&self.reqs_buf, read_done))
        };
        // Re-fetch penalty for corruption detected by this path's read
        // phase (see `TimedController::finish_path`).
        let detected = self.integrity_stats().detected;
        let penalty = (detected - self.seen_detected) * self.refetch_lat;
        self.seen_detected = detected;
        self.penalty_cycles += penalty;
        let read_floor_cpu = self.clock.slow_to_fast(read_done) + penalty;
        let read_done_cpu = read_floor_cpu + self.decrypt_lat;
        if let Some(wd) = write_done {
            let write_done_cpu = self.clock.slow_to_fast(wd);
            self.last_write_done = self.last_write_done.max(write_done_cpu);
        }
        if let Some(id) = completes {
            self.completions.push((id, read_done_cpu));
        }
        if let Some(audit) = &mut self.audit {
            let expected = if small_tree {
                self.small.layout().path_len_memory(0)
            } else {
                let cached = self.main.config().treetop.cached_levels();
                self.main.layout().path_len_memory(cached)
            };
            audit.note_slot(t, self.t_interval, read_floor_cpu, self.timing_protection);
            audit.check_conservation(
                lines,
                expected,
                self.dram.stats().requests - req_before,
                self.dram.latency_underflows(),
                self.write_buf.len() as u64,
            );
        }
        // See `TimedController::finish_path`: pace on the read phase; the
        // write phase overlaps the next path through DRAM state. Both
        // trees' slots share one schedule, so one pipeline paces them all.
        self.next_slot = match &mut self.pipe {
            Some(pipe) => pipe.pace(t, self.t_interval, read_floor_cpu),
            None => (t + self.t_interval).max(read_floor_cpu),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scheme;
    use iroram_cache::HierarchyConfig;

    fn tiny_rho() -> (RhoController, MemoryHierarchy) {
        let mut cfg = SystemConfig::scaled(Scheme::Rho);
        cfg.oram.levels = 9;
        cfg.oram.data_blocks = 1 << 10;
        cfg.oram.zalloc = ZAllocation::uniform(9, 4);
        cfg.oram.treetop = TreeTopMode::Dedicated { levels: 3 };
        cfg.oram.plb_sets = 4;
        cfg.oram.plb_ways = 2;
        let cfg = cfg.with_scheme(Scheme::Rho);
        let h = MemoryHierarchy::new(HierarchyConfig {
            l1_sets: 8,
            l1_assoc: 2,
            llc_sets: 32,
            llc_assoc: 4,
        });
        (RhoController::new(&cfg), h)
    }

    #[test]
    fn re_referenced_block_installs_into_small_tree() {
        let (mut rho, mut h) = tiny_rho();
        let addr = BlockAddr(17);
        if rho.front_try(addr, Cycle(0)).is_some() {
            return;
        }
        // First touch: PLB cold → no locality signal → no install.
        rho.submit(OramRequest {
            id: 1,
            addr,
            arrival: Cycle(0),
            blocking: true,
        });
        let done = rho.advance_until_complete(1, &mut h).unwrap();
        assert!(done > Cycle(0));
        rho.drain(&mut h).unwrap();
        assert!(
            !rho.directory.contains_key(&addr.0),
            "cold first touch must not install"
        );
        // Second touch: the PosMap1 entry is PLB-resident → install.
        if rho.front_try(addr, Cycle(1_000_000)).is_none() {
            rho.submit(OramRequest {
                id: 2,
                addr,
                arrival: Cycle(1_000_000),
                blocking: true,
            });
            rho.advance_until_complete(2, &mut h).unwrap();
            rho.drain(&mut h).unwrap();
            assert!(
                rho.directory.contains_key(&addr.0),
                "re-referenced block installs in the small tree"
            );
            assert!(rho.main.is_escrowed(addr), "left the main tree");
        }
    }

    #[test]
    fn small_resident_access_avoids_main_tree() {
        let (mut rho, mut h) = tiny_rho();
        let addr = BlockAddr(33);
        // Touch twice so the block installs (locality gate).
        let mut id = 0;
        for t in [0u64, 1_000_000] {
            if rho.front_try(addr, Cycle(t)).is_none() {
                id += 1;
                rho.submit(OramRequest {
                    id,
                    addr,
                    arrival: Cycle(t),
                    blocking: true,
                });
                rho.advance_until_complete(id, &mut h).unwrap();
                rho.drain(&mut h).unwrap();
            }
        }
        if !rho.directory.contains_key(&addr.0) {
            return; // served on-chip throughout; nothing to check
        }
        let main_data_before = rho.main.stats().data_paths;
        // Re-access: must be served without main-tree data paths.
        if rho.front_try(addr, Cycle(2_000_000)).is_none() {
            rho.submit(OramRequest {
                id: 99,
                addr,
                arrival: Cycle(2_000_000),
                blocking: true,
            });
            rho.advance_until_complete(99, &mut h).unwrap();
        }
        assert_eq!(
            rho.main.stats().data_paths,
            main_data_before,
            "small-tree hit must not touch the main tree"
        );
    }

    #[test]
    fn fixed_pattern_issues_dummies_of_both_kinds() {
        let (mut rho, mut h) = tiny_rho();
        for _ in 0..30 {
            rho.process_slot(&mut h).unwrap();
        }
        assert_eq!(rho.slot_stats().dummy_slots, 30);
        assert!(rho.main.stats().dummy_paths >= 9);
        assert!(rho.small.stats().dummy_paths >= 19);
    }

    #[test]
    fn small_tree_eviction_writes_back_to_main() {
        let (mut rho, mut h) = tiny_rho();
        let capacity = rho.slots.len();
        // Fill the small tree beyond capacity (two passes: the locality
        // gate installs on the second touch).
        let mut id = 0;
        for pass in 0..2u64 {
            for a in 0..(capacity as u64 + 4) {
                let addr = BlockAddr(a);
                if rho.front_try(addr, Cycle(pass)).is_none() {
                    id += 1;
                    rho.submit(OramRequest {
                        id,
                        addr,
                        arrival: Cycle(pass),
                        blocking: false,
                    });
                }
            }
            rho.drain(&mut h).unwrap();
        }
        assert!(
            rho.directory.len() <= capacity,
            "directory bounded by small-tree capacity"
        );
        // Evicted blocks must be back in the main tree (not escrowed).
        let escrowed: usize = rho.main.escrowed().count();
        assert_eq!(escrowed, rho.directory.len(), "escrow == small residents");
    }

    #[test]
    fn small_plb_is_warm() {
        let (rho, _) = tiny_rho();
        let (hits, misses) = rho.small.plb_counters();
        assert_eq!(hits, 0, "stats were reset after warmup");
        assert_eq!(misses, 0);
    }
}
