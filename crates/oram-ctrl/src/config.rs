//! System configuration and the paper's scheme matrix.

use serde::{Deserialize, Serialize};

use iroram_cache::HierarchyConfig;
use iroram_dram::DramConfig;
use iroram_protocol::{AllocPreset, OramConfig, RemapPolicy, TreeTopMode, ZAllocation};
use iroram_sim_engine::{ClockRatio, FaultConfig};

/// The evaluated configurations (paper Section VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Traditional Path ORAM \[27\] with Freecursive \[8\], ten top tree
    /// levels in a dedicated cache, subtree layout and background eviction
    /// \[25\].
    Baseline,
    /// The ρ design \[23\]: a smaller ORAM tree absorbing most accesses,
    /// 1 main : 2 small fixed issue pattern, delayed remapping.
    Rho,
    /// IR-Alloc over Baseline (standalone setting: `Z=1`/`Z=2` middle
    /// ranges — IR-Alloc4).
    IrAlloc,
    /// IR-Stash over Baseline (4-way S-Stash).
    IrStash,
    /// IR-DWB over Baseline.
    IrDwb,
    /// All three IR techniques (integrated `Z` setting — IR-Alloc1).
    IrOram,
    /// Baseline with the delayed block-remapping policy \[23\].
    LlcD,
    /// IR-Alloc + IR-Stash on top of the LLC-D baseline (Fig. 11).
    IrAllocStashOnLlcD,
}

/// All schemes, in the paper's presentation order.
pub const ALL_SCHEMES: [Scheme; 8] = [
    Scheme::Baseline,
    Scheme::Rho,
    Scheme::IrAlloc,
    Scheme::IrStash,
    Scheme::IrDwb,
    Scheme::IrOram,
    Scheme::LlcD,
    Scheme::IrAllocStashOnLlcD,
];

impl Scheme {
    /// Display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Baseline => "Baseline",
            Scheme::Rho => "Rho",
            Scheme::IrAlloc => "IR-Alloc",
            Scheme::IrStash => "IR-Stash",
            Scheme::IrDwb => "IR-DWB",
            Scheme::IrOram => "IR-ORAM",
            Scheme::LlcD => "LLC-D",
            Scheme::IrAllocStashOnLlcD => "IR-Stash+IR-Alloc(LLC-D)",
        }
    }

    /// Whether this scheme enables the IR-DWB dummy-conversion engine.
    pub fn uses_dwb(self) -> bool {
        matches!(self, Scheme::IrDwb | Scheme::IrOram)
    }

    /// Whether this scheme runs the ρ dual-tree controller.
    pub fn uses_rho(self) -> bool {
        matches!(self, Scheme::Rho)
    }
}

/// Full-system configuration (paper Table I, scaled).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Scheme under evaluation.
    pub scheme: Scheme,
    /// ORAM protocol configuration (already scheme-adjusted; see
    /// [`SystemConfig::scaled`]).
    pub oram: OramConfig,
    /// Cache hierarchy configuration.
    pub hierarchy: HierarchyConfig,
    /// DRAM configuration.
    pub dram: DramConfig,
    /// Path issue interval `T` in CPU cycles (the paper uses 1000).
    pub t_interval: u64,
    /// Whether timing-channel protection (fixed-rate issue + dummies) is on.
    pub timing_protection: bool,
    /// CPU : DRAM clock ratio (3.2 GHz : 800 MHz).
    pub clock: ClockRatio,
    /// Reorder-buffer size in instructions (Table I: 128).
    pub rob_insts: u64,
    /// Retire width (Table I: 4).
    pub ipc: u64,
    /// Outstanding read-miss limit.
    pub mshrs: usize,
    /// L1 hit latency (CPU cycles).
    pub l1_hit_lat: u64,
    /// LLC hit latency (CPU cycles).
    pub llc_hit_lat: u64,
    /// On-chip ORAM front-store (stash/S-Stash) hit latency.
    pub front_hit_lat: u64,
    /// Decrypt + authenticate latency added to path-read completion.
    pub decrypt_lat: u64,
    /// Subtree-layout group height (levels per packed subtree).
    pub subtree_group: u32,
    /// Seed for all stochastic components.
    pub seed: u64,
    /// Run the audit subsystem (functional oracle, timing / conservation /
    /// structural / IR-DWB coherence checks — see [`crate::AuditReport`]).
    /// Audits observe only: every reported number is identical with this
    /// flag on or off.
    #[serde(default)]
    pub audit: bool,
    /// Fault-injection configuration (all rates zero by default; a zero-rate
    /// config builds no plan and cannot perturb the run in any way).
    #[serde(default)]
    pub faults: FaultConfig,
    /// CPU cycles charged per detected-and-repaired corrupted bucket — the
    /// modelled cost of re-fetching the bucket from redundancy (IRO's
    /// recovery path). Folded into the path's read-phase completion, so the
    /// timing schedule stretches publicly and stays audit-clean.
    #[serde(default)]
    pub refetch_lat: u64,
    /// Hard stash limit in blocks (the modelled SRAM's physical size).
    /// `0` means 8 × the soft capacity. Crossing it is a transient
    /// [`crate::SimError::StashOverflow`], not a panic.
    #[serde(default)]
    pub stash_hard_limit: usize,
    /// Host worker threads for intra-batch DRAM scheduling (`1` = serial,
    /// the default). Purely an execution knob: DRAM channels are
    /// independent, and the scheduler merges per-channel results in fixed
    /// channel order, so every value produces byte-identical reports.
    /// Batches below [`iroram_dram::DramSystem::PARALLEL_MIN_BATCH`]
    /// requests always schedule serially regardless of this setting
    /// (`0` is clamped to serial at the scheduler).
    #[serde(default)]
    pub sched_threads: u32,
    /// Access-pipeline depth of the timed controllers (`1` = serial, the
    /// default): how many path accesses may be in flight at once. At depth
    /// `k`, a slot's issue time is floored by the read completion of the
    /// access `k` slots back instead of the immediately preceding one, the
    /// next request's PosMap lookup is resolved speculatively, and two
    /// in-flight paths that share memory-level buckets serialize at DRAM
    /// (their blocks are held via the stash escrow). `0` is rejected at
    /// `--set` parse time and clamped to `1` by the controllers.
    #[serde(default)]
    pub pipeline_depth: u32,
    /// Checkpoint interval in path slots (`0` = checkpointing off, the
    /// default). When set, the runner snapshots the complete simulation
    /// state every N slots so a killed run resumes mid-cell and finishes
    /// with a report byte-identical to an uninterrupted one. Purely an
    /// execution knob: it never changes what is simulated.
    #[serde(default)]
    pub checkpoint_interval: u64,
}

impl SystemConfig {
    /// Path-issue interval preserving the paper's intensity regime.
    ///
    /// The paper's evaluation sits in the *service-bound* regime: with
    /// `T = 1000` and 60+60 blocks per baseline path on USIMM, a path takes
    /// longer than `T` to service, so execution time tracks blocks-per-path
    /// — that is exactly why IR-Alloc's PL reduction (60 → 36) buys its 41%
    /// (Section VI-A), and why "Path ORAM may easily deplete the peak
    /// off-chip memory bandwidth" (Section II-B). Our DRAM model extracts
    /// more per-access efficiency than USIMM (near-ideal channel
    /// interleaving), so to land in the same regime the scaled `T` is set
    /// below the baseline path's service time: ~8.3 CPU cycles per
    /// *read-phase* block. Security is unaffected — `T` is a public
    /// constant per configuration, identical for every scheme compared.
    pub fn t_for(oram: &OramConfig) -> u64 {
        let baseline_pl = ZAllocation::uniform(oram.levels, 4)
            .path_len(oram.treetop.cached_levels());
        // ×25/3 ≈ 8.33 CPU cycles per block.
        (baseline_pl * 25 / 3).max(100)
    }

    /// The scaled default system for `scheme`: a 17-level tree protecting
    /// 2^18 data blocks, caches scaled 32× down from Table I, DDR3-1600
    /// with 4 channels, `T` scaled per [`SystemConfig::t_for`].
    pub fn scaled(scheme: Scheme) -> Self {
        let oram = OramConfig::scaled_default();
        let t_interval = Self::t_for(&oram);
        let base = SystemConfig {
            scheme,
            oram,
            hierarchy: HierarchyConfig::scaled(32),
            dram: DramConfig::default(),
            t_interval,
            timing_protection: true,
            clock: ClockRatio::cpu_dram_default(),
            rob_insts: 128,
            ipc: 4,
            mshrs: 8,
            l1_hit_lat: 2,
            llc_hit_lat: 12,
            front_hit_lat: 20,
            decrypt_lat: 50,
            subtree_group: 4,
            seed: 0x1235,
            audit: false,
            faults: FaultConfig::none(),
            refetch_lat: 100,
            stash_hard_limit: 0,
            sched_threads: 1,
            pipeline_depth: 1,
            checkpoint_interval: 0,
        };
        base.with_scheme(scheme)
    }

    /// Returns a copy reconfigured for `scheme` (tree allocation, tree-top
    /// store, remap policy and engines set per the paper's Section VI).
    pub fn with_scheme(&self, scheme: Scheme) -> Self {
        let mut cfg = self.clone();
        cfg.scheme = scheme;
        let levels = cfg.oram.levels;
        let top = cfg.oram.treetop.cached_levels().max(1);
        let dedicated = TreeTopMode::Dedicated { levels: top };
        let irstash = TreeTopMode::ir_stash_sized(top);
        let uniform = ZAllocation::uniform(levels, 4);
        let alloc_standalone = ZAllocation::preset(AllocPreset::IrAlloc4, levels, top);
        let alloc_integrated = ZAllocation::preset(AllocPreset::IrAlloc1, levels, top);
        match scheme {
            Scheme::Baseline | Scheme::IrDwb => {
                cfg.oram.zalloc = uniform;
                cfg.oram.treetop = dedicated;
                cfg.oram.remap = RemapPolicy::Immediate;
            }
            Scheme::Rho => {
                cfg.oram.zalloc = uniform;
                cfg.oram.treetop = dedicated;
                cfg.oram.remap = RemapPolicy::Delayed;
            }
            Scheme::IrAlloc => {
                cfg.oram.zalloc = alloc_standalone;
                cfg.oram.treetop = dedicated;
                cfg.oram.remap = RemapPolicy::Immediate;
            }
            Scheme::IrStash => {
                cfg.oram.zalloc = uniform;
                cfg.oram.treetop = irstash;
                cfg.oram.remap = RemapPolicy::Immediate;
            }
            Scheme::IrOram => {
                cfg.oram.zalloc = alloc_integrated;
                cfg.oram.treetop = irstash;
                cfg.oram.remap = RemapPolicy::Immediate;
            }
            Scheme::LlcD => {
                cfg.oram.zalloc = uniform;
                cfg.oram.treetop = dedicated;
                cfg.oram.remap = RemapPolicy::Delayed;
            }
            Scheme::IrAllocStashOnLlcD => {
                cfg.oram.zalloc = alloc_integrated;
                cfg.oram.treetop = irstash;
                cfg.oram.remap = RemapPolicy::Delayed;
            }
        }
        cfg
    }

    /// Number of protected data blocks.
    pub fn data_blocks(&self) -> u64 {
        self.oram.data_blocks
    }

    /// The hard stash limit in force (`stash_hard_limit`, defaulting to
    /// 8 × the soft capacity when unset).
    pub fn effective_stash_hard_limit(&self) -> usize {
        if self.stash_hard_limit > 0 {
            self.stash_hard_limit
        } else {
            self.oram.stash_capacity * 8
        }
    }

    /// Sets one scalar field from its CLI spelling (the `--set KEY=VALUE`
    /// override table — every [`SystemConfig`] field has an arm here, which
    /// is what the config-drift lint checks).
    ///
    /// Structured fields (`oram`, `hierarchy`, `dram`, `clock`, `faults`)
    /// are deliberately *not* settable from one `KEY=VALUE` pair; their
    /// arms return an error naming the structured knob to use instead.
    /// Setting `scheme` re-derives the scheme-dependent ORAM parameters via
    /// [`SystemConfig::with_scheme`].
    ///
    /// # Errors
    ///
    /// Returns a message for an unknown key, an unparsable value, or a
    /// structured field.
    pub fn set_field(&mut self, key: &str, value: &str) -> Result<(), String> {
        fn num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
            value
                .parse()
                .map_err(|_| format!("--set {key}: cannot parse `{value}` as a number"))
        }
        fn flag(key: &str, value: &str) -> Result<bool, String> {
            match value {
                "true" | "1" | "on" => Ok(true),
                "false" | "0" | "off" => Ok(false),
                _ => Err(format!("--set {key}: expected true/false, got `{value}`")),
            }
        }
        match key {
            "scheme" => {
                let s = ALL_SCHEMES
                    .into_iter()
                    .find(|s| s.name().eq_ignore_ascii_case(value))
                    .ok_or_else(|| format!("--set scheme: unknown scheme `{value}`"))?;
                *self = self.with_scheme(s);
            }
            "t_interval" => self.t_interval = num(key, value)?,
            "timing_protection" => self.timing_protection = flag(key, value)?,
            "rob_insts" => self.rob_insts = num(key, value)?,
            "ipc" => self.ipc = num(key, value)?,
            "mshrs" => self.mshrs = num(key, value)?,
            "l1_hit_lat" => self.l1_hit_lat = num(key, value)?,
            "llc_hit_lat" => self.llc_hit_lat = num(key, value)?,
            "front_hit_lat" => self.front_hit_lat = num(key, value)?,
            "decrypt_lat" => self.decrypt_lat = num(key, value)?,
            "subtree_group" => self.subtree_group = num(key, value)?,
            "seed" => self.seed = num(key, value)?,
            "audit" => self.audit = flag(key, value)?,
            "refetch_lat" => self.refetch_lat = num(key, value)?,
            "stash_hard_limit" => self.stash_hard_limit = num(key, value)?,
            "sched_threads" => {
                let n: u32 = num(key, value)?;
                if n == 0 {
                    return Err(
                        "--set sched_threads: must be >= 1 (1 = serial scheduling)".into()
                    );
                }
                self.sched_threads = n;
            }
            "pipeline_depth" => {
                let n: u32 = num(key, value)?;
                if n == 0 {
                    return Err(
                        "--set pipeline_depth: must be >= 1 (1 = serial pipeline)".into()
                    );
                }
                self.pipeline_depth = n;
            }
            "checkpoint_interval" => self.checkpoint_interval = num(key, value)?,
            "oram" => {
                return Err("--set oram: structured; use the scale flags or edit the config".into())
            }
            "hierarchy" => {
                return Err("--set hierarchy: structured; use the scale flags instead".into())
            }
            "dram" => return Err("--set dram: structured; not settable from the CLI".into()),
            "clock" => return Err("--set clock: structured; not settable from the CLI".into()),
            "faults" => {
                return Err("--set faults: structured; use the fault-injection flags".into())
            }
            _ => return Err(format!("--set: unknown SystemConfig field `{key}`")),
        }
        Ok(())
    }

    /// Renders the configuration as the paper's Table I rows.
    pub fn table1(&self) -> Vec<(String, String)> {
        let block_bytes = 64u64;
        vec![
            (
                "Processor Fetch Width / ROB Size".into(),
                format!("{} / {}", self.ipc, self.rob_insts),
            ),
            (
                "Memory Channels".into(),
                self.dram.mapping.channels().to_string(),
            ),
            ("DRAM Clk Frequency".into(), "800 MHz (DDR3-1600)".into()),
            (
                "L1 D-cache".into(),
                format!(
                    "{}-way {}KB",
                    self.hierarchy.l1_assoc,
                    self.hierarchy.l1_sets * self.hierarchy.l1_assoc * 64 / 1024
                ),
            ),
            (
                "L2 cache (LLC)".into(),
                format!(
                    "{}-way {}KB",
                    self.hierarchy.llc_assoc,
                    self.hierarchy.llc_sets * self.hierarchy.llc_assoc * 64 / 1024
                ),
            ),
            (
                "Protected space and user data".into(),
                format!(
                    "{}MB / {}MB",
                    self.oram.zalloc.total_slots() * block_bytes / (1 << 20),
                    self.oram.data_blocks * block_bytes / (1 << 20)
                ),
            ),
            ("ORAM tree levels".into(), self.oram.levels.to_string()),
            (
                "Bucket size / Block size".into(),
                format!("{} / {}B", self.oram.zalloc.z_of(self.oram.levels - 1), block_bytes),
            ),
            (
                "Stash entries".into(),
                self.oram.stash_capacity.to_string(),
            ),
            (
                "Dedicated tree top cache".into(),
                format!(
                    "top {} levels ({} entries)",
                    self.oram.treetop.cached_levels(),
                    ((1u64 << self.oram.treetop.cached_levels()) - 1) * 4
                ),
            ),
            (
                "Path issue interval T".into(),
                format!("{} CPU cycles", self.t_interval),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_names_unique() {
        let names: std::collections::HashSet<_> =
            ALL_SCHEMES.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), ALL_SCHEMES.len());
    }

    #[test]
    fn scheme_matrix_matches_paper() {
        let base = SystemConfig::scaled(Scheme::Baseline);
        assert_eq!(base.oram.remap, RemapPolicy::Immediate);
        assert!(matches!(base.oram.treetop, TreeTopMode::Dedicated { .. }));

        let alloc = SystemConfig::scaled(Scheme::IrAlloc);
        assert!(
            alloc.oram.zalloc.path_len(alloc.oram.treetop.cached_levels())
                < base.oram.zalloc.path_len(base.oram.treetop.cached_levels())
        );

        let stash = SystemConfig::scaled(Scheme::IrStash);
        assert!(matches!(stash.oram.treetop, TreeTopMode::IrStash { .. }));

        let iroram = SystemConfig::scaled(Scheme::IrOram);
        assert!(matches!(iroram.oram.treetop, TreeTopMode::IrStash { .. }));
        assert!(iroram.scheme.uses_dwb());

        let llcd = SystemConfig::scaled(Scheme::LlcD);
        assert_eq!(llcd.oram.remap, RemapPolicy::Delayed);

        assert!(Scheme::Rho.uses_rho());
        assert!(!Scheme::Baseline.uses_dwb());
    }

    #[test]
    fn integrated_alloc_is_gentler_than_standalone() {
        // IR-ORAM uses Z=2/3 (IR-Alloc1); standalone IR-Alloc uses Z=1/2
        // (IR-Alloc4) — the integrated setting must touch fewer slots less
        // aggressively (longer PL).
        let a4 = SystemConfig::scaled(Scheme::IrAlloc);
        let a1 = SystemConfig::scaled(Scheme::IrOram);
        let top = a4.oram.treetop.cached_levels();
        assert!(a1.oram.zalloc.path_len(top) > a4.oram.zalloc.path_len(top));
    }

    #[test]
    fn table1_has_expected_rows() {
        let t = SystemConfig::scaled(Scheme::Baseline).table1();
        assert!(t.iter().any(|(k, _)| k.contains("ROB")));
        assert!(t.iter().any(|(k, v)| k.contains("Stash") && v == "200"));
        assert!(t.len() >= 10);
    }

    #[test]
    fn set_field_covers_scalars_and_rejects_structured() {
        let mut cfg = SystemConfig::scaled(Scheme::Baseline);
        cfg.set_field("seed", "99").unwrap();
        assert_eq!(cfg.seed, 99);
        cfg.set_field("timing_protection", "off").unwrap();
        assert!(!cfg.timing_protection);
        cfg.set_field("t_interval", "1234").unwrap();
        assert_eq!(cfg.t_interval, 1234);
        cfg.set_field("stash_hard_limit", "4096").unwrap();
        assert_eq!(cfg.effective_stash_hard_limit(), 4096);
        cfg.set_field("sched_threads", "4").unwrap();
        assert_eq!(cfg.sched_threads, 4);
        cfg.set_field("pipeline_depth", "4").unwrap();
        assert_eq!(cfg.pipeline_depth, 4);
        // scheme re-derives the ORAM matrix.
        cfg.set_field("scheme", "IR-ORAM").unwrap();
        assert_eq!(cfg.scheme, Scheme::IrOram);
        assert!(matches!(cfg.oram.treetop, TreeTopMode::IrStash { .. }));
        // Structured fields and unknowns fail loudly.
        assert!(cfg.set_field("dram", "x").is_err());
        assert!(cfg.set_field("faults", "x").is_err());
        assert!(cfg.set_field("no_such_field", "1").is_err());
        assert!(cfg.set_field("seed", "not-a-number").is_err());
    }

    /// `--set sched_threads=0` used to slip past the scheduler's
    /// `set_sched_threads` clamp (clamped-or-not depending on the entry
    /// point); both zero-rejecting arms now fail at parse time instead.
    #[test]
    fn set_field_rejects_zero_for_clamped_knobs() {
        let mut cfg = SystemConfig::scaled(Scheme::Baseline);
        assert!(cfg.set_field("sched_threads", "0").is_err());
        assert_eq!(cfg.sched_threads, 1, "rejected value must not be applied");
        assert!(cfg.set_field("pipeline_depth", "0").is_err());
        assert_eq!(cfg.pipeline_depth, 1, "rejected value must not be applied");
    }

    #[test]
    fn oram_config_valid_for_all_schemes() {
        for s in ALL_SCHEMES {
            SystemConfig::scaled(s).oram.validate();
        }
    }
}
