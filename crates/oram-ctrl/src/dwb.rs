//! The IR-DWB engine (paper Section IV-D, Fig. 9).
//!
//! When the timing-protection slot would otherwise carry a dummy path,
//! IR-DWB spends it flushing a *dirty LRU* LLC line instead: up to two
//! PosMap paths (the paper's `Stage = 3/2`) followed by the data write path
//! (`Stage = 1`), after which the LLC line is marked clean so its eventual
//! eviction costs nothing. The engine aborts (clearing `Ptr`) whenever the
//! candidate stops being the dirty LRU entry or is evicted normally.

use iroram_cache::{DirtyLruScanner, MemoryHierarchy};
use serde::{Deserialize, Serialize};
use iroram_protocol::{BlockAddr, PathOram, PathRecord, PlbStatus};
use iroram_sim_engine::{Cycle, SimRng, SnapError, SnapReader, SnapWriter};

use crate::SimError;

/// Statistics of the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DwbStats {
    /// Dummy slots converted to useful paths.
    pub converted_slots: u64,
    /// Of those, PosMap paths (stages 3 and 2).
    pub converted_posmap: u64,
    /// Of those, data write paths (stage 1).
    pub converted_data: u64,
    /// LLC lines fully cleaned.
    pub completed: u64,
    /// Sequences aborted (candidate touched, cleaned, or evicted).
    pub aborted: u64,
}

/// The dummy-to-write-back conversion engine.
///
/// The victim lifecycle is single-owner: a sequence begins only in
/// [`DwbEngine::adopt`] (which locks the scanner's candidate) and ends only
/// in [`DwbEngine::abort_sequence`] or [`DwbEngine::complete_sequence`], so
/// every started sequence is counted exactly once as completed or aborted —
/// [`DwbEngine::check_coherence`] asserts this ledger together with the
/// engine↔scanner `Ptr`/lock agreement.
#[derive(Debug)]
pub struct DwbEngine {
    scanner: DirtyLruScanner,
    /// The locked victim of an in-flight sequence (the paper's `Ptr` +
    /// `Stage != 0` condition).
    victim: Option<BlockAddr>,
    /// Sequences ever started (victims locked). Not part of the serialized
    /// [`DwbStats`]; the audit checks
    /// `started == completed + aborted + in-flight`.
    started: u64,
    stats: DwbStats,
    rng: SimRng,
}

impl DwbEngine {
    /// Creates an idle engine.
    pub fn new(seed: u64) -> Self {
        DwbEngine {
            scanner: DirtyLruScanner::new(),
            victim: None,
            started: 0,
            stats: DwbStats::default(),
            rng: SimRng::seed_from(seed ^ 0xD3B),
        }
    }

    /// Engine statistics.
    pub fn stats(&self) -> &DwbStats {
        &self.stats
    }

    /// The locked victim of the in-flight sequence, if any (audit hook).
    pub fn victim(&self) -> Option<BlockAddr> {
        self.victim
    }

    /// Total write-back sequences ever started (audit hook).
    pub fn sequences_started(&self) -> u64 {
        self.started
    }

    /// Serializes the engine's logical state (scanner registers, locked
    /// victim, sequence ledger, counters, RNG) for a checkpoint snapshot.
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.scanner.save_state(w);
        w.put_opt_u64(self.victim.map(|v| v.0));
        w.put_u64(self.started);
        w.put_u64(self.stats.converted_slots);
        w.put_u64(self.stats.converted_posmap);
        w.put_u64(self.stats.converted_data);
        w.put_u64(self.stats.completed);
        w.put_u64(self.stats.aborted);
        for s in self.rng.state() {
            w.put_u64(s);
        }
    }

    /// Restores state written by [`DwbEngine::save_state`].
    ///
    /// # Errors
    ///
    /// [`SnapError`] when the payload is malformed or internally
    /// inconsistent (victim without a matching scanner candidate).
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.scanner.restore_state(r)?;
        self.victim = r.take_opt_u64()?.map(BlockAddr);
        if self.victim.map(|v| v.0) != self.scanner.candidate() {
            return Err(SnapError::Corrupt("DWB victim disagrees with scanner"));
        }
        self.started = r.take_u64()?;
        self.stats.converted_slots = r.take_u64()?;
        self.stats.converted_posmap = r.take_u64()?;
        self.stats.converted_data = r.take_u64()?;
        self.stats.completed = r.take_u64()?;
        self.stats.aborted = r.take_u64()?;
        let in_flight = u64::from(self.victim.is_some());
        if self.started != self.stats.completed + self.stats.aborted + in_flight {
            return Err(SnapError::Corrupt("DWB sequence ledger does not balance"));
        }
        let mut state = [0u64; 4];
        for s in &mut state {
            *s = r.take_u64()?;
        }
        self.rng = SimRng::from_state(state);
        Ok(())
    }

    /// Starts a sequence on the scanner's current candidate: the one place
    /// a victim is adopted and the scanner locked.
    fn adopt(&mut self, candidate: u64) {
        debug_assert!(self.victim.is_none(), "previous sequence not closed");
        self.victim = Some(BlockAddr(candidate));
        self.scanner.lock();
        self.started += 1;
    }

    /// Ends the in-flight sequence as aborted, exactly once. Releases the
    /// scanner only while we still own its lock — when the scanner has
    /// already re-pointed `Ptr` at a fresh (unlocked) candidate, that
    /// candidate belongs to the next sequence and must survive the abort.
    fn abort_sequence(&mut self) {
        debug_assert!(self.victim.is_some(), "no sequence to abort");
        self.victim = None;
        if self.scanner.is_locked() {
            self.scanner.release();
        }
        self.stats.aborted += 1;
    }

    /// Ends the in-flight sequence as completed, exactly once.
    fn complete_sequence(&mut self) {
        debug_assert!(self.victim.is_some(), "no sequence to complete");
        self.victim = None;
        self.scanner.release();
        self.stats.completed += 1;
    }

    /// The paper's abort rule for victim selection: "if the entry is chosen
    /// as a victim entry, we abort the early eviction … and perform the
    /// normal eviction instead."
    pub fn on_eviction(&mut self, addr: BlockAddr) {
        if self.victim == Some(addr) {
            self.abort_sequence();
        }
    }

    /// Cache-side audit: the engine's victim, the scanner's `Ptr`/lock
    /// registers, and the LLC must agree, and the sequence ledger must
    /// balance. Returns a description of the first violation found.
    pub fn check_coherence(&self, hierarchy: &MemoryHierarchy) -> Result<(), String> {
        if self.victim.map(|v| v.0) != self.scanner.candidate() {
            return Err(format!(
                "DWB victim {:?} != scanner Ptr {:?}",
                self.victim,
                self.scanner.candidate()
            ));
        }
        if self.victim.is_some() != self.scanner.is_locked() {
            return Err(format!(
                "DWB victim {:?} but scanner locked = {}",
                self.victim,
                self.scanner.is_locked()
            ));
        }
        if let Some(v) = self.victim {
            // Any eviction notifies `on_eviction`, and only the engine's own
            // completion marks the line clean, so a locked victim must still
            // be a dirty resident of the LLC.
            match hierarchy.llc().probe(v.0) {
                Some(info) if info.dirty => {}
                Some(_) => return Err(format!("DWB victim {v:?} is clean in the LLC")),
                None => return Err(format!("DWB victim {v:?} not resident in the LLC")),
            }
        }
        let in_flight = u64::from(self.victim.is_some());
        if self.started != self.stats.completed + self.stats.aborted + in_flight {
            return Err(format!(
                "DWB sequence ledger: started {} != completed {} + aborted {} + in-flight {}",
                self.started, self.stats.completed, self.stats.aborted, in_flight
            ));
        }
        Ok(())
    }

    /// Offers the engine a dummy slot at `now`. Returns the path access it
    /// converted the slot into, or `None` if no conversion was possible
    /// (the caller then issues a plain dummy path).
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] if the victim's write-back is rejected by the
    /// protocol (e.g. the line is unmapped) — a sequencing bug, not a
    /// fault.
    pub fn try_convert(
        &mut self,
        protocol: &mut PathOram,
        hierarchy: &mut MemoryHierarchy,
        now: Cycle,
    ) -> Result<Option<PathRecord>, SimError> {
        // Bound the number of candidates examined per slot: hardware checks
        // one Ptr register, but on-chip serves can finish a candidate
        // without producing a path, letting us look once more.
        for _ in 0..4 {
            // Keep/refresh the candidate (clears Ptr if it is no longer the
            // dirty LRU entry, even when locked).
            self.scanner.step(hierarchy.llc(), now, &mut self.rng);
            // Re-sync the sequence with the scanner's Ptr register.
            match (self.victim, self.scanner.candidate()) {
                (Some(v), Some(c)) if v.0 == c => {} // sequence still in flight
                (Some(_), Some(c)) => {
                    // Our victim stopped being the dirty LRU and the scanner
                    // already found a fresh candidate.
                    self.abort_sequence();
                    self.adopt(c);
                }
                (Some(_), None) => {
                    self.abort_sequence();
                    return Ok(None);
                }
                (None, Some(c)) => self.adopt(c),
                (None, None) => return Ok(None),
            }
            let victim = self.victim.expect("just synced");
            // Derive the remaining work (the paper's Stage register) from
            // PLB state.
            match protocol.posmap_status(victim) {
                PlbStatus::MissBoth => {
                    let pm1 = protocol.posmap().space().pm1_block_of(victim);
                    let pm2 = protocol.posmap().space().pm2_block_of(pm1);
                    let r = protocol.fetch_posmap_block(pm2);
                    if !r.paths.is_empty() {
                        self.stats.converted_slots += 1;
                        self.stats.converted_posmap += 1;
                        return Ok(Some(r.paths[0]));
                    }
                    continue; // resolved on-chip; advance to the next stage
                }
                PlbStatus::MissPm1 => {
                    let pm1 = protocol.posmap().space().pm1_block_of(victim);
                    let r = protocol.fetch_posmap_block(pm1);
                    if !r.paths.is_empty() {
                        self.stats.converted_slots += 1;
                        self.stats.converted_posmap += 1;
                        return Ok(Some(r.paths[0]));
                    }
                    continue;
                }
                PlbStatus::Hit => {
                    // Stage 1: write the dirty line's data back via a normal
                    // (write) data access, then mark it clean.
                    let r = protocol.data_access(victim, None)?;
                    hierarchy.llc_mark_clean(victim.0);
                    self.complete_sequence();
                    if let Some(&p) = r.paths.first() {
                        self.stats.converted_slots += 1;
                        self.stats.converted_data += 1;
                        return Ok(Some(p));
                    }
                    continue; // served on-chip; slot still free, look again
                }
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iroram_cache::HierarchyConfig;
    use iroram_protocol::OramConfig;

    fn setup() -> (PathOram, MemoryHierarchy, DwbEngine) {
        let protocol = PathOram::new(OramConfig::tiny());
        let hierarchy = MemoryHierarchy::new(HierarchyConfig {
            l1_sets: 4,
            l1_assoc: 1,
            llc_sets: 8,
            llc_assoc: 2,
        });
        (protocol, hierarchy, DwbEngine::new(9))
    }

    #[test]
    fn no_dirty_lines_no_conversion() {
        let (mut p, mut h, mut e) = setup();
        h.access(1, false);
        assert!(e.try_convert(&mut p, &mut h, Cycle(0)).unwrap().is_none());
        assert_eq!(e.stats().converted_slots, 0);
    }

    #[test]
    fn converts_and_cleans_a_dirty_line() {
        let (mut p, mut h, mut e) = setup();
        h.access(3, true); // dirty LLC line for data block 3
        let mut slots = 0;
        // Drive dummy slots until the victim is fully cleaned.
        while h.llc_is_dirty(3) && slots < 10 {
            let _ = e.try_convert(&mut p, &mut h, Cycle(slots * 1000));
            slots += 1;
        }
        assert!(!h.llc_is_dirty(3), "line should be cleaned via DWB");
        assert_eq!(e.stats().completed, 1);
        assert!(e.stats().converted_slots >= 1);
    }

    #[test]
    fn stage_count_matches_plb_state() {
        let (mut p, mut h, mut e) = setup();
        h.access(5, true);
        // Cold PLB: expect up to 2 posmap conversions + 1 data conversion.
        let mut got = Vec::new();
        for i in 0..6 {
            if let Some(r) = e.try_convert(&mut p, &mut h, Cycle(i * 1000)).unwrap() {
                got.push(r.ptype);
            }
            if !h.llc_is_dirty(5) {
                break;
            }
        }
        assert!(!h.llc_is_dirty(5));
        assert!(e.stats().converted_data <= 1);
        assert!(
            e.stats().converted_posmap <= 2,
            "at most two posmap stages ({got:?})"
        );
    }

    #[test]
    fn eviction_aborts_sequence() {
        let (mut p, mut h, mut e) = setup();
        h.access(7, true);
        // Start the sequence (locks the victim).
        let _ = e.try_convert(&mut p, &mut h, Cycle(0));
        e.on_eviction(BlockAddr(7));
        assert_eq!(e.stats().aborted, 1);
        // A foreign eviction does not abort.
        e.on_eviction(BlockAddr(99));
        assert_eq!(e.stats().aborted, 1);
    }

    #[test]
    fn cleaned_elsewhere_aborts() {
        let (mut p, mut h, mut e) = setup();
        h.access(9, true);
        let _ = e.try_convert(&mut p, &mut h, Cycle(0));
        h.llc_mark_clean(9);
        // Next slot: the scanner sees the candidate is clean → abort,
        // counted exactly once.
        let _ = e.try_convert(&mut p, &mut h, Cycle(1000));
        assert_eq!(e.stats().aborted, 1);
    }

    #[test]
    fn abort_counted_once_even_when_evicted_after_repoint() {
        // A victim that stops being the dirty LRU gets its sequence aborted
        // when the scanner re-points; its later normal eviction must not be
        // counted as a second abort of the same sequence.
        let (mut p, mut h, mut e) = setup();
        h.access(3, true); // dirty line, set 3 of the 8-set LLC
        let _ = e.try_convert(&mut p, &mut h, Cycle(0));
        assert_eq!(e.victim(), Some(BlockAddr(3)));
        // Another dirty line appears and the old victim is cleaned behind
        // the engine's back, so the next slot re-points to the new line.
        h.access(4, true);
        h.llc_mark_clean(3);
        let _ = e.try_convert(&mut p, &mut h, Cycle(1000));
        assert_eq!(e.victim(), Some(BlockAddr(4)));
        assert_eq!(e.stats().aborted, 1, "re-point aborts the old sequence once");
        // The old victim now leaves the LLC normally: no double count.
        e.on_eviction(BlockAddr(3));
        assert_eq!(e.stats().aborted, 1);
        // The in-flight sequence on the new victim is still intact.
        e.check_coherence(&h).unwrap();
    }

    #[test]
    fn sequence_ledger_balances() {
        let (mut p, mut h, mut e) = setup();
        h.access(3, true);
        h.access(9, true);
        for i in 0..12u64 {
            let _ = e.try_convert(&mut p, &mut h, Cycle(i * 2000));
            e.check_coherence(&h).unwrap();
        }
        let s = *e.stats();
        let in_flight = u64::from(e.victim().is_some());
        assert!(e.sequences_started() >= 1);
        assert_eq!(e.sequences_started(), s.completed + s.aborted + in_flight);
    }
}
