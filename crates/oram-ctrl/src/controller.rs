//! The timed ORAM controller: fixed-rate path issue over the DRAM model.

use std::collections::VecDeque;

use iroram_cache::MemoryHierarchy;
use serde::{Deserialize, Serialize};
use iroram_dram::{DramSystem, MemRequest, PathTable, SubtreeLayout};
use iroram_protocol::{BlockAddr, IntegrityStats, PathOram, PathRecord, RemapPolicy};
use iroram_sim_engine::{
    profiler, ClockRatio, Cycle, FaultPlan, InjectedFaults, SnapError, SnapReader, SnapWriter,
};

use crate::audit::{AuditReport, AuditState};
use crate::pipeline::{self, PipelineState, PipelineStats};
use crate::{DwbEngine, SimError, SystemConfig};

/// Identifier of an in-flight ORAM request.
pub type ReqId = u64;

/// Consecutive slots the stash may sit over its hard limit while graceful
/// degradation (admission throttling + background eviction) tries to drain
/// it, before [`SimError::StashOverflow`] fires. Bounded so a stash pinned
/// over the limit (e.g. by a fault storm suppressing eviction) still
/// surfaces as the typed transient error.
pub const OVERFLOW_GRACE_SLOTS: u64 = 64;

/// Admission duty cycle in degraded mode: while the stash sits between the
/// degradation watermark and the hard limit, new work is admitted on one
/// slot in this many (full stop only above the hard limit). Reduced-rate
/// rather than zero-rate admission guarantees forward progress even when
/// nothing else drains the stash — a full stop below the hard limit could
/// spin forever without ever reaching the overflow error.
pub const DEGRADED_ADMIT_PERIOD: u64 = 4;

/// A request submitted to the ORAM controller after missing the LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OramRequest {
    /// Request id (assigned by the simulator).
    pub id: ReqId,
    /// Block address.
    pub addr: BlockAddr,
    /// Cycle the request reached the controller.
    pub arrival: Cycle,
    /// Whether the CPU waits for this request (demand read miss).
    pub blocking: bool,
}

/// Slot-level accounting (what each timing-protection slot carried).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotStats {
    /// Total path slots issued.
    pub total_slots: u64,
    /// Slots carrying real work (PosMap, data, delayed write-back paths).
    pub real_slots: u64,
    /// Slots carrying background-eviction paths.
    pub bg_slots: u64,
    /// Slots carrying plain dummy paths.
    pub dummy_slots: u64,
    /// Slots converted by IR-DWB.
    pub converted_slots: u64,
}

/// Stash soft-capacity pressure accounting. The soft capacity is a
/// background-eviction trigger, not a wall (Stefanov et al. treat overflow
/// as a probabilistic event); these counters measure how hard the workload
/// leaned on it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StashPressure {
    /// Configured soft capacity (background-eviction trigger).
    pub soft_capacity: u64,
    /// Stash occupancy high-water mark.
    pub max_occupancy: u64,
    /// Slots that began with the stash over its soft capacity.
    pub overflow_slots: u64,
    /// Idle→pending transitions of the background-eviction condition.
    pub bg_escalations: u64,
    /// Slots that began over the degradation watermark (¾ of the hard
    /// limit) with new-work admission throttled so eviction could drain.
    pub degraded_slots: u64,
    /// Eligible demand/write-back admissions deferred by that throttle.
    pub throttled_admissions: u64,
}

#[derive(Debug)]
enum Work {
    /// A demand request: pending PosMap fetches, then the data path.
    Request {
        req: OramRequest,
        pm: VecDeque<BlockAddr>,
    },
    /// A delayed-remap write-back: PosMap fetches, then a free stash insert.
    DelayedWb {
        addr: BlockAddr,
        pm: VecDeque<BlockAddr>,
    },
}

/// The timed Path ORAM controller for all single-tree schemes.
///
/// Drives the functional protocol one path per slot, schedules each path's
/// block reads/writes on the DRAM model (via the subtree layout), enforces
/// the timing-channel discipline (a slot every `T` cycles, dummies when
/// idle, every path identical in shape), and hosts the IR-DWB engine.
#[derive(Debug)]
pub struct TimedController {
    /// The functional protocol instance.
    pub protocol: PathOram,
    dram: DramSystem,
    /// Precomputed path→line-address table over the memory-backed layout
    /// (the layout is fixed at construction, so this never changes).
    // lint: allow(snapshot-drift, precomputed from the layout at construction)
    path_table: PathTable,
    /// Reused request buffer for path read/write-back batches: filled from
    /// `path_table` per path, rewritten in place for the write phase.
    // lint: allow(snapshot-drift, per-call scratch, cleared before each use)
    reqs_buf: Vec<MemRequest>,
    /// Pipelined mode's deferred write-back batch (the read-priority write
    /// buffer): slot `i`'s writes wait here until slot `i+1`'s read batch
    /// has been scheduled. Always empty at effective depth 1.
    write_buf: Vec<MemRequest>,
    // lint: allow(snapshot-drift, configuration, fixed at construction for the whole run)
    t_interval: u64,
    // lint: allow(snapshot-drift, configuration, fixed at construction for the whole run)
    timing_protection: bool,
    // lint: allow(snapshot-drift, configuration (a pure cycle-ratio converter))
    clock: ClockRatio,
    // lint: allow(snapshot-drift, configuration, fixed at construction for the whole run)
    decrypt_lat: u64,
    // lint: allow(snapshot-drift, configuration, fixed at construction for the whole run)
    front_hit_lat: u64,
    next_slot: Cycle,
    queue: VecDeque<OramRequest>,
    wb_queue: VecDeque<BlockAddr>,
    current: Option<Work>,
    /// The k-deep access pipeline; `None` at effective depth 1, where the
    /// serial code paths run verbatim (see [`crate::pipeline`]).
    pipe: Option<PipelineState>,
    dwb: Option<DwbEngine>,
    completions: Vec<(ReqId, Cycle)>,
    slot_stats: SlotStats,
    last_write_done: Cycle,
    audit: Option<Box<AuditState>>,
    /// Fault plan (None when every rate is zero — the common case).
    faults: Option<FaultPlan>,
    /// CPU cycles charged per detected-and-repaired corrupted bucket.
    // lint: allow(snapshot-drift, configuration, fixed at construction for the whole run)
    refetch_lat: u64,
    /// Hard stash limit; staying over it past the bounded grace is a
    /// transient `SimError`.
    // lint: allow(snapshot-drift, configuration, fixed at construction for the whole run)
    stash_hard_limit: usize,
    /// Degradation watermark (¾ of the hard limit): above it, new-work
    /// admission is throttled so background eviction can drain the stash.
    // lint: allow(snapshot-drift, configuration, fixed at construction for the whole run)
    degrade_watermark: usize,
    /// Integrity detections already charged a re-fetch penalty.
    seen_detected: u64,
    /// Total re-fetch penalty cycles charged so far.
    penalty_cycles: u64,
    /// Whether a stash-pressure storm suppresses bg eviction this slot.
    storm_now: bool,
    /// Previous slot's bg-eviction-pending state (escalation edges).
    was_bg_pending: bool,
    overflow_slots: u64,
    bg_escalations: u64,
    /// Degraded-mode slot count (see [`StashPressure::degraded_slots`]).
    degraded_slots: u64,
    /// Admissions deferred by the degradation throttle.
    throttled_admissions: u64,
    /// Consecutive slots the stash has sat over the hard limit (the
    /// degradation grace counter; reset when it drains back under).
    overflow_grace: u64,
    slots_done: u64,
}

impl TimedController {
    /// Builds the controller (protocol init included) for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` requests the ρ scheme (use
    /// [`crate::RhoController`]).
    pub fn new(cfg: &SystemConfig) -> Self {
        assert!(
            !cfg.scheme.uses_rho(),
            "TimedController does not implement ρ; use RhoController"
        );
        let protocol = PathOram::new(cfg.oram.clone());
        let cached = cfg.oram.treetop.cached_levels();
        let layout_mem = SubtreeLayout::new(
            &protocol.layout().memory_z(cached),
            cfg.subtree_group,
        );
        let path_table = layout_mem.path_table(0);
        let dwb = cfg
            .scheme
            .uses_dwb()
            .then(|| DwbEngine::new(cfg.seed ^ 0xD00D));
        TimedController {
            protocol,
            dram: {
                let mut d = DramSystem::new(cfg.dram);
                d.set_sched_threads(cfg.sched_threads);
                d
            },
            path_table,
            reqs_buf: Vec::new(),
            write_buf: Vec::new(),
            t_interval: cfg.t_interval,
            timing_protection: cfg.timing_protection,
            clock: cfg.clock,
            decrypt_lat: cfg.decrypt_lat,
            front_hit_lat: cfg.front_hit_lat,
            next_slot: Cycle(cfg.t_interval),
            queue: VecDeque::new(),
            wb_queue: VecDeque::new(),
            current: None,
            pipe: PipelineState::new(cfg.pipeline_depth),
            dwb,
            completions: Vec::new(),
            slot_stats: SlotStats::default(),
            last_write_done: Cycle::ZERO,
            audit: cfg.audit.then(|| {
                Box::new(AuditState::new(pipeline::effective_depth(
                    cfg.pipeline_depth,
                )))
            }),
            faults: FaultPlan::new(&cfg.faults, cfg.seed ^ 0xFA01_7C01),
            refetch_lat: cfg.refetch_lat,
            stash_hard_limit: cfg.effective_stash_hard_limit(),
            degrade_watermark: cfg.effective_stash_hard_limit() / 4 * 3,
            seen_detected: 0,
            penalty_cycles: 0,
            storm_now: false,
            was_bg_pending: false,
            overflow_slots: 0,
            bg_escalations: 0,
            degraded_slots: 0,
            throttled_admissions: 0,
            overflow_grace: 0,
            slots_done: 0,
        }
    }

    /// The audit results so far (None unless `cfg.audit` was set).
    pub fn audit_report(&self) -> Option<AuditReport> {
        self.audit.as_ref().map(|a| a.report())
    }

    /// End-of-run audit: a final whole-structure sweep plus IR-DWB
    /// coherence. No-op when auditing is off.
    pub fn final_audit(&mut self, hierarchy: &MemoryHierarchy) {
        let Some(audit) = &mut self.audit else { return };
        audit.note_structural("protocol", self.protocol.check_invariants());
        if let Some(dwb) = &self.dwb {
            match dwb.check_coherence(hierarchy) {
                Ok(()) => audit.passed(),
                Err(e) => audit.violation(format!("dwb: {e}")),
            }
        }
    }

    /// The DRAM system's statistics.
    pub fn dram_stats(&self) -> &iroram_dram::DramStats {
        self.dram.stats()
    }

    /// Slot accounting.
    pub fn slot_stats(&self) -> &SlotStats {
        &self.slot_stats
    }

    /// IR-DWB statistics, if the engine is enabled.
    pub fn dwb_stats(&self) -> Option<crate::dwb::DwbStats> {
        self.dwb.as_ref().map(|d| *d.stats())
    }

    /// Pipeline counters, if the controller runs at effective depth > 1.
    pub fn pipeline_stats(&self) -> Option<PipelineStats> {
        self.pipe.as_ref().map(PipelineState::stats)
    }

    /// Integrity-layer counters (injected / detected / recovered /
    /// undetected corruptions in the tree).
    pub fn integrity_stats(&self) -> IntegrityStats {
        self.protocol.integrity_stats()
    }

    /// Counters for faults the plan actually injected (zeros with no plan).
    pub fn fault_injected(&self) -> InjectedFaults {
        self.faults
            .as_ref()
            .map(|p| p.injected())
            .unwrap_or_default()
    }

    /// Total CPU cycles of re-fetch penalty charged for detected
    /// corruption.
    pub fn refetch_penalty_cycles(&self) -> u64 {
        self.penalty_cycles
    }

    /// Stash soft-capacity pressure accounting.
    pub fn stash_pressure(&self) -> StashPressure {
        StashPressure {
            soft_capacity: self.protocol.config().stash_capacity as u64,
            max_occupancy: self.protocol.stash_peak() as u64,
            overflow_slots: self.overflow_slots,
            bg_escalations: self.bg_escalations,
            degraded_slots: self.degraded_slots,
            throttled_admissions: self.throttled_admissions,
        }
    }

    /// Slots processed so far (the checkpoint trigger and the snapshot
    /// header's progress field).
    pub fn slots_done(&self) -> u64 {
        self.slots_done
    }

    /// Pending request-queue depth (for CPU back-pressure).
    pub fn queue_len(&self) -> usize {
        self.queue.len() + usize::from(self.current.is_some())
    }

    /// Whether any real (non-dummy) work remains.
    pub fn has_real_work(&self) -> bool {
        self.current.is_some()
            || !self.queue.is_empty()
            || !self.wb_queue.is_empty()
            || self.protocol.bg_evict_pending()
    }

    /// Tries to serve an LLC miss from the on-chip front stores (F-Stash,
    /// escrow, S-Stash). On a hit returns the completion time; the request
    /// never consumes a path slot.
    pub fn front_try(&mut self, addr: BlockAddr, now: Cycle) -> Option<Cycle> {
        let (_, payload) = self.protocol.front_access(addr, None)?;
        if let Some(audit) = &mut self.audit {
            audit.oracle_read(addr.0, payload);
        }
        Some(now + self.front_hit_lat)
    }

    /// Submits a demand request (the caller should have tried
    /// [`TimedController::front_try`] first).
    pub fn submit(&mut self, req: OramRequest) {
        self.queue.push_back(req);
    }

    /// Notifies the controller of an LLC eviction. Dirty lines become write
    /// requests (immediate remap) or delayed write-backs; IR-DWB aborts any
    /// sequence targeting the line.
    pub fn on_llc_eviction(&mut self, addr: BlockAddr, dirty: bool, now: Cycle, id: ReqId) {
        if let Some(dwb) = &mut self.dwb {
            dwb.on_eviction(addr);
        }
        match self.protocol.config().remap {
            RemapPolicy::Immediate => {
                if dirty {
                    // The ORAM write access; nobody waits on it. If the
                    // block is still in an on-chip store, the write merges
                    // for free.
                    match self.protocol.front_access(addr, None) {
                        Some((_, payload)) => {
                            if let Some(audit) = &mut self.audit {
                                audit.oracle_read(addr.0, payload);
                            }
                        }
                        None => self.queue.push_back(OramRequest {
                            id,
                            addr,
                            arrival: now,
                            blocking: false,
                        }),
                    }
                }
            }
            RemapPolicy::Delayed => {
                // Clean or dirty: the block must re-enter the ORAM — unless
                // it was never removed (it was served from S-Stash and still
                // lives in the tree).
                if self.protocol.is_escrowed(addr) {
                    self.wb_queue.push_back(addr);
                }
            }
        }
    }

    /// Drains accumulated request completions.
    pub fn take_completions(&mut self) -> Vec<(ReqId, Cycle)> {
        std::mem::take(&mut self.completions)
    }

    /// Processes every slot due at or before `now`.
    pub fn advance_until(
        &mut self,
        now: Cycle,
        hierarchy: &mut MemoryHierarchy,
    ) -> Result<(), SimError> {
        while self.next_slot <= now {
            self.process_slot(hierarchy)?;
        }
        Ok(())
    }

    /// Advances slots until request `id` completes, returning its completion
    /// time. An unknown request (never submitted) surfaces as
    /// [`SimError::RequestStuck`] — the queue is FIFO, so a submitted
    /// request always completes.
    pub fn advance_until_complete(
        &mut self,
        id: ReqId,
        hierarchy: &mut MemoryHierarchy,
    ) -> Result<Cycle, SimError> {
        loop {
            if let Some(&(_, done)) = self.completions.iter().find(|&&(rid, _)| rid == id) {
                return Ok(done);
            }
            if !self.has_real_work() {
                return Err(SimError::RequestStuck { id });
            }
            self.process_slot(hierarchy)?;
        }
    }

    /// Advances slots until the pending queue drops below `limit` (CPU
    /// back-pressure when the miss queue fills).
    pub fn advance_until_queue_below(
        &mut self,
        limit: usize,
        hierarchy: &mut MemoryHierarchy,
    ) -> Result<Cycle, SimError> {
        while self.queue_len() >= limit {
            self.process_slot(hierarchy)?;
        }
        Ok(self.next_slot)
    }

    /// Runs slots until all real work drains. Returns the time the last
    /// path's write phase finished.
    pub fn drain(&mut self, hierarchy: &mut MemoryHierarchy) -> Result<Cycle, SimError> {
        while self.has_real_work() {
            self.process_slot(hierarchy)?;
        }
        // Pipelined: the last slot's write-back is still deferred — land it
        // so the run's DRAM traffic and retirement time are complete.
        self.flush_writes();
        Ok(self.last_write_done.max(self.next_slot))
    }

    /// Issues one slot. Public for lock-step tests; normal callers use the
    /// `advance_*` methods.
    pub fn process_slot(&mut self, hierarchy: &mut MemoryHierarchy) -> Result<(), SimError> {
        if let Some(audit) = &mut self.audit {
            // IR-DWB state is quiescent between slots: victim, scanner lock
            // and the LLC's dirty bit must agree.
            if let Some(dwb) = &self.dwb {
                match dwb.check_coherence(hierarchy) {
                    Ok(()) => audit.passed(),
                    Err(e) => audit.violation(format!("dwb: {e}")),
                }
            }
            if audit.structural_due() {
                audit.note_structural("protocol", self.protocol.check_invariants());
            }
        }
        // Fault plan: one storm/corruption decision per slot, before any
        // protocol work (a corrupted bucket may sit on this very path).
        self.storm_now = false;
        if let Some(plan) = &mut self.faults {
            self.storm_now = plan.storm_active();
            if let Some((pick, mask)) = plan.corrupt_line() {
                self.inject_corruption(pick, mask);
            }
        }
        // Stash pressure: sampled at slot boundaries. Over the degradation
        // watermark (¾ of the hard limit), new-work admission is throttled
        // so background eviction can drain the stash; over the hard limit
        // itself a bounded grace of degraded slots runs before the typed
        // transient error fires. Clean runs never cross the watermark, so
        // the path below is byte-identical to the pre-degradation rule.
        let occupancy = self.protocol.stash_len();
        // lint: allow(secret-flow, overflow stats counter; occupancy never alters the issued DRAM schedule)
        if occupancy > self.protocol.config().stash_capacity {
            self.overflow_slots += 1;
        }
        let pending = self.protocol.bg_evict_pending();
        if pending && !self.was_bg_pending {
            self.bg_escalations += 1;
        }
        self.was_bg_pending = pending;
        let degraded = occupancy > self.degrade_watermark;
        // lint: allow(secret-flow, degraded-slot stats counter; the admission gate below is the sanctioned throttle)
        if degraded {
            self.degraded_slots += 1;
        }
        // lint: allow(secret-flow, documented graceful-degradation exit; clean runs stay under the watermark so the schedule is unchanged)
        if occupancy > self.stash_hard_limit {
            self.overflow_grace += 1;
            if self.overflow_grace > OVERFLOW_GRACE_SLOTS {
                return Err(SimError::StashOverflow {
                    occupancy,
                    hard_limit: self.stash_hard_limit,
                    slot: self.slots_done,
                });
            }
        } else {
            self.overflow_grace = 0;
        }
        // Degraded admission gate: above the hard limit nothing is admitted
        // (the grace above bounds how long that can last); between the
        // watermark and the hard limit one slot in DEGRADED_ADMIT_PERIOD
        // still admits, so throttling can never stall the run outright.
        let throttle = occupancy > self.stash_hard_limit
            || (degraded && !self.slots_done.is_multiple_of(DEGRADED_ADMIT_PERIOD));
        self.slots_done += 1;
        let t = self.next_slot;
        let mut issued: Option<PathRecord> = None;
        let mut completes: Option<ReqId> = None;

        // Find the path for this slot; protocol steps that resolve on-chip
        // consume no slot and we keep looking.
        loop {
            match self.current.take() {
                Some(Work::Request { req, mut pm }) => {
                    if let Some(pm_addr) = pm.pop_front() {
                        let rec = {
                            let _p = profiler::enter(profiler::Phase::PosMap);
                            self.protocol.fetch_posmap_block(pm_addr)
                        };
                        if let Some(audit) = &mut self.audit {
                            audit.oracle_read(pm_addr.0, rec.payload);
                        }
                        self.current = Some(Work::Request { req, pm });
                        if let Some(&p) = rec.paths.first() {
                            issued = Some(p);
                            break;
                        }
                        continue; // PosMap block was on-chip
                    }
                    // Data phase. A duplicate request may find the block
                    // already escrowed (fetched by an earlier request under
                    // delayed remapping) or back on-chip — serve it for
                    // free.
                    if let Some((_, payload)) = self.protocol.front_access(req.addr, None) {
                        if let Some(audit) = &mut self.audit {
                            audit.oracle_read(req.addr.0, payload);
                        }
                        if req.blocking {
                            self.completions.push((req.id, t + self.front_hit_lat));
                        }
                        continue;
                    }
                    let rec = {
                        let _p = profiler::enter(profiler::Phase::Stash);
                        self.protocol.data_access(req.addr, None)?
                    };
                    if let Some(audit) = &mut self.audit {
                        audit.oracle_read(req.addr.0, rec.payload);
                    }
                    match rec.paths.first() {
                        Some(&p) => {
                            issued = Some(p);
                            if req.blocking {
                                completes = Some(req.id);
                            }
                            break;
                        }
                        None => {
                            // Found on-chip (tree top / stash): complete now.
                            if req.blocking {
                                self.completions.push((req.id, t + self.front_hit_lat));
                            }
                            continue;
                        }
                    }
                }
                Some(Work::DelayedWb { addr, mut pm }) => {
                    if let Some(pm_addr) = pm.pop_front() {
                        let rec = {
                            let _p = profiler::enter(profiler::Phase::PosMap);
                            self.protocol.fetch_posmap_block(pm_addr)
                        };
                        if let Some(audit) = &mut self.audit {
                            audit.oracle_read(pm_addr.0, rec.payload);
                        }
                        self.current = Some(Work::DelayedWb { addr, pm });
                        if let Some(&p) = rec.paths.first() {
                            issued = Some(p);
                            break;
                        }
                        continue;
                    }
                    // The block may have been re-evicted (duplicate queue
                    // entry) or already re-inserted; only escrowed blocks
                    // re-enter.
                    if self.protocol.is_escrowed(addr) {
                        self.protocol.delayed_insert_block(addr)?;
                    }
                    continue;
                }
                None => {}
            }
            // Background eviction outranks new work: the stash must drain —
            // unless a fault-injected storm is suppressing it.
            if !self.storm_now && self.protocol.bg_evict_pending() {
                issued = Some({
                    let _p = profiler::enter(profiler::Phase::Stash);
                    self.protocol.bg_evict_once()
                });
                self.slot_stats.bg_slots += 1;
                self.slot_stats.total_slots += 1;
                self.finish_path(t, issued.expect("just issued"), None);
                return Ok(());
            }
            // Degraded mode: admission is throttled — eligible new work
            // waits while background eviction (which already outranks
            // admission) drains the stash back under the watermark.
            // lint: allow(secret-flow, documented stash-pressure admission throttle; clean runs never cross the watermark (DESIGN.md))
            if throttle {
                if self.queue.front().is_some_and(|r| r.arrival <= t) || !self.wb_queue.is_empty()
                {
                    self.throttled_admissions += 1;
                }
                break;
            }
            // Start the next demand request that has arrived.
            if self
                .queue
                .front()
                .is_some_and(|r| r.arrival <= t)
            {
                let req = self.queue.pop_front().expect("checked front");
                let _p = profiler::enter(profiler::Phase::PosMap);
                let pm = match self.pipe.as_mut().and_then(|p| p.take_spec(req.addr)) {
                    Some(pm) => pm,
                    None => self.protocol.posmap_resolve(req.addr).into(),
                };
                // Pipelined: resolve the next queued request's PosMap chain
                // speculatively, so its first path can issue the moment a
                // slot frees.
                if let Some(pipe) = &mut self.pipe {
                    if !pipe.has_spec() {
                        if let Some(next_addr) = self.queue.front().map(|r| r.addr) {
                            let spec = self.protocol.posmap_resolve(next_addr).into();
                            pipe.set_spec(next_addr, spec);
                        }
                    }
                }
                self.current = Some(Work::Request { req, pm });
                continue;
            }
            // Delayed write-backs fill remaining capacity.
            if let Some(addr) = self.wb_queue.pop_front() {
                let _p = profiler::enter(profiler::Phase::PosMap);
                let pm = self.protocol.posmap_resolve(addr).into();
                self.current = Some(Work::DelayedWb { addr, pm });
                continue;
            }
            break; // no real work eligible
        }

        match issued {
            Some(path) => {
                self.slot_stats.total_slots += 1;
                self.slot_stats.real_slots += 1;
                self.finish_path(t, path, completes);
            }
            None => {
                // Idle slot: IR-DWB conversion, else a dummy.
                if let Some(mut dwb) = self.dwb.take() {
                    let converted = dwb.try_convert(&mut self.protocol, hierarchy, t);
                    self.dwb = Some(dwb);
                    if let Some(path) = converted? {
                        self.slot_stats.total_slots += 1;
                        self.slot_stats.converted_slots += 1;
                        self.finish_path(t, path, None);
                        return Ok(());
                    }
                }
                if self.timing_protection {
                    let path = {
                        let _p = profiler::enter(profiler::Phase::Stash);
                        self.protocol.dummy_path()
                    };
                    self.slot_stats.total_slots += 1;
                    self.slot_stats.dummy_slots += 1;
                    self.finish_path(t, path, None);
                } else {
                    // No fixed-rate discipline: skip ahead to the next work
                    // arrival (or one interval if nothing is pending).
                    let next_arrival = self.queue.front().map(|r| r.arrival);
                    self.next_slot = match next_arrival {
                        Some(a) if a > t => a,
                        _ => t + self.t_interval,
                    };
                }
            }
        }
        Ok(())
    }

    /// Maps a fault-plan corruption draw onto one memory bucket slot and
    /// flips its stored payload.
    fn inject_corruption(&mut self, pick: u64, mask: u64) {
        let cached = self.protocol.config().treetop.cached_levels();
        let levels = self.protocol.config().levels;
        if cached >= levels {
            return; // whole tree on-chip: nothing off-chip to corrupt
        }
        let span = (levels - cached) as u64;
        let level = cached + (pick % span) as usize;
        let bucket = (pick >> 8) % (1u64 << level);
        let z = self.protocol.layout().z_of(level) as u64;
        let slot = ((pick >> 40) % z) as u32;
        self.protocol.inject_tree_fault(level, bucket, slot, mask);
    }

    /// Flushes the deferred write-back batch (pipelined mode) into the
    /// memory controller, records the path as in flight for conflict
    /// detection, and returns the write completion — `None` when nothing
    /// was pending.
    fn flush_writes(&mut self) -> Option<Cycle> {
        let pending = self.pipe.as_mut()?.take_pending()?;
        let write_done = self
            .dram
            .schedule_batch_done(&self.write_buf, pending.read_done);
        self.write_buf.clear();
        if let Some(pipe) = &mut self.pipe {
            pipe.record(pending.leaf, pending.small_tree, write_done);
        }
        self.last_write_done = self
            .last_write_done
            .max(self.clock.slow_to_fast(write_done));
        Some(write_done)
    }

    /// Lines of the deferred write-back batch still awaiting flush (0 in
    /// serial mode). The DRAM request counter trails the slot count by
    /// exactly this amount mid-run; [`TimedController::drain`] flushes it.
    pub fn deferred_write_lines(&self) -> u64 {
        self.write_buf.len() as u64
    }

    /// Schedules the path's DRAM traffic and advances the slot clock.
    fn finish_path(&mut self, t: Cycle, path: PathRecord, completes: Option<ReqId>) {
        let _phase = profiler::enter(profiler::Phase::DramSchedule);
        let req_before = self.dram.stats().requests;
        // Transient bank stall: the batch reaches the memory controller
        // late; everything downstream (including the timing audit's floor)
        // sees the shifted completion.
        let stall = self.faults.as_mut().map_or(0, |p| p.bank_stall());
        let mut arrival = self.clock.fast_to_slow(t) + stall;
        // Pipelined: a path sharing a memory bucket with the still-deferred
        // write batch must let that batch land first (write-before-read on
        // a shared bucket); one sharing with an older unretired in-flight
        // path is held until its write-back retires. Either way the held
        // path's blocks wait in the stash escrow / F-Stash meanwhile.
        if self
            .pipe
            .as_mut()
            // lint: allow(secret-flow, leaf already revealed by this path access; the conflict check compares only public path addresses)
            .is_some_and(|p| p.pending_conflicts(&self.path_table, path.leaf.0, false))
        {
            if let Some(done) = self.flush_writes() {
                arrival = arrival.max(done);
            }
        }
        if let Some(pipe) = &mut self.pipe {
            // lint: allow(secret-flow, leaf already revealed by this path access; the hold compares only public path addresses)
            if let Some(hold) = pipe.conflict_hold(&self.path_table, path.leaf.0, false, arrival) {
                arrival = hold;
            }
        }
        // Table fill into the reused buffer: the read batch, then the same
        // addresses rewritten in place as the write-back batch.
        self.path_table
            .fill_reads(path.leaf.0, 0, arrival, &mut self.reqs_buf);
        let lines = self.reqs_buf.len() as u64;
        let read_done = self.dram.schedule_batch_done(&self.reqs_buf, arrival);
        let write_done = if self.pipe.is_some() {
            // Read-priority write-back: flush the *previous* slot's writes
            // now that this read has been scheduled (the read outranks them
            // in the bank queues), then defer our own batch the same way.
            self.flush_writes();
            self.write_buf.clear();
            self.write_buf.extend(self.reqs_buf.iter().map(|r| {
                let mut w = *r;
                w.is_write = true;
                w.arrival = read_done;
                w
            }));
            if let Some(pipe) = &mut self.pipe {
                pipe.stash_write(path.leaf.0, false, read_done);
            }
            None
        } else {
            for r in &mut self.reqs_buf {
                r.is_write = true;
                r.arrival = read_done;
            }
            Some(self.dram.schedule_batch_done(&self.reqs_buf, read_done))
        };
        // Re-fetch penalty: every corruption this path's read phase detected
        // and repaired stretches the read-phase completion — the public
        // occupancy floor — so recovery is a measured timing cost, not a
        // schedule violation.
        let detected = self.protocol.integrity_stats().detected;
        let penalty = (detected - self.seen_detected) * self.refetch_lat;
        self.seen_detected = detected;
        self.penalty_cycles += penalty;
        let read_floor_cpu = self.clock.slow_to_fast(read_done) + penalty;
        let read_done_cpu = read_floor_cpu + self.decrypt_lat;
        if let Some(wd) = write_done {
            let write_done_cpu = self.clock.slow_to_fast(wd);
            self.last_write_done = self.last_write_done.max(write_done_cpu);
        }
        if let Some(id) = completes {
            self.completions.push((id, read_done_cpu));
        }
        if let Some(audit) = &mut self.audit {
            let cached = self.protocol.config().treetop.cached_levels();
            audit.note_slot(t, self.t_interval, read_floor_cpu, self.timing_protection);
            audit.check_conservation(
                lines,
                self.protocol.layout().path_len_memory(cached),
                self.dram.stats().requests - req_before,
                self.dram.latency_underflows(),
                self.write_buf.len() as u64,
            );
        }
        // Fixed rate with the occupancy constraint: serially, the
        // controller finishes a path's read phase before issuing the next
        // path; the write phase drains through the memory controller in the
        // background and contends with the next path's reads via DRAM
        // bank/bus state. Pipelined, the floor comes from the access
        // `depth` slots back instead, so consecutive accesses overlap.
        self.next_slot = match &mut self.pipe {
            Some(pipe) => pipe.pace(t, self.t_interval, read_floor_cpu),
            None => (t + self.t_interval).max(read_floor_cpu),
        };
    }

    // -- Checkpointing ------------------------------------------------------

    /// Serializes the controller's complete logical state — protocol, DRAM
    /// timing state, queues, in-flight work, pipeline, IR-DWB, audit, fault
    /// plan, and every counter — for a checkpoint snapshot. Derived state
    /// (the path table) and per-call scratch (`reqs_buf`) are rebuilt from
    /// configuration instead.
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.protocol.save_state(w);
        self.dram.save_state(w);
        w.put_usize(self.write_buf.len());
        for r in &self.write_buf {
            w.put_u64(r.line_addr);
            w.put_bool(r.is_write);
            w.put_u64(r.arrival.0);
        }
        w.put_u64(self.next_slot.0);
        save_req_queue(w, &self.queue);
        w.put_usize(self.wb_queue.len());
        for a in &self.wb_queue {
            w.put_u64(a.0);
        }
        match &self.current {
            None => w.put_u8(0),
            Some(Work::Request { req, pm }) => {
                w.put_u8(1);
                save_req(w, req);
                save_addr_deque(w, pm);
            }
            Some(Work::DelayedWb { addr, pm }) => {
                w.put_u8(2);
                w.put_u64(addr.0);
                save_addr_deque(w, pm);
            }
        }
        match &self.pipe {
            None => w.put_u8(0),
            Some(p) => {
                w.put_u8(1);
                p.save_state(w);
            }
        }
        match &self.dwb {
            None => w.put_u8(0),
            Some(d) => {
                w.put_u8(1);
                d.save_state(w);
            }
        }
        w.put_usize(self.completions.len());
        for &(id, done) in &self.completions {
            w.put_u64(id);
            w.put_u64(done.0);
        }
        w.put_u64(self.slot_stats.total_slots);
        w.put_u64(self.slot_stats.real_slots);
        w.put_u64(self.slot_stats.bg_slots);
        w.put_u64(self.slot_stats.dummy_slots);
        w.put_u64(self.slot_stats.converted_slots);
        w.put_u64(self.last_write_done.0);
        match &self.audit {
            None => w.put_u8(0),
            Some(a) => {
                w.put_u8(1);
                a.save_state(w);
            }
        }
        match &self.faults {
            None => w.put_u8(0),
            Some(p) => {
                w.put_u8(1);
                p.save_state(w);
            }
        }
        w.put_u64(self.seen_detected);
        w.put_u64(self.penalty_cycles);
        w.put_bool(self.storm_now);
        w.put_bool(self.was_bg_pending);
        w.put_u64(self.overflow_slots);
        w.put_u64(self.bg_escalations);
        w.put_u64(self.degraded_slots);
        w.put_u64(self.throttled_admissions);
        w.put_u64(self.overflow_grace);
        w.put_u64(self.slots_done);
    }

    /// Restores state written by [`TimedController::save_state`] into a
    /// controller freshly built from the same configuration.
    ///
    /// # Errors
    ///
    /// [`SnapError`] when the payload is malformed or was written by a
    /// controller with a different configuration (pipeline/DWB/audit/fault
    /// presence must match).
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.protocol.restore_state(r)?;
        self.dram.restore_state(r)?;
        let n = r.take_seq_len(17)?;
        self.write_buf.clear();
        for _ in 0..n {
            let line_addr = r.take_u64()?;
            let is_write = r.take_bool()?;
            let arrival = Cycle(r.take_u64()?);
            self.write_buf.push(MemRequest {
                line_addr,
                is_write,
                arrival,
            });
        }
        self.next_slot = Cycle(r.take_u64()?);
        self.queue = restore_req_queue(r)?;
        let n = r.take_seq_len(8)?;
        self.wb_queue.clear();
        for _ in 0..n {
            self.wb_queue.push_back(BlockAddr(r.take_u64()?));
        }
        self.current = match r.take_u8()? {
            0 => None,
            1 => {
                let req = restore_req(r)?;
                let pm = restore_addr_deque(r)?;
                Some(Work::Request { req, pm })
            }
            2 => {
                let addr = BlockAddr(r.take_u64()?);
                let pm = restore_addr_deque(r)?;
                Some(Work::DelayedWb { addr, pm })
            }
            _ => return Err(SnapError::Corrupt("bad current-work tag")),
        };
        match (r.take_u8()?, &mut self.pipe) {
            (0, None) => {}
            (1, Some(p)) => p.restore_state(r)?,
            _ => return Err(SnapError::Corrupt("pipeline presence mismatch")),
        }
        match (r.take_u8()?, &mut self.dwb) {
            (0, None) => {}
            (1, Some(d)) => d.restore_state(r)?,
            _ => return Err(SnapError::Corrupt("DWB presence mismatch")),
        }
        let n = r.take_seq_len(16)?;
        self.completions.clear();
        for _ in 0..n {
            let id = r.take_u64()?;
            let done = Cycle(r.take_u64()?);
            self.completions.push((id, done));
        }
        self.slot_stats.total_slots = r.take_u64()?;
        self.slot_stats.real_slots = r.take_u64()?;
        self.slot_stats.bg_slots = r.take_u64()?;
        self.slot_stats.dummy_slots = r.take_u64()?;
        self.slot_stats.converted_slots = r.take_u64()?;
        self.last_write_done = Cycle(r.take_u64()?);
        match (r.take_u8()?, &mut self.audit) {
            (0, None) => {}
            (1, Some(a)) => a.restore_state(r)?,
            _ => return Err(SnapError::Corrupt("audit presence mismatch")),
        }
        match (r.take_u8()?, &mut self.faults) {
            (0, None) => {}
            (1, Some(p)) => p.restore_state(r)?,
            _ => return Err(SnapError::Corrupt("fault-plan presence mismatch")),
        }
        self.seen_detected = r.take_u64()?;
        self.penalty_cycles = r.take_u64()?;
        self.storm_now = r.take_bool()?;
        self.was_bg_pending = r.take_bool()?;
        self.overflow_slots = r.take_u64()?;
        self.bg_escalations = r.take_u64()?;
        self.degraded_slots = r.take_u64()?;
        self.throttled_admissions = r.take_u64()?;
        self.overflow_grace = r.take_u64()?;
        self.slots_done = r.take_u64()?;
        Ok(())
    }
}

/// Serializes one [`OramRequest`].
pub(crate) fn save_req(w: &mut SnapWriter, req: &OramRequest) {
    w.put_u64(req.id);
    w.put_u64(req.addr.0);
    w.put_u64(req.arrival.0);
    w.put_bool(req.blocking);
}

/// Restores one [`OramRequest`].
pub(crate) fn restore_req(r: &mut SnapReader<'_>) -> Result<OramRequest, SnapError> {
    Ok(OramRequest {
        id: r.take_u64()?,
        addr: BlockAddr(r.take_u64()?),
        arrival: Cycle(r.take_u64()?),
        blocking: r.take_bool()?,
    })
}

/// Serializes a FIFO of [`OramRequest`]s.
pub(crate) fn save_req_queue(w: &mut SnapWriter, q: &VecDeque<OramRequest>) {
    w.put_usize(q.len());
    for req in q {
        save_req(w, req);
    }
}

/// Restores a FIFO of [`OramRequest`]s.
pub(crate) fn restore_req_queue(
    r: &mut SnapReader<'_>,
) -> Result<VecDeque<OramRequest>, SnapError> {
    let n = r.take_seq_len(25)?;
    let mut q = VecDeque::with_capacity(n);
    for _ in 0..n {
        q.push_back(restore_req(r)?);
    }
    Ok(q)
}

/// Serializes a pending PosMap-fetch chain.
pub(crate) fn save_addr_deque(w: &mut SnapWriter, pm: &VecDeque<BlockAddr>) {
    w.put_usize(pm.len());
    for a in pm {
        w.put_u64(a.0);
    }
}

/// Restores a pending PosMap-fetch chain.
pub(crate) fn restore_addr_deque(
    r: &mut SnapReader<'_>,
) -> Result<VecDeque<BlockAddr>, SnapError> {
    let n = r.take_seq_len(8)?;
    let mut pm = VecDeque::with_capacity(n);
    for _ in 0..n {
        pm.push_back(BlockAddr(r.take_u64()?));
    }
    Ok(pm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scheme;
    use iroram_cache::HierarchyConfig;

    fn tiny_system(scheme: Scheme) -> SystemConfig {
        let mut cfg = SystemConfig::scaled(scheme);
        cfg.oram.levels = 9;
        cfg.oram.data_blocks = 1 << 10;
        cfg.oram.zalloc = iroram_protocol::ZAllocation::uniform(9, 4);
        cfg.oram.treetop = iroram_protocol::TreeTopMode::Dedicated { levels: 3 };
        cfg.oram.plb_sets = 4;
        cfg.oram.plb_ways = 2;
        cfg.hierarchy = HierarchyConfig {
            l1_sets: 8,
            l1_assoc: 2,
            llc_sets: 32,
            llc_assoc: 4,
        };
        cfg.with_scheme(scheme)
    }

    fn hierarchy(cfg: &SystemConfig) -> MemoryHierarchy {
        MemoryHierarchy::new(cfg.hierarchy)
    }

    #[test]
    fn blocking_request_completes() {
        let cfg = tiny_system(Scheme::Baseline);
        let mut ctl = TimedController::new(&cfg);
        let mut h = hierarchy(&cfg);
        let addr = BlockAddr(5);
        if ctl.front_try(addr, Cycle(0)).is_some() {
            return; // randomly resident on-chip; nothing to test
        }
        ctl.submit(OramRequest {
            id: 1,
            addr,
            arrival: Cycle(0),
            blocking: true,
        });
        let done = ctl.advance_until_complete(1, &mut h).unwrap();
        assert!(done > Cycle(0));
        assert!(ctl.slot_stats().total_slots >= 1);
    }

    #[test]
    fn slots_respect_t_interval() {
        let cfg = tiny_system(Scheme::Baseline);
        let mut ctl = TimedController::new(&cfg);
        let mut h = hierarchy(&cfg);
        // Run 50 dummy slots.
        for _ in 0..50 {
            ctl.process_slot(&mut h).unwrap();
        }
        let s = ctl.slot_stats();
        assert_eq!(s.total_slots, 50);
        assert_eq!(s.dummy_slots, 50, "no work → all dummies");
        // The slot clock advanced by at least 50 × T.
        assert!(ctl.next_slot >= Cycle(50 * cfg.t_interval));
    }

    #[test]
    fn dummy_paths_touch_dram_like_real_ones() {
        let cfg = tiny_system(Scheme::Baseline);
        let mut ctl = TimedController::new(&cfg);
        let mut h = hierarchy(&cfg);
        ctl.process_slot(&mut h).unwrap();
        let per_path = ctl.dram_stats().requests;
        assert_eq!(
            per_path,
            2 * ctl.protocol.layout().path_len_memory(3),
            "one read + one write per memory slot on the path"
        );
    }

    #[test]
    fn no_timing_protection_no_dummies() {
        let mut cfg = tiny_system(Scheme::Baseline);
        cfg.timing_protection = false;
        let mut ctl = TimedController::new(&cfg);
        let mut h = hierarchy(&cfg);
        for _ in 0..20 {
            ctl.process_slot(&mut h).unwrap();
        }
        assert_eq!(ctl.slot_stats().dummy_slots, 0);
        assert_eq!(ctl.dram_stats().requests, 0);
    }

    #[test]
    fn dirty_eviction_immediate_becomes_write_request() {
        let cfg = tiny_system(Scheme::Baseline);
        let mut ctl = TimedController::new(&cfg);
        let _h = hierarchy(&cfg);
        // Use an address guaranteed not on-chip by draining front first.
        let mut victim = None;
        for a in 0..64 {
            if ctl.front_try(BlockAddr(a), Cycle(0)).is_none() {
                victim = Some(BlockAddr(a));
                break;
            }
        }
        let victim = victim.expect("some block off-chip");
        let before = ctl.queue_len();
        ctl.on_llc_eviction(victim, true, Cycle(0), 77);
        assert_eq!(ctl.queue_len(), before + 1);
        // Clean evictions are free under immediate remap.
        ctl.on_llc_eviction(victim, false, Cycle(0), 78);
        assert_eq!(ctl.queue_len(), before + 1);
    }

    #[test]
    fn delayed_eviction_requeues_escrowed_blocks() {
        let cfg = tiny_system(Scheme::LlcD);
        let mut ctl = TimedController::new(&cfg);
        let mut h = hierarchy(&cfg);
        // Access a block so it gets escrowed.
        ctl.submit(OramRequest {
            id: 1,
            addr: BlockAddr(9),
            arrival: Cycle(0),
            blocking: true,
        });
        ctl.advance_until_complete(1, &mut h).unwrap();
        if ctl.protocol.is_escrowed(BlockAddr(9)) {
            ctl.on_llc_eviction(BlockAddr(9), false, Cycle(10_000), 2);
            assert!(ctl.has_real_work());
            ctl.drain(&mut h).unwrap();
            assert!(!ctl.protocol.is_escrowed(BlockAddr(9)));
        }
    }

    #[test]
    fn dwb_converts_dummies_for_dirty_llc_lines() {
        let cfg = tiny_system(Scheme::IrDwb);
        let mut ctl = TimedController::new(&cfg);
        let mut h = hierarchy(&cfg);
        // Make several LLC lines dirty.
        for a in 0..8u64 {
            h.access(a, true);
        }
        for _ in 0..40 {
            ctl.process_slot(&mut h).unwrap();
        }
        let s = ctl.slot_stats();
        assert!(
            s.converted_slots > 0,
            "dummy slots should convert to write-backs"
        );
        let d = ctl.dwb_stats().expect("engine enabled");
        assert!(d.completed > 0, "at least one line fully cleaned");
    }

    #[test]
    fn fifo_order_of_blocking_requests() {
        let cfg = tiny_system(Scheme::Baseline);
        let mut ctl = TimedController::new(&cfg);
        let mut h = hierarchy(&cfg);
        let mut ids = Vec::new();
        let mut id = 0;
        for a in 100..110 {
            if ctl.front_try(BlockAddr(a), Cycle(0)).is_none() {
                id += 1;
                ctl.submit(OramRequest {
                    id,
                    addr: BlockAddr(a),
                    arrival: Cycle(0),
                    blocking: true,
                });
                ids.push(id);
            }
        }
        if ids.is_empty() {
            return;
        }
        let last = *ids.last().expect("nonempty");
        ctl.advance_until_complete(last, &mut h).unwrap();
        let completions = ctl.take_completions();
        let order: Vec<ReqId> = completions.iter().map(|&(i, _)| i).collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted, "FIFO completions");
        // Completion times are non-decreasing as well.
        let times: Vec<Cycle> = completions.iter().map(|&(_, t)| t).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }
}
