//! One KV shard: bounded cuckoo-style slotting over a single Path ORAM.
//!
//! Every ORAM block stores one entry packed as `(key << 32) | value`; keys
//! are nonzero `u32`s so the zero payload unambiguously marks an empty
//! slot (a stored value of 0 is still distinguishable from "absent"
//! because the packed entry carries the nonzero key in its upper half).
//!
//! A key hashes to [`PROBES`] candidate slots. Every operation performs the
//! same ORAM access sequence — [`PROBES`] probe reads followed by exactly
//! one write-phase access — whether it hits, misses, inserts, updates or
//! deletes; when no real write is needed the write phase is an identity
//! read-modify-write ("refresh") of the first candidate, which remaps and
//! re-encrypts the block exactly like a real write. An insert that finds
//! all candidates occupied displaces a victim cuckoo-style for at most
//! [`MAX_KICKS`] relocation rounds (each again [`PROBES`] reads + 1
//! write); the last displaced entry parks in a bounded *client-side*
//! overflow stash that never touches the server.

use std::collections::BTreeMap;

use iroram_hash::mix64;
use iroram_protocol::{AccessBatch, BlockAddr, OramConfig, PathOram, ProtocolStats};
use iroram_sim_engine::SimRng;

/// Candidate slots per key: the fixed probe width of every operation.
pub const PROBES: usize = 3;

/// Relocation rounds a colliding insert may spend before the displaced
/// entry parks in the overflow stash.
pub const MAX_KICKS: usize = 8;

/// Client-side overflow stash capacity. When it is full, inserts that
/// would need displacement fail with [`KvError::StoreFull`] instead of
/// risking data loss.
pub const OVERFLOW_CAPACITY: usize = 64;

/// Per-probe hash salts: the i-th candidate slot of `key` is
/// `mix64(key ^ SALT[i])` masked to the shard's slot count. Distinct
/// odd-ish constants decorrelate the three probe sequences.
const PROBE_SALTS: [u64; PROBES] = [
    0x9E37_79B9_7F4A_7C15,
    0xC2B2_AE3D_27D4_EB4F,
    0x1656_67B1_9E37_79F9,
];

/// Salt for the shard directory hash, distinct from every probe salt so
/// shard choice and slot choice are independent.
const SHARD_SALT: u64 = 0x85EB_CA77_C2B2_AE63;

/// The shard index `key` belongs to, out of `shards`.
pub fn shard_of(key: u32, shards: usize) -> usize {
    (mix64(u64::from(key) ^ SHARD_SALT) % shards as u64) as usize
}

/// A wall-clock source injected by benchmark harnesses: returns
/// monotonically increasing ticks (e.g. nanoseconds). The KV crate never
/// reads time itself — determinism-linted code must not — so latency
/// measurement lives entirely in the caller's closure. Clock reads never
/// influence replies, stats or ORAM state.
pub type Clock<'a> = &'a (dyn Fn() -> u64 + Sync);

/// Packs a (nonzero key, value) pair into one ORAM block payload.
fn pack(key: u32, value: u32) -> u64 {
    debug_assert_ne!(key, 0);
    (u64::from(key) << 32) | u64::from(value)
}

/// The key half of a packed entry (0 = empty slot).
fn key_of(entry: u64) -> u32 {
    (entry >> 32) as u32
}

/// The value half of a packed entry.
fn value_of(entry: u64) -> u32 {
    entry as u32
}

/// One client operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvOp {
    /// Insert or update; replies with the previous value, if any.
    Put {
        /// Nonzero key.
        key: u32,
        /// New value (0 is a legal stored value).
        value: u32,
    },
    /// Lookup; replies with the stored value, if any.
    Get {
        /// Nonzero key.
        key: u32,
    },
    /// Remove; replies with the removed value, if any.
    Delete {
        /// Nonzero key.
        key: u32,
    },
}

impl KvOp {
    /// The key this operation addresses.
    pub fn key(&self) -> u32 {
        match *self {
            KvOp::Put { key, .. } | KvOp::Get { key } | KvOp::Delete { key } => key,
        }
    }
}

/// Service-layer errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvError {
    /// Key 0 is reserved as the empty-slot marker and cannot be stored.
    ZeroKey,
    /// The table and the overflow stash cannot absorb another insert.
    StoreFull,
    /// A shard's bounded request queue is full; flush before submitting
    /// more.
    QueueFull,
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::ZeroKey => write!(f, "key 0 is reserved as the empty-slot marker"),
            KvError::StoreFull => write!(f, "shard table and overflow stash are full"),
            KvError::QueueFull => write!(f, "shard request queue is full"),
        }
    }
}

/// Per-shard KV-layer counters (the ORAM keeps its own
/// [`ProtocolStats`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KvStats {
    /// Put operations served.
    pub puts: u64,
    /// Get operations served.
    pub gets: u64,
    /// Delete operations served.
    pub deletes: u64,
    /// Operations that found their key (in table or overflow).
    pub hits: u64,
    /// Operations that did not.
    pub misses: u64,
    /// Cuckoo relocation rounds performed.
    pub kicks: u64,
    /// Entries parked in the overflow stash (cumulative).
    pub overflow_parked: u64,
    /// Peak overflow stash occupancy.
    pub overflow_peak: u64,
    /// Inserts rejected with [`KvError::StoreFull`].
    pub store_full: u64,
}

/// A deterministic end-of-run snapshot of one shard, for twin-run
/// byte-identity checks and bench provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardReport {
    /// Shard index in the service.
    pub shard: usize,
    /// Slot count of the shard's table.
    pub slots: u64,
    /// KV-layer counters.
    pub kv: KvStats,
    /// Protocol counters of the underlying ORAM.
    pub oram: ProtocolStats,
    /// Current ORAM stash occupancy.
    pub stash_len: usize,
    /// Peak ORAM stash occupancy.
    pub stash_peak: usize,
    /// Current overflow stash occupancy.
    pub overflow_len: usize,
}

/// One KV shard: a cuckoo-slotted table inside a single [`PathOram`],
/// plus the client-side overflow stash and the shard's private RNG for
/// victim selection.
pub struct KvShard {
    oram: PathOram,
    slot_mask: u64,
    overflow: BTreeMap<u32, u32>,
    rng: SimRng,
    stats: KvStats,
}

impl KvShard {
    /// Builds a shard with `slots` table slots (a power of two) backed by
    /// an ORAM sized by [`crate::KvConfig::oram_config`].
    pub fn new(cfg: OramConfig, slots: u64) -> Self {
        assert!(slots.is_power_of_two(), "slot count must be a power of two");
        assert!(
            slots <= cfg.data_blocks,
            "{slots} slots cannot fit {} ORAM data blocks",
            cfg.data_blocks
        );
        let rng = SimRng::seed_from(mix64(cfg.seed ^ 0x4B56_5249_4E47)); // "KVRING"
        KvShard {
            oram: PathOram::new(cfg),
            slot_mask: slots - 1,
            overflow: BTreeMap::new(),
            rng,
            stats: KvStats::default(),
        }
    }

    /// Table slot count.
    pub fn slots(&self) -> u64 {
        self.slot_mask + 1
    }

    /// The [`PROBES`] candidate slots of `key`. Candidates may collide on
    /// small tables; collisions only shrink the key's effective choice
    /// set, they never break correctness.
    fn candidates(&self, key: u32) -> [u64; PROBES] {
        let mut out = [0u64; PROBES];
        for (slot, salt) in out.iter_mut().zip(PROBE_SALTS) {
            *slot = mix64(u64::from(key) ^ salt) & self.slot_mask;
        }
        out
    }

    /// Serves one batch of operations in order, returning one reply per
    /// op. All ORAM traffic goes through a single [`AccessBatch`], so the
    /// background-eviction drain is planned once for the whole batch.
    pub fn run_batch(&mut self, ops: &[KvOp]) -> Vec<Result<Option<u32>, KvError>> {
        self.run_batch_timed(ops, None).0
    }

    /// [`KvShard::run_batch`] with per-op latency sampling through an
    /// injected clock. The clocked and unclocked paths execute the exact
    /// same access sequence — the clock only brackets each op — so
    /// replies and stats are byte-identical either way.
    pub fn run_batch_timed(
        &mut self,
        ops: &[KvOp],
        clock: Option<Clock<'_>>,
    ) -> (Vec<Result<Option<u32>, KvError>>, Vec<u64>) {
        let mut out = Vec::with_capacity(ops.len());
        let mut lats = Vec::with_capacity(ops.len());
        let cands: Vec<[u64; PROBES]> = ops.iter().map(|op| self.candidates(op.key())).collect();
        let KvShard {
            oram,
            slot_mask,
            overflow,
            rng,
            stats,
        } = self;
        let mut batch = oram.batch();
        for (op, cand) in ops.iter().zip(&cands) {
            let t0 = clock.map_or(0, |c| c());
            out.push(exec_op(
                &mut batch, overflow, rng, stats, *slot_mask, *op, *cand,
            ));
            lats.push(clock.map_or(0, |c| c().saturating_sub(t0)));
        }
        batch.finish();
        stats.overflow_peak = stats.overflow_peak.max(overflow.len() as u64);
        (out, lats)
    }

    /// Serves a single operation (a batch of one).
    pub fn run_op(&mut self, op: KvOp) -> Result<Option<u32>, KvError> {
        self.run_batch(std::slice::from_ref(&op))
            .pop()
            .expect("one op in, one reply out")
    }

    /// This shard's deterministic report.
    pub fn report(&self, shard: usize) -> ShardReport {
        ShardReport {
            shard,
            slots: self.slots(),
            kv: self.stats.clone(),
            oram: self.oram.stats().clone(),
            stash_len: self.oram.stash_len(),
            stash_peak: self.oram.stash_peak(),
            overflow_len: self.overflow.len(),
        }
    }

    /// The underlying ORAM (for invariant checks in tests).
    pub fn oram(&self) -> &PathOram {
        &self.oram
    }

    /// Dumps every stored (key, value) pair — table slots in slot order,
    /// then overflow entries in key order. Reads the table through the
    /// ORAM, so this mutates protocol state; capture reports first.
    pub fn dump(&mut self) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for slot in 0..=self.slot_mask {
            let entry = self.oram.read(slot);
            if key_of(entry) != 0 {
                out.push((key_of(entry), value_of(entry)));
            }
        }
        out.extend(self.overflow.iter().map(|(&k, &v)| (k, v)));
        out
    }
}

/// Executes one operation against a shard's open access batch.
///
/// Access sequence (identical for put/get/delete, hit or miss):
/// [`PROBES`] probe reads, then exactly one write-phase access. Only a
/// put that finds every candidate occupied by other keys extends this
/// with displacement rounds.
fn exec_op(
    batch: &mut AccessBatch<'_>,
    overflow: &mut BTreeMap<u32, u32>,
    rng: &mut SimRng,
    stats: &mut KvStats,
    slot_mask: u64,
    op: KvOp,
    cands: [u64; PROBES],
) -> Result<Option<u32>, KvError> {
    let key = op.key();
    if key == 0 {
        return Err(KvError::ZeroKey);
    }

    // Probe phase: PROBES reads, unconditionally.
    let mut entries = [0u64; PROBES];
    for (entry, &slot) in entries.iter_mut().zip(&cands) {
        *entry = batch.access(BlockAddr(slot), None).payload;
    }
    // The decisions below branch on probed payloads: that is the KV
    // client's own plaintext working state (the trusted side of the
    // boundary), and every branch arm issues the same number of ORAM
    // accesses, so the server-visible trace stays independent of them.
    let found = entries.iter().position(|&e| key_of(e) == key);
    let empty = entries.iter().position(|&e| e == 0);
    let in_overflow = overflow.contains_key(&key);

    match op {
        KvOp::Get { .. } => {
            stats.gets += 1;
            let value = match found {
                Some(i) => Some(value_of(entries[i])),
                None => overflow.get(&key).copied(),
            };
            tally_hit(stats, value.is_some());
            refresh(batch, cands[0]);
            Ok(value)
        }
        KvOp::Delete { .. } => {
            stats.deletes += 1;
            match found {
                Some(i) => {
                    tally_hit(stats, true);
                    batch.access(BlockAddr(cands[i]), Some(0));
                    Ok(Some(value_of(entries[i])))
                }
                None => {
                    let prev = overflow.remove(&key);
                    tally_hit(stats, prev.is_some());
                    refresh(batch, cands[0]);
                    Ok(prev)
                }
            }
        }
        KvOp::Put { value, .. } => {
            stats.puts += 1;
            match (found, in_overflow, empty) {
                // Update in place.
                (Some(i), _, _) => {
                    tally_hit(stats, true);
                    batch.access(BlockAddr(cands[i]), Some(pack(key, value)));
                    Ok(Some(value_of(entries[i])))
                }
                // Key parked in overflow and a table slot opened up: drain
                // it back into the table.
                (None, true, Some(e)) => {
                    tally_hit(stats, true);
                    let prev = overflow.remove(&key);
                    batch.access(BlockAddr(cands[e]), Some(pack(key, value)));
                    Ok(prev)
                }
                // Key parked in overflow, table still full: update there.
                (None, true, None) => {
                    tally_hit(stats, true);
                    let prev = overflow.insert(key, value);
                    refresh(batch, cands[0]);
                    Ok(prev)
                }
                // Fresh insert into an empty candidate.
                (None, false, Some(e)) => {
                    tally_hit(stats, false);
                    batch.access(BlockAddr(cands[e]), Some(pack(key, value)));
                    Ok(None)
                }
                // All candidates occupied by other keys: displace one.
                (None, false, None) => {
                    tally_hit(stats, false);
                    if overflow.len() >= OVERFLOW_CAPACITY {
                        // Refusing *before* displacing keeps the chain
                        // lossless: a kicked-out entry always has a
                        // guaranteed overflow slot to land in.
                        stats.store_full += 1;
                        refresh(batch, cands[0]);
                        return Err(KvError::StoreFull);
                    }
                    let j = rng.next_below(PROBES as u64) as usize;
                    let carry = entries[j];
                    let mut from = cands[j];
                    batch.access(BlockAddr(from), Some(pack(key, value)));
                    relocate(batch, overflow, rng, stats, slot_mask, carry, &mut from);
                    Ok(None)
                }
            }
        }
    }
}

/// Cuckoo relocation: re-home the displaced packed entry `carry`, kicked
/// out of slot `from`, displacing further victims for at most
/// [`MAX_KICKS`] rounds before parking the last one in the overflow stash
/// (capacity was checked by the caller, so the park cannot fail).
fn relocate(
    batch: &mut AccessBatch<'_>,
    overflow: &mut BTreeMap<u32, u32>,
    rng: &mut SimRng,
    stats: &mut KvStats,
    slot_mask: u64,
    mut carry: u64,
    from: &mut u64,
) {
    for _ in 0..MAX_KICKS {
        stats.kicks += 1;
        let ckey = key_of(carry);
        let mut cands = [0u64; PROBES];
        for (slot, salt) in cands.iter_mut().zip(PROBE_SALTS) {
            *slot = mix64(u64::from(ckey) ^ salt) & slot_mask;
        }
        let mut entries = [0u64; PROBES];
        for (entry, &slot) in entries.iter_mut().zip(&cands) {
            *entry = batch.access(BlockAddr(slot), None).payload;
        }
        if let Some(e) = entries.iter().position(|&e| e == 0) {
            batch.access(BlockAddr(cands[e]), Some(carry));
            return;
        }
        // Never kick the entry we just wrote back out: exclude `from`.
        let choices: Vec<usize> = (0..PROBES).filter(|&i| cands[i] != *from).collect();
        if choices.is_empty() {
            // Pathological: every candidate of the carried key is the slot
            // it came from. Park it instead of cycling.
            break;
        }
        let j = choices[rng.next_below(choices.len() as u64) as usize];
        let victim = entries[j];
        batch.access(BlockAddr(cands[j]), Some(carry));
        carry = victim;
        *from = cands[j];
    }
    stats.overflow_parked += 1;
    let prev = overflow.insert(key_of(carry), value_of(carry));
    debug_assert!(prev.is_none(), "displaced key cannot already be in overflow");
}

/// The identity write-phase access: remaps and re-encrypts `slot` exactly
/// like a real write, making no-write operations indistinguishable from
/// writes on the server.
fn refresh(batch: &mut AccessBatch<'_>, slot: u64) {
    batch.access_with(BlockAddr(slot), |cur| cur);
}

fn tally_hit(stats: &mut KvStats, hit: bool) {
    if hit {
        stats.hits += 1;
    } else {
        stats.misses += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KvConfig;

    fn shard() -> KvShard {
        let cfg = KvConfig::for_keys(256, 1);
        KvShard::new(cfg.oram_config(0), cfg.slots_per_shard)
    }

    #[test]
    fn packing_roundtrips_and_zero_is_empty() {
        for (k, v) in [(1u32, 0u32), (1, u32::MAX), (u32::MAX, 0), (7, 42)] {
            let e = pack(k, v);
            assert_ne!(e, 0, "nonzero key must never pack to the empty marker");
            assert_eq!(key_of(e), k);
            assert_eq!(value_of(e), v);
        }
        assert_eq!(key_of(0), 0, "the empty slot parses as key 0");
    }

    #[test]
    fn value_zero_is_distinct_from_absent() {
        let mut s = shard();
        assert_eq!(s.run_op(KvOp::Put { key: 5, value: 0 }), Ok(None));
        assert_eq!(s.run_op(KvOp::Get { key: 5 }), Ok(Some(0)));
        assert_eq!(s.run_op(KvOp::Delete { key: 5 }), Ok(Some(0)));
        assert_eq!(s.run_op(KvOp::Get { key: 5 }), Ok(None));
    }

    #[test]
    fn zero_key_is_rejected_for_every_op() {
        let mut s = shard();
        assert_eq!(
            s.run_op(KvOp::Put { key: 0, value: 1 }),
            Err(KvError::ZeroKey)
        );
        assert_eq!(s.run_op(KvOp::Get { key: 0 }), Err(KvError::ZeroKey));
        assert_eq!(s.run_op(KvOp::Delete { key: 0 }), Err(KvError::ZeroKey));
    }

    #[test]
    fn put_get_delete_basic() {
        let mut s = shard();
        assert_eq!(s.run_op(KvOp::Get { key: 9 }), Ok(None));
        assert_eq!(s.run_op(KvOp::Put { key: 9, value: 81 }), Ok(None));
        assert_eq!(s.run_op(KvOp::Put { key: 9, value: 82 }), Ok(Some(81)));
        assert_eq!(s.run_op(KvOp::Get { key: 9 }), Ok(Some(82)));
        assert_eq!(s.run_op(KvOp::Delete { key: 9 }), Ok(Some(82)));
        assert_eq!(s.run_op(KvOp::Delete { key: 9 }), Ok(None));
        s.oram().check_invariants().expect("ORAM sound");
    }

    #[test]
    fn every_base_op_costs_exactly_probes_plus_one_accesses() {
        let mut s = shard();
        // Ops that cannot trigger displacement on an empty table.
        let script = [
            KvOp::Get { key: 11 },            // miss
            KvOp::Put { key: 11, value: 1 },  // fresh insert
            KvOp::Get { key: 11 },            // hit
            KvOp::Put { key: 11, value: 2 },  // update
            KvOp::Delete { key: 11 },         // hit delete
            KvOp::Delete { key: 11 },         // miss delete
        ];
        for op in script {
            let before = s.oram().stats().accesses;
            s.run_op(op).unwrap();
            let cost = s.oram().stats().accesses - before;
            assert_eq!(
                cost,
                PROBES as u64 + 1,
                "{op:?} must cost exactly {} accesses, got {cost}",
                PROBES + 1
            );
        }
    }

    /// A deliberately tiny 64-slot table inside a tiny ORAM, so collision
    /// paths (displacement, overflow, StoreFull) actually trigger.
    fn tiny_shard() -> KvShard {
        KvShard::new(OramConfig::tiny(), 64)
    }

    #[test]
    fn displacement_keeps_every_entry_reachable() {
        // Overfill a tiny table far beyond what pure probing can place:
        // displacement plus the overflow stash must keep every surviving
        // put readable, and nothing may be silently lost.
        let mut s = tiny_shard();
        let mut stored = Vec::new();
        let mut full = 0u32;
        for k in 1..=200u32 {
            match s.run_op(KvOp::Put { key: k, value: k * 3 }) {
                Ok(_) => stored.push(k),
                Err(KvError::StoreFull) => full += 1,
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert!(full > 0, "200 puts into 64 slots must eventually refuse");
        for &k in &stored {
            assert_eq!(s.run_op(KvOp::Get { key: k }), Ok(Some(k * 3)), "key {k}");
        }
        let report = s.report(0);
        assert!(report.kv.kicks > 0, "displacement must have triggered");
        assert!(
            report.kv.overflow_peak as usize <= OVERFLOW_CAPACITY,
            "overflow stash bounded"
        );
        s.oram().check_invariants().expect("ORAM sound");
    }

    #[test]
    fn overflow_drains_back_into_the_table() {
        let mut s = tiny_shard();
        for k in 1..=200u32 {
            let _ = s.run_op(KvOp::Put { key: k, value: k });
        }
        let parked = s.report(0).overflow_len;
        assert!(parked > 0, "overfill must have parked entries");
        // Deleting table entries opens candidate slots; re-putting a
        // parked key must then move it back into the table.
        for k in 1..=100u32 {
            let _ = s.run_op(KvOp::Delete { key: k });
        }
        let parked_keys: Vec<u32> = s.overflow.keys().copied().collect();
        for k in parked_keys {
            let prev = s.run_op(KvOp::Put { key: k, value: k + 1 }).unwrap();
            assert!(prev.is_some(), "parked key {k} must still be present");
        }
        assert!(
            s.report(0).overflow_len <= parked,
            "re-puts must not grow overflow"
        );
    }

    #[test]
    fn dump_reflects_contents() {
        let mut s = shard();
        for k in [3u32, 1, 7] {
            s.run_op(KvOp::Put { key: k, value: k * 10 }).unwrap();
        }
        let mut d = s.dump();
        d.sort_unstable();
        assert_eq!(d, vec![(1, 10), (3, 30), (7, 70)]);
    }

    #[test]
    fn shard_directory_is_stable_and_total() {
        for key in 1..2000u32 {
            let s = shard_of(key, 4);
            assert!(s < 4);
            assert_eq!(s, shard_of(key, 4), "stable");
        }
    }
}
