//! `iroram-kv`: a sharded oblivious key–value serving layer over the
//! functional Path ORAM (`iroram-protocol`).
//!
//! This is the paper's motivating scenario made concrete: an application on
//! an untrusted server whose *access pattern* must not leak. The layer
//! stacks three mechanisms (see `DESIGN.md` § "Service layer"):
//!
//! 1. **Shard directory** — keys hash via [`iroram_hash::mix64`] to one of
//!    S independent [`iroram_protocol::PathOram`] instances. Shallower
//!    per-shard trees mean fewer memory levels per path, and independent
//!    shards serve concurrently.
//! 2. **Bounded cuckoo-style slotting** — each key owns [`store::PROBES`]
//!    candidate slots inside its shard. Every `get`/`put`/`delete` costs
//!    the same fixed number of ORAM accesses (the probe reads plus one
//!    write-phase access), so hits, misses, inserts and deletes are
//!    indistinguishable; a colliding insert displaces a victim for at most
//!    [`store::MAX_KICKS`] relocation rounds before parking in a bounded
//!    client-side overflow stash.
//! 3. **Batched submission + scoped workers** — operations queue per shard
//!    (bounded queues) and are served in batches through the protocol's
//!    [`iroram_protocol::AccessBatch`] API by one scoped worker per shard
//!    chunk; replies merge by submission sequence number, so a fixed seed
//!    produces byte-identical replies and per-shard reports at *any*
//!    worker count (the serial path is the reference twin).
//!
//! All randomness flows through [`iroram_sim_engine::SimRng`]; the crate is
//! covered by the workspace determinism, secret-flow and thread-order
//! lints.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod service;
pub mod store;

pub use service::{FlushOutcome, KvConfig, KvResult, KvService};
pub use store::{
    shard_of, Clock, KvError, KvOp, KvShard, KvStats, ShardReport, MAX_KICKS, OVERFLOW_CAPACITY,
    PROBES,
};
