//! The sharded KV service: a position directory over S independent ORAM
//! shards, bounded per-shard request queues, and deterministic scoped
//! workers.
//!
//! Determinism contract (pinned by `tests/kv_determinism.rs`): operations
//! are partitioned to shards *at submission time*, each shard serves its
//! queue strictly in submission order with shard-private state (ORAM,
//! RNG, overflow stash), and replies merge back sorted by the global
//! submission sequence number. Worker count therefore changes only *which
//! thread* runs a shard, never what the shard computes — `workers <= 1`
//! is the serial reference twin that the threaded path must match
//! byte-for-byte.

use iroram_hash::mix64;
use iroram_protocol::{OramConfig, RemapPolicy, TreeTopMode, ZAllocation};

use crate::store::{shard_of, Clock, KvError, KvOp, KvShard, ShardReport};

/// Service construction parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvConfig {
    /// Independent ORAM shards.
    pub shards: usize,
    /// Table slots per shard (a power of two).
    pub slots_per_shard: u64,
    /// Scoped worker threads for [`KvService::flush`] (clamped to the
    /// shard count; `<= 1` serves serially).
    pub workers: usize,
    /// Bounded per-shard queue depth; [`KvService::submit`] fails with
    /// [`KvError::QueueFull`] beyond it.
    pub queue_capacity: usize,
    /// Operations per ORAM access batch within a shard's flush.
    pub batch_ops: usize,
    /// Master seed; every shard derives its own ORAM and victim-choice
    /// RNG seeds from it.
    pub seed: u64,
}

impl KvConfig {
    /// Sizes a service for `total_keys` keys over `shards` shards: slots
    /// are 1.5x the per-shard key share (rounded up to a power of two,
    /// minimum 512), keeping the cuckoo tables at a comfortable ~2/3 load
    /// ceiling.
    pub fn for_keys(total_keys: u64, shards: usize) -> Self {
        assert!(shards > 0, "at least one shard");
        let per_shard = total_keys.div_ceil(shards as u64);
        let slots = (per_shard.saturating_mul(3) / 2)
            .max(512)
            .next_power_of_two();
        KvConfig {
            shards,
            slots_per_shard: slots,
            workers: shards,
            queue_capacity: 1 << 16,
            batch_ops: 32,
            seed: 0xC0FFEE,
        }
    }

    /// The ORAM configuration backing shard `shard`: a tree sized so the
    /// table occupies the usual ~50% data-block utilization
    /// (`data_blocks = slots = 2^(levels+1)`), the top half of the levels
    /// (capped at 7) in a dedicated tree-top cache, payload encryption
    /// and integrity checking on.
    pub fn oram_config(&self, shard: usize) -> OramConfig {
        let slots = self.slots_per_shard;
        assert!(slots.is_power_of_two() && slots >= 512);
        let levels = (63 - slots.leading_zeros()) as usize - 1;
        OramConfig {
            levels,
            data_blocks: slots,
            zalloc: ZAllocation::uniform(levels, 4),
            treetop: TreeTopMode::Dedicated {
                levels: (levels / 2).min(7),
            },
            stash_capacity: 200,
            plb_sets: 16,
            plb_ways: 4,
            remap: RemapPolicy::Immediate,
            max_bg_evicts_per_access: 8,
            encrypt_payloads: true,
            integrity: true,
            seed: mix64(self.seed ^ (0x0053_4841_5244 + shard as u64)), // "SHARD"
        }
    }

    /// Folds every configuration field into a workload fingerprint, for
    /// the benchmark history's provenance notes. Exhaustive destructuring
    /// (no `..`) so adding a field without extending the fold is a
    /// compile error, mirroring `iroram_experiments::journal`.
    pub fn fingerprint(&self) -> u64 {
        let KvConfig {
            shards,
            slots_per_shard,
            workers: _, // worker count must not change the workload
            queue_capacity,
            batch_ops,
            seed,
        } = self;
        let mut fp = 0xB10C_5EED_u64;
        for field in [
            *shards as u64,
            *slots_per_shard,
            *queue_capacity as u64,
            *batch_ops as u64,
            *seed,
        ] {
            fp = mix64(fp.rotate_left(9) ^ field);
        }
        fp
    }
}

/// One reply: the submission sequence number and the operation's result
/// (previous/stored value, per [`KvOp`]'s conventions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvResult {
    /// Sequence number [`KvService::submit`] returned for this op.
    pub seq: u64,
    /// The op's outcome.
    pub reply: Result<Option<u32>, KvError>,
}

/// Everything one [`KvService::flush`] produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlushOutcome {
    /// Replies for every queued op, sorted by sequence number.
    pub replies: Vec<KvResult>,
    /// Per-reply service latency in clock ticks, aligned with `replies`
    /// (all zero when no clock was injected). Excluded from `replies` so
    /// the deterministic payload stays separable from timing.
    pub latencies: Vec<u64>,
    /// Per-shard busy time in clock ticks for this flush (zero without a
    /// clock).
    pub shard_busy: Vec<u64>,
    /// Per-shard operation counts for this flush.
    pub shard_ops: Vec<u64>,
}

/// One queued operation.
#[derive(Debug, Clone, Copy)]
struct Pending {
    seq: u64,
    op: KvOp,
}

/// What one shard's queue drain produced (latency in clock ticks).
struct ShardOut {
    replies: Vec<(u64, Result<Option<u32>, KvError>, u64)>,
    busy: u64,
}

/// The sharded oblivious KV service.
pub struct KvService {
    cfg: KvConfig,
    shards: Vec<KvShard>,
    queues: Vec<Vec<Pending>>,
    next_seq: u64,
}

impl KvService {
    /// Builds the service: `cfg.shards` independent ORAM shards, each
    /// with its own derived seed.
    pub fn new(cfg: KvConfig) -> Self {
        let shards: Vec<KvShard> = (0..cfg.shards)
            .map(|s| KvShard::new(cfg.oram_config(s), cfg.slots_per_shard))
            .collect();
        let queues = (0..cfg.shards).map(|_| Vec::new()).collect();
        KvService {
            cfg,
            shards,
            queues,
            next_seq: 0,
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &KvConfig {
        &self.cfg
    }

    /// Queues one operation on its shard, returning the sequence number
    /// its reply will carry.
    ///
    /// # Errors
    ///
    /// [`KvError::QueueFull`] when the target shard's bounded queue is at
    /// capacity — flush and resubmit.
    pub fn submit(&mut self, op: KvOp) -> Result<u64, KvError> {
        let shard = shard_of(op.key(), self.cfg.shards);
        if self.queues[shard].len() >= self.cfg.queue_capacity {
            return Err(KvError::QueueFull);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queues[shard].push(Pending { seq, op });
        Ok(seq)
    }

    /// Serves every queued operation and returns the merged replies.
    pub fn flush(&mut self) -> FlushOutcome {
        self.flush_with_clock(None)
    }

    /// [`KvService::flush`] with an injected clock for latency and
    /// per-shard busy-time measurement. The clock influences only the
    /// timing fields of the outcome, never replies or reports.
    pub fn flush_with_clock(&mut self, clock: Option<Clock<'_>>) -> FlushOutcome {
        let queues: Vec<Vec<Pending>> = self.queues.iter_mut().map(std::mem::take).collect();
        let shard_ops: Vec<u64> = queues.iter().map(|q| q.len() as u64).collect();
        let batch_ops = self.cfg.batch_ops.max(1);
        let workers = self.cfg.workers.clamp(1, self.cfg.shards);

        let outs: Vec<ShardOut> = if workers <= 1 {
            // The serial reference twin: same per-shard serving code, same
            // shard order, no threads.
            self.shards
                .iter_mut()
                .zip(&queues)
                .map(|(shard, q)| drain_shard(shard, q, batch_ops, clock))
                .collect()
        } else {
            // Scoped fan-out: disjoint contiguous shard chunks per worker,
            // joined in chunk order, so the merged result is independent
            // of scheduling.
            let chunk = self.cfg.shards.div_ceil(workers);
            std::thread::scope(|s| {
                let handles: Vec<_> = self
                    .shards
                    .chunks_mut(chunk)
                    .zip(queues.chunks(chunk))
                    .map(|(shard_chunk, queue_chunk)| {
                        s.spawn(move || {
                            shard_chunk
                                .iter_mut()
                                .zip(queue_chunk)
                                .map(|(shard, q)| drain_shard(shard, q, batch_ops, clock))
                                .collect::<Vec<ShardOut>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("kv worker panicked"))
                    .collect()
            })
        };

        let shard_busy: Vec<u64> = outs.iter().map(|o| o.busy).collect();
        let mut merged: Vec<(u64, Result<Option<u32>, KvError>, u64)> =
            outs.into_iter().flat_map(|o| o.replies).collect();
        merged.sort_by_key(|&(seq, _, _)| seq);
        let latencies = merged.iter().map(|&(_, _, lat)| lat).collect();
        let replies = merged
            .into_iter()
            .map(|(seq, reply, _)| KvResult { seq, reply })
            .collect();
        FlushOutcome {
            replies,
            latencies,
            shard_busy,
            shard_ops,
        }
    }

    /// Convenience single-op put (submit + flush). Replies with the
    /// previous value, if any.
    ///
    /// # Errors
    ///
    /// Propagates the op's [`KvError`].
    pub fn put(&mut self, key: u32, value: u32) -> Result<Option<u32>, KvError> {
        self.single(KvOp::Put { key, value })
    }

    /// Convenience single-op get (submit + flush).
    ///
    /// # Errors
    ///
    /// Propagates the op's [`KvError`].
    pub fn get(&mut self, key: u32) -> Result<Option<u32>, KvError> {
        self.single(KvOp::Get { key })
    }

    /// Convenience single-op delete (submit + flush). Replies with the
    /// removed value, if any.
    ///
    /// # Errors
    ///
    /// Propagates the op's [`KvError`].
    pub fn delete(&mut self, key: u32) -> Result<Option<u32>, KvError> {
        self.single(KvOp::Delete { key })
    }

    fn single(&mut self, op: KvOp) -> Result<Option<u32>, KvError> {
        self.submit(op)?;
        self.flush()
            .replies
            .pop()
            .expect("one op queued, one reply out")
            .reply
    }

    /// Deterministic per-shard reports (shard index order).
    pub fn reports(&self) -> Vec<ShardReport> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| s.report(i))
            .collect()
    }

    /// Dumps the full logical contents, sorted by key. Reads every table
    /// slot through the ORAMs (mutating protocol state): capture
    /// [`KvService::reports`] first if you need them.
    pub fn dump(&mut self) -> Vec<(u32, u32)> {
        let mut out: Vec<(u32, u32)> = self.shards.iter_mut().flat_map(KvShard::dump).collect();
        out.sort_unstable();
        out
    }

    /// Direct access to the shards (tests, invariant checks).
    pub fn shards(&self) -> &[KvShard] {
        &self.shards
    }
}

/// Drains one shard's queue in submission order, batching `batch_ops`
/// operations per ORAM access batch.
fn drain_shard(
    shard: &mut KvShard,
    queue: &[Pending],
    batch_ops: usize,
    clock: Option<Clock<'_>>,
) -> ShardOut {
    let mut replies = Vec::with_capacity(queue.len());
    let start = clock.map_or(0, |c| c());
    for chunk in queue.chunks(batch_ops) {
        let ops: Vec<KvOp> = chunk.iter().map(|p| p.op).collect();
        let (outs, lats) = shard.run_batch_timed(&ops, clock);
        for ((p, reply), lat) in chunk.iter().zip(outs).zip(lats) {
            replies.push((p.seq, reply, lat));
        }
    }
    let busy = clock.map_or(0, |c| c().saturating_sub(start));
    ShardOut { replies, busy }
}
