//! Criterion benchmarks of the ORAM protocol itself: functional access
//! throughput under each configuration, quantifying how much protocol work
//! (not DRAM time) each scheme performs per logical access.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use iroram_protocol::{
    AllocPreset, BlockAddr, OramConfig, PathOram, TreeTopMode, ZAllocation,
};
use iroram_sim_engine::SimRng;

fn cfg(levels: usize, treetop: TreeTopMode, zalloc: ZAllocation) -> OramConfig {
    OramConfig {
        levels,
        data_blocks: 1 << (levels + 1),
        zalloc,
        treetop,
        stash_capacity: 200,
        plb_sets: 16,
        plb_ways: 4,
        remap: iroram_protocol::RemapPolicy::Immediate,
        max_bg_evicts_per_access: 8,
        encrypt_payloads: false,
        integrity: true,
        seed: 7,
    }
}

fn bench_access(c: &mut Criterion) {
    const LEVELS: usize = 13;
    let variants: Vec<(&str, OramConfig)> = vec![
        (
            "baseline_z4",
            cfg(
                LEVELS,
                TreeTopMode::Dedicated { levels: 5 },
                ZAllocation::uniform(LEVELS, 4),
            ),
        ),
        (
            "ir_alloc",
            cfg(
                LEVELS,
                TreeTopMode::Dedicated { levels: 5 },
                ZAllocation::preset(AllocPreset::IrAlloc4, LEVELS, 5),
            ),
        ),
        (
            "ir_stash",
            cfg(
                LEVELS,
                TreeTopMode::ir_stash_sized(5),
                ZAllocation::uniform(LEVELS, 4),
            ),
        ),
        (
            "no_treetop",
            cfg(LEVELS, TreeTopMode::None, ZAllocation::uniform(LEVELS, 4)),
        ),
    ];
    let mut g = c.benchmark_group("oram_access");
    g.throughput(Throughput::Elements(1));
    for (name, config) in variants {
        let n = config.data_blocks;
        let mut oram = PathOram::new(config);
        let mut rng = SimRng::seed_from(11);
        g.bench_function(name, |b| {
            b.iter(|| {
                let addr = BlockAddr(rng.next_below(n));
                std::hint::black_box(oram.run_access(addr, None))
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = oram;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_access
}
criterion_main!(oram);
