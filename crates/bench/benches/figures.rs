//! Criterion wrapper over the figure harnesses at quick scale: tracks the
//! end-to-end cost of regenerating each exhibit (the real regeneration runs
//! live in the `table*`/`fig*` binaries; see EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion};

use iroram_experiments::{fig15, fig2, fig6, table2, ExpOptions};

fn bench_figures(c: &mut Criterion) {
    let opts = ExpOptions::quick();
    let mut g = c.benchmark_group("figures_quick");
    g.sample_size(10);
    g.bench_function("table2_mpki", |b| {
        b.iter(|| std::hint::black_box(table2::run(&opts)))
    });
    g.bench_function("fig6_serve_histogram", |b| {
        b.iter(|| std::hint::black_box(fig6::collect(&opts)))
    });
    g.finish();

    // One-shot shape checks under the bench profile: regenerate the lighter
    // figures once so `cargo bench` also exercises the timed simulator.
    let f2 = fig2::run(&opts);
    println!("{f2}");
    let f15 = fig15::run(&opts);
    println!("{f15}");
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_figures
}
criterion_main!(figures);
