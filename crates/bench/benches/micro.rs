//! Criterion micro-benchmarks for the substrate crates: the hot operations
//! every simulated cycle leans on (MD5 set indexing, DRAM scheduling, cache
//! lookups, stash write-back planning).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use iroram_cache::{CacheConfig, HierarchyConfig, MemoryHierarchy, SetAssocCache};
use iroram_dram::{AddressMapping, DramConfig, DramSystem, Interleave, MemRequest, SubtreeLayout};
use iroram_hash::{md5_u64, mix64, FeistelCipher};
use iroram_protocol::{Leaf, OramTree, Stash, StoredBlock, TreeLayout, WritebackPlan, ZAllocation};
use iroram_sim_engine::{Cycle, SimRng};

fn bench_hash(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash");
    g.throughput(Throughput::Elements(1));
    g.bench_function("md5_u64", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            std::hint::black_box(md5_u64(x))
        })
    });
    g.bench_function("mix64", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            std::hint::black_box(mix64(x))
        })
    });
    g.bench_function("feistel_encrypt", |b| {
        let cipher = FeistelCipher::new(42);
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            std::hint::black_box(cipher.encrypt(x))
        })
    });
    g.finish();
}

fn bench_dram(c: &mut Criterion) {
    let mut g = c.benchmark_group("dram");
    // One ORAM path's worth of reads (40 blocks with subtree locality).
    let layout = SubtreeLayout::new(&[0, 0, 0, 0, 0, 0, 0, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4], 4);
    let path: Vec<u64> = layout.path_slots(12345, 0);
    g.throughput(Throughput::Elements(path.len() as u64));
    g.bench_function("schedule_path_batch", |b| {
        let mut dram = DramSystem::new(DramConfig::default());
        let mut t = 0u64;
        b.iter(|| {
            t += 250;
            let reqs: Vec<MemRequest> = path
                .iter()
                .map(|&a| MemRequest::read(a, Cycle(t)))
                .collect();
            std::hint::black_box(dram.schedule_batch_done(&reqs, Cycle(t)))
        })
    });
    g.finish();
}

/// A mixed read/write batch with shuffled addresses (no subtree locality),
/// exercising the scheduler's queue handling rather than row-hit luck.
fn shuffled_batch(n: usize) -> Vec<MemRequest> {
    (0..n)
        .map(|i| {
            let addr = (i as u64).wrapping_mul(2_654_435_761) % 40_000;
            let arrival = Cycle((i as u64 * 7) % 50);
            if i % 3 == 0 {
                MemRequest::write(addr, arrival)
            } else {
                MemRequest::read(addr, arrival)
            }
        })
        .collect()
}

fn bench_schedule_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedule_batch");
    for channels in [1u32, 2, 4] {
        for n in [16usize, 64, 256] {
            g.throughput(Throughput::Elements(n as u64));
            g.bench_function(&format!("ch{channels}_n{n}"), |b| {
                let cfg = DramConfig {
                    mapping: AddressMapping::new(channels, 8, 128, Interleave::CacheLine),
                    ..DramConfig::default()
                };
                let mut dram = DramSystem::new(cfg);
                let batch = shuffled_batch(n);
                b.iter(|| std::hint::black_box(dram.schedule_batch(&batch)))
            });
        }
    }
    // Intra-batch channel parallelism: the same 4-channel batch scheduled
    // with 1, 2, and 4 workers. The core clamp is disabled so each variant
    // measures the dispatch it names, even on a small host (on a 1-core box
    // t2/t4 show pure scoped-thread overhead — that is the point of the
    // comparison, and why `PARALLEL_MIN_BATCH` and the clamp exist).
    for threads in [1u32, 2, 4] {
        let n = 256usize;
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(&format!("t{threads}_ch4_n{n}"), |b| {
            let mut dram = DramSystem::new(DramConfig::default());
            dram.set_sched_threads(threads);
            dram.set_ignore_core_clamp(true);
            let batch = shuffled_batch(n);
            b.iter(|| std::hint::black_box(dram.schedule_batch(&batch)))
        });
    }
    g.finish();
}

/// The read-phase integrity kernel: per-bucket FNV folds of one path,
/// bucket-at-a-time (the pre-batching call shape from the controllers)
/// vs the arena-sequential whole-path kernel the read phase runs now.
fn bench_checksum_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("checksum_path");
    for levels in [12usize, 16, 20] {
        let layout = TreeLayout::new(ZAllocation::uniform(levels, 4));
        let tree = OramTree::new(layout.clone());
        let leaves = 1u64 << (levels - 1);
        g.throughput(Throughput::Elements(levels as u64));
        g.bench_function(&format!("bucket_at_a_time_L{levels}"), |b| {
            let mut leaf = 0u64;
            let mut out: Vec<u64> = Vec::with_capacity(levels);
            b.iter(|| {
                leaf = (leaf + 12_345) % leaves;
                out.clear();
                for level in 0..levels {
                    let bucket = layout.bucket_on_path(Leaf(leaf), level);
                    out.push(tree.bucket_sum(level, bucket));
                }
                std::hint::black_box(out.len())
            })
        });
        g.bench_function(&format!("batched_L{levels}"), |b| {
            let mut leaf = 0u64;
            let mut out: Vec<u64> = Vec::with_capacity(levels);
            b.iter(|| {
                leaf = (leaf + 12_345) % leaves;
                out.clear();
                tree.path_sums_into(Leaf(leaf), 0, &mut out);
                std::hint::black_box(out.len())
            })
        });
    }
    g.finish();
}

/// The payload permutation over one path's worth of blocks (`Z = 4` slots
/// per bucket): element-at-a-time `encrypt` calls vs the slice kernel.
fn bench_feistel(c: &mut Criterion) {
    let mut g = c.benchmark_group("feistel");
    for levels in [12usize, 16, 20] {
        let n = 4 * levels;
        let cipher = FeistelCipher::new(42);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(&format!("scalar_L{levels}"), |b| {
            let mut buf: Vec<u64> = (0..n as u64).collect();
            b.iter(|| {
                for v in buf.iter_mut() {
                    *v = cipher.encrypt(*v);
                }
                std::hint::black_box(buf[0])
            })
        });
        g.bench_function(&format!("batch_L{levels}"), |b| {
            let mut buf: Vec<u64> = (0..n as u64).collect();
            b.iter(|| {
                cipher.encrypt_slice(&mut buf);
                std::hint::black_box(buf[0])
            })
        });
    }
    g.finish();
}

fn bench_path_requests(c: &mut Criterion) {
    let mut g = c.benchmark_group("path_requests");
    let layout = SubtreeLayout::new(&[0, 0, 0, 0, 0, 0, 0, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4], 4);
    let path_len = layout.path_slots(0, 0).len() as u64;
    g.throughput(Throughput::Elements(path_len));
    // The per-access allocation path the controllers used to run.
    g.bench_function("path_slots_collect", |b| {
        let mut leaf = 0u64;
        b.iter(|| {
            leaf = (leaf + 12_345) % (1 << 16);
            let reqs: Vec<MemRequest> = layout
                .path_slots(leaf, 0)
                .into_iter()
                .map(|a| MemRequest::read(a, Cycle(7)))
                .collect();
            std::hint::black_box(reqs)
        })
    });
    // The precomputed table fill the controllers run now.
    g.bench_function("path_table_fill", |b| {
        let table = layout.path_table(0);
        let mut buf: Vec<MemRequest> = Vec::new();
        let mut leaf = 0u64;
        b.iter(|| {
            leaf = (leaf + 12_345) % (1 << 16);
            table.fill_reads(leaf, 0, Cycle(7), &mut buf);
            std::hint::black_box(buf.len())
        })
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(1));
    g.bench_function("llc_access_hit", |b| {
        let mut cache = SetAssocCache::new(CacheConfig::new(1024, 8));
        for a in 0..4096u64 {
            cache.insert(a, false);
        }
        let mut a = 0u64;
        b.iter(|| {
            a = (a + 1) % 4096;
            std::hint::black_box(cache.access(a, false))
        })
    });
    g.bench_function("hierarchy_access_mixed", |b| {
        let mut h = MemoryHierarchy::new(HierarchyConfig::scaled(32));
        let mut rng = SimRng::seed_from(3);
        b.iter(|| {
            let addr = rng.next_below(1 << 18);
            std::hint::black_box(h.access(addr, addr & 1 == 0))
        })
    });
    g.finish();
}

fn filled_stash(rng: &mut SimRng, occupancy: u64) -> Stash {
    let mut s = Stash::new(occupancy as usize);
    for i in 0..occupancy {
        s.insert(StoredBlock {
            addr: iroram_protocol::BlockAddr(i),
            leaf: Leaf(rng.next_below(1 << 16)),
            payload: i,
        });
    }
    s
}

fn bench_stash(c: &mut Criterion) {
    let mut g = c.benchmark_group("stash");
    let layout = TreeLayout::new(ZAllocation::uniform(17, 4));
    // Occupancies straddling the soft capacity of 200: a lightly loaded
    // stash, the paper's configured size, and a deep over-capacity backlog
    // (background-eviction storms).
    for occupancy in [50u64, 200, 800] {
        g.bench_function(&format!("plan_writeback_{occupancy}"), |b| {
            let mut rng = SimRng::seed_from(9);
            b.iter_batched(
                || (filled_stash(&mut rng, occupancy), Leaf(rng.next_below(1 << 16))),
                |(mut s, leaf)| {
                    std::hint::black_box(s.plan_writeback(&layout, leaf, 0, |_, _| true))
                },
                BatchSize::SmallInput,
            )
        });
        // The allocation-free entry point the controller actually uses:
        // scratch and plan buffers persist across iterations.
        g.bench_function(&format!("plan_writeback_into_{occupancy}"), |b| {
            let mut rng = SimRng::seed_from(9);
            let mut plan = WritebackPlan::new();
            b.iter_batched(
                || (filled_stash(&mut rng, occupancy), Leaf(rng.next_below(1 << 16))),
                |(mut s, leaf)| {
                    s.plan_writeback_into(&layout, leaf, 0, |_, _| true, &mut plan);
                    std::hint::black_box(plan.total_planned())
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_hash, bench_dram, bench_schedule_batch, bench_checksum_path, bench_feistel, bench_path_requests, bench_cache, bench_stash
}
criterion_main!(micro);
