//! Shared plumbing for the IR-ORAM benchmark harness binaries.
//!
//! Each binary (`table1`, `table2`, `fig2` … `fig16`, `all`) regenerates one
//! exhibit of the paper; run them with `cargo run -p iroram-bench --release
//! --bin fig10`. All accept `--quick` (smoke scale) and `--full` (longer
//! runs); the default is the standard scale recorded in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::time::Instant;

use iroram_experiments::{ExpOptions, Table};

/// Runs one experiment binary: parses scale flags, times the build, prints
/// the table, and (when `--csv <dir>` is given) writes a CSV next to it.
pub fn harness(name: &str, build: impl FnOnce(&ExpOptions) -> Table) {
    let opts = ExpOptions::from_args();
    let start = Instant::now();
    let table = build(&opts);
    println!("{table}");
    eprintln!(
        "[{name}] completed in {:.1?} at scale {opts:?}",
        start.elapsed()
    );
    if let Some(dir) = csv_dir() {
        let path = dir.join(format!("{name}.csv"));
        if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| table.write_csv(&path)) {
            eprintln!("[{name}] failed to write {}: {e}", path.display());
        } else {
            eprintln!("[{name}] wrote {}", path.display());
        }
    }
}

/// The `--csv <dir>` argument, if present.
pub fn csv_dir() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

#[cfg(test)]
mod tests {
    #[test]
    fn csv_dir_absent_by_default() {
        assert_eq!(super::csv_dir(), None);
    }
}
