//! Shared plumbing for the IR-ORAM benchmark harness binaries.
//!
//! Each binary (`table1`, `table2`, `fig2` … `fig16`, `all`) regenerates one
//! exhibit of the paper; run them with `cargo run -p iroram-bench --release
//! --bin fig10`. All accept `--quick` (smoke scale) and `--full` (longer
//! runs); the default is the standard scale recorded in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;

use std::path::PathBuf;
use std::time::Instant;

use iroram_experiments::{ExpOptions, Table};
use iroram_sim_engine::profiler;

/// Runs one experiment binary: parses scale flags, times the build, prints
/// the table, and (when `--csv <dir>` is given) writes a CSV next to it.
///
/// Under `--profile` the wall-clock phase profiler is enabled for the run
/// and a phase table goes to **stderr** — stdout (the report) is
/// byte-identical with profiling on or off.
pub fn harness(name: &str, build: impl FnOnce(&ExpOptions) -> Table) {
    let opts = ExpOptions::from_args();
    if opts.profile {
        profiler::reset();
        profiler::set_enabled(true);
    }
    let start = Instant::now();
    let table = build(&opts);
    println!("{table}");
    eprintln!(
        "[{name}] completed in {:.1?} at scale {opts:?}",
        start.elapsed()
    );
    if opts.profile {
        profiler::set_enabled(false);
        eprint!("{}", phase_table(name, start.elapsed().as_secs_f64()));
    }
    if let Some(dir) = csv_dir() {
        let path = dir.join(format!("{name}.csv"));
        if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| table.write_csv(&path)) {
            eprintln!("[{name}] failed to write {}: {e}", path.display());
        } else {
            eprintln!("[{name}] wrote {}", path.display());
        }
    }
}

/// Renders the profiler's current accumulators as a stderr-ready table.
///
/// `wall_secs` is the harness's own elapsed wall time; the `other` row is
/// what it doesn't attribute to any instrumented phase. With `--jobs N` the
/// phase pools sum across workers, so phase totals can exceed wall time.
pub fn phase_table(name: &str, wall_secs: f64) -> String {
    use std::fmt::Write as _;
    let snap = profiler::snapshot();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "[{name}] phase profile (wall time; reports unaffected):"
    );
    let _ = writeln!(out, "  {:<14} {:>10} {:>12}", "phase", "seconds", "calls");
    let mut accounted = 0.0;
    for s in snap {
        accounted += s.seconds();
        let _ = writeln!(
            out,
            "  {:<14} {:>10.3} {:>12}",
            s.phase.name(),
            s.seconds(),
            s.calls
        );
    }
    let _ = writeln!(
        out,
        "  {:<14} {:>10.3} {:>12}",
        "other",
        (wall_secs - accounted).max(0.0),
        "-"
    );
    out
}

/// The `--csv <dir>` argument, if present.
pub fn csv_dir() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

#[cfg(test)]
mod tests {
    #[test]
    fn csv_dir_absent_by_default() {
        assert_eq!(super::csv_dir(), None);
    }
}
