//! A hand-rolled HDR-style latency histogram: log-linear buckets with 64
//! sub-buckets per octave, so relative error is bounded at ~1.6% across
//! the full `u64` range with a few KB of counters and O(1) recording.
//!
//! No external dependency: the vendored workspace has no hdrhistogram
//! crate, and the benchmark harnesses only need record + percentile +
//! a printable summary.

/// Values below `SUB = 2^7` get exact buckets; each octave above that is
/// split into `SUB / 2 = 64` linear sub-buckets (the octave's top bit is
/// fixed, so 64 sub-buckets resolve the remaining 6 significant bits).
const SUB_BITS: u32 = 7;
const SUB: u64 = 1 << SUB_BITS;

/// A log-linear histogram of `u64` samples (e.g. nanoseconds).
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// Bucket index of `v`: exact for values below [`SUB`], then 64 linear
/// sub-buckets per power of two.
fn index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros() as u64; // >= SUB_BITS
    let sub = (v >> (octave - u64::from(SUB_BITS) + 1)) & (SUB / 2 - 1);
    // Octave SUB_BITS starts right after the SUB exact buckets; each
    // octave above it contributes SUB/2 distinguishable sub-buckets.
    (SUB + (octave - u64::from(SUB_BITS)) * (SUB / 2) + sub) as usize
}

/// Upper bound of bucket `i` (the largest value mapping into it).
fn upper_bound(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB {
        return i;
    }
    let octave = (i - SUB) / (SUB / 2) + u64::from(SUB_BITS);
    let sub = (i - SUB) % (SUB / 2);
    let unit = 1u64 << (octave - u64::from(SUB_BITS) + 1);
    // Buckets of this octave start at 2^octave (sub-bucket pattern
    // 100000x...) and step by `unit`. Subtract 1 before adding the
    // sub-bucket span so the top octave's bound reaches u64::MAX without
    // overflowing.
    ((1u64 << octave) - 1) + (sub + 1) * unit
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; index(u64::MAX) + 1],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[index(v)] += 1;
        self.total += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the recorded samples (exact, not bucketed).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the `ceil(q * count)`-th smallest sample. Within
    /// ~1.6% of the true order statistic by construction.
    pub fn value_at(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// The standard latency summary line: count, mean, p50/p99/p999, max.
    pub fn summary(&self, unit: &str) -> String {
        format!(
            "n={} mean={:.0}{unit} p50={}{unit} p99={}{unit} p999={}{unit} max={}{unit}",
            self.total,
            self.mean(),
            self.value_at(0.50),
            self.value_at(0.99),
            self.value_at(0.999),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_monotone_and_upper_bound_consistent() {
        // Every probe value must land in a bucket whose bounds contain it,
        // and indexes must be non-decreasing in the value.
        let mut last = 0usize;
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            let i = index(v);
            assert!(i >= last, "index not monotone at {v}");
            assert!(upper_bound(i) >= v, "upper bound below value at {v}");
            last = i;
            v = v * 3 / 2 + 1;
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB {
            h.record(v);
        }
        for v in [0u64, 1, 5, 63] {
            assert_eq!(upper_bound(index(v)), v);
        }
        assert_eq!(h.count(), SUB);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB - 1);
    }

    #[test]
    fn percentiles_track_known_distribution() {
        // 1..=10_000 recorded once each: p50 ~ 5000, p99 ~ 9900.
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let within = |got: u64, want: u64| {
            let err = (got as f64 - want as f64).abs() / want as f64;
            assert!(err < 0.02, "got {got}, want ~{want} ({err:.3} off)");
        };
        within(h.value_at(0.50), 5_000);
        within(h.value_at(0.99), 9_900);
        within(h.value_at(0.999), 9_990);
        assert_eq!(h.value_at(1.0), 10_000);
        assert!((h.mean() - 5_000.5).abs() < 1.0);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for v in 0..5_000u64 {
            let sample = v * v % 70_000;
            if v % 2 == 0 {
                a.record(sample);
            } else {
                b.record(sample);
            }
            c.record(sample);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.max(), c.max());
        for q in [0.1, 0.5, 0.9, 0.99, 0.999] {
            assert_eq!(a.value_at(q), c.value_at(q), "q={q}");
        }
    }

    #[test]
    fn huge_values_do_not_overflow_the_table() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.value_at(1.0), u64::MAX);
    }
}
