//! Regenerates the paper's fig16. See `iroram_experiments::fig16`.
fn main() {
    iroram_bench::harness("fig16", iroram_experiments::fig16::run);
}
