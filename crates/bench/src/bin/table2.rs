//! Regenerates the paper's table2. See `iroram_experiments::table2`.
fn main() {
    iroram_bench::harness("table2", iroram_experiments::table2::run);
}
