//! Chaos harness for the checkpoint/restore subsystem: repeatedly
//! SIGKILLs a child simulation at seeded-random progress offsets and
//! asserts that the eventually-completed (killed, restored, resumed —
//! possibly several times) run reports **byte-identically** to an
//! uninterrupted run of the same cell.
//!
//! Each trial:
//! 1. spawns this binary in `--child` mode, which runs one cell with
//!    `checkpoint_interval` set and writes its final report to a file;
//! 2. polls the snapshot header ([`checkpoint::read_header`]) until the
//!    child's progress crosses a seeded-random slot target, then SIGKILLs
//!    it mid-cell;
//! 3. respawns until a child finally runs to completion (resuming from
//!    whatever snapshot the previous victim left behind);
//! 4. compares the survivor's report bytes against the reference.
//!
//! Exits nonzero on any divergence, on a child that fails for a reason
//! other than the kill, or if fewer kills landed than trials (a kill that
//! misses the run window proves nothing).
//!
//! Usage: `cargo run --release -p iroram-bench --bin chaos --
//! [--trials N] [--seed S]`

use std::path::PathBuf;
use std::process::Command;
use std::time::{Duration, Instant};

use ir_oram::{CheckpointSpec, RunLimit, Scheme, Simulation, SystemConfig};
use iroram_experiments::journal::fingerprint;
use iroram_protocol::{TreeTopMode, ZAllocation};
use iroram_sim_engine::{checkpoint, SimRng};
use iroram_trace::{Bench, WorkloadGen};

/// Schemes the kills rotate over (one-tree, two-tree, full IR stack).
const SCHEMES: [Scheme; 3] = [Scheme::Baseline, Scheme::Rho, Scheme::IrOram];

/// Memory operations per cell: long enough that every trial has a wide
/// mid-run kill window at release-build speed.
const CELL_OPS: u64 = 120_000;

/// Checkpoint cadence in path slots (a cell runs ~1000 slots).
const CKPT_EVERY: u64 = 16;

/// A child that dies this many times without finishing fails the trial —
/// the harness kills each child once, so two spares is already generous.
const MAX_RESPAWNS: u32 = 30;

/// The cell a trial index runs (scheme rotates, bench fixed for byte
/// comparability across trials of the same scheme).
fn cell_config(trial: usize) -> (SystemConfig, Bench) {
    let scheme = SCHEMES[trial % SCHEMES.len()];
    let mut cfg = SystemConfig::scaled(scheme);
    cfg.oram.levels = 10;
    cfg.oram.data_blocks = 1 << 11;
    cfg.oram.zalloc = ZAllocation::uniform(10, 4);
    cfg.oram.treetop = TreeTopMode::Dedicated { levels: 4 };
    cfg.oram.plb_sets = 8;
    cfg.oram.plb_ways = 2;
    cfg.hierarchy = iroram_cache::HierarchyConfig {
        l1_sets: 16,
        l1_assoc: 2,
        llc_sets: 64,
        llc_assoc: 4,
    };
    let mut cfg = cfg.with_scheme(scheme);
    cfg.checkpoint_interval = CKPT_EVERY;
    (cfg, Bench::Gcc)
}

/// Child mode: run one cell with checkpointing, write the report's bytes.
fn run_child(trial: usize, snap: &str, out: &str) -> ! {
    let (cfg, bench) = cell_config(trial);
    let limit = RunLimit::mem_ops(CELL_OPS);
    let spec = CheckpointSpec {
        path: PathBuf::from(snap),
        fingerprint: fingerprint(&cfg, bench, limit),
    };
    let gen = WorkloadGen::for_bench(bench, cfg.data_blocks(), cfg.seed);
    match Simulation::try_run_checkpointed(&cfg, gen, limit, bench.name(), Some(&spec)) {
        Ok((report, _)) => {
            std::fs::write(out, format!("{report:?}")).expect("write report");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("child: {e}");
            std::process::exit(1);
        }
    }
}

/// The uninterrupted reference: same cell, same code path, no kills.
fn reference_report(trial: usize) -> String {
    let (cfg, bench) = cell_config(trial);
    let gen = WorkloadGen::for_bench(bench, cfg.data_blocks(), cfg.seed);
    let (report, _) =
        Simulation::try_run_checkpointed(&cfg, gen, RunLimit::mem_ops(CELL_OPS), bench.name(), None)
            .expect("reference run");
    format!("{report:?}")
}

struct TrialResult {
    kills: u32,
    respawns: u32,
}

/// One kill-until-it-finishes trial. Panics on report divergence.
fn run_trial(trial: usize, rng: &mut SimRng, dir: &std::path::Path, expected: &str) -> TrialResult {
    let snap = dir.join(format!("trial-{trial}.snap"));
    let out = dir.join(format!("trial-{trial}.report"));
    let _ = std::fs::remove_file(&snap);
    let _ = std::fs::remove_file(&out);
    let exe = std::env::current_exe().expect("own path");
    let mut kills = 0u32;
    let mut respawns = 0u32;
    loop {
        let mut child = Command::new(&exe)
            .args([
                "--child",
                &trial.to_string(),
                snap.to_str().expect("snap path"),
                out.to_str().expect("out path"),
            ])
            .spawn()
            .expect("spawn child");
        respawns += 1;
        assert!(
            respawns <= MAX_RESPAWNS,
            "trial {trial}: child did not finish within {MAX_RESPAWNS} respawns"
        );
        // Kill when the child's journaled progress crosses a random slot
        // target — each respawn starts from the last snapshot, so targets
        // are drawn past the progress already banked.
        let banked = checkpoint::read_header(&snap)
            .ok()
            .flatten()
            .map_or(0, |h| h.slots_done);
        let target = banked + CKPT_EVERY + rng.next_below(40 * CKPT_EVERY);
        let deadline = Instant::now() + Duration::from_secs(60);
        let killed = loop {
            if let Some(status) = child.try_wait().expect("poll child") {
                // Finished (or died) before the kill landed.
                assert!(
                    status.success(),
                    "trial {trial}: child failed on its own: {status}"
                );
                break false;
            }
            let progressed = checkpoint::read_header(&snap)
                .ok()
                .flatten()
                .is_some_and(|h| h.slots_done >= target);
            if progressed {
                child.kill().expect("SIGKILL child");
                child.wait().expect("reap child");
                break true;
            }
            assert!(
                Instant::now() < deadline,
                "trial {trial}: child made no progress for 60s"
            );
            std::thread::sleep(Duration::from_millis(1));
        };
        if killed {
            kills += 1;
            continue;
        }
        let got = std::fs::read_to_string(&out).expect("read child report");
        assert_eq!(
            got, expected,
            "trial {trial}: restored run diverged from the uninterrupted reference"
        );
        let _ = std::fs::remove_file(&snap);
        let _ = std::fs::remove_file(&out);
        return TrialResult { kills, respawns };
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--child") {
        let trial: usize = args[1].parse().expect("trial index");
        run_child(trial, &args[2], &args[3]);
    }

    let mut trials = 21usize;
    let mut seed = 0x0C0A_0500u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trials" => {
                trials = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--trials requires a number");
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed requires a number");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: chaos [--trials N] [--seed S]");
                std::process::exit(2);
            }
        }
    }

    let dir = std::env::temp_dir().join(format!("iroram-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create chaos dir");

    // One reference per scheme (the cell depends only on trial % SCHEMES).
    let refs: Vec<String> = (0..SCHEMES.len()).map(reference_report).collect();

    let mut rng = SimRng::seed_from(seed);
    let mut total_kills = 0u32;
    for trial in 0..trials {
        let r = run_trial(trial, &mut rng, &dir, &refs[trial % SCHEMES.len()]);
        total_kills += r.kills;
        println!(
            "trial {trial:>2} [{}]: {} kills, {} spawns, report identical",
            SCHEMES[trial % SCHEMES.len()].name(),
            r.kills,
            r.respawns
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        total_kills >= trials as u32,
        "only {total_kills} kills landed across {trials} trials — runs too \
         short for the kill window, results prove nothing"
    );
    println!(
        "chaos: {trials} trials, {total_kills} SIGKILLs, every restored report \
         byte-identical to its uninterrupted reference"
    );
}
