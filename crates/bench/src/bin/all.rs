//! Regenerates every table and figure in sequence (use `--quick` for a
//! fast smoke pass, `--csv <dir>` to export CSVs).
type FigFn = fn(&iroram_experiments::ExpOptions) -> iroram_experiments::Table;

fn main() {
    let figs: [(&str, FigFn); 13] = [
        ("table1", iroram_experiments::table1::run),
        ("table2", iroram_experiments::table2::run),
        ("fig2", iroram_experiments::fig2::run),
        ("fig3", iroram_experiments::fig3::run),
        ("fig4", iroram_experiments::fig4::run),
        ("fig6", iroram_experiments::fig6::run),
        ("fig10", iroram_experiments::fig10::run),
        ("fig11", iroram_experiments::fig11::run),
        ("fig12", iroram_experiments::fig12::run),
        ("fig13", iroram_experiments::fig13::run),
        ("fig14", iroram_experiments::fig14::run),
        ("fig15", iroram_experiments::fig15::run),
        ("fig16", iroram_experiments::fig16::run),
    ];
    for (name, run) in figs {
        iroram_bench::harness(name, run);
    }
}
