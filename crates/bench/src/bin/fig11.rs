//! Regenerates the paper's fig11. See `iroram_experiments::fig11`.
fn main() {
    iroram_bench::harness("fig11", iroram_experiments::fig11::run);
}
