//! Regenerates the paper's fig11. See `iroram_experiments::fig11`.
fn main() {
    iroram_bench::harness("fig11", |opts| iroram_experiments::fig11::run(opts));
}
