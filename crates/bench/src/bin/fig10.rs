//! Regenerates the paper's fig10. See `iroram_experiments::fig10`.
fn main() {
    iroram_bench::harness("fig10", iroram_experiments::fig10::run);
}
