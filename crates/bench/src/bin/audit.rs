//! Full-system audit sweep: runs the seven schemes of the paper's main
//! comparison across a spread of synthetic benchmarks with the audit
//! subsystem enabled (functional oracle, timing schedule, DRAM
//! conservation, structural invariants, IR-DWB coherence), and exits
//! nonzero if any cell reports a violation.
//!
//! Usage: `cargo run --release -p iroram-bench --bin audit [--quick | --standard | --full] [--jobs N]`

use ir_oram::{Scheme, Simulation};
use iroram_experiments::{par_map, ExpOptions};
use iroram_trace::Bench;

/// Schemes under audit (the paper's seven-way comparison set).
const SCHEMES: [Scheme; 7] = [
    Scheme::Baseline,
    Scheme::Rho,
    Scheme::LlcD,
    Scheme::IrAlloc,
    Scheme::IrStash,
    Scheme::IrDwb,
    Scheme::IrOram,
];

/// A behaviourally diverse bench subset: mixed (gcc), read pointer-chasing
/// (mcf), heavy streaming writes (lbm), the interleaved mix, and uniform
/// random — together they exercise every controller path (front hits,
/// demand misses, dirty evictions, delayed write-backs, DWB conversions,
/// dummies).
const BENCHES: [Bench; 5] = [
    Bench::Gcc,
    Bench::Mcf,
    Bench::Lbm,
    Bench::Mix,
    Bench::RandomUniform,
];

fn main() {
    let mut opts = ExpOptions::from_args();
    opts.audit = true;
    let cells: Vec<(Scheme, Bench)> = SCHEMES
        .iter()
        .flat_map(|&s| BENCHES.iter().map(move |&b| (s, b)))
        .collect();
    let results = par_map(opts.effective_jobs(), cells, |(scheme, bench)| {
        let cfg = opts.system(scheme);
        let (_, audit) = Simulation::run_bench_audited(&cfg, bench, opts.limit());
        (scheme, bench, audit.expect("audit enabled"))
    });

    let mut total_checks = 0u64;
    let mut total_violations = 0u64;
    println!("{:<10} {:<14} {:>10} {:>10}", "scheme", "bench", "checks", "violations");
    for (scheme, bench, audit) in &results {
        total_checks += audit.checks;
        total_violations += audit.violations;
        println!(
            "{:<10} {:<14} {:>10} {:>10}",
            scheme.name(),
            bench.name(),
            audit.checks,
            audit.violations
        );
        for msg in &audit.samples {
            println!("    ! {msg}");
        }
    }
    println!(
        "\n{} cells, {} checks, {} violations",
        results.len(),
        total_checks,
        total_violations
    );
    if total_violations > 0 {
        std::process::exit(1);
    }
}
