//! Regenerates the paper's fig13. See `iroram_experiments::fig13`.
fn main() {
    iroram_bench::harness("fig13", iroram_experiments::fig13::run);
}
