//! Regenerates the paper's fig6. See `iroram_experiments::fig6`.
fn main() {
    iroram_bench::harness("fig6", iroram_experiments::fig6::run);
}
