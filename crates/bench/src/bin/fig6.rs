//! Regenerates the paper's fig6. See `iroram_experiments::fig6`.
fn main() {
    iroram_bench::harness("fig6", |opts| iroram_experiments::fig6::run(opts));
}
