//! Simulator throughput harness: measures simulated memory operations per
//! second of wall-clock time for every scheme, and writes the results to
//! `BENCH_sim_throughput.json` at the repository root.
//!
//! Unlike the figure binaries (which report *simulated* metrics), this
//! measures the *simulator itself* — the number it reports is how fast the
//! experiment engine chews through work, which is what the hot-path kernels
//! and the `--jobs` worker pool exist to improve. Typical use:
//!
//! ```text
//! cargo run --release --bin perfstat -- --quick
//! cargo run --release --bin perfstat -- --quick --jobs 8
//! ```

use std::time::Instant;

use ir_oram::ALL_SCHEMES;
use iroram_experiments::runner::{perf_benches, run_scheme};
use iroram_experiments::ExpOptions;
use iroram_sim_engine::profiler;

struct SchemeStat {
    scheme: &'static str,
    mem_ops: u64,
    wall_seconds: f64,
    ops_per_sec: f64,
}

fn scale_name(opts: &ExpOptions) -> &'static str {
    let mut probe = opts.clone();
    for (name, base) in [
        ("quick", ExpOptions::quick()),
        ("standard", ExpOptions::standard()),
        ("full", ExpOptions::full()),
    ] {
        probe.jobs = base.jobs;
        probe.profile = base.profile;
        if probe == base {
            return name;
        }
    }
    "custom"
}

fn json_escape_free(s: &str) -> &str {
    debug_assert!(
        !s.contains(['"', '\\']),
        "scheme/bench names must not need JSON escaping"
    );
    s
}

fn main() {
    let opts = ExpOptions::from_args();
    let benches = perf_benches();
    let jobs = opts.effective_jobs();
    println!(
        "perfstat: {} schemes x {} benches at {} scale ({} mem-ops/cell, jobs={jobs})",
        ALL_SCHEMES.len(),
        benches.len(),
        scale_name(&opts),
        opts.mem_ops,
    );

    if opts.profile {
        profiler::set_enabled(true);
    }
    let mut stats: Vec<SchemeStat> = Vec::new();
    let total_start = Instant::now();
    for scheme in ALL_SCHEMES {
        if opts.profile {
            profiler::reset();
        }
        let start = Instant::now();
        let reports = run_scheme(&opts, scheme, &benches);
        let wall = start.elapsed().as_secs_f64();
        let mem_ops: u64 = reports.iter().map(|r| r.mem_ops).sum();
        let ops_per_sec = mem_ops as f64 / wall.max(1e-9);
        println!(
            "  {:<22} {:>9} mem-ops in {:>7.3}s  -> {:>12.0} ops/s",
            scheme.name(),
            mem_ops,
            wall,
            ops_per_sec
        );
        if opts.profile {
            for s in profiler::snapshot() {
                println!(
                    "      {:<14} {:>8.3}s {:>10} calls",
                    s.phase.name(),
                    s.seconds(),
                    s.calls
                );
            }
        }
        stats.push(SchemeStat {
            scheme: scheme.name(),
            mem_ops,
            wall_seconds: wall,
            ops_per_sec,
        });
    }
    let total_wall = total_start.elapsed().as_secs_f64();
    let total_ops: u64 = stats.iter().map(|s| s.mem_ops).sum();
    let total_rate = total_ops as f64 / total_wall.max(1e-9);
    println!(
        "total: {total_ops} simulated mem-ops in {total_wall:.3}s -> {total_rate:.0} ops/s"
    );

    // Hand-rolled JSON: the vendored serde shim derives are no-ops, and the
    // shape here is flat enough that formatting directly is clearer anyway.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"scale\": \"{}\",\n", scale_name(&opts)));
    json.push_str(&format!("  \"jobs\": {jobs},\n"));
    json.push_str(&format!("  \"mem_ops_per_cell\": {},\n", opts.mem_ops));
    json.push_str("  \"benches\": [");
    for (i, b) in benches.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        json.push_str(&format!("\"{}\"", json_escape_free(b.name())));
    }
    json.push_str("],\n  \"schemes\": [\n");
    for (i, s) in stats.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scheme\": \"{}\", \"mem_ops\": {}, \"wall_seconds\": {:.6}, \"mem_ops_per_sec\": {:.1}}}{}\n",
            json_escape_free(s.scheme),
            s.mem_ops,
            s.wall_seconds,
            s.ops_per_sec,
            if i + 1 < stats.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"total_mem_ops\": {total_ops},\n"));
    json.push_str(&format!("  \"total_wall_seconds\": {total_wall:.6},\n"));
    json.push_str(&format!(
        "  \"total_mem_ops_per_sec\": {total_rate:.1}\n"
    ));
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim_throughput.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => {
            eprintln!("error: could not write {path}: {e}");
            std::process::exit(1);
        }
    }

    // Append-only run history, so throughput regressions have a trail to
    // diff against (the snapshot file above only holds the latest run).
    let hist_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_history.jsonl");
    let epoch_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let line = format!(
        "{{\"epoch_secs\": {epoch_secs}, \"scale\": \"{}\", \"jobs\": {jobs}, \
         \"total_mem_ops\": {total_ops}, \"total_wall_seconds\": {total_wall:.6}, \
         \"total_mem_ops_per_sec\": {total_rate:.1}}}\n",
        scale_name(&opts)
    );
    use std::io::Write as _;
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(hist_path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    match appended {
        Ok(()) => println!("appended run to {hist_path}"),
        Err(e) => eprintln!("warning: could not append {hist_path}: {e}"),
    }
}
