//! Simulator throughput harness: measures simulated memory operations per
//! second of wall-clock time for every scheme, and writes the results to
//! `BENCH_sim_throughput.json` at the repository root.
//!
//! Unlike the figure binaries (which report *simulated* metrics), this
//! measures the *simulator itself* — the number it reports is how fast the
//! experiment engine chews through work, which is what the hot-path kernels
//! and the `--jobs` worker pool exist to improve. Typical use:
//!
//! ```text
//! cargo run --release --bin perfstat -- --quick
//! cargo run --release --bin perfstat -- --quick --jobs 8
//! ```

use std::time::Instant;

use ir_oram::ALL_SCHEMES;
use iroram_experiments::history::HistoryKey;
use iroram_experiments::journal::fingerprint;
use iroram_experiments::runner::{perf_benches, run_scheme};
use iroram_experiments::ExpOptions;
use iroram_sim_engine::profiler;

/// How much slower than the last recorded run of the same scale/jobs a
/// `--quick` run may be before the ratchet fails the step (CI perf gate).
const RATCHET_TOLERANCE: f64 = 0.10;

/// Process exit code for a ratchet regression.
const EXIT_REGRESSION: i32 = 1;

/// Process exit code when the ratchet had no comparable baseline: the gate
/// passed *vacuously*, which must not read as a green perf check. Distinct
/// from [`EXIT_REGRESSION`] so CI can tell "got slower" from "measured
/// nothing". The run's own entry is appended before the verdict, so the
/// next run has a baseline and this self-heals.
const EXIT_NO_BASELINE: i32 = 2;

/// Verdict of the quick-scale perf ratchet, separated from process exit so
/// the decision logic is unit-testable.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Ratchet {
    /// Rate is at or above the tolerance floor of the prior recorded run.
    Ok { prev: f64, floor: f64 },
    /// Rate fell more than `RATCHET_TOLERANCE` below the prior run.
    Regression { prev: f64, floor: f64 },
    /// No prior entry at the same scale and job count: nothing was gated.
    NoBaseline,
}

/// The ratchet decision: `None` when `scale` is not gated (only `--quick`
/// is — it is the scale the CI perf-smoke step runs).
fn ratchet_verdict(scale: &str, prior_rate: Option<f64>, rate: f64) -> Option<Ratchet> {
    if scale != "quick" {
        return None;
    }
    Some(match prior_rate {
        None => Ratchet::NoBaseline,
        Some(prev) => {
            let floor = prev * (1.0 - RATCHET_TOLERANCE);
            if rate < floor {
                Ratchet::Regression { prev, floor }
            } else {
                Ratchet::Ok { prev, floor }
            }
        }
    })
}

/// Short commit hash of the working tree, or `"unknown"` outside a checkout.
fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .unwrap_or_else(|| "unknown".to_owned())
}

struct SchemeStat {
    scheme: &'static str,
    mem_ops: u64,
    wall_seconds: f64,
    ops_per_sec: f64,
}

fn scale_name(opts: &ExpOptions) -> &'static str {
    let mut probe = opts.clone();
    for (name, base) in [
        ("quick", ExpOptions::quick()),
        ("standard", ExpOptions::standard()),
        ("full", ExpOptions::full()),
    ] {
        probe.jobs = base.jobs;
        probe.profile = base.profile;
        // `--set` overrides don't demote a run to "custom": the config
        // fingerprint in the history note (not the scale label) keys rate
        // comparability, so an overridden quick run is still a quick run —
        // and still ratchet-gated against its own baseline lineage.
        probe.overrides = base.overrides.clone();
        if probe == base {
            return name;
        }
    }
    "custom"
}

fn json_escape_free(s: &str) -> &str {
    debug_assert!(
        !s.contains(['"', '\\']),
        "scheme/bench names must not need JSON escaping"
    );
    s
}

fn main() {
    let opts = ExpOptions::from_args();
    let benches = perf_benches();
    let jobs = opts.effective_jobs();
    println!(
        "perfstat: {} schemes x {} benches at {} scale ({} mem-ops/cell, jobs={jobs})",
        ALL_SCHEMES.len(),
        benches.len(),
        scale_name(&opts),
        opts.mem_ops,
    );

    if opts.profile {
        profiler::set_enabled(true);
    }
    let mut stats: Vec<SchemeStat> = Vec::new();
    let total_start = Instant::now();
    for scheme in ALL_SCHEMES {
        if opts.profile {
            profiler::reset();
        }
        let start = Instant::now();
        let reports = run_scheme(&opts, scheme, &benches);
        let wall = start.elapsed().as_secs_f64();
        let mem_ops: u64 = reports.iter().map(|r| r.mem_ops).sum();
        let ops_per_sec = mem_ops as f64 / wall.max(1e-9);
        println!(
            "  {:<22} {:>9} mem-ops in {:>7.3}s  -> {:>12.0} ops/s",
            scheme.name(),
            mem_ops,
            wall,
            ops_per_sec
        );
        if opts.profile {
            for s in profiler::snapshot() {
                println!(
                    "      {:<14} {:>8.3}s {:>10} calls",
                    s.phase.name(),
                    s.seconds(),
                    s.calls
                );
            }
        }
        stats.push(SchemeStat {
            scheme: scheme.name(),
            mem_ops,
            wall_seconds: wall,
            ops_per_sec,
        });
    }
    let total_wall = total_start.elapsed().as_secs_f64();
    let total_ops: u64 = stats.iter().map(|s| s.mem_ops).sum();
    let total_rate = total_ops as f64 / total_wall.max(1e-9);
    println!(
        "total: {total_ops} simulated mem-ops in {total_wall:.3}s -> {total_rate:.0} ops/s"
    );

    // Hand-rolled JSON: the vendored serde shim derives are no-ops, and the
    // shape here is flat enough that formatting directly is clearer anyway.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"scale\": \"{}\",\n", scale_name(&opts)));
    json.push_str(&format!("  \"jobs\": {jobs},\n"));
    json.push_str(&format!("  \"mem_ops_per_cell\": {},\n", opts.mem_ops));
    json.push_str("  \"benches\": [");
    for (i, b) in benches.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        json.push_str(&format!("\"{}\"", json_escape_free(b.name())));
    }
    json.push_str("],\n  \"schemes\": [\n");
    for (i, s) in stats.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scheme\": \"{}\", \"mem_ops\": {}, \"wall_seconds\": {:.6}, \"mem_ops_per_sec\": {:.1}}}{}\n",
            json_escape_free(s.scheme),
            s.mem_ops,
            s.wall_seconds,
            s.ops_per_sec,
            if i + 1 < stats.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"total_mem_ops\": {total_ops},\n"));
    json.push_str(&format!("  \"total_wall_seconds\": {total_wall:.6},\n"));
    json.push_str(&format!(
        "  \"total_mem_ops_per_sec\": {total_rate:.1}\n"
    ));
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim_throughput.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => {
            eprintln!("error: could not write {path}: {e}");
            std::process::exit(1);
        }
    }

    // Append-only run history, so throughput regressions have a trail to
    // diff against (the snapshot file above only holds the latest run).
    // Each entry carries a `note` with the commit and a fingerprint folded
    // over every (scheme, bench) cell config, so a rate change is
    // attributable: same fingerprint = same simulated workload, so the
    // delta is the simulator; different fingerprint = the workload moved.
    let hist_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_history.jsonl");
    let scale = scale_name(&opts);

    let limit = opts.limit();
    let mut cfg_fp = 0u64;
    for scheme in ALL_SCHEMES {
        for &bench in &benches {
            cfg_fp = cfg_fp
                .rotate_left(9)
                .wrapping_add(fingerprint(&opts.system(scheme), bench, limit));
        }
    }

    // Ratchet baseline: the most recent prior entry of the same bench
    // family at the same scale, job count, *and* config fingerprint. Other
    // shapes are not rate-comparable — in particular, `--set` overrides
    // that change the simulated workload (e.g. `pipeline_depth`) get their
    // own baseline lineage instead of poisoning the default one, and
    // `kv_bench` entries in the same file can never match a sim key.
    let key = HistoryKey {
        bench: "sim".to_owned(),
        scale: scale.to_owned(),
        jobs: jobs as u64,
        cfg_fp,
    };
    let prior_rate = std::fs::read_to_string(hist_path)
        .ok()
        .and_then(|hist| key.latest_rate(&hist, "total_mem_ops_per_sec"));
    let epoch_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let line = format!(
        "{{\"epoch_secs\": {epoch_secs}, \"bench\": \"sim\", \"scale\": \"{scale}\", \
         \"jobs\": {jobs}, \
         \"total_mem_ops\": {total_ops}, \"total_wall_seconds\": {total_wall:.6}, \
         \"total_mem_ops_per_sec\": {total_rate:.1}, \
         \"note\": \"commit {}, cfg-fp {cfg_fp:016x}\"}}\n",
        git_commit()
    );
    use std::io::Write as _;
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(hist_path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    match appended {
        Ok(()) => println!("appended run to {hist_path}"),
        Err(e) => eprintln!("warning: could not append {hist_path}: {e}"),
    }

    // CI perf ratchet: a quick run that lands more than RATCHET_TOLERANCE
    // below the previous recorded quick run fails the step.
    match ratchet_verdict(scale, prior_rate, total_rate) {
        None => {}
        Some(Ratchet::Ok { prev, floor }) => {
            println!(
                "perf ratchet: ok — {total_rate:.0} ops/s vs previous {prev:.0} \
                 (floor {floor:.0})"
            );
        }
        Some(Ratchet::Regression { prev, floor }) => {
            eprintln!(
                "perf ratchet: FAIL — {total_rate:.0} ops/s is more than \
                 {:.0}% below the previous recorded run ({prev:.0} ops/s, \
                 floor {floor:.0})",
                RATCHET_TOLERANCE * 100.0
            );
            std::process::exit(EXIT_REGRESSION);
        }
        Some(Ratchet::NoBaseline) => {
            eprintln!(
                "perf ratchet: WARNING — no prior {scale}/jobs={jobs} entry in \
                 BENCH_history.jsonl; the gate passed vacuously, not green. \
                 This run was appended above, so the next run has a baseline. \
                 Exiting {EXIT_NO_BASELINE} so CI cannot mistake an unmeasured \
                 run for a passing one."
            );
            std::process::exit(EXIT_NO_BASELINE);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_overrides_do_not_demote_the_scale() {
        let mut o = ExpOptions::quick();
        assert_eq!(scale_name(&o), "quick");
        // A `--set` run is still a quick run (its own cfg-fp lineage keys
        // the ratchet baseline) — it must not escape the gate as "custom".
        o.overrides
            .push(("pipeline_depth".to_owned(), "4".to_owned()));
        o.jobs = 1;
        assert_eq!(scale_name(&o), "quick");
        // A genuinely different shape still classifies as custom.
        o.mem_ops += 1;
        assert_eq!(scale_name(&o), "custom");
    }

    #[test]
    fn ratchet_gates_only_quick_scale() {
        assert_eq!(ratchet_verdict("standard", Some(100.0), 1.0), None);
        assert_eq!(ratchet_verdict("full", None, 1.0), None);
        assert!(ratchet_verdict("quick", Some(100.0), 100.0).is_some());
    }

    #[test]
    fn ratchet_accepts_within_tolerance_and_fails_below() {
        // 10% tolerance on a 100 ops/s baseline: floor is 90.
        match ratchet_verdict("quick", Some(100.0), 91.0) {
            Some(Ratchet::Ok { prev, floor }) => {
                assert_eq!(prev, 100.0);
                assert!((floor - 90.0).abs() < 1e-9);
            }
            other => panic!("expected Ok, got {other:?}"),
        }
        assert!(matches!(
            ratchet_verdict("quick", Some(100.0), 89.0),
            Some(Ratchet::Regression { .. })
        ));
        // Improvements obviously pass.
        assert!(matches!(
            ratchet_verdict("quick", Some(100.0), 250.0),
            Some(Ratchet::Ok { .. })
        ));
    }

    #[test]
    fn missing_baseline_is_distinct_from_both_pass_and_regression() {
        let v = ratchet_verdict("quick", None, 1e9);
        assert_eq!(v, Some(Ratchet::NoBaseline));
        assert_ne!(EXIT_NO_BASELINE, 0, "vacuous pass must not exit 0");
        assert_ne!(
            EXIT_NO_BASELINE, EXIT_REGRESSION,
            "CI must be able to tell 'got slower' from 'measured nothing'"
        );
    }

    #[test]
    fn writer_line_matches_its_own_history_key() {
        // Mirrors the format string in main(): if the writer's shape
        // drifts away from what HistoryKey::matches can parse, the ratchet
        // silently loses its baseline — catch that here.
        let line = format!(
            "{{\"epoch_secs\": 1754600000, \"bench\": \"sim\", \"scale\": \"quick\", \
             \"jobs\": 4, \
             \"total_mem_ops\": 936000, \"total_wall_seconds\": 12.500000, \
             \"total_mem_ops_per_sec\": 74880.0, \
             \"note\": \"commit abc, cfg-fp {:016x}\"}}",
            0xffu64
        );
        let key = HistoryKey {
            bench: "sim".to_owned(),
            scale: "quick".to_owned(),
            jobs: 4,
            cfg_fp: 0xff,
        };
        assert!(key.matches(&line));
        assert_eq!(key.latest_rate(&line, "total_mem_ops_per_sec"), Some(74880.0));
        let kv = HistoryKey { bench: "kv".to_owned(), ..key };
        assert!(!kv.matches(&line), "kv ratchet must not see sim entries");
    }
}
