//! Regenerates the paper's fig2. See `iroram_experiments::fig2`.
fn main() {
    iroram_bench::harness("fig2", iroram_experiments::fig2::run);
}
