//! Fault-injection sweep: runs the seven schemes of the paper's main
//! comparison across a behaviourally diverse bench subset **under an
//! active fault plan** (DRAM line corruption, transient bank stalls,
//! stash-pressure storms, mangled trace records) with both the integrity
//! layer and the audit subsystem on, and verifies the robustness
//! contract:
//!
//! - **zero undetected corruptions**: every injected DRAM corruption that
//!   a path read consumed was caught by the per-bucket checksums;
//! - **clean audits**: fault handling never breaks the functional oracle,
//!   the timing schedule, or DRAM conservation;
//! - **bounded slowdown**: re-fetch penalties and bank stalls cost real
//!   but bounded time against the same cell run fault-free.
//!
//! Exits nonzero on any violated clause — this is the CI gate for the
//! failure-model machinery.
//!
//! Usage: `cargo run --release -p iroram-bench --bin faults --
//! [--preset low|high] [--quick | --standard | --full] [--jobs N]`

use ir_oram::{Scheme, SimReport};
use iroram_experiments::{par_map, run_cell_checked, ExpOptions};
use iroram_sim_engine::FaultConfig;
use iroram_trace::Bench;

/// Schemes under test (the paper's seven-way comparison set).
const SCHEMES: [Scheme; 7] = [
    Scheme::Baseline,
    Scheme::Rho,
    Scheme::LlcD,
    Scheme::IrAlloc,
    Scheme::IrStash,
    Scheme::IrDwb,
    Scheme::IrOram,
];

/// Same behaviourally diverse subset as the audit sweep.
const BENCHES: [Bench; 5] = [
    Bench::Gcc,
    Bench::Mcf,
    Bench::Lbm,
    Bench::Mix,
    Bench::RandomUniform,
];

/// Faulted cells must finish within this factor of their clean twin.
/// Generous on purpose: the clause guards against unbounded recovery
/// loops, not against the (intended, measured) per-fault penalties.
const MAX_SLOWDOWN: f64 = 3.0;

/// A named fault intensity.
fn preset(name: &str) -> Option<FaultConfig> {
    let mut f = FaultConfig::none();
    match name {
        "low" => {
            f.dram_corruption = 0.002;
            f.bank_stall = 0.01;
            f.stash_storm = 0.001;
            f.trace_mangle = 0.001;
        }
        "high" => {
            f.dram_corruption = 0.02;
            f.bank_stall = 0.05;
            f.bank_stall_dram_cycles = 200;
            f.stash_storm = 0.01;
            f.storm_slots = 64;
            f.trace_mangle = 0.01;
        }
        _ => return None,
    }
    Some(f)
}

fn main() {
    // Peel off `--preset X` before handing the rest to the shared parser.
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let mut preset_name = "low".to_owned();
    if let Some(i) = raw.iter().position(|a| a == "--preset") {
        if i + 1 >= raw.len() {
            eprintln!("error: --preset requires a value (low|high)");
            std::process::exit(2);
        }
        preset_name = raw.remove(i + 1);
        raw.remove(i);
    }
    let Some(faults) = preset(&preset_name) else {
        eprintln!("error: unknown preset `{preset_name}` (expected low|high)");
        std::process::exit(2);
    };
    let mut opts = match ExpOptions::parse(&raw) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}\n{}", iroram_experiments::runner::USAGE);
            std::process::exit(2);
        }
    };
    opts.audit = true;

    // Every cell runs at access-pipeline depths 1 and 4: fault recovery
    // (re-fetch penalties, storm throttling, record rejection) must hold
    // under the k-deep overlapped schedule, not just the serial one.
    let cells: Vec<(Scheme, Bench, u32)> = SCHEMES
        .iter()
        .flat_map(|&s| {
            BENCHES
                .iter()
                .flat_map(move |&b| [1u32, 4].into_iter().map(move |d| (s, b, d)))
        })
        .collect();
    let results = par_map(opts.effective_jobs(), cells, |(scheme, bench, depth)| {
        // Clean twin first, then the faulted run of the same cell.
        let mut clean_cfg = opts.system(scheme);
        clean_cfg.pipeline_depth = depth;
        let clean = run_cell_checked(&clean_cfg, bench, opts.limit())
            .unwrap_or_else(|e| panic!("clean run: {e}"));
        let mut cfg = opts.system(scheme);
        cfg.pipeline_depth = depth;
        cfg.faults = faults.clone();
        let faulted = run_cell_checked(&cfg, bench, opts.limit())
            .unwrap_or_else(|e| panic!("faulted run: {e}"));
        (scheme, bench, depth, clean, faulted)
    });

    let mut failures = 0u64;
    println!(
        "{:<10} {:<14} {:>5} {:>9} {:>9} {:>11} {:>7} {:>7} {:>9} {:>9} {:>9}",
        "scheme",
        "bench",
        "depth",
        "injected",
        "detected",
        "undetected",
        "stalls",
        "storms",
        "rejected",
        "penalty",
        "slowdown"
    );
    for (scheme, bench, depth, clean, faulted) in &results {
        let f = &faulted.faults;
        let slowdown = faulted.cycles as f64 / clean.cycles.max(1) as f64;
        println!(
            "{:<10} {:<14} {:>5} {:>9} {:>9} {:>11} {:>7} {:>7} {:>9} {:>9} {:>9.3}",
            scheme.name(),
            bench.name(),
            depth,
            f.injected_corruptions,
            f.detected,
            f.undetected,
            f.bank_stalls,
            f.storms,
            f.rejected_records,
            f.refetch_penalty_cycles,
            slowdown
        );
        failures += check(scheme, bench, *depth, clean, faulted, slowdown);
    }
    let (injected, detected): (u64, u64) = results
        .iter()
        .fold((0, 0), |(i, d), (_, _, _, _, r)| {
            (i + r.faults.injected_corruptions, d + r.faults.detected)
        });
    println!(
        "\n{} cells, {} corruptions injected, {} detection events, {} clause failure(s)",
        results.len(),
        injected,
        detected,
        failures
    );
    if failures > 0 {
        std::process::exit(1);
    }
}

/// Checks the robustness clauses for one cell, printing each failure.
fn check(
    scheme: &Scheme,
    bench: &Bench,
    depth: u32,
    clean: &SimReport,
    faulted: &SimReport,
    slowdown: f64,
) -> u64 {
    let cell = format!("{}/{}/depth{}", scheme.name(), bench.name(), depth);
    let mut failures = 0;
    if faulted.faults.undetected > 0 {
        println!(
            "    ! {cell}: {} corruption(s) consumed undetected",
            faulted.faults.undetected
        );
        failures += 1;
    }
    if faulted.faults.recovered < faulted.faults.detected {
        println!(
            "    ! {cell}: {} detection(s) but only {} recovered",
            faulted.faults.detected, faulted.faults.recovered
        );
        failures += 1;
    }
    if slowdown > MAX_SLOWDOWN {
        println!("    ! {cell}: slowdown {slowdown:.2}x exceeds {MAX_SLOWDOWN}x");
        failures += 1;
    }
    if clean.faults != ir_oram::FaultStats::default() {
        println!("    ! {cell}: clean twin reported fault activity");
        failures += 1;
    }
    if faulted.mem_ops != clean.mem_ops {
        println!(
            "    ! {cell}: faulted run replayed {} ops vs {} clean",
            faulted.mem_ops, clean.mem_ops
        );
        failures += 1;
    }
    failures
}
