//! Regenerates the paper's fig14. See `iroram_experiments::fig14`.
fn main() {
    iroram_bench::harness("fig14", iroram_experiments::fig14::run);
}
