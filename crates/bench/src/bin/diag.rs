//! Scheme diagnostics: per-scheme slot/DRAM breakdown on one benchmark.
//! Usage: `cargo run --release -p iroram-bench --bin diag [levels] [bench] [ops]`

use ir_oram::{RunLimit, Scheme, Simulation, SystemConfig};
use iroram_trace::{Bench, ALL_BENCHES};

const USAGE: &str = "\
usage: diag [levels] [bench] [ops]
  levels   ORAM tree height, 3..=24 (default 12)
  bench    Table II benchmark name, e.g. gcc, mcf, lbm (default mcf)
  ops      memory operations to replay, > 0 (default 6000)";

struct Args {
    levels: usize,
    bench: Bench,
    ops: u64,
}

/// Parses the positional arguments strictly: malformed values and excess
/// arguments are errors, not silent fallbacks to the defaults.
fn parse(args: &[String]) -> Result<Args, String> {
    if args.len() > 3 {
        return Err(format!("expected at most 3 arguments, got {}", args.len()));
    }
    let levels = match args.first() {
        Some(v) => v
            .parse::<usize>()
            .ok()
            .filter(|l| (3..=24).contains(l))
            .ok_or_else(|| format!("levels must be an integer in 3..=24, got `{v}`"))?,
        None => 12,
    };
    let bench = match args.get(1) {
        Some(name) => ALL_BENCHES
            .iter()
            .copied()
            .find(|b| b.name() == name.as_str())
            .ok_or_else(|| {
                let known: Vec<&str> = ALL_BENCHES.iter().map(|b| b.name()).collect();
                format!("unknown bench `{name}` (known: {})", known.join(", "))
            })?,
        None => Bench::Mcf,
    };
    let ops = match args.get(2) {
        Some(v) => v
            .parse::<u64>()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("ops must be a positive integer, got `{v}`"))?,
        None => 6000,
    };
    Ok(Args { levels, bench, ops })
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse(&raw) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}\n{USAGE}");
            std::process::exit(2);
        }
    };
    let levels = args.levels;
    for scheme in [
        Scheme::Baseline,
        Scheme::Rho,
        Scheme::IrAlloc,
        Scheme::IrStash,
        Scheme::IrDwb,
        Scheme::IrOram,
        Scheme::LlcD,
    ] {
        let mut cfg = SystemConfig::scaled(scheme);
        cfg.oram.levels = levels;
        cfg.oram.data_blocks = 1 << (levels + 1);
        cfg.oram.zalloc = iroram_protocol::ZAllocation::uniform(levels, 4);
        let top = (levels * 2 / 5).max(1);
        cfg.oram.treetop = iroram_protocol::TreeTopMode::Dedicated { levels: top };
        cfg.hierarchy = iroram_cache::HierarchyConfig::scaled(
            (32usize << (17 - levels.min(17))).min(128),
        );
        cfg.t_interval = SystemConfig::t_for(&cfg.oram);
        let cfg = cfg.with_scheme(scheme);
        let r = Simulation::run_bench(&cfg, args.bench, RunLimit::mem_ops(args.ops));
        let s = &r.slots;
        let p = &r.protocol;
        println!(
            "{:<10} T={} cyc={:>10} slots={:>6} (real {:>5} bg {:>4} dmy {:>5} cnv {:>4}) miss={:>5} pm={:>5} data={:>5} top={:>4} sst={:>4} fst={:>4} esc={:>4} stsh={:>4} dram={:>7} cyc/slot={:.0}",
            cfg.scheme.name(), cfg.t_interval, r.cycles, s.total_slots, s.real_slots,
            s.bg_slots, s.dummy_slots, s.converted_slots, r.hierarchy.misses,
            r.posmap_paths(), p.data_paths, p.treetop_hits, p.sstash_hits, p.fstash_hits,
            p.escrow_hits, p.served_stash, r.dram.requests,
            r.cycles as f64 / s.total_slots.max(1) as f64
        );
        let st = &r.stash;
        println!(
            "           stash: peak {}/{} soft, {} over-capacity slot(s), {} bg escalation(s)",
            st.max_occupancy, st.soft_capacity, st.overflow_slots, st.bg_escalations
        );
    }
}
