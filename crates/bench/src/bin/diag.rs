//! Scheme diagnostics: per-scheme slot/DRAM breakdown on one benchmark.
//! Usage: `cargo run --release -p iroram-bench --bin diag [levels] [bench] [ops]`

use ir_oram::{RunLimit, Scheme, Simulation, SystemConfig};
use iroram_trace::{Bench, ALL_BENCHES};

fn main() {
    let levels: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(12);
    let bench = std::env::args()
        .nth(2)
        .and_then(|name| ALL_BENCHES.iter().copied().find(|b| b.name() == name))
        .unwrap_or(Bench::Mcf);
    let ops: u64 = std::env::args().nth(3).and_then(|s| s.parse().ok()).unwrap_or(6000);
    for scheme in [
        Scheme::Baseline,
        Scheme::Rho,
        Scheme::IrAlloc,
        Scheme::IrStash,
        Scheme::IrDwb,
        Scheme::IrOram,
        Scheme::LlcD,
    ] {
        let mut cfg = SystemConfig::scaled(scheme);
        cfg.oram.levels = levels;
        cfg.oram.data_blocks = 1 << (levels + 1);
        cfg.oram.zalloc = iroram_protocol::ZAllocation::uniform(levels, 4);
        let top = (levels * 2 / 5).max(1);
        cfg.oram.treetop = iroram_protocol::TreeTopMode::Dedicated { levels: top };
        cfg.hierarchy = iroram_cache::HierarchyConfig::scaled(
            (32usize << (17 - levels.min(17))).min(128),
        );
        cfg.t_interval = SystemConfig::t_for(&cfg.oram);
        let cfg = cfg.with_scheme(scheme);
        let r = Simulation::run_bench(&cfg, bench, RunLimit::mem_ops(ops));
        let s = &r.slots;
        let p = &r.protocol;
        println!(
            "{:<10} T={} cyc={:>10} slots={:>6} (real {:>5} bg {:>4} dmy {:>5} cnv {:>4}) miss={:>5} pm={:>5} data={:>5} top={:>4} sst={:>4} fst={:>4} esc={:>4} stsh={:>4} dram={:>7} cyc/slot={:.0}",
            cfg.scheme.name(), cfg.t_interval, r.cycles, s.total_slots, s.real_slots,
            s.bg_slots, s.dummy_slots, s.converted_slots, r.hierarchy.misses,
            r.posmap_paths(), p.data_paths, p.treetop_hits, p.sstash_hits, p.fstash_hits,
            p.escrow_hits, p.served_stash, r.dram.requests,
            r.cycles as f64 / s.total_slots.max(1) as f64
        );
    }
}
