//! Regenerates the paper's fig4. See `iroram_experiments::fig4`.
fn main() {
    iroram_bench::harness("fig4", iroram_experiments::fig4::run);
}
