//! Regenerates the paper's fig15. See `iroram_experiments::fig15`.
fn main() {
    iroram_bench::harness("fig15", iroram_experiments::fig15::run);
}
