//! Regenerates the paper's fig3. See `iroram_experiments::fig3`.
fn main() {
    iroram_bench::harness("fig3", iroram_experiments::fig3::run);
}
