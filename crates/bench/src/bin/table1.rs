//! Regenerates the paper's table1. See `iroram_experiments::table1`.
fn main() {
    iroram_bench::harness("table1", iroram_experiments::table1::run);
}
