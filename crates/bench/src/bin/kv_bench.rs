//! KV serving-layer throughput and latency harness: drives the sharded
//! oblivious KV store (`iroram-kv`) through a load phase and two mixed
//! phases (uniform and Zipf key popularity), recording p50/p99/p999
//! latency histograms and per-shard throughput.
//!
//! Every invocation benchmarks the same workload at 1 shard and at 4
//! shards, writes `BENCH_kv_latency.json`, and appends provenance-stamped
//! entries (`"bench": "kv"`) to `BENCH_history.jsonl`. On the `--quick`
//! scale the 4-shard run is ratchet-gated against its own recorded
//! lineage (same exit conventions as `perfstat`: 1 = regression, 2 = no
//! baseline, i.e. a vacuous pass), and the 4-vs-1 shard scaling is
//! asserted to reach [`MIN_QUICK_SPEEDUP`].
//!
//! Two throughput views are reported, because they answer different
//! questions:
//!
//! * **wall-clock throughput** — mixed ops / elapsed seconds on *this*
//!   host. On a machine with ≥ 4 cores the 4-shard run overlaps its
//!   workers and this shows the parallel speedup directly; on a 1-core
//!   CI box it can only show the algorithmic gain from smaller
//!   per-shard trees.
//! * **aggregate service capacity** — Σ over shards of
//!   `ops_i / busy_i`, where `busy_i` is each shard's own uncontended
//!   serving time from the injected clock. Workers are clamped to the
//!   host's available parallelism, so shards never time-slice against
//!   each other and `busy_i` measures real per-shard service rate. This
//!   is the throughput the sharded layer delivers once each worker has
//!   a core, and it is the machine-independent quantity the scaling
//!   gate asserts on.
//!
//! ```text
//! cargo run --release --bin kv_bench -- --quick
//! cargo run --release --bin kv_bench -- --full     # 1M+ keys
//! ```

use std::time::Instant;

use iroram_bench::hist::Histogram;
use iroram_experiments::history::HistoryKey;
use iroram_hash::mix64;
use iroram_kv::{KvConfig, KvOp, KvService, ShardReport};
use iroram_sim_engine::SimRng;

/// How much slower than the last recorded quick run of the same shape the
/// gated run may be before the ratchet fails. Wider than perfstat's 10%:
/// wall-clock KV rates swing ±15% run-to-run on a shared 1-core host.
const RATCHET_TOLERANCE: f64 = 0.20;
const EXIT_REGRESSION: i32 = 1;
const EXIT_NO_BASELINE: i32 = 2;

/// The 4-shard quick run must beat the 1-shard run by at least this
/// factor in aggregate service capacity, or the sharding layer has
/// stopped paying for itself.
const MIN_QUICK_SPEEDUP: f64 = 1.5;

/// Zipf skew for the hot-key phase (the classic YCSB-style 0.99).
const ZIPF_S: f64 = 0.99;

#[derive(Debug, Clone)]
struct BenchOptions {
    scale: &'static str,
    keys: u64,
    mixed_ops: u64,
    seed: u64,
}

impl BenchOptions {
    fn from_args() -> Self {
        let mut o = BenchOptions {
            scale: "standard",
            keys: 262_144,
            mixed_ops: 131_072,
            seed: 0xC0FFEE,
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => {
                    o.scale = "quick";
                    o.keys = 8_192;
                    o.mixed_ops = 32_768;
                }
                "--full" => {
                    o.scale = "full";
                    o.keys = 1_048_576;
                    o.mixed_ops = 262_144;
                }
                "--keys" => {
                    i += 1;
                    o.keys = args[i].parse().expect("--keys N");
                    o.scale = "custom";
                }
                "--ops" => {
                    i += 1;
                    o.mixed_ops = args[i].parse().expect("--ops N");
                    o.scale = "custom";
                }
                "--seed" => {
                    i += 1;
                    o.seed = args[i].parse().expect("--seed N");
                    o.scale = "custom";
                }
                other => {
                    eprintln!(
                        "unrecognized argument `{other}`\n\
                         usage: kv_bench [--quick|--full] [--keys N] [--ops N] [--seed N]"
                    );
                    std::process::exit(2);
                }
            }
            i += 1;
        }
        o
    }
}

/// A Zipf(s) sampler over `1..=n` via precomputed CDF + binary search.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: u64, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(s);
            cdf.push(acc);
        }
        Zipf { cdf }
    }

    /// Ranks are popularity order; scramble them through `mix64` so hot
    /// keys spread across shards instead of clustering at small ids.
    fn sample(&self, rng: &mut SimRng, keys: u64) -> u32 {
        let total = *self.cdf.last().expect("nonempty");
        let r = rng.next_f64() * total;
        let rank = self.cdf.partition_point(|&c| c < r) as u64;
        1 + (mix64(rank) % keys) as u32
    }
}

struct Phase {
    name: &'static str,
    ops: u64,
    wall_seconds: f64,
    hist: Histogram,
}

struct RunResult {
    shards: usize,
    load_seconds: f64,
    phases: Vec<Phase>,
    shard_ops: Vec<u64>,
    shard_busy_ns: Vec<u64>,
    reports: Vec<ShardReport>,
    mixed_ops_per_sec: f64,
}

impl RunResult {
    /// Σ per-shard service rate — the throughput the run delivers once
    /// each worker has its own core. Workers never exceed the host's
    /// parallelism (see [`run_one`]), so `busy` is uncontended time.
    fn capacity_ops_per_sec(&self) -> f64 {
        self.shard_ops
            .iter()
            .zip(&self.shard_busy_ns)
            .map(|(&ops, &busy)| ops as f64 / (busy as f64 / 1e9).max(1e-9))
            .sum()
    }
}

/// One full benchmark run at a given shard count: load phase, then the
/// uniform and Zipf mixed phases.
fn run_one(opts: &BenchOptions, shards: usize) -> RunResult {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut cfg = KvConfig::for_keys(opts.keys, shards);
    // More workers than cores would make shards time-slice against each
    // other, corrupting the per-shard busy-time measurement (and adding
    // switch overhead for nothing). Results are worker-count independent
    // by construction, so this only affects timing.
    cfg.workers = shards.min(cores);
    cfg.seed = opts.seed;
    let mut kv = KvService::new(cfg);
    let epoch = Instant::now();
    let clock = move || epoch.elapsed().as_nanos() as u64;

    // Load phase: insert every key in mix64-scrambled order.
    let t0 = Instant::now();
    let mut loaded = 0u64;
    let mut k = 0u64;
    while loaded < opts.keys {
        let mut window = 0;
        while loaded < opts.keys && window < 16_384 {
            k += 1;
            let key = 1 + (mix64(k) % opts.keys) as u32;
            if kv
                .submit(KvOp::Put { key, value: key.wrapping_mul(2_654_435_761) })
                .is_err()
            {
                break;
            }
            loaded += 1;
            window += 1;
        }
        kv.flush();
    }
    let load_seconds = t0.elapsed().as_secs_f64();

    // Mixed phases: 70% get / 25% put / 5% delete. Deleted keys are
    // eligible for re-insertion by later puts, so the store stays near
    // its loaded size.
    let zipf = Zipf::new(opts.keys, ZIPF_S);
    let mut rng = SimRng::seed_from(opts.seed ^ 0x4B56_4245_4E43); // "KVBENC"
    let mut phases = Vec::new();
    let mut shard_ops = vec![0u64; shards];
    let mut shard_busy_ns = vec![0u64; shards];
    let mut mixed_wall = 0.0f64;
    for name in ["uniform", "zipf"] {
        let mut hist = Histogram::new();
        let t0 = Instant::now();
        let mut done = 0u64;
        while done < opts.mixed_ops {
            let window = (opts.mixed_ops - done).min(16_384);
            for _ in 0..window {
                let key = match name {
                    "uniform" => 1 + rng.next_below(opts.keys) as u32,
                    _ => zipf.sample(&mut rng, opts.keys),
                };
                let op = match rng.next_below(100) {
                    0..=69 => KvOp::Get { key },
                    70..=94 => KvOp::Put { key, value: rng.next_u64() as u32 },
                    _ => KvOp::Delete { key },
                };
                kv.submit(op).expect("queue sized for the window");
            }
            let outcome = kv.flush_with_clock(Some(&clock));
            for lat in outcome.latencies {
                hist.record(lat);
            }
            for (acc, ops) in shard_ops.iter_mut().zip(&outcome.shard_ops) {
                *acc += ops;
            }
            for (acc, busy) in shard_busy_ns.iter_mut().zip(&outcome.shard_busy) {
                *acc += busy;
            }
            done += window;
        }
        let wall_seconds = t0.elapsed().as_secs_f64();
        mixed_wall += wall_seconds;
        phases.push(Phase { name, ops: opts.mixed_ops, wall_seconds, hist });
    }

    let total_mixed: u64 = phases.iter().map(|p| p.ops).sum();
    RunResult {
        shards,
        load_seconds,
        phases,
        shard_ops,
        shard_busy_ns,
        reports: kv.reports(),
        mixed_ops_per_sec: total_mixed as f64 / mixed_wall.max(1e-9),
    }
}

fn print_run(r: &RunResult) {
    println!(
        "  S={} load {:.2}s, mixed {:.0} ops/s wall, {:.0} ops/s aggregate capacity",
        r.shards,
        r.load_seconds,
        r.mixed_ops_per_sec,
        r.capacity_ops_per_sec()
    );
    for p in &r.phases {
        println!(
            "    {:<8} {:>7} ops in {:>6.2}s  {}",
            p.name,
            p.ops,
            p.wall_seconds,
            p.hist.summary("ns")
        );
    }
    for (i, (&ops, &busy)) in r.shard_ops.iter().zip(&r.shard_busy_ns).enumerate() {
        let tput = ops as f64 / (busy as f64 / 1e9).max(1e-9);
        println!(
            "    shard {i}: {ops} mixed ops, busy {:.2}s -> {tput:.0} ops/s \
             ({} ORAM accesses, stash peak {})",
            busy as f64 / 1e9,
            r.reports[i].oram.accesses,
            r.reports[i].stash_peak
        );
    }
}

fn json_run(r: &RunResult) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "    {{\"shards\": {}, \"load_seconds\": {:.6}, \"mixed_ops_per_sec\": {:.1}, \
         \"capacity_ops_per_sec\": {:.1},\n",
        r.shards,
        r.load_seconds,
        r.mixed_ops_per_sec,
        r.capacity_ops_per_sec()
    ));
    s.push_str("     \"phases\": [");
    for (i, p) in r.phases.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!(
            "{{\"name\": \"{}\", \"ops\": {}, \"wall_seconds\": {:.6}, \
             \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \"max_ns\": {}, \
             \"mean_ns\": {:.1}}}",
            p.name,
            p.ops,
            p.wall_seconds,
            p.hist.value_at(0.50),
            p.hist.value_at(0.99),
            p.hist.value_at(0.999),
            p.hist.max(),
            p.hist.mean()
        ));
    }
    s.push_str("],\n     \"shard_mixed_ops\": [");
    for (i, ops) in r.shard_ops.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&ops.to_string());
    }
    s.push_str("], \"shard_busy_seconds\": [");
    for (i, busy) in r.shard_busy_ns.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("{:.6}", *busy as f64 / 1e9));
    }
    s.push_str("]}");
    s
}

/// Short commit hash of the working tree, or `"unknown"` outside a checkout.
fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// The workload fingerprint for history provenance: the service config
/// fold extended with the op counts that shape the run.
fn workload_fp(cfg: &KvConfig, opts: &BenchOptions) -> u64 {
    let mut fp = cfg.fingerprint();
    for field in [opts.keys, opts.mixed_ops, opts.seed] {
        fp = mix64(fp.rotate_left(9) ^ field);
    }
    fp
}

fn main() {
    let opts = BenchOptions::from_args();
    println!(
        "kv_bench: {} keys, {} mixed ops/phase (uniform + zipf {ZIPF_S}), scale {}",
        opts.keys, opts.mixed_ops, opts.scale
    );

    let runs: Vec<RunResult> = [1usize, 4]
        .iter()
        .map(|&shards| {
            println!("running S={shards}…");
            let r = run_one(&opts, shards);
            print_run(&r);
            r
        })
        .collect();
    let wall_speedup = runs[1].mixed_ops_per_sec / runs[0].mixed_ops_per_sec.max(1e-9);
    let capacity_speedup =
        runs[1].capacity_ops_per_sec() / runs[0].capacity_ops_per_sec().max(1e-9);
    println!(
        "4-shard vs 1-shard: {wall_speedup:.2}x wall-clock (host has {} core(s)), \
         {capacity_speedup:.2}x aggregate service capacity",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    // Snapshot JSON for the latest run.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"scale\": \"{}\",\n", opts.scale));
    json.push_str(&format!("  \"keys\": {},\n", opts.keys));
    json.push_str(&format!("  \"mixed_ops_per_phase\": {},\n", opts.mixed_ops));
    json.push_str(&format!("  \"zipf_s\": {ZIPF_S},\n"));
    json.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        json.push_str(&json_run(r));
        json.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"wall_speedup_4_vs_1\": {wall_speedup:.4},\n"));
    json.push_str(&format!("  \"capacity_speedup_4_vs_1\": {capacity_speedup:.4}\n"));
    json.push_str("}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kv_latency.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => {
            eprintln!("error: could not write {path}: {e}");
            std::process::exit(1);
        }
    }

    // Append-only history entries, one per run, namespaced to the kv
    // bench family so the sim ratchet can never cross-match them.
    let hist_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_history.jsonl");
    let commit = git_commit();
    let epoch_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let mut gated: Option<(HistoryKey, f64)> = None;
    for r in &runs {
        let mut cfg = KvConfig::for_keys(opts.keys, r.shards);
        cfg.seed = opts.seed;
        let key = HistoryKey {
            bench: "kv".to_owned(),
            scale: opts.scale.to_owned(),
            jobs: r.shards as u64,
            cfg_fp: workload_fp(&cfg, &opts),
        };
        let line = format!(
            "{{\"epoch_secs\": {epoch_secs}, \"bench\": \"kv\", \"scale\": \"{}\", \
             \"jobs\": {}, \"kv_keys\": {}, \"kv_ops\": {}, \
             \"kv_ops_per_sec\": {:.1}, \"kv_capacity_ops_per_sec\": {:.1}, \
             \"note\": \"commit {commit}, {}\"}}\n",
            opts.scale,
            r.shards,
            opts.keys,
            opts.mixed_ops * 2,
            r.mixed_ops_per_sec,
            r.capacity_ops_per_sec(),
            key.fp_tag()
        );
        use std::io::Write as _;
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(hist_path)
            .and_then(|mut f| {
                let prior = std::fs::read_to_string(hist_path).unwrap_or_default();
                if r.shards == 4 {
                    gated = Some((key.clone(), key.latest_rate(&prior, "kv_ops_per_sec").unwrap_or(-1.0)));
                }
                f.write_all(line.as_bytes())
            });
        match appended {
            Ok(()) => println!("appended S={} run to {hist_path}", r.shards),
            Err(e) => eprintln!("warning: could not append {hist_path}: {e}"),
        }
    }

    // Shard-scaling gate: the whole point of the sharded layer. Gated on
    // aggregate capacity (machine-independent); wall-clock speedup on a
    // box with fewer cores than shards only reflects the algorithmic
    // gain from smaller per-shard trees.
    if opts.scale == "quick" {
        if capacity_speedup < MIN_QUICK_SPEEDUP {
            eprintln!(
                "kv scaling: FAIL — 4 shards delivered only {capacity_speedup:.2}x \
                 the 1-shard service capacity (required {MIN_QUICK_SPEEDUP}x)"
            );
            std::process::exit(EXIT_REGRESSION);
        }
        println!(
            "kv scaling: ok — {capacity_speedup:.2}x capacity at 4 shards \
             (gate {MIN_QUICK_SPEEDUP}x)"
        );
    }

    // CI perf ratchet on the quick 4-shard lineage, perfstat conventions:
    // exit 1 = regression, exit 2 = vacuous pass (no baseline; this run's
    // entry was appended above, so the next run has one).
    if opts.scale == "quick" {
        let (key, prior) = gated.expect("4-shard run always present");
        let rate = runs[1].mixed_ops_per_sec;
        if prior < 0.0 {
            eprintln!(
                "kv ratchet: WARNING — no prior quick/jobs={} entry with {} in \
                 BENCH_history.jsonl; the gate passed vacuously, not green.",
                key.jobs,
                key.fp_tag()
            );
            std::process::exit(EXIT_NO_BASELINE);
        }
        let floor = prior * (1.0 - RATCHET_TOLERANCE);
        if rate < floor {
            eprintln!(
                "kv ratchet: FAIL — {rate:.0} ops/s is below the floor {floor:.0} \
                 (previous {prior:.0})"
            );
            std::process::exit(EXIT_REGRESSION);
        }
        println!("kv ratchet: ok — {rate:.0} ops/s vs previous {prior:.0} (floor {floor:.0})");
    }
}
