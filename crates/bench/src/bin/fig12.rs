//! Regenerates the paper's fig12. See `iroram_experiments::fig12`.
fn main() {
    iroram_bench::harness("fig12", iroram_experiments::fig12::run);
}
