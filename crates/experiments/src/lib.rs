//! Experiment harness regenerating every table and figure of the IR-ORAM
//! paper (HPCA 2022).
//!
//! Each `figN`/`tableN` module reproduces one exhibit of the paper's
//! evaluation: it builds the right system configurations, runs the
//! simulators, and renders the same rows/series the paper reports. The
//! `iroram-bench` crate wraps each module in a binary (`cargo run -p
//! iroram-bench --release --bin fig10`), and `EXPERIMENTS.md` records
//! paper-vs-measured outcomes.
//!
//! Scaling: the paper simulates an 8 GB protected space (`L=25`) for
//! billions of accesses; these experiments default to the scaled tree of
//! [`ir_oram::SystemConfig::scaled`] and shorter windows, controlled by
//! [`ExpOptions`]. Shapes (who wins, by roughly what factor, where
//! crossovers fall) are the reproduction target, not absolute numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig6;
pub mod history;
pub mod journal;
pub mod render;
pub mod runner;
pub mod table1;
pub mod table2;

pub use render::Table;
pub use journal::Journal;
pub use runner::{
    geomean, par_map, run_cell_checked, run_matrix, run_scheme, CellError, CellOutcome,
    ExpOptions, MAX_CELL_RETRIES,
};
