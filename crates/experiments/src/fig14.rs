//! Fig. 14 — PosMap access reduction from IR-Stash.
//!
//! Reports each benchmark's PosMap path accesses under IR-Stash normalized
//! to Baseline. Paper shape: ≈49% of Baseline on average, with near-total
//! elimination on locality-friendly benchmarks (94% reduction on dee) and
//! little change on mcf.

use ir_oram::Scheme;

use crate::render::{fmt_f, Table};
use crate::runner::{geomean, perf_benches, run_matrix};
use crate::ExpOptions;

/// `(bench, baseline posmap paths, irstash posmap paths)` rows.
pub fn collect(opts: &ExpOptions) -> Vec<(String, u64, u64)> {
    let benches = perf_benches();
    let mut rows = run_matrix(opts, &[Scheme::Baseline, Scheme::IrStash], &benches);
    let stash = rows.pop().expect("two scheme rows");
    let base = rows.pop().expect("two scheme rows");
    benches
        .iter()
        .zip(base.iter().zip(stash.iter()))
        .map(|(b, (rb, rs))| (b.name().to_owned(), rb.posmap_paths(), rs.posmap_paths()))
        .collect()
}

/// Builds the Fig. 14 table.
pub fn run(opts: &ExpOptions) -> Table {
    let rows = collect(opts);
    let mut t = Table::new(
        "Fig. 14: PosMap path accesses, IR-Stash normalized to Baseline",
        ["Benchmark", "Baseline", "IR-Stash", "normalized"],
    );
    let mut ratios = Vec::new();
    for (name, b, s) in rows {
        let ratio = s as f64 / b.max(1) as f64;
        ratios.push(ratio);
        t.row([
            name,
            b.to_string(),
            s.to_string(),
            fmt_f(ratio, 3),
        ]);
    }
    t.row([
        "geomean".to_owned(),
        String::new(),
        String::new(),
        fmt_f(geomean(&ratios), 3),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_oram::{RunLimit, Simulation};
    use iroram_trace::Bench;

    #[test]
    fn irstash_reduces_posmap_paths() {
        let opts = ExpOptions::quick();
        let limit = RunLimit::mem_ops(20_000);
        // xz's streams revisit recently touched regions, which is where
        // IR-Stash's address-indexed front door pays off.
        let base = Simulation::run_bench(&opts.system(Scheme::Baseline), Bench::Xz, limit);
        let ir = Simulation::run_bench(&opts.system(Scheme::IrStash), Bench::Xz, limit);
        assert!(
            ir.protocol.sstash_hits > 0,
            "the S-Stash front door should serve some requests"
        );
        // At quick scale the tree top is only ~60 slots, so the reduction
        // is small; allow noise but forbid a real regression. The
        // standard-scale run recorded in EXPERIMENTS.md shows the paper's
        // large reduction.
        assert!(
            ir.posmap_paths() <= base.posmap_paths() * 21 / 20,
            "IR-Stash {} vs Baseline {}",
            ir.posmap_paths(),
            base.posmap_paths()
        );
    }
}
