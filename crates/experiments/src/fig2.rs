//! Fig. 2 — the distribution of path-access types.
//!
//! Runs the Baseline with timing protection and reports, per benchmark, the
//! fraction of path accesses of each type: `PT_p` (Pos1), `PT_p` (Pos2),
//! `PT_d` (data + background eviction, which the baseline folds into its
//! real traffic), and `PT_m` (dummies). Paper shape: `PT_d` ≈ 56%, `PT_p` ≈
//! 33% with Pos1 ≈ 4× Pos2, `PT_m` ≈ 11% on average.

use ir_oram::{Scheme, SimReport};
use crate::render::{fmt_pct, Table};
use crate::runner::{perf_benches, run_scheme};
use crate::ExpOptions;

/// The per-benchmark breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct PathMix {
    /// Benchmark name.
    pub bench: String,
    /// Fraction of Pos1 paths.
    pub pos1: f64,
    /// Fraction of Pos2 paths.
    pub pos2: f64,
    /// Fraction of data (+ background-eviction) paths.
    pub data: f64,
    /// Fraction of dummy paths.
    pub dummy: f64,
}

/// Extracts the mix from a run report.
pub fn mix_of(report: &SimReport) -> PathMix {
    let p = &report.protocol;
    let total = p.total_paths().max(1) as f64;
    PathMix {
        bench: report.workload.clone(),
        pos1: p.pos1_paths as f64 / total,
        pos2: p.pos2_paths as f64 / total,
        data: (p.data_paths + p.bg_evict_paths) as f64 / total,
        dummy: p.dummy_paths as f64 / total,
    }
}

/// Runs the experiment.
pub fn collect(opts: &ExpOptions) -> Vec<PathMix> {
    let benches = perf_benches();
    run_scheme(opts, Scheme::Baseline, &benches)
        .iter()
        .map(mix_of)
        .collect()
}

/// Builds the Fig. 2 table.
pub fn run(opts: &ExpOptions) -> Table {
    let mixes = collect(opts);
    let mut t = Table::new(
        "Fig. 2: distribution of path accesses (Baseline, timing protection on)",
        ["Benchmark", "PTp(Pos1)", "PTp(Pos2)", "PTd", "PTm(dummy)"],
    );
    let n = mixes.len() as f64;
    let (mut a1, mut a2, mut ad, mut am) = (0.0, 0.0, 0.0, 0.0);
    for m in &mixes {
        a1 += m.pos1 / n;
        a2 += m.pos2 / n;
        ad += m.data / n;
        am += m.dummy / n;
        t.row([
            m.bench.clone(),
            fmt_pct(m.pos1),
            fmt_pct(m.pos2),
            fmt_pct(m.data),
            fmt_pct(m.dummy),
        ]);
    }
    t.row([
        "average".to_owned(),
        fmt_pct(a1),
        fmt_pct(a2),
        fmt_pct(ad),
        fmt_pct(am),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_oram::{RunLimit, Simulation};
    use iroram_trace::Bench;

    #[test]
    fn fractions_sum_to_one() {
        let opts = ExpOptions::quick();
        let cfg = opts.system(Scheme::Baseline);
        let r = Simulation::run_bench(&cfg, Bench::Mcf, RunLimit::mem_ops(2_000));
        let m = mix_of(&r);
        let sum = m.pos1 + m.pos2 + m.data + m.dummy;
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        assert!(m.data > 0.0);
    }

    #[test]
    fn pos1_exceeds_pos2() {
        // Pos1 misses are strictly more frequent than Pos2 misses (a Pos2
        // path only happens when Pos1 also missed).
        let opts = ExpOptions::quick();
        let cfg = opts.system(Scheme::Baseline);
        let r = Simulation::run_bench(&cfg, Bench::Xz, RunLimit::mem_ops(3_000));
        let m = mix_of(&r);
        assert!(m.pos1 >= m.pos2, "{m:?}");
    }
}
