//! Fig. 13 — per-level utilization under IR-Alloc.
//!
//! Same methodology as Fig. 3 but with the IR-Alloc allocation: shrunken
//! middle levels run *higher* utilization than Baseline (paper: benchmarks
//! stay moderate, random traces exceed 50% and nearly fill the top).

use iroram_protocol::{AllocPreset, ZAllocation};

use crate::fig3;
use crate::render::Table;
use crate::ExpOptions;

/// Runs Fig. 3's snapshot collection with the standalone IR-Alloc setting.
pub fn collect(opts: &ExpOptions) -> Vec<fig3::Snapshot> {
    fig3::collect(opts, |levels, top| {
        ZAllocation::preset(AllocPreset::IrAlloc4, levels, top)
    })
}

/// Builds the Fig. 13 table.
pub fn run(opts: &ExpOptions) -> Table {
    fig3::render(
        collect(opts),
        "Fig. 13: space utilization per tree level (IR-Alloc allocation)",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iralloc_middle_levels_run_hotter_than_baseline() {
        let opts = ExpOptions::quick();
        let base = fig3::collect(&opts, |l, _| ZAllocation::uniform(l, 4));
        let ir = collect(&opts);
        let last_base = &base.last().unwrap().per_level;
        let last_ir = &ir.last().unwrap().per_level;
        let levels = last_base.len();
        // Compare mean utilization over the shrunken middle band.
        let mid = levels / 2..levels - 2;
        let mean = |v: &[f64]| {
            v[mid.clone()].iter().sum::<f64>() / mid.len() as f64
        };
        assert!(
            mean(last_ir) > mean(last_base),
            "IR-Alloc middle {:.3} should exceed baseline {:.3}",
            mean(last_ir),
            mean(last_base)
        );
    }
}
