//! Fig. 10 — the headline performance comparison.
//!
//! Runs every benchmark (plus the `mix` bar) under Baseline, Rho, IR-Alloc,
//! IR-Stash, IR-DWB and IR-ORAM and reports execution time normalized to
//! Baseline (lower is better), with the average row. Paper shape: Rho ≈
//! 0.90 on average (worse on mcf), IR-Alloc ≈ 0.71, IR-Stash ≈ 0.79,
//! IR-DWB ≈ 0.95, IR-ORAM ≈ 0.64 (57% improvement ⇒ 42% over Rho).

use ir_oram::{Scheme, SimReport};
use iroram_trace::Bench;

use crate::render::{fmt_f, Table};
use crate::runner::{geomean, perf_benches, run_matrix};
use crate::ExpOptions;

/// The schemes plotted in Fig. 10, in legend order.
pub const FIG10_SCHEMES: [Scheme; 6] = [
    Scheme::Baseline,
    Scheme::Rho,
    Scheme::IrAlloc,
    Scheme::IrStash,
    Scheme::IrDwb,
    Scheme::IrOram,
];

/// All runs of the figure, indexed `[scheme][bench]`.
#[derive(Debug, Clone)]
pub struct Fig10Data {
    /// Benchmarks in row order.
    pub benches: Vec<Bench>,
    /// Reports per scheme (same order as [`FIG10_SCHEMES`]).
    pub reports: Vec<Vec<SimReport>>,
}

impl Fig10Data {
    /// Normalized execution time of scheme `s` on bench row `b`
    /// (Baseline = 1.0).
    pub fn normalized(&self, s: usize, b: usize) -> f64 {
        self.reports[s][b].cycles as f64 / self.reports[0][b].cycles.max(1) as f64
    }

    /// Geometric-mean normalized time of scheme `s` across benches.
    pub fn mean_normalized(&self, s: usize) -> f64 {
        let xs: Vec<f64> = (0..self.benches.len())
            .map(|b| self.normalized(s, b))
            .collect();
        geomean(&xs)
    }
}

/// Runs all scheme × bench combinations (one parallel cell batch).
pub fn collect(opts: &ExpOptions) -> Fig10Data {
    let benches = perf_benches();
    let reports = run_matrix(opts, &FIG10_SCHEMES, &benches);
    Fig10Data { benches, reports }
}

/// Builds the Fig. 10 table from collected data.
pub fn render(data: &Fig10Data) -> Table {
    let mut headers = vec!["Benchmark".to_owned()];
    headers.extend(FIG10_SCHEMES.iter().map(|s| s.name().to_owned()));
    let mut t = Table::new(
        "Fig. 10: execution time normalized to Baseline (lower is better)",
        headers,
    );
    for (b, bench) in data.benches.iter().enumerate() {
        let mut row = vec![bench.name().to_owned()];
        row.extend((0..FIG10_SCHEMES.len()).map(|s| fmt_f(data.normalized(s, b), 3)));
        t.row(row);
    }
    let mut avg = vec!["geomean".to_owned()];
    avg.extend((0..FIG10_SCHEMES.len()).map(|s| fmt_f(data.mean_normalized(s), 3)));
    t.row(avg);
    t
}

/// Runs the experiment and renders the table.
pub fn run(opts: &ExpOptions) -> Table {
    render(&collect(opts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_oram::{RunLimit, Simulation};

    /// The core shape claim of the paper at reduced scale: IR-ORAM beats
    /// Baseline on a memory-intensive benchmark.
    #[test]
    fn iroram_beats_baseline_on_intense_bench() {
        let opts = ExpOptions::quick();
        let limit = RunLimit::mem_ops(6_000);
        let base = Simulation::run_bench(&opts.system(Scheme::Baseline), Bench::Xz, limit);
        let ir = Simulation::run_bench(&opts.system(Scheme::IrOram), Bench::Xz, limit);
        assert!(
            ir.cycles < base.cycles,
            "IR-ORAM {} vs Baseline {}",
            ir.cycles,
            base.cycles
        );
    }

    #[test]
    fn iralloc_reduces_memory_traffic() {
        let opts = ExpOptions::quick();
        let limit = RunLimit::mem_ops(4_000);
        let base = Simulation::run_bench(&opts.system(Scheme::Baseline), Bench::Mcf, limit);
        let alloc = Simulation::run_bench(&opts.system(Scheme::IrAlloc), Bench::Mcf, limit);
        assert!(
            alloc.dram.requests < base.dram.requests,
            "IR-Alloc must touch fewer blocks ({} vs {})",
            alloc.dram.requests,
            base.dram.requests
        );
    }
}
