//! Fig. 6 — requested blocks are frequently found in the top tree levels.
//!
//! Counts, per tree level, how often the requested block was found there
//! (the protocol's `served_level` histogram). Paper claim: the top ten
//! levels hold under 0.01% of ORAM space yet serve ≈23% of requests — the
//! tree top acts as an overflow buffer of the stash.

use iroram_protocol::{BlockAddr, PathOram, ZAllocation};
use iroram_trace::{Bench, WorkloadGen};

use crate::render::{fmt_pct, Table};
use crate::ExpOptions;

/// Per-level serve counts plus the stash count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeHistogram {
    /// Hits per tree level.
    pub per_level: Vec<u64>,
    /// Requests served from the stash.
    pub stash: u64,
    /// Total requests issued.
    pub total: u64,
}

impl ServeHistogram {
    /// Fraction of requests served by the top `k` levels.
    pub fn top_fraction(&self, k: usize) -> f64 {
        let top: u64 = self.per_level[..k.min(self.per_level.len())].iter().sum();
        top as f64 / self.total.max(1) as f64
    }
}

/// Runs the mix workload and gathers the serve histogram.
pub fn collect(opts: &ExpOptions) -> ServeHistogram {
    let cfg = opts.funct_oram(|l, _| ZAllocation::uniform(l, 4));
    let n = cfg.data_blocks;
    let mut oram = PathOram::new(cfg);
    let mut gen = WorkloadGen::for_bench(Bench::Mix, n, opts.seed);
    let total = n * opts.funct_accesses_per_block / 2;
    for _ in 0..total {
        let r = gen.next_record();
        oram.run_access(BlockAddr(r.addr), None);
    }
    let s = oram.stats();
    ServeHistogram {
        per_level: s.served_level.clone(),
        stash: s.served_stash + s.fstash_hits,
        total: s.accesses,
    }
}

/// Builds the Fig. 6 table.
pub fn run(opts: &ExpOptions) -> Table {
    let h = collect(opts);
    let mut t = Table::new(
        "Fig. 6: where requested blocks are found (mix workload)",
        ["Level", "hits", "share"],
    );
    t.row([
        "stash".to_owned(),
        h.stash.to_string(),
        fmt_pct(h.stash as f64 / h.total.max(1) as f64),
    ]);
    for (l, &c) in h.per_level.iter().enumerate() {
        t.row([
            l.to_string(),
            c.to_string(),
            fmt_pct(c as f64 / h.total.max(1) as f64),
        ]);
    }
    let top = h.per_level.len() * 2 / 5;
    t.row([
        format!("top-{top} total"),
        h.per_level[..top].iter().sum::<u64>().to_string(),
        fmt_pct(h.top_fraction(top)),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_levels_have_outsized_share() {
        let opts = ExpOptions::quick();
        let h = collect(&opts);
        let levels = h.per_level.len();
        let top = levels * 2 / 5;
        // The top 40% of levels hold a tiny fraction of space but should
        // serve a disproportionate share of requests (paper: ~23%).
        let share = h.top_fraction(top);
        assert!(
            share > 0.05,
            "top-{top} share {share:.3} unexpectedly small"
        );
        assert!(h.total > 0);
    }
}
