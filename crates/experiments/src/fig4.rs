//! Fig. 4 — per-benchmark space-utilization behaviour.
//!
//! Same methodology as Fig. 3 but for individual workloads (the paper shows
//! gcc, lbm and a random trace) to demonstrate the per-level trend holds per
//! benchmark.

use iroram_protocol::{BlockAddr, PathOram, ZAllocation};
use iroram_trace::{Bench, WorkloadGen};

use crate::fig3::Snapshot;
use crate::render::{fmt_pct, Table};
use crate::runner::par_map;
use crate::ExpOptions;

/// Utilization snapshots for one benchmark run.
pub fn collect(opts: &ExpOptions, bench: Bench) -> Vec<Snapshot> {
    let cfg = opts.funct_oram(|l, _| ZAllocation::uniform(l, 4));
    let n = cfg.data_blocks;
    let mut oram = PathOram::new(cfg);
    let total = n * opts.funct_accesses_per_block;
    let mut gen = WorkloadGen::for_bench(bench, n, opts.seed);
    let mut snaps = Vec::new();
    for q in 1..=3u64 {
        for _ in (total * (q - 1) / 3)..(total * q / 3) {
            let r = gen.next_record();
            oram.run_access(BlockAddr(r.addr), None);
        }
        snaps.push(Snapshot {
            label: format!("{}/3", q),
            per_level: oram
                .utilization_per_level()
                .into_iter()
                .map(|(u, c)| if c == 0 { 0.0 } else { u as f64 / c as f64 })
                .collect(),
        });
    }
    snaps
}

/// Builds the Fig. 4 table: final-snapshot utilization per level for gcc,
/// lbm and the random trace.
pub fn run(opts: &ExpOptions) -> Table {
    let benches = [Bench::Gcc, Bench::Lbm, Bench::RandomUniform];
    // Each benchmark's functional study is an independent cell.
    let finals: Vec<(Bench, Snapshot)> = par_map(opts.effective_jobs(), benches.to_vec(), |b| {
        (b, collect(opts, b).pop().expect("snapshots nonempty"))
    });
    let mut headers = vec!["Level".to_owned()];
    headers.extend(finals.iter().map(|(b, _)| b.name().to_owned()));
    let mut t = Table::new(
        "Fig. 4: space utilization per benchmark (final snapshot)",
        headers,
    );
    let levels = finals[0].1.per_level.len();
    for l in 0..levels {
        let mut row = vec![l.to_string()];
        row.extend(finals.iter().map(|(_, s)| fmt_pct(s.per_level[l])));
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trend_holds_per_benchmark() {
        let opts = ExpOptions::quick();
        for bench in [Bench::Gcc, Bench::RandomUniform] {
            let snaps = collect(&opts, bench);
            let last = &snaps.last().unwrap().per_level;
            let levels = last.len();
            assert!(
                last[levels - 1] > last[levels / 2],
                "{bench:?}: bottom {} vs middle {}",
                last[levels - 1],
                last[levels / 2]
            );
        }
    }
}
