//! Fig. 11 — IR-Stash + IR-Alloc on the LLC-D baseline.
//!
//! Compares the delayed-remapping baseline (LLC-D) against LLC-D with
//! IR-Alloc and IR-Stash layered on top, reporting speedup (higher is
//! better). Paper shape: ≈1.72× average, with a 1.63× standout on mcf
//! (whose tree-top hits triple under delayed remapping).

use ir_oram::Scheme;

use crate::render::{fmt_f, Table};
use crate::runner::{geomean, perf_benches, run_matrix};
use crate::ExpOptions;

/// Builds the Fig. 11 table.
pub fn run(opts: &ExpOptions) -> Table {
    let benches = perf_benches();
    let mut rows = run_matrix(opts, &[Scheme::LlcD, Scheme::IrAllocStashOnLlcD], &benches);
    let improved = rows.pop().expect("two scheme rows");
    let base = rows.pop().expect("two scheme rows");
    let mut t = Table::new(
        "Fig. 11: IR-Stash+IR-Alloc speedup over the LLC-D baseline",
        ["Benchmark", "LLC-D cycles", "IR cycles", "speedup"],
    );
    let mut speedups = Vec::new();
    for ((bench, b), i) in benches.iter().zip(&base).zip(&improved) {
        let s = i.speedup_over(b);
        speedups.push(s);
        t.row([
            bench.name().to_owned(),
            b.cycles.to_string(),
            i.cycles.to_string(),
            fmt_f(s, 3),
        ]);
    }
    t.row([
        "geomean".to_owned(),
        String::new(),
        String::new(),
        fmt_f(geomean(&speedups), 3),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_oram::{RunLimit, Simulation};
    use iroram_trace::Bench;

    #[test]
    fn ir_on_llcd_improves_on_average() {
        let opts = ExpOptions::quick();
        let limit = RunLimit::mem_ops(6_000);
        // Geomean over a small representative set (single benchmarks can
        // regress at quick scale; the paper reports the average).
        let benches = [Bench::Mcf, Bench::Gcc, Bench::Bla];
        let mut speedups = Vec::new();
        for b in benches {
            let base = Simulation::run_bench(&opts.system(Scheme::LlcD), b, limit);
            let ir =
                Simulation::run_bench(&opts.system(Scheme::IrAllocStashOnLlcD), b, limit);
            speedups.push(ir.speedup_over(&base));
        }
        let g = geomean(&speedups);
        assert!(g > 0.95, "mean speedup {g} ({speedups:?})");
    }
}
