//! ASCII-table and CSV rendering for experiment output.

use std::fmt;
use std::io::{self, Write};
use std::path::Path;

/// A rendered experiment result: title, header row, data rows.
///
/// # Examples
///
/// ```
/// use iroram_experiments::Table;
/// let mut t = Table::new("demo", ["bench", "speedup"]);
/// t.row(["gcc", "1.42"]);
/// let text = t.to_string();
/// assert!(text.contains("gcc"));
/// assert!(t.to_csv().starts_with("bench,speedup"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(title: &str, headers: I) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.into_iter().map(Into::into).collect(),
        rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(row);
    }

    /// Renders as CSV (headers + rows; commas in cells are replaced).
    pub fn to_csv(&self) -> String {
        let clean = |s: &str| s.replace(',', ";");
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| clean(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.iter().map(|c| clean(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV next to stdout output (used by the `all` harness).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_csv().as_bytes())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let sep: String = widths
            .iter()
            .map(|w| format!("+{}", "-".repeat(w + 2)))
            .collect::<String>()
            + "+";
        writeln!(f, "# {}", self.title)?;
        writeln!(f, "{sep}")?;
        let render_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for i in 0..ncol {
                write!(f, "| {:width$} ", cells[i], width = widths[i])?;
            }
            writeln!(f, "|")
        };
        render_row(f, &self.headers)?;
        writeln!(f, "{sep}")?;
        for r in &self.rows {
            render_row(f, r)?;
        }
        writeln!(f, "{sep}")
    }
}

/// Formats a float with `prec` decimals.
pub fn fmt_f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Formats a ratio as a percentage.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("title", ["a", "bench"]);
        t.row(["1", "x"]);
        t.row(["22", "yy"]);
        let s = t.to_string();
        assert!(s.contains("# title"));
        assert!(s.lines().count() >= 6);
        // All data lines have equal width.
        let widths: std::collections::HashSet<usize> =
            s.lines().skip(1).map(str::len).collect();
        assert_eq!(widths.len(), 1, "all lines aligned: {s}");
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("t", ["a,b"]);
        t.row(["1,2"]);
        let csv = t.to_csv();
        assert_eq!(csv, "a;b\n1;2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("t", ["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn float_helpers() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_pct(0.4219), "42.2%");
    }
}
