//! Fig. 15 — access-type distribution under IR-DWB.
//!
//! Shows, per benchmark, how IR-DWB repurposes dummy slots: the slot mix of
//! real paths, background evictions, converted (useful write-back) slots
//! and remaining dummies. Paper claim: the average dummy share drops from
//! 11% to 6%.

use ir_oram::Scheme;

use crate::render::{fmt_pct, Table};
use crate::runner::{perf_benches, run_matrix};
use crate::ExpOptions;

/// Per-benchmark slot shares `(name, real, bg, converted, dummy,
/// baseline_dummy)`.
pub fn collect(opts: &ExpOptions) -> Vec<(String, f64, f64, f64, f64, f64)> {
    let benches = perf_benches();
    let mut rows = run_matrix(opts, &[Scheme::Baseline, Scheme::IrDwb], &benches);
    let dwb = rows.pop().expect("two scheme rows");
    let base = rows.pop().expect("two scheme rows");
    benches
        .iter()
        .zip(base.iter().zip(dwb.iter()))
        .map(|(bench, (rb, rd))| {
            let t = rd.slots.total_slots.max(1) as f64;
            let tb = rb.slots.total_slots.max(1) as f64;
            (
                bench.name().to_owned(),
                rd.slots.real_slots as f64 / t,
                rd.slots.bg_slots as f64 / t,
                rd.slots.converted_slots as f64 / t,
                rd.slots.dummy_slots as f64 / t,
                rb.slots.dummy_slots as f64 / tb,
            )
        })
        .collect()
}

/// Builds the Fig. 15 table.
pub fn run(opts: &ExpOptions) -> Table {
    let rows = collect(opts);
    let mut t = Table::new(
        "Fig. 15: slot-type distribution under IR-DWB (vs Baseline dummy share)",
        [
            "Benchmark",
            "real",
            "bg-evict",
            "converted",
            "dummy",
            "Baseline dummy",
        ],
    );
    let n = rows.len() as f64;
    let (mut ar, mut ab, mut ac, mut ad, mut abd) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for (name, real, bg, conv, dummy, base_dummy) in rows {
        ar += real / n;
        ab += bg / n;
        ac += conv / n;
        ad += dummy / n;
        abd += base_dummy / n;
        t.row([
            name,
            fmt_pct(real),
            fmt_pct(bg),
            fmt_pct(conv),
            fmt_pct(dummy),
            fmt_pct(base_dummy),
        ]);
    }
    t.row([
        "average".to_owned(),
        fmt_pct(ar),
        fmt_pct(ab),
        fmt_pct(ac),
        fmt_pct(ad),
        fmt_pct(abd),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_oram::{RunLimit, Simulation};
    use iroram_trace::Bench;

    #[test]
    fn dwb_reduces_dummy_share() {
        let opts = ExpOptions::quick();
        let limit = RunLimit::mem_ops(6_000);
        let base = Simulation::run_bench(&opts.system(Scheme::Baseline), Bench::Gcc, limit);
        let dwb = Simulation::run_bench(&opts.system(Scheme::IrDwb), Bench::Gcc, limit);
        let share = |r: &ir_oram::SimReport| {
            r.slots.dummy_slots as f64 / r.slots.total_slots.max(1) as f64
        };
        assert!(
            share(&dwb) < share(&base),
            "dummy share {} vs {}",
            share(&dwb),
            share(&base)
        );
    }
}
