//! Shared experiment plumbing: scaling options, CLI parsing, and the
//! parallel cell engine batch runners are built on.
//!
//! # The cell model
//!
//! Every figure/table decomposes into independent *simulation cells* — one
//! `(scheme, bench, trial)` full-system run, or one functional study. Each
//! cell derives **all** of its randomness from its own configuration seed
//! (workload generation, ORAM remapping, initialization order), so cells
//! share no mutable state and their results cannot depend on scheduling.
//! [`par_map`] exploits that: it fans cells out across a worker pool and
//! returns results in input order, making any `--jobs N` run bit-identical
//! to the serial one.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use ir_oram::{CheckpointSpec, RunLimit, Scheme, SimError, SimReport, Simulation, SystemConfig};
use iroram_protocol::{OramConfig, TreeTopMode, ZAllocation};
use iroram_trace::Bench;

use crate::journal::{self, Journal};

/// Bounded deterministic retries for cells that fail with a *transient*
/// [`SimError`] under fault injection (each retry re-runs the cell with a
/// fresh fault stream via [`iroram_sim_engine::FaultConfig::attempt`]).
pub const MAX_CELL_RETRIES: u32 = 3;

/// Environment variable overriding the `--resume` journal path
/// (default `iroram-resume.jsonl` in the working directory).
pub const RESUME_PATH_ENV: &str = "IRORAM_RESUME_PATH";

/// Environment variable that aborts the process (exit 3) after this many
/// cells have been journaled — a deterministic mid-run kill for exercising
/// `--resume` in tests and CI. Only honoured when `--resume` is on.
pub const ABORT_AFTER_ENV: &str = "IRORAM_ABORT_AFTER_CELLS";

/// Environment variable overriding the snapshot directory used when
/// `checkpoint_interval` is set (default `iroram-ckpt` in the working
/// directory). One snapshot file per cell, named by the cell fingerprint.
pub const CHECKPOINT_DIR_ENV: &str = "IRORAM_CHECKPOINT_DIR";

/// Usage text shared by every experiment binary.
pub const USAGE: &str = "\
usage: <experiment> [--quick | --standard | --full] [--jobs N] [--csv DIR] [--audit]
  --quick      smoke-test scale (seconds for the whole suite)
  --standard   the scale EXPERIMENTS.md records (default)
  --full       larger runs for tighter statistics
  --jobs N     worker threads for independent simulation cells
               (0 or omitted = one per available core)
  --csv DIR    also write each table as DIR/<name>.csv
  --audit      run every cell with the audit subsystem on and abort on any
               violation (results are identical; audits observe only)
  --resume     journal finished cells to a JSONL file and skip any cell the
               journal already holds (path: $IRORAM_RESUME_PATH, default
               iroram-resume.jsonl)
  --profile    time the simulator's steady-state phases (DRAM schedule,
               stash, posmap, LLC) and print a wall-time table to stderr;
               reports stay byte-identical
  --set K=V    override one scalar SystemConfig field in every cell
               (e.g. --set t_interval=2000; repeatable; applied after the
               scheme matrix, validated at parse time)
               --set checkpoint_interval=N snapshots the full simulation
               state every N path slots ($IRORAM_CHECKPOINT_DIR, default
               iroram-ckpt/), so a killed run restarted with the same
               arguments resumes each cell mid-run and finishes with
               byte-identical output; 0 (the default) disables it";

/// Scaling knobs for the experiments.
///
/// `quick()` shrinks everything for smoke tests and CI; `default()` is the
/// scale `EXPERIMENTS.md` reports; `full()` takes minutes per figure but
/// gets closer to the paper's statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpOptions {
    /// Memory operations replayed per timed run.
    pub mem_ops: u64,
    /// Tree height for timed (performance) runs.
    pub timed_levels: usize,
    /// Tree height for functional (utilization) studies.
    pub funct_levels: usize,
    /// Accesses per block for functional studies (the paper's 4 B accesses
    /// on 64 M blocks ≈ 60× its block count; we default lower).
    pub funct_accesses_per_block: u64,
    /// Random-trace repetitions where the paper averages several traces.
    pub random_trials: usize,
    /// Base seed.
    pub seed: u64,
    /// Worker threads for independent simulation cells; `0` means one per
    /// available core. Results are bit-identical for every value.
    pub jobs: usize,
    /// Run each timed cell with the audit subsystem enabled, aborting on
    /// the first cell reporting violations.
    pub audit: bool,
    /// Journal finished cells to [`resume_path`] and answer already-journaled
    /// cells from it, so an interrupted sweep can pick up where it died.
    pub resume: bool,
    /// Enable the wall-clock phase profiler (`iroram_sim_engine::profiler`)
    /// and print a phase table to stderr after the run. Never affects any
    /// report: profiling observes wall time only.
    pub profile: bool,
    /// `--set KEY=VALUE` overrides applied to every cell's [`SystemConfig`]
    /// (after the scheme matrix, in order). Keys are validated at parse
    /// time via [`SystemConfig::set_field`].
    pub overrides: Vec<(String, String)>,
}

impl ExpOptions {
    /// Tiny scale for smoke tests (seconds for the whole suite).
    pub fn quick() -> Self {
        ExpOptions {
            mem_ops: 4_000,
            timed_levels: 12,
            funct_levels: 11,
            funct_accesses_per_block: 4,
            random_trials: 2,
            seed: 0xE0,
            jobs: 0,
            audit: false,
            resume: false,
            profile: false,
            overrides: Vec::new(),
        }
    }

    /// The scale used for the recorded results.
    pub fn standard() -> Self {
        ExpOptions {
            mem_ops: 40_000,
            timed_levels: 17,
            funct_levels: 14,
            funct_accesses_per_block: 12,
            random_trials: 5,
            seed: 0xE0,
            jobs: 0,
            audit: false,
            resume: false,
            profile: false,
            overrides: Vec::new(),
        }
    }

    /// Larger runs for tighter statistics.
    pub fn full() -> Self {
        ExpOptions {
            mem_ops: 150_000,
            timed_levels: 17,
            funct_levels: 16,
            funct_accesses_per_block: 24,
            random_trials: 13,
            seed: 0xE0,
            jobs: 0,
            audit: false,
            resume: false,
            profile: false,
            overrides: Vec::new(),
        }
    }

    /// Parses the experiment CLI arguments, exiting with [`USAGE`] on
    /// anything unrecognized.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match Self::parse(&args) {
            Ok(opts) => opts,
            Err(msg) => {
                eprintln!("error: {msg}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// Parses an argument list (`--quick`/`--standard`/`--full`, `--jobs N`,
    /// `--csv DIR`).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first unrecognized argument or
    /// malformed/missing flag value.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut opts = ExpOptions::standard();
        let mut jobs: Option<usize> = None;
        let mut audit = false;
        let mut resume = false;
        let mut profile = false;
        let mut overrides: Vec<(String, String)> = Vec::new();
        // Scratch config for validating --set keys/values at parse time, so
        // a typo fails before any cell has simulated.
        let mut probe = SystemConfig::scaled(Scheme::Baseline);
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--audit" => audit = true,
                "--resume" => resume = true,
                "--profile" => profile = true,
                "--set" => {
                    i += 1;
                    let kv = args.get(i).ok_or("--set requires KEY=VALUE")?;
                    let (k, v) = kv
                        .split_once('=')
                        .ok_or_else(|| format!("--set expects KEY=VALUE, got `{kv}`"))?;
                    probe.set_field(k, v)?;
                    overrides.push((k.to_owned(), v.to_owned()));
                }
                "--quick" => opts = ExpOptions::quick(),
                "--standard" => opts = ExpOptions::standard(),
                "--full" => opts = ExpOptions::full(),
                "--jobs" => {
                    i += 1;
                    let v = args.get(i).ok_or("--jobs requires a value")?;
                    jobs = Some(
                        v.parse::<usize>()
                            .map_err(|_| format!("--jobs expects a number, got `{v}`"))?,
                    );
                }
                s if s.starts_with("--jobs=") => {
                    let v = &s["--jobs=".len()..];
                    jobs = Some(
                        v.parse::<usize>()
                            .map_err(|_| format!("--jobs expects a number, got `{v}`"))?,
                    );
                }
                // The CSV directory itself is consumed by the binary
                // harness (`iroram_bench::csv_dir`); validate its presence
                // here so `--csv` without a directory fails loudly.
                "--csv" => {
                    i += 1;
                    if args.get(i).is_none() {
                        return Err("--csv requires a directory".to_owned());
                    }
                }
                other => return Err(format!("unrecognized argument `{other}`")),
            }
            i += 1;
        }
        if let Some(j) = jobs {
            opts.jobs = j;
        }
        opts.audit |= audit;
        opts.resume |= resume;
        opts.profile |= profile;
        opts.overrides = overrides;
        Ok(opts)
    }

    /// The worker count [`par_map`] will actually use: `jobs`, or one per
    /// available core when `jobs == 0`.
    pub fn effective_jobs(&self) -> usize {
        if self.jobs == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.jobs
        }
    }

    /// The timed-simulation system config for `scheme` at this scale.
    pub fn system(&self, scheme: Scheme) -> SystemConfig {
        let mut cfg = SystemConfig::scaled(scheme);
        cfg.seed = self.seed;
        cfg.oram.seed = self.seed;
        if self.timed_levels != cfg.oram.levels {
            let levels = self.timed_levels;
            cfg.oram.levels = levels;
            cfg.oram.data_blocks = 1u64 << (levels + 1);
            cfg.oram.zalloc = ZAllocation::uniform(levels, 4);
            let top = (levels * 2 / 5).max(1);
            cfg.oram.treetop = TreeTopMode::Dedicated { levels: top };
            // Shrink the caches with the tree so miss behaviour scales,
            // but keep them big enough that workload hot sets stay resident
            // (tiny quick-scale caches would otherwise thrash).
            cfg.hierarchy = iroram_cache::HierarchyConfig::scaled(
                (32usize << (17 - levels.min(17))).min(128),
            );
            cfg.t_interval = SystemConfig::t_for(&cfg.oram);
        }
        cfg.audit = self.audit;
        let mut cfg = cfg.with_scheme(scheme);
        for (k, v) in &self.overrides {
            // Parse-time validation makes a failure here unreachable for
            // options built by `parse`; hand-built ExpOptions fail loudly.
            // lint: allow(panic, overrides are pre-validated by parse; invalid hand-built sets must abort)
            cfg.set_field(k, v)
                .unwrap_or_else(|e| panic!("invalid override: {e}"));
        }
        cfg
    }

    /// A functional-study ORAM config at this scale: `levels` high,
    /// `2^(levels+1)` data blocks (≈52% utilization), top ~40% of levels
    /// cached like the paper's 10-of-25.
    pub fn funct_oram(&self, zalloc_of: impl Fn(usize, usize) -> ZAllocation) -> OramConfig {
        let levels = self.funct_levels;
        let top = (levels * 2 / 5).max(1);
        OramConfig {
            levels,
            data_blocks: 1u64 << (levels + 1),
            zalloc: zalloc_of(levels, top),
            treetop: TreeTopMode::Dedicated { levels: top },
            stash_capacity: 200,
            plb_sets: 16,
            plb_ways: 4,
            remap: iroram_protocol::RemapPolicy::Immediate,
            max_bg_evicts_per_access: 8,
            encrypt_payloads: false,
            integrity: true,
            seed: self.seed,
        }
    }

    /// The run limit for timed simulations.
    pub fn limit(&self) -> RunLimit {
        RunLimit::mem_ops(self.mem_ops)
    }
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions::standard()
    }
}

/// Maps `f` over `items` on up to `jobs` worker threads, returning results
/// in input order.
///
/// This is the experiment engine's only parallel primitive. It guarantees
/// the output is **identical to the serial map for any worker count**: work
/// is distributed dynamically (an atomic cursor), but each result lands in
/// its input slot, and cells must not share mutable state (every simulation
/// cell seeds its own RNGs from its config).
///
/// # Panics
///
/// Propagates the first panic raised by `f` (after joining the pool).
pub fn par_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if jobs <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(n) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // Tolerate poisoned mutexes: if another worker's closure
                // panicked, the rest of the batch still completes, and
                // `thread::scope` re-raises the original panic afterwards.
                let item = work[i]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .take()
                    .expect("each cell claimed exactly once");
                let result = f(item);
                *out[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
            });
        }
    });
    out.into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// Why a simulation cell failed, after any retries.
#[derive(Debug, Clone)]
pub struct CellError {
    /// Which cell: `"<scheme>/<bench>"`.
    pub cell: String,
    /// Human-readable failure description (the final attempt's).
    pub message: String,
    /// Whether the final error was a transient [`SimError`] (retries were
    /// exhausted) rather than a hard failure.
    pub transient: bool,
    /// Attempts consumed (1 = failed on the first try with no retry).
    pub attempts: u32,
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cell {} failed after {} attempt(s): {}",
            self.cell, self.attempts, self.message
        )
    }
}

/// One cell's result: the report, or a classified failure.
pub type CellOutcome = Result<SimReport, CellError>;

/// Runs one timed cell, catching panics and retrying transient
/// [`SimError`]s deterministically.
///
/// Each retry bumps [`iroram_sim_engine::FaultConfig::attempt`], which is
/// mixed into the fault plan's seed: the cell re-runs with a *fresh fault
/// stream* but everything else identical, which is the sound recovery for
/// modelled transient physical conditions (Path ORAM treats stash overflow
/// as probabilistic). With no active fault plan a retry would replay the
/// identical failure, so the cell fails immediately instead.
pub fn run_cell_checked(cfg: &SystemConfig, bench: Bench, limit: RunLimit) -> CellOutcome {
    run_cell_checked_at(cfg, bench, limit, None)
}

/// [`run_cell_checked`] with optional crash-consistent checkpointing: with
/// `Some(spec)` and `cfg.checkpoint_interval > 0` the cell snapshots its
/// state to `spec.path` and resumes from an existing matching snapshot. A
/// failed attempt deletes the snapshot before any retry — a retry models a
/// fresh fault stream, so resuming it from the failed attempt's mid-run
/// state would be unsound.
pub fn run_cell_checked_at(
    cfg: &SystemConfig,
    bench: Bench,
    limit: RunLimit,
    ckpt: Option<&CheckpointSpec>,
) -> CellOutcome {
    let cell = format!("{}/{}", cfg.scheme.name(), bench.name());
    let mut attempt: u32 = 0;
    loop {
        let mut acfg = cfg.clone();
        acfg.faults.attempt = cfg.faults.attempt + attempt;
        let run = catch_unwind(AssertUnwindSafe(|| try_run_cell(&acfg, bench, limit, ckpt)));
        let (message, transient) = match run {
            Ok(Ok(report)) => {
                // Cell done, report in hand: the last mid-run snapshot has
                // nothing left to resume.
                if let Some(spec) = ckpt {
                    let _ = std::fs::remove_file(&spec.path);
                }
                return Ok(report);
            }
            Ok(Err(e)) => (e.to_string(), e.is_transient()),
            Err(cause) => (panic_message(&cause), false),
        };
        if let Some(spec) = ckpt {
            let _ = std::fs::remove_file(&spec.path);
        }
        let retryable = transient && cfg.faults.is_active() && attempt < MAX_CELL_RETRIES;
        if !retryable {
            return Err(CellError {
                cell,
                message,
                transient,
                attempts: attempt + 1,
            });
        }
        attempt += 1;
    }
}

fn panic_message(cause: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = cause.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = cause.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_owned()
    }
}

fn try_run_cell(
    cfg: &SystemConfig,
    bench: Bench,
    limit: RunLimit,
    ckpt: Option<&CheckpointSpec>,
) -> Result<SimReport, SimError> {
    let gen = iroram_trace::WorkloadGen::for_bench(bench, cfg.data_blocks(), cfg.seed);
    let (report, audit) =
        Simulation::try_run_checkpointed(cfg, gen, limit, bench.name(), ckpt)?;
    if !cfg.audit {
        return Ok(report);
    }
    let audit = audit.expect("audit enabled in config");
    assert!(
        audit.is_clean(),
        "audit: {} violation(s) in {} on {} (first: {})",
        audit.violations,
        cfg.scheme.name(),
        bench.name(),
        audit.samples.first().map_or("<none>", String::as_str),
    );
    Ok(report)
}

/// The `--resume` journal path: [`RESUME_PATH_ENV`] if set, else
/// `iroram-resume.jsonl` in the working directory.
pub fn resume_path() -> PathBuf {
    // lint: allow(determinism, RESUME_PATH_ENV is the documented resume-journal knob; it picks a file path and cannot affect reported numbers)
    std::env::var_os(RESUME_PATH_ENV)
        .map_or_else(|| PathBuf::from("iroram-resume.jsonl"), PathBuf::from)
}

/// Opens the resume journal when `opts.resume` is set (announcing how many
/// cells it already holds), or returns `None`.
fn open_journal(opts: &ExpOptions) -> Option<Journal> {
    if !opts.resume {
        return None;
    }
    let path = resume_path();
    match Journal::open(&path) {
        Ok(j) => {
            if !j.is_empty() {
                eprintln!(
                    "resume: {} finished cell(s) in {}",
                    j.len(),
                    j.path().display()
                );
            }
            Some(j)
        }
        Err(e) => {
            eprintln!("resume: cannot open {}: {e}; journaling disabled", path.display());
            None
        }
    }
}

/// The snapshot directory for checkpointed cells: [`CHECKPOINT_DIR_ENV`]
/// if set, else `iroram-ckpt` in the working directory.
pub fn checkpoint_dir() -> PathBuf {
    // lint: allow(determinism, CHECKPOINT_DIR_ENV is the documented snapshot-directory knob; it picks a file path and cannot affect reported numbers)
    std::env::var_os(CHECKPOINT_DIR_ENV)
        .map_or_else(|| PathBuf::from("iroram-ckpt"), PathBuf::from)
}

/// The checkpoint spec for one cell, or `None` when the config disables
/// checkpointing (`checkpoint_interval == 0`) or the snapshot directory
/// cannot be created. The snapshot file is named by the cell fingerprint,
/// so concurrent cells never collide and a restart finds its own snapshot.
pub fn checkpoint_spec(cfg: &SystemConfig, fp: u64) -> Option<CheckpointSpec> {
    if cfg.checkpoint_interval == 0 {
        return None;
    }
    let dir = checkpoint_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!(
            "checkpoint: cannot create {}: {e}; checkpointing disabled",
            dir.display()
        );
        return None;
    }
    Some(CheckpointSpec {
        path: dir.join(format!("{fp:016x}.snap")),
        fingerprint: fp,
    })
}

/// The `IRORAM_ABORT_AFTER_CELLS` budget, if set to a number.
fn abort_budget() -> Option<usize> {
    // lint: allow(determinism, ABORT_AFTER_ENV is the documented CI kill switch; it aborts the process and never changes a completed run's output)
    std::env::var(ABORT_AFTER_ENV).ok()?.parse().ok()
}

/// The benchmark list used in the performance figures: Table II's thirteen
/// plus the `mix` bar.
pub fn perf_benches() -> Vec<Bench> {
    let mut v = iroram_trace::ALL_BENCHES.to_vec();
    v.push(Bench::Mix);
    v
}

/// Runs one timed cell. When `cfg.audit` is set the cell runs with the
/// audit subsystem on and **panics** on any violation (so `--audit` runs
/// abort loudly instead of publishing figures from a corrupted simulation);
/// the report itself is identical either way.
///
/// # Panics
///
/// Panics when auditing is enabled and the run reports violations.
pub fn run_cell(cfg: &SystemConfig, bench: Bench, limit: RunLimit) -> SimReport {
    if !cfg.audit {
        return Simulation::run_bench(cfg, bench, limit);
    }
    let (report, audit) = Simulation::run_bench_audited(cfg, bench, limit);
    let audit = audit.expect("audit enabled in config");
    assert!(
        audit.is_clean(),
        "audit: {} violation(s) in {} on {} (first: {})",
        audit.violations,
        cfg.scheme.name(),
        bench.name(),
        audit.samples.first().map_or("<none>", String::as_str),
    );
    report
}

/// Runs one scheme across `benches`, fanning the per-bench cells out over
/// [`ExpOptions::effective_jobs`] workers (journaled when `--resume` is on).
pub fn run_scheme(opts: &ExpOptions, scheme: Scheme, benches: &[Bench]) -> Vec<SimReport> {
    run_matrix(opts, &[scheme], benches).remove(0)
}

/// Runs the full `schemes × benches` product as one parallel batch,
/// returning reports indexed `[scheme][bench]`.
///
/// Prefer this over repeated [`run_scheme`] calls in figures that compare
/// schemes: the whole matrix becomes one pool of cells, so workers stay
/// busy across scheme boundaries.
///
/// With `--resume`, each finished cell is appended to the journal and any
/// cell the journal already holds is answered from it without simulating,
/// so a sweep killed mid-run and restarted produces output byte-identical
/// to an uninterrupted run.
///
/// # Panics
///
/// Panics with the cell's classified failure if a cell still fails after
/// its bounded retries (batch figures have no partial-output mode).
pub fn run_matrix(
    opts: &ExpOptions,
    schemes: &[Scheme],
    benches: &[Bench],
) -> Vec<Vec<SimReport>> {
    // Batch figures have no partial-output mode: a cell that failed its
    // bounded retries must abort the whole figure, not publish a hole.
    // lint: allow(panic, documented batch-abort contract; the typed path is try_run_matrix)
    try_run_matrix(opts, schemes, benches).unwrap_or_else(|e| panic!("{e}"))
}

/// The fallible form of [`run_matrix`]: identical engine (same journal,
/// same fan-out, same abort budget), but a cell that still fails after its
/// bounded retries surfaces as the first [`CellError`] in input order
/// instead of panicking — for harnesses that want to report a failed sweep
/// without unwinding.
///
/// # Errors
///
/// Returns the first failing cell's [`CellError`] (input order, which is
/// deterministic for any `--jobs N`).
pub fn try_run_matrix(
    opts: &ExpOptions,
    schemes: &[Scheme],
    benches: &[Bench],
) -> Result<Vec<Vec<SimReport>>, CellError> {
    let configs: Vec<SystemConfig> = schemes.iter().map(|&s| opts.system(s)).collect();
    let cells: Vec<(usize, Bench)> = (0..schemes.len())
        .flat_map(|s| benches.iter().map(move |&b| (s, b)))
        .collect();
    let journal = open_journal(opts);
    let abort_after = journal.as_ref().and_then(|_| abort_budget());
    let journaled = AtomicUsize::new(0);
    let outcomes = par_map(opts.effective_jobs(), cells, |(s, b)| {
        let cfg = &configs[s];
        let fp = journal::fingerprint(cfg, b, opts.limit());
        if let Some(j) = &journal {
            if let Some(report) = j.lookup(fp) {
                return Ok(report);
            }
        }
        let ckpt = checkpoint_spec(cfg, fp);
        let report = run_cell_checked_at(cfg, b, opts.limit(), ckpt.as_ref())?;
        if let Some(j) = &journal {
            j.record(fp, &report);
            let n = journaled.fetch_add(1, Ordering::SeqCst) + 1;
            if abort_after.is_some_and(|budget| n >= budget) {
                eprintln!("aborting after {n} journaled cell(s) ({ABORT_AFTER_ENV})");
                std::process::exit(3);
            }
        }
        Ok(report)
    });
    let mut reports: Vec<SimReport> = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        reports.push(outcome?);
    }
    // The matrix completed: fold duplicate/stale journal lines down to one
    // line per cell. Failure keeps the (correct, append-only) journal.
    if let Some(j) = &journal {
        if let Err(e) = j.compact() {
            eprintln!("resume: journal compaction failed: {e}; journal kept as-is");
        }
    }
    let mut rows: Vec<Vec<SimReport>> = Vec::with_capacity(schemes.len());
    let mut it = reports.into_iter();
    for _ in 0..schemes.len() {
        rows.push(it.by_ref().take(benches.len()).collect());
    }
    Ok(rows)
}

/// Geometric mean of positive values (0 for an empty slice).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scales_are_ordered() {
        let q = ExpOptions::quick();
        let s = ExpOptions::standard();
        let f = ExpOptions::full();
        assert!(q.mem_ops < s.mem_ops && s.mem_ops < f.mem_ops);
        assert!(q.funct_levels <= s.funct_levels);
        assert!(s.random_trials < f.random_trials);
    }

    #[test]
    fn funct_config_is_valid() {
        let opts = ExpOptions::quick();
        let cfg = opts.funct_oram(|l, _| ZAllocation::uniform(l, 4));
        cfg.validate();
    }

    #[test]
    fn perf_benches_include_mix() {
        let b = perf_benches();
        assert_eq!(b.len(), 14);
        assert_eq!(*b.last().unwrap(), Bench::Mix);
    }

    #[test]
    fn parse_scales_and_jobs() {
        assert_eq!(ExpOptions::parse(&args(&[])).unwrap(), ExpOptions::standard());
        assert_eq!(
            ExpOptions::parse(&args(&["--quick"])).unwrap(),
            ExpOptions::quick()
        );
        assert_eq!(
            ExpOptions::parse(&args(&["--full"])).unwrap(),
            ExpOptions::full()
        );
        let o = ExpOptions::parse(&args(&["--quick", "--jobs", "4"])).unwrap();
        assert_eq!(o.jobs, 4);
        assert_eq!(o.mem_ops, ExpOptions::quick().mem_ops);
        let o = ExpOptions::parse(&args(&["--jobs=8"])).unwrap();
        assert_eq!(o.jobs, 8);
        // Scale flags keep a previously parsed --jobs.
        let o = ExpOptions::parse(&args(&["--jobs", "3", "--quick"])).unwrap();
        assert_eq!((o.jobs, o.mem_ops), (3, ExpOptions::quick().mem_ops));
    }

    #[test]
    fn parse_audit_flag() {
        assert!(!ExpOptions::parse(&args(&[])).unwrap().audit);
        let o = ExpOptions::parse(&args(&["--audit"])).unwrap();
        assert!(o.audit);
        // Scale flags keep a previously parsed --audit.
        let o = ExpOptions::parse(&args(&["--audit", "--quick"])).unwrap();
        assert!(o.audit && o.mem_ops == ExpOptions::quick().mem_ops);
        // ...and it propagates into the cell configs.
        assert!(o.system(Scheme::Baseline).audit);
        assert!(!ExpOptions::quick().system(Scheme::IrOram).audit);
    }

    #[test]
    fn parse_profile_flag() {
        assert!(!ExpOptions::parse(&args(&[])).unwrap().profile);
        let o = ExpOptions::parse(&args(&["--profile"])).unwrap();
        assert!(o.profile);
        // Scale flags keep a previously parsed --profile.
        let o = ExpOptions::parse(&args(&["--profile", "--quick"])).unwrap();
        assert!(o.profile && o.mem_ops == ExpOptions::quick().mem_ops);
        // Profiling never reaches the simulated configuration: the cell
        // configs are identical with it on or off.
        let on = o.system(Scheme::Baseline);
        let off = ExpOptions::quick().system(Scheme::Baseline);
        assert_eq!(format!("{on:?}"), format!("{off:?}"));
    }

    #[test]
    fn parse_set_overrides() {
        let o = ExpOptions::parse(&args(&["--set", "t_interval=2000", "--set", "seed=7"])).unwrap();
        assert_eq!(
            o.overrides,
            vec![
                ("t_interval".to_owned(), "2000".to_owned()),
                ("seed".to_owned(), "7".to_owned())
            ]
        );
        let cfg = o.system(Scheme::Baseline);
        assert_eq!((cfg.t_interval, cfg.seed), (2000, 7));
        // Scale flags keep previously parsed --set overrides.
        let o = ExpOptions::parse(&args(&["--set", "ipc=2", "--quick"])).unwrap();
        assert_eq!(o.system(Scheme::IrOram).ipc, 2);
        // Bad key, bad value, and missing `=` all fail at parse time.
        assert!(ExpOptions::parse(&args(&["--set", "no_such=1"])).is_err());
        assert!(ExpOptions::parse(&args(&["--set", "seed=banana"])).is_err());
        assert!(ExpOptions::parse(&args(&["--set", "seed"])).is_err());
        assert!(ExpOptions::parse(&args(&["--set"])).is_err());
    }

    #[test]
    fn parse_rejects_unknown_and_malformed() {
        assert!(ExpOptions::parse(&args(&["--turbo"])).is_err());
        assert!(ExpOptions::parse(&args(&["quick"])).is_err());
        assert!(ExpOptions::parse(&args(&["--jobs"])).is_err());
        assert!(ExpOptions::parse(&args(&["--jobs", "many"])).is_err());
        assert!(ExpOptions::parse(&args(&["--csv"])).is_err());
        assert!(ExpOptions::parse(&args(&["--csv", "out"])).is_ok());
    }

    #[test]
    fn effective_jobs_resolves_auto() {
        let mut o = ExpOptions::quick();
        o.jobs = 0;
        assert!(o.effective_jobs() >= 1);
        o.jobs = 7;
        assert_eq!(o.effective_jobs(), 7);
    }

    #[test]
    fn par_map_preserves_order_for_any_worker_count() {
        let items: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let got = par_map(jobs, items.clone(), |x| x * x);
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u64> = Vec::new();
        assert!(par_map(4, empty, |x: u64| x).is_empty());
        assert_eq!(par_map(4, vec![9u64], |x| x + 1), vec![10]);
    }
}
