//! Shared experiment plumbing: scaling options and batch runners.

use ir_oram::{RunLimit, Scheme, SimReport, Simulation, SystemConfig};
use iroram_protocol::{OramConfig, TreeTopMode, ZAllocation};
use iroram_trace::Bench;

/// Scaling knobs for the experiments.
///
/// `quick()` shrinks everything for smoke tests and CI; `default()` is the
/// scale `EXPERIMENTS.md` reports; `full()` takes minutes per figure but
/// gets closer to the paper's statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpOptions {
    /// Memory operations replayed per timed run.
    pub mem_ops: u64,
    /// Tree height for timed (performance) runs.
    pub timed_levels: usize,
    /// Tree height for functional (utilization) studies.
    pub funct_levels: usize,
    /// Accesses per block for functional studies (the paper's 4 B accesses
    /// on 64 M blocks ≈ 60× its block count; we default lower).
    pub funct_accesses_per_block: u64,
    /// Random-trace repetitions where the paper averages several traces.
    pub random_trials: usize,
    /// Base seed.
    pub seed: u64,
}

impl ExpOptions {
    /// Tiny scale for smoke tests (seconds for the whole suite).
    pub fn quick() -> Self {
        ExpOptions {
            mem_ops: 4_000,
            timed_levels: 12,
            funct_levels: 11,
            funct_accesses_per_block: 4,
            random_trials: 2,
            seed: 0xE0,
        }
    }

    /// The scale used for the recorded results.
    pub fn standard() -> Self {
        ExpOptions {
            mem_ops: 40_000,
            timed_levels: 17,
            funct_levels: 14,
            funct_accesses_per_block: 12,
            random_trials: 5,
            seed: 0xE0,
        }
    }

    /// Larger runs for tighter statistics.
    pub fn full() -> Self {
        ExpOptions {
            mem_ops: 150_000,
            timed_levels: 17,
            funct_levels: 16,
            funct_accesses_per_block: 24,
            random_trials: 13,
            seed: 0xE0,
        }
    }

    /// Parses `--quick` / `--full` style CLI arguments (anything else keeps
    /// the standard scale).
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--quick") {
            ExpOptions::quick()
        } else if args.iter().any(|a| a == "--full") {
            ExpOptions::full()
        } else {
            ExpOptions::standard()
        }
    }

    /// The timed-simulation system config for `scheme` at this scale.
    pub fn system(&self, scheme: Scheme) -> SystemConfig {
        let mut cfg = SystemConfig::scaled(scheme);
        cfg.seed = self.seed;
        cfg.oram.seed = self.seed;
        if self.timed_levels != cfg.oram.levels {
            let levels = self.timed_levels;
            cfg.oram.levels = levels;
            cfg.oram.data_blocks = 1u64 << (levels + 1);
            cfg.oram.zalloc = ZAllocation::uniform(levels, 4);
            let top = (levels * 2 / 5).max(1);
            cfg.oram.treetop = TreeTopMode::Dedicated { levels: top };
            // Shrink the caches with the tree so miss behaviour scales,
            // but keep them big enough that workload hot sets stay resident
            // (tiny quick-scale caches would otherwise thrash).
            cfg.hierarchy = iroram_cache::HierarchyConfig::scaled(
                (32usize << (17 - levels.min(17))).min(128),
            );
            cfg.t_interval = SystemConfig::t_for(&cfg.oram);
        }
        cfg.with_scheme(scheme)
    }

    /// A functional-study ORAM config at this scale: `levels` high,
    /// `2^(levels+1)` data blocks (≈52% utilization), top ~40% of levels
    /// cached like the paper's 10-of-25.
    pub fn funct_oram(&self, zalloc_of: impl Fn(usize, usize) -> ZAllocation) -> OramConfig {
        let levels = self.funct_levels;
        let top = (levels * 2 / 5).max(1);
        OramConfig {
            levels,
            data_blocks: 1u64 << (levels + 1),
            zalloc: zalloc_of(levels, top),
            treetop: TreeTopMode::Dedicated { levels: top },
            stash_capacity: 200,
            plb_sets: 16,
            plb_ways: 4,
            remap: iroram_protocol::RemapPolicy::Immediate,
            max_bg_evicts_per_access: 8,
            encrypt_payloads: false,
            seed: self.seed,
        }
    }

    /// The run limit for timed simulations.
    pub fn limit(&self) -> RunLimit {
        RunLimit::mem_ops(self.mem_ops)
    }
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions::standard()
    }
}

/// The benchmark list used in the performance figures: Table II's thirteen
/// plus the `mix` bar.
pub fn perf_benches() -> Vec<Bench> {
    let mut v = iroram_trace::ALL_BENCHES.to_vec();
    v.push(Bench::Mix);
    v
}

/// Runs one scheme across `benches`.
pub fn run_scheme(opts: &ExpOptions, scheme: Scheme, benches: &[Bench]) -> Vec<SimReport> {
    let cfg = opts.system(scheme);
    benches
        .iter()
        .map(|&b| Simulation::run_bench(&cfg, b, opts.limit()))
        .collect()
}

/// Geometric mean of positive values (0 for an empty slice).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scales_are_ordered() {
        let q = ExpOptions::quick();
        let s = ExpOptions::standard();
        let f = ExpOptions::full();
        assert!(q.mem_ops < s.mem_ops && s.mem_ops < f.mem_ops);
        assert!(q.funct_levels <= s.funct_levels);
        assert!(s.random_trials < f.random_trials);
    }

    #[test]
    fn funct_config_is_valid() {
        let opts = ExpOptions::quick();
        let cfg = opts.funct_oram(|l, _| ZAllocation::uniform(l, 4));
        cfg.validate();
    }

    #[test]
    fn perf_benches_include_mix() {
        let b = perf_benches();
        assert_eq!(b.len(), 14);
        assert_eq!(*b.last().unwrap(), Bench::Mix);
    }
}
