//! Table I — system configuration.
//!
//! Prints the simulated system's configuration next to the paper's values,
//! making the scaling factors explicit.

use ir_oram::Scheme;

use crate::render::Table;
use crate::ExpOptions;

/// Paper Table I values for side-by-side comparison.
fn paper_value(key: &str) -> &'static str {
    match key {
        k if k.contains("ROB") => "4 / 128",
        k if k.contains("Channels") => "4",
        k if k.contains("DRAM") => "800 MHz",
        k if k.contains("L1") => "2-way 256KB",
        k if k.contains("LLC") => "8-way 2MB",
        k if k.contains("Protected") => "8GB / 4GB",
        k if k.contains("levels") => "25",
        k if k.contains("Bucket") => "4 / 64B",
        k if k.contains("Stash") => "200",
        k if k.contains("tree top") => "256KB (4K entries)",
        k if k.contains("interval") => "1000 cycles",
        _ => "-",
    }
}

/// Builds the Table I reproduction.
pub fn run(opts: &ExpOptions) -> Table {
    let cfg = opts.system(Scheme::Baseline);
    let mut t = Table::new(
        "Table I: system configuration (this reproduction vs. paper)",
        ["Parameter", "This repo (scaled)", "Paper"],
    );
    for (k, v) in cfg.table1() {
        let p = paper_value(&k).to_owned();
        t.row([k, v, p]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_all_rows_with_paper_column() {
        let t = run(&ExpOptions::quick());
        assert!(t.rows.len() >= 10);
        assert!(t.rows.iter().all(|r| r.len() == 3));
        assert!(t
            .rows
            .iter()
            .any(|r| r[0].contains("Stash") && r[2] == "200"));
    }
}
