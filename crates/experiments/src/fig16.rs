//! Fig. 16 — IR-Alloc scalability across protected-space sizes.
//!
//! The paper evaluates IR-Alloc against Baseline at 1/2/4 GB of user data
//! (trees of 24/25/26 levels) on random traces — the worst case, which
//! "sets the performance lower bound while exhibiting high probability in
//! background eviction" — averaging 13 traces. Here the three points are
//! scaled tree heights; the speedup should stay stable (the paper's bars
//! are flat, ≈1.6×) with near-zero variance across traces.

use ir_oram::{Scheme, Simulation};
use iroram_sim_engine::stats::RunningStat;
use iroram_trace::Bench;

use crate::render::{fmt_f, Table};
use crate::runner::par_map;
use crate::ExpOptions;

/// One scaling point: `(levels, mean speedup, stddev)`.
pub fn collect(opts: &ExpOptions) -> Vec<(usize, f64, f64)> {
    let base_levels = opts.system(Scheme::Baseline).oram.levels;
    let sizes = [base_levels - 2, base_levels - 1, base_levels];
    // Every (levels, trial) pair is one independent cell; the per-trial
    // seed makes each cell self-contained, so the whole grid parallelizes.
    let cells: Vec<(usize, u64)> = sizes
        .iter()
        .flat_map(|&levels| (0..opts.random_trials).map(move |t| (levels, t as u64)))
        .collect();
    let speedups = par_map(opts.effective_jobs(), cells, |(levels, trial)| {
        let seed = opts.seed ^ ((trial + 1) << 8);
        let make = |scheme| {
            let mut cfg = opts.system(scheme);
            cfg.oram.levels = levels;
            cfg.oram.data_blocks = 1 << (levels + 1);
            cfg.oram.zalloc = iroram_protocol::ZAllocation::uniform(levels, 4);
            let top = (levels * 2 / 5).max(1);
            cfg.oram.treetop = iroram_protocol::TreeTopMode::Dedicated { levels: top };
            cfg.t_interval = ir_oram::SystemConfig::t_for(&cfg.oram);
            cfg.seed = seed;
            cfg.oram.seed = seed;
            cfg.with_scheme(scheme)
        };
        let limit = opts.limit();
        let base = Simulation::run_bench(&make(Scheme::Baseline), Bench::RandomUniform, limit);
        let ir = Simulation::run_bench(&make(Scheme::IrAlloc), Bench::RandomUniform, limit);
        ir.speedup_over(&base)
    });
    sizes
        .iter()
        .zip(speedups.chunks(opts.random_trials.max(1)))
        .map(|(&levels, chunk)| {
            let mut stat = RunningStat::new();
            for &s in chunk {
                stat.push(s);
            }
            (levels, stat.mean(), stat.stddev())
        })
        .collect()
}

/// Builds the Fig. 16 table.
pub fn run(opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Fig. 16: IR-Alloc speedup over Baseline vs protected-space size (random traces)",
        ["Tree levels", "user-data blocks", "speedup", "stddev"],
    );
    for (levels, mean, sd) in collect(opts) {
        t.row([
            levels.to_string(),
            (1u64 << (levels + 1)).to_string(),
            fmt_f(mean, 3),
            fmt_f(sd, 4),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_is_stable_across_sizes() {
        let mut opts = ExpOptions::quick();
        opts.random_trials = 1;
        opts.mem_ops = 2_000;
        let points = collect(&opts);
        assert_eq!(points.len(), 3);
        for (levels, mean, _) in &points {
            assert!(
                *mean > 0.9,
                "IR-Alloc at L={levels} should not slow down ({mean})"
            );
        }
    }
}
