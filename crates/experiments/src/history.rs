//! Append-only benchmark history (`BENCH_history.jsonl`) plumbing shared
//! by the perf harness binaries (`perfstat`, `kv_bench`).
//!
//! Each line of the history file is one hand-rolled JSON object describing
//! one recorded run. Two *bench families* write to the same file: the
//! simulator-throughput harness (`"bench": "sim"`) and the KV serving-layer
//! harness (`"bench": "kv"`). Ratchet baselines must never cross families —
//! a KV run and a sim run are not rate-comparable even when their scale and
//! job-count labels collide — so every lookup is keyed by a [`HistoryKey`]
//! that includes the family. Lines written before the `bench` field existed
//! are all simulator runs and parse as the `"sim"` family.
//!
//! The scanners here are deliberately not a JSON parser: the writers in
//! this repository are the only producers, every value is flat, and a
//! field scan keeps the vendored-serde shim out of the loop.

/// One ratchet-comparability key: entries with equal keys measure the same
/// workload and may be rate-compared; everything else is a different
/// lineage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryKey {
    /// Bench family: `"sim"` (perfstat) or `"kv"` (kv_bench).
    pub bench: String,
    /// Scale label (`"quick"`, `"standard"`, `"full"`, `"custom"`).
    pub scale: String,
    /// Worker count the run used.
    pub jobs: u64,
    /// Fold over the full workload configuration: same fingerprint = same
    /// simulated workload, so a rate delta is attributable to the code.
    pub cfg_fp: u64,
}

impl HistoryKey {
    /// The `cfg-fp <hex>` tag embedded in an entry's `note` field.
    pub fn fp_tag(&self) -> String {
        format!("cfg-fp {:016x}", self.cfg_fp)
    }

    /// Whether one history line belongs to this key's lineage.
    pub fn matches(&self, line: &str) -> bool {
        // Missing `bench` field = legacy entry, written by perfstat before
        // the field existed: simulator family by construction.
        let bench = field_str(line, "bench").unwrap_or("sim");
        bench == self.bench
            && field_str(line, "scale") == Some(self.scale.as_str())
            && field_f64(line, "jobs") == Some(self.jobs as f64)
            && field_str(line, "note").is_some_and(|n| n.contains(&self.fp_tag()))
    }

    /// The most recent recorded rate of this lineage: scans `history`
    /// newest-line-first for the first entry that [`Self::matches`] and
    /// pulls `rate_field` out of it.
    pub fn latest_rate(&self, history: &str, rate_field: &str) -> Option<f64> {
        history
            .lines()
            .rev()
            .find(|l| self.matches(l))
            .and_then(|l| field_f64(l, rate_field))
    }
}

/// Pulls a numeric field out of one hand-rolled history line.
pub fn field_f64(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let rest = line[line.find(&pat)? + pat.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Pulls a string field out of one hand-rolled history line.
pub fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let rest = &line[line.find(&pat)? + pat.len()..];
    Some(&rest[..rest.find('"')?])
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIM_LINE: &str = "{\"epoch_secs\": 1754600000, \"bench\": \"sim\", \
        \"scale\": \"quick\", \"jobs\": 1, \"total_mem_ops\": 448000, \
        \"total_wall_seconds\": 0.7, \"total_mem_ops_per_sec\": 640000.0, \
        \"note\": \"commit abc, cfg-fp 00000000000000ff\"}";
    const KV_LINE: &str = "{\"epoch_secs\": 1754600001, \"bench\": \"kv\", \
        \"scale\": \"quick\", \"jobs\": 1, \"kv_ops\": 65536, \
        \"kv_ops_per_sec\": 9000.0, \
        \"note\": \"commit abc, cfg-fp 00000000000000ff\"}";
    const LEGACY_LINE: &str = "{\"epoch_secs\": 1754600002, \
        \"scale\": \"quick\", \"jobs\": 1, \"total_mem_ops\": 448000, \
        \"total_wall_seconds\": 0.7, \"total_mem_ops_per_sec\": 620000.0, \
        \"note\": \"commit abc, cfg-fp 00000000000000ff\"}";

    fn key(bench: &str) -> HistoryKey {
        HistoryKey {
            bench: bench.to_owned(),
            scale: "quick".to_owned(),
            jobs: 1,
            cfg_fp: 0xff,
        }
    }

    #[test]
    fn families_cannot_cross_match() {
        // Same scale, same jobs, same cfg-fp — only the family differs.
        // The sim key must reject the kv line and vice versa, else one
        // bench's ratchet would gate against the other's rates.
        assert!(key("sim").matches(SIM_LINE));
        assert!(!key("sim").matches(KV_LINE));
        assert!(key("kv").matches(KV_LINE));
        assert!(!key("kv").matches(SIM_LINE));
    }

    #[test]
    fn legacy_lines_without_bench_field_are_sim() {
        assert!(key("sim").matches(LEGACY_LINE));
        assert!(!key("kv").matches(LEGACY_LINE));
    }

    #[test]
    fn latest_rate_scans_newest_first_within_family() {
        let hist = format!("{LEGACY_LINE}\n{KV_LINE}\n{SIM_LINE}\n");
        assert_eq!(
            key("sim").latest_rate(&hist, "total_mem_ops_per_sec"),
            Some(640000.0)
        );
        assert_eq!(key("kv").latest_rate(&hist, "kv_ops_per_sec"), Some(9000.0));
        // A family with no entries yields no baseline, not a cross-match.
        let kv_only = format!("{KV_LINE}\n");
        assert_eq!(
            key("sim").latest_rate(&kv_only, "total_mem_ops_per_sec"),
            None
        );
    }

    #[test]
    fn mismatched_scale_jobs_or_fp_breaks_the_lineage() {
        let mut k = key("sim");
        k.scale = "full".to_owned();
        assert!(!k.matches(SIM_LINE));
        let mut k = key("sim");
        k.jobs = 4;
        assert!(!k.matches(SIM_LINE));
        let mut k = key("sim");
        k.cfg_fp = 0xfe;
        assert!(!k.matches(SIM_LINE));
    }

    #[test]
    fn field_scanners_parse_writer_lines() {
        assert_eq!(field_str(SIM_LINE, "scale"), Some("quick"));
        assert_eq!(field_f64(SIM_LINE, "jobs"), Some(1.0));
        assert_eq!(field_f64(SIM_LINE, "total_mem_ops_per_sec"), Some(640000.0));
        assert_eq!(field_f64(SIM_LINE, "absent"), None);
        assert_eq!(field_str(KV_LINE, "bench"), Some("kv"));
    }
}
