//! Fig. 12 — IR-Alloc configuration study.
//!
//! Compares the four IR-Alloc `Z` settings of Section VI-B, reporting
//! runtime normalized to Baseline and the share of slots spent on
//! background eviction (the shaded bar portion in the paper). Paper shape:
//! more aggressive allocations (shorter PL) run faster but spend more time
//! on background eviction.

use ir_oram::Scheme;
use iroram_protocol::{AllocPreset, ZAllocation};
use iroram_trace::Bench;

use crate::render::{fmt_f, fmt_pct, Table};
use crate::runner::{geomean, par_map, perf_benches};
use crate::ExpOptions;

/// The four configurations of the study.
pub const CONFIGS: [(&str, AllocPreset); 4] = [
    ("IR-Alloc1", AllocPreset::IrAlloc1),
    ("IR-Alloc2", AllocPreset::IrAlloc2),
    ("IR-Alloc3", AllocPreset::IrAlloc3),
    ("IR-Alloc4", AllocPreset::IrAlloc4),
];

/// Per-configuration outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocOutcome {
    /// Configuration name.
    pub name: String,
    /// Per-path memory blocks (PL).
    pub path_len: u64,
    /// Geomean runtime normalized to Baseline.
    pub normalized: f64,
    /// Mean fraction of slots carrying background evictions.
    pub bg_share: f64,
}

/// Runs the study over a few representative benchmarks (the full set at
/// `--full` scale).
pub fn collect(opts: &ExpOptions) -> Vec<AllocOutcome> {
    let benches: Vec<Bench> = if opts.random_trials >= 13 {
        perf_benches()
    } else {
        vec![Bench::Mcf, Bench::Lbm, Bench::Xz, Bench::Gcc]
    };
    // One parallel batch over every (config, bench) cell, Baseline
    // included: row 0 is Baseline, rows 1..=4 the IR-Alloc presets.
    let mut configs = vec![opts.system(Scheme::Baseline)];
    for &(_, preset) in &CONFIGS {
        let mut cfg = opts.system(Scheme::IrAlloc);
        let top = cfg.oram.treetop.cached_levels();
        cfg.oram.zalloc = ZAllocation::preset(preset, cfg.oram.levels, top);
        configs.push(cfg);
    }
    let cells: Vec<(usize, Bench)> = (0..configs.len())
        .flat_map(|c| benches.iter().map(move |&b| (c, b)))
        .collect();
    let reports = par_map(opts.effective_jobs(), cells, |(c, b)| {
        ir_oram::Simulation::run_bench(&configs[c], b, opts.limit())
    });
    let rows: Vec<&[ir_oram::SimReport]> = reports.chunks(benches.len()).collect();
    let base: Vec<u64> = rows[0].iter().map(|r| r.cycles).collect();
    CONFIGS
        .iter()
        .enumerate()
        .map(|(ci, &(name, _))| {
            let cfg = &configs[ci + 1];
            let top = cfg.oram.treetop.cached_levels();
            let mut norms = Vec::new();
            let mut bg = 0.0;
            for (i, r) in rows[ci + 1].iter().enumerate() {
                norms.push(r.cycles as f64 / base[i].max(1) as f64);
                bg += r.slots.bg_slots as f64 / r.slots.total_slots.max(1) as f64;
            }
            AllocOutcome {
                name: name.to_owned(),
                path_len: cfg.oram.zalloc.path_len(top),
                normalized: geomean(&norms),
                bg_share: bg / benches.len() as f64,
            }
        })
        .collect()
}

/// Builds the Fig. 12 table.
pub fn run(opts: &ExpOptions) -> Table {
    let outcomes = collect(opts);
    let mut t = Table::new(
        "Fig. 12: IR-Alloc configurations — runtime (normalized) and background-eviction share",
        ["Config", "PL", "normalized time", "bg-eviction slot share"],
    );
    for o in outcomes {
        t.row([
            o.name,
            o.path_len.to_string(),
            fmt_f(o.normalized, 3),
            fmt_pct(o.bg_share),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_lengths_are_ordered() {
        // PL must decrease from IR-Alloc1 to IR-Alloc4 (the paper's 43, 42,
        // 37, 36 progression).
        let opts = ExpOptions::quick();
        let cfg = opts.system(Scheme::Baseline);
        let top = cfg.oram.treetop.cached_levels();
        let pls: Vec<u64> = CONFIGS
            .iter()
            .map(|&(_, p)| ZAllocation::preset(p, cfg.oram.levels, top).path_len(top))
            .collect();
        assert!(pls.windows(2).all(|w| w[0] >= w[1]), "{pls:?}");
        let base = ZAllocation::uniform(cfg.oram.levels, 4).path_len(top);
        assert!(pls[0] < base);
    }
}
