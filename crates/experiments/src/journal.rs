//! Resume journal: a per-cell append-only JSONL store of finished results.
//!
//! Long sweeps die — OOM killers, pre-empted CI runners, a fault-injection
//! campaign tripping a real bug. The journal lets a re-run skip every cell
//! that already finished: each completed cell appends one line keyed by a
//! *fingerprint* of everything that determines its result (the full system
//! config, the benchmark, and the run length). On `--resume`, cells whose
//! fingerprint is already present are answered from the journal, so an
//! interrupted-then-resumed sweep produces byte-identical output to an
//! uninterrupted one.
//!
//! The workspace's vendored `serde` is a compile-only shim (no runtime
//! serialization), so the codec here is hand-rolled: a tiny JSON writer and
//! a recursive-descent reader covering exactly the subset
//! [`ir_oram::SimReport`] needs (objects, arrays, unsigned integers,
//! escaped strings, `null`). Unknown object keys are ignored on read and
//! malformed lines are skipped, so journals survive schema drift and torn
//! final writes.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use ir_oram::{
    FaultStats, RunLimit, Scheme, SimReport, StashPressure, SystemConfig, ALL_SCHEMES,
};
use iroram_trace::Bench;

/// Fingerprints one simulation cell: every input that determines its
/// report, hashed with FNV-1a over a field-by-field rendering.
///
/// The config is destructured **exhaustively** (no `..`): adding a field
/// to [`SystemConfig`] without extending this key is a compile error, and
/// the config-drift lint additionally checks that every field name appears
/// in this function. Structured fields (`oram`, `hierarchy`, `dram`,
/// `clock`, `faults`) contribute their full `Debug` rendering.
pub fn fingerprint(cfg: &SystemConfig, bench: Bench, limit: RunLimit) -> u64 {
    let SystemConfig {
        scheme,
        oram,
        hierarchy,
        dram,
        t_interval,
        timing_protection,
        clock,
        rob_insts,
        ipc,
        mshrs,
        l1_hit_lat,
        llc_hit_lat,
        front_hit_lat,
        decrypt_lat,
        subtree_group,
        seed,
        audit,
        faults,
        refetch_lat,
        stash_hard_limit,
        sched_threads,
        pipeline_depth,
        checkpoint_interval,
    } = cfg;
    let key = format!(
        "scheme={scheme:?}|oram={oram:?}|hierarchy={hierarchy:?}|dram={dram:?}\
         |t_interval={t_interval}|timing_protection={timing_protection}\
         |clock={clock:?}|rob_insts={rob_insts}|ipc={ipc}|mshrs={mshrs}\
         |l1_hit_lat={l1_hit_lat}|llc_hit_lat={llc_hit_lat}\
         |front_hit_lat={front_hit_lat}|decrypt_lat={decrypt_lat}\
         |subtree_group={subtree_group}|seed={seed}|audit={audit}\
         |faults={faults:?}|refetch_lat={refetch_lat}\
         |stash_hard_limit={stash_hard_limit}|sched_threads={sched_threads}\
         |pipeline_depth={pipeline_depth}|checkpoint_interval={checkpoint_interval}\
         |{bench:?}|{}",
        limit.mem_ops
    );
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// An append-only journal file plus the fingerprints it already contains.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    done: BTreeMap<u64, SimReport>,
    // lint: allow(thread-order, append-only journal writer shared with par_map workers; one line per finished cell, order-independent by fingerprint)
    writer: Mutex<std::fs::File>,
}

impl Journal {
    /// Opens (creating if needed) the journal at `path` and indexes every
    /// well-formed line already present. Malformed or truncated lines —
    /// e.g. a torn final write from a killed run — are skipped, not fatal.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be opened for append.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let mut done = BTreeMap::new();
        if let Ok(text) = std::fs::read_to_string(path) {
            for line in text.lines() {
                if let Some((fp, report)) = decode_line(line) {
                    done.insert(fp, report);
                }
            }
        }
        let writer = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Journal {
            path: path.to_owned(),
            done,
            // lint: allow(thread-order, append-only journal writer shared with par_map workers; one line per finished cell, order-independent by fingerprint)
            writer: Mutex::new(writer),
        })
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of cells already recorded.
    pub fn len(&self) -> usize {
        self.done.len()
    }

    /// Whether no cells are recorded yet.
    pub fn is_empty(&self) -> bool {
        self.done.is_empty()
    }

    /// The stored report for `fp`, if this cell already finished.
    pub fn lookup(&self, fp: u64) -> Option<SimReport> {
        self.done.get(&fp).cloned()
    }

    /// Appends one finished cell. The line is flushed immediately so a
    /// killed process loses at most the cell in flight.
    pub fn record(&self, fp: u64, report: &SimReport) {
        let line = encode_line(fp, report);
        let mut file = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Journal append failures must not kill the sweep mid-run; the
        // worst case is re-simulating this cell on resume.
        let _ = writeln!(file, "{line}");
        let _ = file.flush();
    }

    /// Rewrites the journal as exactly one line per distinct cell, dropping
    /// duplicate lines (cells re-recorded across interrupted runs) and any
    /// malformed lines skipped at open. Written atomically: a temp sibling
    /// is written, synced, and renamed over the journal, so a kill during
    /// compaction leaves either the old or the new file, never a torn one.
    /// Call after a matrix completes — mid-sweep the append-only form is
    /// the crash-safety mechanism.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the rewrite fails; the original journal is
    /// left untouched in that case.
    pub fn compact(&self) -> std::io::Result<()> {
        // Hold the append lock for the whole read-rewrite-rename so a
        // concurrent `record` can neither be dropped from the rewrite nor
        // land on the file being replaced. `record` flushes every line, so
        // the file is the complete, current state.
        let mut file = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut cells: BTreeMap<u64, SimReport> = BTreeMap::new();
        for line in std::fs::read_to_string(&self.path)?.lines() {
            if let Some((fp, report)) = decode_line(line) {
                cells.insert(fp, report);
            }
        }
        let tmp = self.path.with_extension("jsonl.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            for (fp, report) in &cells {
                writeln!(f, "{}", encode_line(*fp, report))?;
            }
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        // Reopen the writer: the old handle would keep appending to the
        // unlinked inode.
        *file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn encode_line(fp: u64, r: &SimReport) -> String {
    let mut s = String::with_capacity(1024);
    let _ = write!(s, "{{\"fp\":\"{fp:016x}\",\"report\":");
    encode_report(&mut s, r);
    s.push('}');
    s
}

fn encode_report(s: &mut String, r: &SimReport) {
    s.push('{');
    kv_str(s, "scheme", r.scheme.name());
    s.push(',');
    kv_str(s, "workload", &r.workload);
    s.push(',');
    kv_u64(s, "cycles", r.cycles);
    s.push(',');
    kv_u64(s, "instructions", r.instructions);
    s.push(',');
    kv_u64(s, "mem_ops", r.mem_ops);
    s.push(',');
    key(s, "protocol");
    encode_protocol(s, &r.protocol);
    s.push(',');
    key(s, "protocol_small");
    match &r.protocol_small {
        Some(p) => encode_protocol(s, p),
        None => s.push_str("null"),
    }
    s.push(',');
    key(s, "slots");
    s.push('{');
    kv_u64(s, "total_slots", r.slots.total_slots);
    s.push(',');
    kv_u64(s, "real_slots", r.slots.real_slots);
    s.push(',');
    kv_u64(s, "bg_slots", r.slots.bg_slots);
    s.push(',');
    kv_u64(s, "dummy_slots", r.slots.dummy_slots);
    s.push(',');
    kv_u64(s, "converted_slots", r.slots.converted_slots);
    s.push_str("},");
    key(s, "dram");
    s.push('{');
    kv_u64(s, "row_hits", r.dram.row_hits);
    s.push(',');
    kv_u64(s, "row_empties", r.dram.row_empties);
    s.push(',');
    kv_u64(s, "row_conflicts", r.dram.row_conflicts);
    s.push(',');
    kv_u64(s, "requests", r.dram.requests);
    s.push(',');
    kv_u64(s, "reads", r.dram.reads);
    s.push(',');
    kv_u64(s, "writes", r.dram.writes);
    s.push(',');
    kv_u64(s, "total_latency", r.dram.total_latency);
    s.push(',');
    kv_u64(s, "bus_busy_cycles", r.dram.bus_busy_cycles);
    s.push(',');
    kv_u64(s, "last_completion", r.dram.last_completion);
    s.push_str("},");
    key(s, "hierarchy");
    s.push('{');
    kv_u64(s, "accesses", r.hierarchy.accesses);
    s.push(',');
    kv_u64(s, "reads", r.hierarchy.reads);
    s.push(',');
    kv_u64(s, "writes", r.hierarchy.writes);
    s.push(',');
    kv_u64(s, "l1_hits", r.hierarchy.l1_hits);
    s.push(',');
    kv_u64(s, "llc_hits", r.hierarchy.llc_hits);
    s.push(',');
    kv_u64(s, "misses", r.hierarchy.misses);
    s.push(',');
    kv_u64(s, "read_misses", r.hierarchy.read_misses);
    s.push(',');
    kv_u64(s, "write_misses", r.hierarchy.write_misses);
    s.push(',');
    kv_u64(s, "dirty_writebacks", r.hierarchy.dirty_writebacks);
    s.push_str("},");
    key(s, "dwb");
    match &r.dwb {
        Some(d) => {
            s.push('{');
            kv_u64(s, "converted_slots", d.converted_slots);
            s.push(',');
            kv_u64(s, "converted_posmap", d.converted_posmap);
            s.push(',');
            kv_u64(s, "converted_data", d.converted_data);
            s.push(',');
            kv_u64(s, "completed", d.completed);
            s.push(',');
            kv_u64(s, "aborted", d.aborted);
            s.push('}');
        }
        None => s.push_str("null"),
    }
    s.push(',');
    key(s, "faults");
    s.push('{');
    kv_u64(s, "injected_corruptions", r.faults.injected_corruptions);
    s.push(',');
    kv_u64(s, "detected", r.faults.detected);
    s.push(',');
    kv_u64(s, "recovered", r.faults.recovered);
    s.push(',');
    kv_u64(s, "undetected", r.faults.undetected);
    s.push(',');
    kv_u64(s, "bank_stalls", r.faults.bank_stalls);
    s.push(',');
    kv_u64(s, "stall_cycles", r.faults.stall_cycles);
    s.push(',');
    kv_u64(s, "storms", r.faults.storms);
    s.push(',');
    kv_u64(s, "mangled_records", r.faults.mangled_records);
    s.push(',');
    kv_u64(s, "rejected_records", r.faults.rejected_records);
    s.push(',');
    kv_u64(s, "refetch_penalty_cycles", r.faults.refetch_penalty_cycles);
    s.push_str("},");
    key(s, "stash");
    s.push('{');
    kv_u64(s, "soft_capacity", r.stash.soft_capacity);
    s.push(',');
    kv_u64(s, "max_occupancy", r.stash.max_occupancy);
    s.push(',');
    kv_u64(s, "overflow_slots", r.stash.overflow_slots);
    s.push(',');
    kv_u64(s, "bg_escalations", r.stash.bg_escalations);
    s.push(',');
    kv_u64(s, "degraded_slots", r.stash.degraded_slots);
    s.push(',');
    kv_u64(s, "throttled_admissions", r.stash.throttled_admissions);
    s.push_str("}}");
}

fn encode_protocol(s: &mut String, p: &iroram_protocol::ProtocolStats) {
    s.push('{');
    kv_u64(s, "accesses", p.accesses);
    s.push(',');
    kv_u64(s, "fstash_hits", p.fstash_hits);
    s.push(',');
    kv_u64(s, "sstash_hits", p.sstash_hits);
    s.push(',');
    kv_u64(s, "escrow_hits", p.escrow_hits);
    s.push(',');
    kv_u64(s, "treetop_hits", p.treetop_hits);
    s.push(',');
    kv_u64(s, "pos1_paths", p.pos1_paths);
    s.push(',');
    kv_u64(s, "pos2_paths", p.pos2_paths);
    s.push(',');
    kv_u64(s, "data_paths", p.data_paths);
    s.push(',');
    kv_u64(s, "bg_evict_paths", p.bg_evict_paths);
    s.push(',');
    kv_u64(s, "dummy_paths", p.dummy_paths);
    s.push(',');
    key(s, "served_level");
    s.push('[');
    for (i, v) in p.served_level.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{v}");
    }
    s.push_str("],");
    kv_u64(s, "served_stash", p.served_stash);
    s.push(',');
    kv_u64(s, "blocks_from_memory", p.blocks_from_memory);
    s.push(',');
    kv_u64(s, "blocks_to_memory", p.blocks_to_memory);
    s.push(',');
    kv_u64(s, "sstash_rejects", p.sstash_rejects);
    s.push(',');
    kv_u64(s, "delayed_inserts", p.delayed_inserts);
    s.push('}');
}

fn key(s: &mut String, k: &str) {
    let _ = write!(s, "\"{k}\":");
}

fn kv_u64(s: &mut String, k: &str, v: u64) {
    let _ = write!(s, "\"{k}\":{v}");
}

fn kv_str(s: &mut String, k: &str, v: &str) {
    let _ = write!(s, "\"{k}\":\"");
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// The JSON value subset the journal emits.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Obj(Vec<(String, Json)>),
    Arr(Vec<Json>),
    Num(u64),
    Str(String),
    Null,
}

impl Json {
    fn get(&self, k: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(n, _)| n == k).map(|(_, v)| v),
            _ => None,
        }
    }

    fn u64(&self, k: &str) -> Option<u64> {
        match self.get(k)? {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    fn str(&self, k: &str) -> Option<&str> {
        match self.get(k)? {
            Json::Str(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Option<()> {
        (self.peek()? == c).then(|| self.pos += 1)
    }

    fn value(&mut self) -> Option<Json> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(Json::Str),
            b'n' => {
                let rest = self.bytes.get(self.pos..self.pos + 4)?;
                (rest == b"null").then(|| {
                    self.pos += 4;
                    Json::Null
                })
            }
            b'0'..=b'9' => self.number().map(Json::Num),
            _ => None,
        }
    }

    fn object(&mut self) -> Option<Json> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Some(Json::Obj(fields));
        }
        loop {
            let k = self.string()?;
            self.eat(b':')?;
            let v = self.value()?;
            fields.push((k, v));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Some(Json::Obj(fields));
                }
                _ => return None,
            }
        }
    }

    fn array(&mut self) -> Option<Json> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Some(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Some(Json::Arr(items));
                }
                _ => return None,
            }
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self.bytes.get(self.pos)?;
            self.pos += 1;
            match c {
                b'"' => return Some(out),
                b'\\' => {
                    let e = *self.bytes.get(self.pos)?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos..self.pos + 4)?;
                            self.pos += 4;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                        }
                        _ => return None,
                    }
                }
                c => {
                    // Multi-byte UTF-8: copy the remaining continuation
                    // bytes of this character verbatim.
                    let len = match c {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let chunk = self.bytes.get(start..start + len)?;
                    self.pos = start + len;
                    out.push_str(std::str::from_utf8(chunk).ok()?);
                }
            }
        }
    }

    fn number(&mut self) -> Option<u64> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(u8::is_ascii_digit)
        {
            self.pos += 1;
        }
        (self.pos > start)
            .then(|| std::str::from_utf8(&self.bytes[start..self.pos]).ok())??
            .parse()
            .ok()
    }
}

fn decode_line(line: &str) -> Option<(u64, SimReport)> {
    let v = Parser::new(line).value()?;
    let fp = u64::from_str_radix(v.str("fp")?, 16).ok()?;
    let report = decode_report(v.get("report")?)?;
    Some((fp, report))
}

fn scheme_by_name(name: &str) -> Option<Scheme> {
    ALL_SCHEMES.into_iter().find(|s| s.name() == name)
}

fn decode_report(v: &Json) -> Option<SimReport> {
    let slots = v.get("slots")?;
    let dram = v.get("dram")?;
    let h = v.get("hierarchy")?;
    let f = v.get("faults")?;
    let st = v.get("stash")?;
    Some(SimReport {
        scheme: scheme_by_name(v.str("scheme")?)?,
        workload: v.str("workload")?.to_owned(),
        cycles: v.u64("cycles")?,
        instructions: v.u64("instructions")?,
        mem_ops: v.u64("mem_ops")?,
        protocol: decode_protocol(v.get("protocol")?)?,
        protocol_small: match v.get("protocol_small")? {
            Json::Null => None,
            p => Some(decode_protocol(p)?),
        },
        slots: ir_oram::SlotStats {
            total_slots: slots.u64("total_slots")?,
            real_slots: slots.u64("real_slots")?,
            bg_slots: slots.u64("bg_slots")?,
            dummy_slots: slots.u64("dummy_slots")?,
            converted_slots: slots.u64("converted_slots")?,
        },
        dram: iroram_dram::DramStats {
            row_hits: dram.u64("row_hits")?,
            row_empties: dram.u64("row_empties")?,
            row_conflicts: dram.u64("row_conflicts")?,
            requests: dram.u64("requests")?,
            reads: dram.u64("reads")?,
            writes: dram.u64("writes")?,
            total_latency: dram.u64("total_latency")?,
            bus_busy_cycles: dram.u64("bus_busy_cycles")?,
            last_completion: dram.u64("last_completion")?,
        },
        hierarchy: iroram_cache::HierarchyStats {
            accesses: h.u64("accesses")?,
            reads: h.u64("reads")?,
            writes: h.u64("writes")?,
            l1_hits: h.u64("l1_hits")?,
            llc_hits: h.u64("llc_hits")?,
            misses: h.u64("misses")?,
            read_misses: h.u64("read_misses")?,
            write_misses: h.u64("write_misses")?,
            dirty_writebacks: h.u64("dirty_writebacks")?,
        },
        dwb: match v.get("dwb")? {
            Json::Null => None,
            d => Some(ir_oram::DwbStats {
                converted_slots: d.u64("converted_slots")?,
                converted_posmap: d.u64("converted_posmap")?,
                converted_data: d.u64("converted_data")?,
                completed: d.u64("completed")?,
                aborted: d.u64("aborted")?,
            }),
        },
        faults: FaultStats {
            injected_corruptions: f.u64("injected_corruptions")?,
            detected: f.u64("detected")?,
            recovered: f.u64("recovered")?,
            undetected: f.u64("undetected")?,
            bank_stalls: f.u64("bank_stalls")?,
            stall_cycles: f.u64("stall_cycles")?,
            storms: f.u64("storms")?,
            mangled_records: f.u64("mangled_records")?,
            rejected_records: f.u64("rejected_records")?,
            refetch_penalty_cycles: f.u64("refetch_penalty_cycles")?,
        },
        stash: StashPressure {
            soft_capacity: st.u64("soft_capacity")?,
            max_occupancy: st.u64("max_occupancy")?,
            overflow_slots: st.u64("overflow_slots")?,
            bg_escalations: st.u64("bg_escalations")?,
            // Absent in journals written before degradation accounting.
            degraded_slots: st.u64("degraded_slots").unwrap_or(0),
            throttled_admissions: st.u64("throttled_admissions").unwrap_or(0),
        },
    })
}

fn decode_protocol(v: &Json) -> Option<iroram_protocol::ProtocolStats> {
    let levels = match v.get("served_level")? {
        Json::Arr(items) => items
            .iter()
            .map(|j| match j {
                Json::Num(n) => Some(*n),
                _ => None,
            })
            .collect::<Option<Vec<u64>>>()?,
        _ => return None,
    };
    Some(iroram_protocol::ProtocolStats {
        accesses: v.u64("accesses")?,
        fstash_hits: v.u64("fstash_hits")?,
        sstash_hits: v.u64("sstash_hits")?,
        escrow_hits: v.u64("escrow_hits")?,
        treetop_hits: v.u64("treetop_hits")?,
        pos1_paths: v.u64("pos1_paths")?,
        pos2_paths: v.u64("pos2_paths")?,
        data_paths: v.u64("data_paths")?,
        bg_evict_paths: v.u64("bg_evict_paths")?,
        dummy_paths: v.u64("dummy_paths")?,
        served_level: levels,
        served_stash: v.u64("served_stash")?,
        blocks_from_memory: v.u64("blocks_from_memory")?,
        blocks_to_memory: v.u64("blocks_to_memory")?,
        sstash_rejects: v.u64("sstash_rejects")?,
        delayed_inserts: v.u64("delayed_inserts")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_oram::Simulation;

    fn small_report() -> SimReport {
        let opts = crate::ExpOptions::quick();
        let mut cfg = opts.system(Scheme::IrOram);
        cfg.oram.levels = 10;
        cfg.oram.data_blocks = 1 << 11;
        cfg.oram.zalloc = iroram_protocol::ZAllocation::uniform(10, 4);
        cfg.oram.treetop = iroram_protocol::TreeTopMode::Dedicated { levels: 4 };
        let cfg = cfg.with_scheme(Scheme::IrOram);
        Simulation::run_bench(&cfg, Bench::Gcc, RunLimit::mem_ops(800))
    }

    #[test]
    fn report_round_trips_exactly() {
        let r = small_report();
        let line = encode_line(7, &r);
        let (fp, back) = decode_line(&line).expect("decodes");
        assert_eq!(fp, 7);
        assert_eq!(format!("{back:?}"), format!("{r:?}"));
    }

    #[test]
    fn rho_report_round_trips_with_small_tree() {
        let opts = crate::ExpOptions::quick();
        let mut cfg = opts.system(Scheme::Rho);
        cfg.oram.levels = 10;
        cfg.oram.data_blocks = 1 << 11;
        cfg.oram.zalloc = iroram_protocol::ZAllocation::uniform(10, 4);
        cfg.oram.treetop = iroram_protocol::TreeTopMode::Dedicated { levels: 4 };
        let cfg = cfg.with_scheme(Scheme::Rho);
        let r = Simulation::run_bench(&cfg, Bench::Mcf, RunLimit::mem_ops(600));
        assert!(r.protocol_small.is_some());
        let (_, back) = decode_line(&encode_line(1, &r)).expect("decodes");
        assert_eq!(format!("{back:?}"), format!("{r:?}"));
    }

    #[test]
    fn malformed_lines_are_skipped_not_fatal() {
        let dir = std::env::temp_dir().join(format!("iroram-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.jsonl");
        let r = small_report();
        let good = encode_line(42, &r);
        let torn = &good[..good.len() / 2];
        std::fs::write(&path, format!("{good}\nnot json at all\n{torn}\n")).unwrap();
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.len(), 1);
        assert!(j.lookup(42).is_some());
        assert!(j.lookup(43).is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn record_then_reopen_finds_the_cell() {
        let dir = std::env::temp_dir().join(format!("iroram-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rt.jsonl");
        std::fs::remove_file(&path).ok();
        let r = small_report();
        let j = Journal::open(&path).unwrap();
        j.record(99, &r);
        j.record(100, &r);
        drop(j);
        let j2 = Journal::open(&path).unwrap();
        assert_eq!(j2.len(), 2);
        assert_eq!(format!("{:?}", j2.lookup(99).unwrap()), format!("{r:?}"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compact_dedupes_and_preserves_every_cell() {
        let dir = std::env::temp_dir().join(format!("iroram-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("compact.jsonl");
        std::fs::remove_file(&path).ok();
        let r = small_report();
        // Duplicate lines (the same cell re-recorded across interrupted
        // runs) plus garbage, as a crashed-and-resumed sweep leaves behind.
        let good = encode_line(7, &r);
        std::fs::write(
            &path,
            format!("{good}\n{good}\nnot json\n{}\n{good}\n", encode_line(8, &r)),
        )
        .unwrap();
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.len(), 2);
        j.compact().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2, "one line per distinct cell");
        // Appending still works after compaction (the writer is reopened on
        // the new inode).
        j.record(9, &r);
        drop(j);
        let j2 = Journal::open(&path).unwrap();
        assert_eq!(j2.len(), 3);
        assert!(j2.lookup(7).is_some() && j2.lookup(8).is_some() && j2.lookup(9).is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprint_separates_cells() {
        let opts = crate::ExpOptions::quick();
        let a = opts.system(Scheme::Baseline);
        let b = opts.system(Scheme::IrOram);
        let lim = RunLimit::mem_ops(100);
        assert_ne!(fingerprint(&a, Bench::Gcc, lim), fingerprint(&b, Bench::Gcc, lim));
        assert_ne!(
            fingerprint(&a, Bench::Gcc, lim),
            fingerprint(&a, Bench::Mcf, lim)
        );
        assert_ne!(
            fingerprint(&a, Bench::Gcc, lim),
            fingerprint(&a, Bench::Gcc, RunLimit::mem_ops(101))
        );
        assert_eq!(
            fingerprint(&a, Bench::Gcc, lim),
            fingerprint(&opts.system(Scheme::Baseline), Bench::Gcc, lim)
        );
    }
}
