//! Fig. 3 — space utilization at different tree levels over time.
//!
//! Replays the paper's methodology at reduced scale: initialize the tree by
//! accessing every block once in random order (done inside
//! [`iroram_protocol::PathOram::new`]), then run a benchmark-mix trace
//! followed by a random-trace tail, taking per-level utilization snapshots
//! along the way. Paper shape: top levels fluctuate, middle levels sit low
//! (≈20–30%), the last level is high (70–80%).

use iroram_protocol::{PathOram, ZAllocation};
use iroram_trace::{Bench, WorkloadGen};

use crate::render::{fmt_pct, Table};
use crate::ExpOptions;

/// One utilization snapshot: label + per-level ratios.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Snapshot label ("0B"-style position marker).
    pub label: String,
    /// Utilization per level, `used / capacity`.
    pub per_level: Vec<f64>,
}

fn snapshot(oram: &PathOram, label: String) -> Snapshot {
    Snapshot {
        label,
        per_level: oram
            .utilization_per_level()
            .into_iter()
            .map(|(u, c)| if c == 0 { 0.0 } else { u as f64 / c as f64 })
            .collect(),
    }
}

/// Runs the trace mix on an allocation produced by `zalloc_of`, returning
/// snapshots. Shared with Fig. 13 (which passes the IR-Alloc allocation).
pub fn collect(
    opts: &ExpOptions,
    zalloc_of: impl Fn(usize, usize) -> ZAllocation,
) -> Vec<Snapshot> {
    let cfg = opts.funct_oram(zalloc_of);
    let n = cfg.data_blocks;
    let mut oram = PathOram::new(cfg);
    let total_accesses = n * opts.funct_accesses_per_block;
    // Paper: benchmark accesses for [0, 3.7B], random for (3.7B, 4B].
    let mix_accesses = total_accesses * 37 / 40;
    let mut snaps = vec![snapshot(&oram, "0".into())];
    let mut gen = WorkloadGen::for_bench(Bench::Mix, n, opts.seed);
    let quarters = 4u64;
    for q in 1..=quarters {
        let upto = mix_accesses * q / quarters;
        let from = mix_accesses * (q - 1) / quarters;
        for _ in from..upto {
            let r = gen.next_record();
            oram.run_access(iroram_protocol::BlockAddr(r.addr), None);
        }
        snaps.push(snapshot(&oram, format!("mix-{}/4", q)));
    }
    let mut rnd = WorkloadGen::for_bench(Bench::RandomUniform, n, opts.seed ^ 1);
    for _ in mix_accesses..total_accesses {
        let r = rnd.next_record();
        oram.run_access(iroram_protocol::BlockAddr(r.addr), None);
    }
    snaps.push(snapshot(&oram, "random-tail".into()));
    snaps
}

/// Builds the Fig. 3 table (levels as rows, snapshots as columns).
pub fn run(opts: &ExpOptions) -> Table {
    let snaps = collect(opts, |l, _| ZAllocation::uniform(l, 4));
    render(snaps, "Fig. 3: space utilization per tree level (Baseline allocation)")
}

/// Renders snapshots as a table (shared with Fig. 13).
pub fn render(snaps: Vec<Snapshot>, title: &str) -> Table {
    let mut headers = vec!["Level".to_owned()];
    headers.extend(snaps.iter().map(|s| s.label.clone()));
    let mut t = Table::new(title, headers);
    let levels = snaps[0].per_level.len();
    for l in 0..levels {
        let mut row = vec![l.to_string()];
        row.extend(snaps.iter().map(|s| fmt_pct(s.per_level[l])));
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_shape_matches_paper() {
        let opts = ExpOptions::quick();
        let snaps = collect(&opts, |l, _| ZAllocation::uniform(l, 4));
        let last = snaps.last().unwrap();
        let levels = last.per_level.len();
        // Bottom level clearly higher than the middle levels.
        let bottom = last.per_level[levels - 1];
        let middle: f64 = last.per_level[levels / 2..levels - 2]
            .iter()
            .sum::<f64>()
            / (levels - 2 - levels / 2) as f64;
        assert!(
            bottom > middle + 0.15,
            "bottom {bottom:.2} vs middle {middle:.2}"
        );
        // Everything in [0, 1].
        for s in &snaps {
            for &u in &s.per_level {
                assert!((0.0..=1.0).contains(&u));
            }
        }
    }

    #[test]
    fn snapshots_cover_run() {
        let opts = ExpOptions::quick();
        let snaps = collect(&opts, |l, _| ZAllocation::uniform(l, 4));
        assert_eq!(snaps.len(), 6); // init + 4 mix quarters + random tail
        assert_eq!(snaps[0].label, "0");
        assert_eq!(snaps.last().unwrap().label, "random-tail");
    }
}
