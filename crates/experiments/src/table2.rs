//! Table II — evaluated benchmarks and their read/write MPKI.
//!
//! Streams each calibrated workload model through the cache hierarchy alone
//! (no ORAM timing needed for MPKI) and reports the measured L2 read/write
//! MPKI next to the paper's targets.

use ir_oram::Scheme;
use iroram_cache::MemoryHierarchy;
use iroram_trace::{Bench, WorkloadGen, ALL_BENCHES};

use crate::render::{fmt_f, Table};
use crate::runner::par_map;
use crate::ExpOptions;

/// One benchmark's calibration outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mpki {
    /// Measured read MPKI.
    pub read: f64,
    /// Measured write MPKI.
    pub write: f64,
}

/// Measures `bench`'s MPKI over `ops` memory operations.
pub fn measure(opts: &ExpOptions, bench: Bench, ops: u64) -> Mpki {
    let cfg = opts.system(Scheme::Baseline);
    let mut h = MemoryHierarchy::new(cfg.hierarchy);
    let mut gen = WorkloadGen::for_bench(bench, cfg.data_blocks(), opts.seed);
    let mut insts = 0u64;
    for _ in 0..ops {
        let r = gen.next_record();
        insts += r.gap as u64 + 1;
        h.access(r.addr, r.is_write);
    }
    let s = h.stats();
    let kilo = insts as f64 / 1000.0;
    Mpki {
        read: s.read_misses as f64 / kilo,
        write: s.write_misses as f64 / kilo,
    }
}

/// Builds the Table II reproduction.
pub fn run(opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Table II: benchmark read/write MPKI (measured vs. paper targets)",
        [
            "Benchmark",
            "read MPKI",
            "write MPKI",
            "paper read",
            "paper write",
        ],
    );
    let ops = (opts.mem_ops * 4).max(20_000);
    // Each benchmark's calibration stream is an independent cell.
    let rows = par_map(opts.effective_jobs(), ALL_BENCHES.to_vec(), |bench| {
        (bench, measure(opts, bench, ops))
    });
    for (bench, m) in rows {
        t.row([
            bench.name().to_owned(),
            fmt_f(m.read, 2),
            fmt_f(m.write, 2),
            fmt_f(bench.read_mpki(), 2),
            fmt_f(bench.write_mpki(), 2),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpki_shape_tracks_targets() {
        let opts = ExpOptions::quick();
        let mcf = measure(&opts, Bench::Mcf, 30_000);
        let lbm = measure(&opts, Bench::Lbm, 30_000);
        let xal = measure(&opts, Bench::Xal, 30_000);
        // Read-dominated vs write-dominated.
        assert!(mcf.read > mcf.write * 5.0, "mcf {mcf:?}");
        assert!(lbm.write > lbm.read * 5.0 || lbm.read < 0.5, "lbm {lbm:?}");
        // Intensity ordering.
        assert!(mcf.read > xal.read * 10.0, "mcf {mcf:?} vs xal {xal:?}");
        assert!(lbm.write > 10.0 * (xal.write + 0.01), "lbm {lbm:?}");
    }

    #[test]
    fn table_covers_all_benchmarks() {
        let t = run(&ExpOptions::quick());
        assert_eq!(t.rows.len(), ALL_BENCHES.len());
    }
}
