//! Simulated-time types.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in (or span of) simulated time, measured in clock cycles of some
/// clock domain.
///
/// `Cycle` is deliberately a thin, `Copy` newtype: simulators in this
/// workspace pass it around constantly and mix it with raw arithmetic when
/// computing latencies. Use [`ClockRatio`] to convert between clock domains
/// (e.g. CPU cycles at 3.2 GHz vs. DRAM cycles at 800 MHz).
///
/// # Examples
///
/// ```
/// use iroram_sim_engine::Cycle;
/// let t = Cycle(100) + Cycle(20);
/// assert_eq!(t, Cycle(120));
/// assert_eq!(t.saturating_sub(Cycle(200)), Cycle(0));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycle(pub u64);

impl Cycle {
    /// The zero point of simulated time.
    pub const ZERO: Cycle = Cycle(0);

    /// A time far in the future, usable as "never".
    pub const MAX: Cycle = Cycle(u64::MAX);

    /// Returns the raw cycle count.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Subtracts, clamping at zero instead of underflowing.
    #[inline]
    pub fn saturating_sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(rhs.0))
    }

    /// Returns the later of two times.
    #[inline]
    pub fn max(self, rhs: Cycle) -> Cycle {
        Cycle(self.0.max(rhs.0))
    }

    /// Returns the earlier of two times.
    #[inline]
    pub fn min(self, rhs: Cycle) -> Cycle {
        Cycle(self.0.min(rhs.0))
    }
}

impl Add for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl AddAssign for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: Cycle) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycle {
    type Output = Cycle;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs > self` (time underflow); use
    /// [`Cycle::saturating_sub`] when the ordering is not guaranteed.
    #[inline]
    fn sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 - rhs.0)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(v: u64) -> Self {
        Cycle(v)
    }
}

/// A rational ratio between two clock domains, `fast : slow`.
///
/// The paper's system (Table I) runs a 3.2 GHz core against 800 MHz DRAM, a
/// 4:1 ratio. Conversions round conservatively: converting a slow-domain time
/// to the fast domain is exact; converting fast to slow rounds *up* so that a
/// resource is never considered free earlier than it really is.
///
/// # Examples
///
/// ```
/// use iroram_sim_engine::{ClockRatio, Cycle};
/// let r = ClockRatio::new(4, 1);
/// assert_eq!(r.slow_to_fast(Cycle(10)), Cycle(40));
/// assert_eq!(r.fast_to_slow(Cycle(41)), Cycle(11)); // rounds up
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClockRatio {
    fast: u64,
    slow: u64,
}

impl ClockRatio {
    /// Creates a ratio of `fast` fast-domain cycles per `slow` slow-domain
    /// cycles.
    ///
    /// # Panics
    ///
    /// Panics if either term is zero.
    pub fn new(fast: u64, slow: u64) -> Self {
        assert!(fast > 0 && slow > 0, "clock ratio terms must be nonzero");
        ClockRatio { fast, slow }
    }

    /// The CPU:DRAM ratio from the paper's configuration (3.2 GHz : 800 MHz).
    pub fn cpu_dram_default() -> Self {
        ClockRatio::new(4, 1)
    }

    /// Converts a slow-domain time to the fast domain (exact, rounding down
    /// any fractional remainder which only occurs for non-integral ratios).
    #[inline]
    pub fn slow_to_fast(self, t: Cycle) -> Cycle {
        Cycle(t.0 * self.fast / self.slow)
    }

    /// Converts a fast-domain time to the slow domain, rounding **up**.
    #[inline]
    pub fn fast_to_slow(self, t: Cycle) -> Cycle {
        Cycle((t.0 * self.slow).div_ceil(self.fast))
    }
}

impl Default for ClockRatio {
    fn default() -> Self {
        ClockRatio::cpu_dram_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        assert_eq!(Cycle(3) + Cycle(4), Cycle(7));
        assert_eq!(Cycle(10) - Cycle(4), Cycle(6));
        assert_eq!(Cycle(3).saturating_sub(Cycle(10)), Cycle::ZERO);
        let mut t = Cycle(5);
        t += 2;
        t += Cycle(1);
        assert_eq!(t, Cycle(8));
        assert_eq!(Cycle(3).max(Cycle(9)), Cycle(9));
        assert_eq!(Cycle(3).min(Cycle(9)), Cycle(3));
    }

    #[test]
    fn cycle_display_and_conv() {
        assert_eq!(Cycle(12).to_string(), "12 cyc");
        assert_eq!(Cycle::from(9u64), Cycle(9));
        assert_eq!(Cycle(7).raw(), 7);
    }

    #[test]
    fn ratio_round_trip() {
        let r = ClockRatio::cpu_dram_default();
        assert_eq!(r.slow_to_fast(Cycle(100)), Cycle(400));
        assert_eq!(r.fast_to_slow(Cycle(400)), Cycle(100));
        assert_eq!(r.fast_to_slow(Cycle(401)), Cycle(101));
        assert_eq!(r.fast_to_slow(Cycle(399)), Cycle(100));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn ratio_rejects_zero() {
        let _ = ClockRatio::new(0, 1);
    }

    #[test]
    fn ratio_non_integral() {
        let r = ClockRatio::new(3, 2);
        assert_eq!(r.slow_to_fast(Cycle(4)), Cycle(6));
        assert_eq!(r.fast_to_slow(Cycle(6)), Cycle(4));
        assert_eq!(r.fast_to_slow(Cycle(7)), Cycle(5));
    }
}
