//! Deterministic random number generation.

use std::ops::Range;

/// A deterministic xoshiro256++ pseudo-random generator.
///
/// Every stochastic choice in the workspace (path remapping, dummy leaf
/// selection, trace synthesis) flows through `SimRng`, so an experiment is a
/// pure function of its configuration and seed. The generator is implemented
/// locally (xoshiro256++ by Blackman & Vigna, public domain) rather than
/// depending on `rand`'s evolving algorithm choices.
///
/// # Examples
///
/// ```
/// use iroram_sim_engine::SimRng;
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator whose 256-bit state is expanded from `seed` with
    /// SplitMix64 (the construction recommended by the xoshiro authors).
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derives an independent child generator; useful for giving each
    /// component its own stream so adding draws in one place does not perturb
    /// another.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        SimRng::seed_from(self.next_u64() ^ salt.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// The raw 256-bit generator state (for checkpointing mid-stream).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured with [`SimRng::state`],
    /// resuming the stream exactly where it left off.
    pub fn from_state(s: [u64; 4]) -> Self {
        SimRng { s }
    }

    /// Returns the next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniform value in `[0, bound)` without modulo bias, using
    /// Lemire's multiply-shift rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be nonzero");
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform value in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range on empty range");
        range.start + self.next_below(range.end - range.start)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffles `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of `slice`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.next_below(slice.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn next_below_in_range_and_roughly_uniform() {
        let mut rng = SimRng::seed_from(99);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            let v = rng.next_below(10);
            assert!(v < 10);
            buckets[v as usize] += 1;
        }
        for &b in &buckets {
            // Expected 10_000 per bucket; allow generous 10% band.
            assert!((9_000..=11_000).contains(&b), "bucket count {b}");
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SimRng::seed_from(5);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_rejects_empty() {
        let mut rng = SimRng::seed_from(5);
        let _ = rng.gen_range(3..3);
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = SimRng::seed_from(17);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.48..0.52).contains(&mean), "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from(4);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left slice sorted (astronomically unlikely)");
    }

    #[test]
    fn choose_handles_empty_and_nonempty() {
        let mut rng = SimRng::seed_from(8);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        let items = [1, 2, 3];
        assert!(items.contains(rng.choose(&items).unwrap()));
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = SimRng::seed_from(321);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = SimRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = SimRng::seed_from(11);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
