//! Counters, histograms and running statistics.
//!
//! Simulators expose their measurements through these types; the experiment
//! harness reads them back out to regenerate the paper's tables and figures.
//!
//! # Examples
//!
//! ```
//! use iroram_sim_engine::stats::{Counter, Histogram, RunningStat};
//!
//! let mut c = Counter::new();
//! c.add(3);
//! c.inc();
//! assert_eq!(c.get(), 4);
//!
//! let mut h = Histogram::with_linear_bins(0, 100, 10);
//! h.record(42);
//! assert_eq!(h.count(), 1);
//!
//! let mut s = RunningStat::new();
//! s.push(1.0);
//! s.push(3.0);
//! assert_eq!(s.mean(), 2.0);
//! ```

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A fixed-bin histogram over `u64` samples.
///
/// Supports linear bins (for e.g. per-level data) and power-of-two bins (for
/// latency distributions). Out-of-range samples land in saturating edge bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: u64,
    hi: u64,
    bins: Vec<u64>,
    log2: bool,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with `n` equal-width bins covering `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `hi <= lo`.
    pub fn with_linear_bins(lo: u64, hi: u64, n: usize) -> Self {
        assert!(n > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be nonempty");
        Histogram {
            lo,
            hi,
            bins: vec![0; n],
            log2: false,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Creates a histogram with one bin per power of two up to `2^max_log2`.
    pub fn with_log2_bins(max_log2: u32) -> Self {
        Histogram {
            lo: 0,
            hi: 1u64 << max_log2.min(63),
            bins: vec![0; max_log2 as usize + 1],
            log2: true,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bin_index(&self, v: u64) -> usize {
        if self.log2 {
            let idx = 64 - v.leading_zeros() as usize; // 0 -> 0, 1 -> 1, 2..3 -> 2, …
            idx.min(self.bins.len() - 1)
        } else {
            let clamped = v.clamp(self.lo, self.hi - 1);
            let width = (self.hi - self.lo).div_ceil(self.bins.len() as u64);
            (((clamped - self.lo) / width) as usize).min(self.bins.len() - 1)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let idx = self.bin_index(v);
        self.bins[idx] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded samples, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Smallest recorded sample, or `None` if empty.
    pub fn sample_min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, or `None` if empty.
    pub fn sample_max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Raw bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// An approximate quantile (`q` in `[0,1]`) from the bin structure, or
    /// `None` if empty. Returns the upper edge of the bin containing the
    /// quantile.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &b) in self.bins.iter().enumerate() {
            seen += b;
            if seen >= target {
                return Some(if self.log2 {
                    if i == 0 {
                        0
                    } else {
                        1u64 << i
                    }
                } else {
                    let width = (self.hi - self.lo).div_ceil(self.bins.len() as u64);
                    self.lo + width * (i as u64 + 1)
                });
            }
        }
        Some(self.hi)
    }
}

/// Welford-style running mean / variance over `f64` samples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStat {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStat {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStat {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0.0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// A named collection of counters for report export.
///
/// Components register counters under dotted names
/// (`"oram.paths.dummy"`, `"dram.row_hits"`); the experiment harness
/// snapshots the registry into its output records.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StatsRegistry {
    counters: BTreeMap<String, u64>,
}

impl StatsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        StatsRegistry::default()
    }

    /// Adds `n` to the counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += n;
    }

    /// Adds one to the counter `name`.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Reads a counter (0 if never written).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a counter to an absolute value.
    pub fn set(&mut self, name: &str, v: u64) {
        self.counters.insert(name.to_owned(), v);
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Merges another registry into this one by summing counters.
    pub fn merge(&mut self, other: &StatsRegistry) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }
}

impl fmt::Display for StatsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in self.iter() {
            writeln!(f, "{k:48} {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 11);
        assert_eq!(c.to_string(), "11");
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn linear_histogram_binning() {
        let mut h = Histogram::with_linear_bins(0, 100, 10);
        h.record(0);
        h.record(9);
        h.record(10);
        h.record(99);
        h.record(1000); // clamps into last bin
        assert_eq!(h.bins()[0], 2);
        assert_eq!(h.bins()[1], 1);
        assert_eq!(h.bins()[9], 2);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sample_min(), Some(0));
        assert_eq!(h.sample_max(), Some(1000));
    }

    #[test]
    fn log2_histogram_binning() {
        let mut h = Histogram::with_log2_bins(10);
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        h.record(u64::MAX); // saturates into last bin
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[1], 1);
        assert_eq!(h.bins()[2], 2);
        assert_eq!(h.bins()[10], 2);
    }

    #[test]
    fn histogram_mean_and_quantile() {
        let mut h = Histogram::with_linear_bins(0, 10, 10);
        for v in [1u64, 2, 3, 4, 5, 6, 7, 8, 9] {
            h.record(v);
        }
        assert!((h.mean().unwrap() - 5.0).abs() < 1e-9);
        let median = h.quantile(0.5).unwrap();
        assert!((5..=6).contains(&median), "median bin edge {median}");
        assert!(Histogram::with_linear_bins(0, 10, 10).quantile(0.5).is_none());
    }

    #[test]
    fn running_stat_welford() {
        let mut s = RunningStat::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.count(), 8);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn running_stat_empty() {
        let s = RunningStat::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn registry_merge_and_display() {
        let mut a = StatsRegistry::new();
        a.inc("x");
        a.add("y", 5);
        let mut b = StatsRegistry::new();
        b.add("y", 3);
        b.set("z", 7);
        a.merge(&b);
        assert_eq!(a.get("x"), 1);
        assert_eq!(a.get("y"), 8);
        assert_eq!(a.get("z"), 7);
        assert_eq!(a.get("missing"), 0);
        let text = a.to_string();
        assert!(text.contains('x') && text.contains('z'));
    }
}
