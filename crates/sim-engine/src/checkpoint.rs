//! Crash-consistent snapshot encoding for mid-run simulation state.
//!
//! A snapshot is a single binary blob: a fixed header (magic, format
//! version, configuration fingerprint, slots completed, payload length,
//! checksum) followed by an opaque payload that the simulator layers fill
//! via [`SnapWriter`] and read back via [`SnapReader`]. The codec is
//! hand-rolled and versioned: every field is written explicitly in a fixed
//! order, so the on-disk format is a function of this module's code alone,
//! not of any derive machinery.
//!
//! Durability contract ([`persist`]): the snapshot is written to a
//! temporary sibling file, fsynced, then atomically renamed over the
//! destination. A crash mid-write leaves either the previous complete
//! snapshot or a stray `.tmp` file — never a torn snapshot at the final
//! path. Torn or bit-flipped files are additionally detected on load by
//! the FNV-1a checksum over the header fields and payload, surfacing as a
//! typed [`SnapError`] instead of a panic.

use std::fmt;
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};

/// Magic bytes opening every snapshot file.
pub const SNAP_MAGIC: [u8; 8] = *b"IRORAMCK";

/// Current snapshot format version. Bumped on any layout change; loading a
/// snapshot with a different version is a typed error, never a
/// misinterpretation.
pub const SNAP_VERSION: u32 = 1;

/// Fixed header length: magic + version + fingerprint + slots + len + checksum.
const HEADER_LEN: usize = 8 + 4 + 8 + 8 + 8 + 8;

/// FNV-1a offset basis.
const FNV_BASIS: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Why a snapshot could not be written, read, or decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// Filesystem-level failure (create, write, fsync, rename, read).
    Io(String),
    /// The file is shorter than the structure being decoded claims.
    Truncated,
    /// The file does not start with [`SNAP_MAGIC`].
    BadMagic,
    /// The file's format version is not [`SNAP_VERSION`].
    BadVersion(u32),
    /// The checksum over header and payload does not match (torn write or
    /// bit flip).
    BadChecksum,
    /// The snapshot was taken under a different configuration fingerprint.
    ConfigMismatch {
        /// Fingerprint the loader expected (current configuration).
        expected: u64,
        /// Fingerprint recorded in the snapshot.
        found: u64,
    },
    /// A payload field failed structural validation (the static string
    /// names the field).
    Corrupt(&'static str),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Io(e) => write!(f, "snapshot I/O: {e}"),
            SnapError::Truncated => write!(f, "snapshot truncated"),
            SnapError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapError::BadVersion(v) => {
                write!(f, "snapshot format version {v} (supported: {SNAP_VERSION})")
            }
            SnapError::BadChecksum => write!(f, "snapshot checksum mismatch (torn or corrupt)"),
            SnapError::ConfigMismatch { expected, found } => write!(
                f,
                "snapshot fingerprint {found:#x} does not match configuration {expected:#x}"
            ),
            SnapError::Corrupt(what) => write!(f, "snapshot payload corrupt: {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Decoded snapshot header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// Format version ([`SNAP_VERSION`] for files this build wrote).
    pub version: u32,
    /// Configuration fingerprint the snapshot belongs to.
    pub fingerprint: u64,
    /// Simulation slots completed when the snapshot was taken (progress
    /// marker; the chaos harness polls this to aim its kills).
    pub slots_done: u64,
}

/// Appends snapshot payload fields in a fixed, explicit order.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty payload writer.
    pub fn new() -> Self {
        SnapWriter { buf: Vec::new() }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (the on-disk format is host-independent).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Writes an optional `u64` as a presence byte plus the value.
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.put_bool(true);
                self.put_u64(x);
            }
            None => self.put_bool(false),
        }
    }

    /// Writes a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Reads snapshot payload fields back in the order they were written.
/// Every accessor is total: malformed input yields a [`SnapError`], never
/// a panic.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
}

impl<'a> SnapReader<'a> {
    /// A reader over `payload`.
    pub fn new(payload: &'a [u8]) -> Self {
        SnapReader { buf: payload }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        let (head, tail) = self
            .buf
            .split_at_checked(n)
            .ok_or(SnapError::Truncated)?;
        self.buf = tail;
        Ok(head)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?.first().copied().unwrap_or(0))
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, SnapError> {
        let b: [u8; 4] = self
            .take(4)?
            .try_into()
            .map_err(|_| SnapError::Truncated)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, SnapError> {
        let b: [u8; 8] = self
            .take(8)?
            .try_into()
            .map_err(|_| SnapError::Truncated)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Reads a `usize` written by [`SnapWriter::put_usize`].
    pub fn take_usize(&mut self) -> Result<usize, SnapError> {
        usize::try_from(self.take_u64()?).map_err(|_| SnapError::Corrupt("usize out of range"))
    }

    /// Reads a bool; any byte other than 0/1 is corruption.
    pub fn take_bool(&mut self) -> Result<bool, SnapError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Corrupt("bool byte")),
        }
    }

    /// Reads an optional `u64` written by [`SnapWriter::put_opt_u64`].
    pub fn take_opt_u64(&mut self) -> Result<Option<u64>, SnapError> {
        if self.take_bool()? {
            Ok(Some(self.take_u64()?))
        } else {
            Ok(None)
        }
    }

    /// Reads a sequence length, validating that at least `min_elem_bytes`
    /// per element remain — so a bit-flipped length cannot drive an
    /// attempted huge allocation before decoding fails.
    pub fn take_seq_len(&mut self, min_elem_bytes: usize) -> Result<usize, SnapError> {
        let n = self.take_usize()?;
        if n.checked_mul(min_elem_bytes.max(1))
            .is_none_or(|need| need > self.remaining())
        {
            return Err(SnapError::Truncated);
        }
        Ok(n)
    }

    /// Reads a length-prefixed byte string.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.take_seq_len(1)?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<&'a str, SnapError> {
        std::str::from_utf8(self.take_bytes()?).map_err(|_| SnapError::Corrupt("utf-8 string"))
    }

    /// Verifies the payload was consumed exactly (a long tail means the
    /// writer and reader disagree about the format).
    pub fn finish(self) -> Result<(), SnapError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(SnapError::Corrupt("trailing bytes"))
        }
    }
}

fn header_checksum(fingerprint: u64, slots_done: u64, payload: &[u8]) -> u64 {
    let mut h = fnv1a(FNV_BASIS, &SNAP_VERSION.to_le_bytes());
    h = fnv1a(h, &fingerprint.to_le_bytes());
    h = fnv1a(h, &slots_done.to_le_bytes());
    h = fnv1a(h, &(payload.len() as u64).to_le_bytes());
    fnv1a(h, payload)
}

/// Frames `payload` as a complete snapshot file image.
pub fn encode_snapshot(fingerprint: u64, slots_done: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&SNAP_MAGIC);
    out.extend_from_slice(&SNAP_VERSION.to_le_bytes());
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&slots_done.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&header_checksum(fingerprint, slots_done, payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Parses and verifies a snapshot file image, returning the header and the
/// checksum-validated payload.
///
/// # Errors
///
/// Any framing defect is a specific [`SnapError`]: wrong magic, unsupported
/// version, short file, or checksum mismatch.
pub fn decode_snapshot(bytes: &[u8]) -> Result<(SnapshotHeader, &[u8]), SnapError> {
    let mut r = SnapReader::new(bytes);
    let magic = r.take(8)?;
    if magic != SNAP_MAGIC {
        return Err(SnapError::BadMagic);
    }
    let version = r.take_u32()?;
    if version != SNAP_VERSION {
        return Err(SnapError::BadVersion(version));
    }
    let fingerprint = r.take_u64()?;
    let slots_done = r.take_u64()?;
    let len = r.take_usize()?;
    let checksum = r.take_u64()?;
    if r.remaining() != len {
        return Err(SnapError::Truncated);
    }
    let payload = r.take(len)?;
    // lint: allow(secret-flow, snapshot payload checksum over operator-visible checkpoint bytes, not ORAM block contents)
    if header_checksum(fingerprint, slots_done, payload) != checksum {
        return Err(SnapError::BadChecksum);
    }
    Ok((
        SnapshotHeader {
            version,
            fingerprint,
            slots_done,
        },
        payload,
    ))
}

fn temp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map_or_else(
        || std::ffi::OsString::from("snapshot"),
        std::ffi::OsStr::to_os_string,
    );
    name.push(".tmp");
    path.with_file_name(name)
}

/// Writes `payload` as a snapshot at `path`, crash-consistently: the frame
/// goes to a `.tmp` sibling, is fsynced, and is renamed over `path` in one
/// atomic step. Readers of `path` therefore always see a complete frame.
///
/// # Errors
///
/// [`SnapError::Io`] naming the failing step.
pub fn persist(
    path: &Path,
    fingerprint: u64,
    slots_done: u64,
    payload: &[u8],
) -> Result<(), SnapError> {
    let frame = encode_snapshot(fingerprint, slots_done, payload);
    let tmp = temp_path(path);
    let io = |step: &str, e: std::io::Error| SnapError::Io(format!("{step} {}: {e}", tmp.display()));
    let mut f = std::fs::File::create(&tmp).map_err(|e| io("create", e))?;
    f.write_all(&frame).map_err(|e| io("write", e))?;
    f.sync_all().map_err(|e| io("fsync", e))?;
    drop(f);
    std::fs::rename(&tmp, path)
        .map_err(|e| SnapError::Io(format!("rename to {}: {e}", path.display())))
}

/// Loads and verifies the snapshot at `path`. Returns `Ok(None)` when no
/// snapshot exists there (a fresh run, not an error).
///
/// # Errors
///
/// I/O failures other than absence, and every framing defect from
/// [`decode_snapshot`].
pub fn load(path: &Path) -> Result<Option<(SnapshotHeader, Vec<u8>)>, SnapError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(SnapError::Io(format!("read {}: {e}", path.display()))),
    };
    let (header, payload) = decode_snapshot(&bytes)?;
    Ok(Some((header, payload.to_vec())))
}

/// Reads just the header of the snapshot at `path` (cheap progress poll for
/// the chaos harness). Returns `Ok(None)` when the file does not exist.
///
/// # Errors
///
/// I/O failures other than absence, bad magic, or an unsupported version.
/// The payload checksum is *not* verified here — use [`load`] for that.
pub fn read_header(path: &Path) -> Result<Option<SnapshotHeader>, SnapError> {
    let mut f = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(SnapError::Io(format!("open {}: {e}", path.display()))),
    };
    let mut head = [0u8; HEADER_LEN];
    if let Err(e) = f.read_exact(&mut head) {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            return Err(SnapError::Truncated);
        }
        return Err(SnapError::Io(format!("read {}: {e}", path.display())));
    }
    let mut r = SnapReader::new(&head);
    if r.take(8)? != SNAP_MAGIC {
        return Err(SnapError::BadMagic);
    }
    let version = r.take_u32()?;
    if version != SNAP_VERSION {
        return Err(SnapError::BadVersion(version));
    }
    Ok(Some(SnapshotHeader {
        version,
        fingerprint: r.take_u64()?,
        slots_done: r.take_u64()?,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_round_trip() {
        let mut w = SnapWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_usize(12345);
        w.put_bool(true);
        w.put_bool(false);
        w.put_opt_u64(Some(9));
        w.put_opt_u64(None);
        w.put_bytes(b"abc");
        w.put_str("path-oram");
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 7);
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), u64::MAX);
        assert_eq!(r.take_usize().unwrap(), 12345);
        assert!(r.take_bool().unwrap());
        assert!(!r.take_bool().unwrap());
        assert_eq!(r.take_opt_u64().unwrap(), Some(9));
        assert_eq!(r.take_opt_u64().unwrap(), None);
        assert_eq!(r.take_bytes().unwrap(), b"abc");
        assert_eq!(r.take_str().unwrap(), "path-oram");
        r.finish().unwrap();
    }

    #[test]
    fn truncated_reads_are_typed_errors() {
        let mut w = SnapWriter::new();
        w.put_u32(1);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.take_u64(), Err(SnapError::Truncated));
        let mut r = SnapReader::new(&bytes);
        r.take_u32().unwrap();
        assert_eq!(r.take_u8(), Err(SnapError::Truncated));
    }

    #[test]
    fn bogus_lengths_are_rejected_before_allocation() {
        let mut w = SnapWriter::new();
        w.put_u64(u64::MAX); // absurd sequence length
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.take_seq_len(8), Err(SnapError::Truncated));
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.take_bytes(), Err(SnapError::Truncated));
    }

    #[test]
    fn bad_bool_is_corrupt() {
        let bytes = [9u8];
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.take_bool(), Err(SnapError::Corrupt("bool byte")));
    }

    #[test]
    fn snapshot_frame_round_trip() {
        let payload = b"some state".to_vec();
        let frame = encode_snapshot(0xF00D, 42, &payload);
        let (h, p) = decode_snapshot(&frame).unwrap();
        assert_eq!(h.version, SNAP_VERSION);
        assert_eq!(h.fingerprint, 0xF00D);
        assert_eq!(h.slots_done, 42);
        assert_eq!(p, payload.as_slice());
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let frame = encode_snapshot(0xF00D, 42, b"state bytes");
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode_snapshot(&bad).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn truncated_frame_is_detected() {
        let frame = encode_snapshot(1, 2, b"payload");
        for cut in 0..frame.len() {
            assert!(decode_snapshot(&frame[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn wrong_magic_and_version() {
        let mut frame = encode_snapshot(1, 2, b"x");
        frame[0] = b'X';
        assert_eq!(decode_snapshot(&frame).unwrap_err(), SnapError::BadMagic);
        let mut frame = encode_snapshot(1, 2, b"x");
        frame[8] = 0xFF;
        assert!(matches!(
            decode_snapshot(&frame).unwrap_err(),
            SnapError::BadVersion(_)
        ));
    }

    #[test]
    fn persist_load_and_header_poll() {
        let dir = std::env::temp_dir().join(format!("iroram-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cell.snap");
        persist(&path, 0xAB, 7, b"hello state").unwrap();
        let (h, p) = load(&path).unwrap().expect("snapshot written");
        assert_eq!((h.fingerprint, h.slots_done), (0xAB, 7));
        assert_eq!(p, b"hello state");
        let h2 = read_header(&path).unwrap().expect("header readable");
        assert_eq!(h2, h);
        // Overwrite in place: persist replaces atomically.
        persist(&path, 0xAB, 9, b"later state").unwrap();
        let (h3, p3) = load(&path).unwrap().unwrap();
        assert_eq!(h3.slots_done, 9);
        assert_eq!(p3, b"later state");
        // Absent file is None, not an error.
        assert_eq!(load(&dir.join("nope.snap")).unwrap(), None);
        assert_eq!(read_header(&dir.join("nope.snap")).unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_file_on_disk_is_rejected() {
        let dir = std::env::temp_dir().join(format!("iroram-snapc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cell.snap");
        persist(&path, 1, 1, b"payload").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(load(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
