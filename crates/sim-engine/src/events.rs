//! A stable pending-event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Cycle;

/// A time-ordered queue of pending simulation events.
///
/// Events scheduled for the same cycle pop in insertion (FIFO) order, which
/// keeps simulations deterministic regardless of heap internals.
///
/// # Examples
///
/// ```
/// use iroram_sim_engine::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle(7), "late");
/// q.push(Cycle(3), "early");
/// q.push(Cycle(3), "early-second");
/// assert_eq!(q.pop(), Some((Cycle(3), "early")));
/// assert_eq!(q.pop(), Some((Cycle(3), "early-second")));
/// assert_eq!(q.pop(), Some((Cycle(7), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first, then
        // lowest-sequence-first for FIFO stability.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: Cycle, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Returns the time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the earliest event only if it is due at or before
    /// `now`.
    pub fn pop_due(&mut self, now: Cycle) -> Option<(Cycle, E)> {
        if self.peek_time().is_some_and(|t| t <= now) {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> Extend<(Cycle, E)> for EventQueue<E> {
    fn extend<T: IntoIterator<Item = (Cycle, E)>>(&mut self, iter: T) {
        for (t, e) in iter {
            self.push(t, e);
        }
    }
}

impl<E> FromIterator<(Cycle, E)> for EventQueue<E> {
    fn from_iter<T: IntoIterator<Item = (Cycle, E)>>(iter: T) -> Self {
        let mut q = EventQueue::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(Cycle(30), 3);
        q.push(Cycle(10), 1);
        q.push(Cycle(20), 2);
        assert_eq!(q.pop(), Some((Cycle(10), 1)));
        assert_eq!(q.pop(), Some((Cycle(20), 2)));
        assert_eq!(q.pop(), Some((Cycle(30), 3)));
    }

    #[test]
    fn fifo_within_same_time() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle(5), i)));
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(Cycle(10), 'a');
        assert_eq!(q.pop_due(Cycle(9)), None);
        assert_eq!(q.pop_due(Cycle(10)), Some((Cycle(10), 'a')));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_len_clear() {
        let mut q: EventQueue<u8> = [(Cycle(4), 1u8), (Cycle(2), 2)].into_iter().collect();
        assert_eq!(q.peek_time(), Some(Cycle(2)));
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
