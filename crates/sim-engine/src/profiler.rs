//! Wall-clock phase profiler for the simulator's steady-state loop.
//!
//! Breaks a run into four phases — DRAM scheduling, stash/protocol work,
//! position-map resolution, and LLC lookups — and accumulates the wall time
//! spent in each. **Profiling never touches reports**: it measures the
//! *simulator's* time (like `perfstat`), is disabled by default, and when
//! enabled only reads clocks and counters outside all simulated state, so
//! every report stays byte-identical with profiling on or off.
//!
//! The accumulators are process-global atomics: `--jobs N` workers add into
//! the same pools, so the table reflects total time across the worker pool.
//!
//! Instrumented code holds a [`PhaseGuard`]:
//!
//! ```
//! use iroram_sim_engine::profiler::{self, Phase};
//! profiler::set_enabled(true);
//! {
//!     let _p = profiler::enter(Phase::DramSchedule);
//!     // ... scheduling work ...
//! }
//! profiler::set_enabled(false);
//! assert_eq!(profiler::snapshot()[Phase::DramSchedule as usize].calls, 1);
//! profiler::reset();
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
// Wall-clock use is this module's whole purpose; it never feeds a report.
// lint: allow(determinism, profiler measures the simulator's wall time only; output is gated behind --profile and excluded from all reports)
use std::time::Instant;

/// Number of [`Phase`] variants.
pub const PHASES: usize = 4;

/// A steady-state phase of the timed simulation loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// FR-FCFS batch scheduling and path request generation.
    DramSchedule = 0,
    /// Functional protocol work: path reads into the stash, write-back
    /// planning, background eviction.
    Stash = 1,
    /// Recursive position-map resolution and PosMap block fetches.
    PosMap = 2,
    /// LLC/L1 hierarchy lookups on the CPU side.
    Llc = 3,
}

impl Phase {
    /// All phases, in table order.
    pub const ALL: [Phase; PHASES] = [
        Phase::DramSchedule,
        Phase::Stash,
        Phase::PosMap,
        Phase::Llc,
    ];

    /// Human-readable phase name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::DramSchedule => "dram-schedule",
            Phase::Stash => "stash",
            Phase::PosMap => "posmap",
            Phase::Llc => "llc",
        }
    }
}

// lint: allow(thread-order, opt-in stderr diagnostics; figure outputs never read these counters)
static ENABLED: AtomicBool = AtomicBool::new(false);
// lint: allow(thread-order, opt-in stderr diagnostics; figure outputs never read these counters)
static NANOS: [AtomicU64; PHASES] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];
// lint: allow(thread-order, opt-in stderr diagnostics; figure outputs never read these counters)
static CALLS: [AtomicU64; PHASES] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Turns profiling on or off (off is the default; a disabled guard costs
/// one relaxed atomic load).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether profiling is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zeroes all phase accumulators (e.g. between per-scheme measurements).
pub fn reset() {
    for i in 0..PHASES {
        NANOS[i].store(0, Ordering::Relaxed);
        CALLS[i].store(0, Ordering::Relaxed);
    }
}

/// Accumulated totals for one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseStat {
    /// Which phase.
    pub phase: Phase,
    /// Total wall time spent, in nanoseconds.
    pub nanos: u64,
    /// Number of guarded sections entered.
    pub calls: u64,
}

impl PhaseStat {
    /// Total seconds spent in the phase.
    pub fn seconds(&self) -> f64 {
        self.nanos as f64 / 1e9
    }
}

/// Reads the current accumulators, indexed by `Phase as usize`.
pub fn snapshot() -> [PhaseStat; PHASES] {
    Phase::ALL.map(|phase| PhaseStat {
        phase,
        nanos: NANOS[phase as usize].load(Ordering::Relaxed),
        calls: CALLS[phase as usize].load(Ordering::Relaxed),
    })
}

/// An RAII phase timer: created by [`enter`], adds its elapsed wall time to
/// the phase's accumulator on drop. Inert (and nearly free) while profiling
/// is disabled.
#[must_use = "the guard times the scope it lives in"]
#[derive(Debug)]
pub struct PhaseGuard {
    // lint: allow(determinism, wall-time capture is the profiler's function; never report-visible)
    start: Option<(Phase, Instant)>,
}

/// Starts timing `phase` (no-op when profiling is disabled).
pub fn enter(phase: Phase) -> PhaseGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return PhaseGuard { start: None };
    }
    // lint: allow(determinism, wall-time capture is the profiler's function; never report-visible)
    let started = Instant::now();
    PhaseGuard {
        start: Some((phase, started)),
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if let Some((phase, start)) = self.start.take() {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            NANOS[phase as usize].fetch_add(nanos, Ordering::Relaxed);
            CALLS[phase as usize].fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global accumulators are shared across the test binary's threads,
    // so these tests tolerate concurrent increments: they assert deltas on
    // phases no other test touches.

    #[test]
    fn disabled_guard_records_nothing() {
        set_enabled(false);
        let before = snapshot()[Phase::Llc as usize].calls;
        {
            let _p = enter(Phase::Llc);
        }
        assert_eq!(snapshot()[Phase::Llc as usize].calls, before);
    }

    #[test]
    fn enabled_guard_accumulates_calls_and_time() {
        let before = snapshot()[Phase::PosMap as usize];
        set_enabled(true);
        {
            let _p = enter(Phase::PosMap);
            std::hint::black_box(0u64);
        }
        set_enabled(false);
        let after = snapshot()[Phase::PosMap as usize];
        assert_eq!(after.calls, before.calls + 1);
        assert!(after.nanos >= before.nanos);
    }

    #[test]
    fn phase_names_are_distinct() {
        let names: std::collections::BTreeSet<&str> =
            Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), PHASES);
    }
}
