//! Pacing state for a k-deep access pipeline.
//!
//! A serial timed controller floors each slot's issue time at the read
//! completion of the *immediately preceding* access. A k-deep pipeline
//! relaxes that to the access `k` slots back: up to `k` accesses may be in
//! flight, and the issue rate is bounded by the slowest window of `k`
//! consecutive reads instead of every single one. [`FloorRing`] is the
//! domain-neutral piece of that rule — a bounded FIFO of read-completion
//! floors whose front (once full) is the pacing floor for the next slot.
//!
//! At depth 1 the ring holds exactly the last floor, so
//! `(t + T).max(ring.floor())` reproduces the serial pacing rule
//! byte-for-byte — which is what lets the pipelined controllers keep their
//! depth-1 reports identical to the serial twin.

use std::collections::VecDeque;

use crate::checkpoint::{SnapError, SnapReader, SnapWriter};
use crate::Cycle;

/// Bounded FIFO of per-access read floors implementing the depth-k pacing
/// rule (see the module docs).
///
/// # Examples
///
/// ```
/// use iroram_sim_engine::{Cycle, FloorRing};
///
/// // Depth 2: the first access imposes no floor on the second...
/// let mut ring = FloorRing::new(2);
/// ring.push(Cycle(100));
/// assert_eq!(ring.floor(), Cycle::ZERO);
/// // ...but it floors the third.
/// ring.push(Cycle(250));
/// assert_eq!(ring.floor(), Cycle(100));
/// ring.push(Cycle(400));
/// assert_eq!(ring.floor(), Cycle(250));
/// ```
#[derive(Debug, Clone)]
pub struct FloorRing {
    // lint: allow(snapshot-drift, configuration; restore validates the snapshot against it)
    depth: usize,
    floors: VecDeque<Cycle>,
}

impl FloorRing {
    /// Creates a ring of capacity `depth`; `0` is clamped to `1` (a
    /// deserialized config may carry the field-absent default).
    pub fn new(depth: u32) -> Self {
        let depth = depth.max(1) as usize;
        FloorRing {
            depth,
            floors: VecDeque::with_capacity(depth),
        }
    }

    /// The configured pipeline depth (always ≥ 1).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of floors currently held (≤ depth).
    pub fn len(&self) -> usize {
        self.floors.len()
    }

    /// True when no access has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.floors.is_empty()
    }

    /// Records the read floor of a just-issued access, evicting the oldest
    /// floor once more than `depth` are held.
    pub fn push(&mut self, floor: Cycle) {
        if self.floors.len() == self.depth {
            self.floors.pop_front();
        }
        self.floors.push_back(floor);
    }

    /// The pacing floor for the next slot: [`Cycle::ZERO`] while fewer than
    /// `depth` accesses are in flight, the oldest recorded floor once the
    /// ring is full. At depth 1 this is always the last pushed floor.
    pub fn floor(&self) -> Cycle {
        if self.floors.len() < self.depth {
            Cycle::ZERO
        } else {
            self.floors.front().copied().unwrap_or(Cycle::ZERO)
        }
    }

    /// Forgets all recorded floors (e.g. on controller reset).
    pub fn clear(&mut self) {
        self.floors.clear();
    }

    /// Serializes the recorded floors for a checkpoint (the depth comes
    /// from configuration and is not written).
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_usize(self.floors.len());
        for f in &self.floors {
            w.put_u64(f.raw());
        }
    }

    /// Restores the floors captured by [`FloorRing::save_state`].
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncation, or [`SnapError::Corrupt`] if the
    /// snapshot holds more floors than this ring's configured depth.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.take_seq_len(8)?;
        if n > self.depth {
            return Err(SnapError::Corrupt("FloorRing overfull"));
        }
        self.floors.clear();
        for _ in 0..n {
            self.floors.push_back(Cycle(r.take_u64()?));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_one_reproduces_the_serial_rule() {
        let mut ring = FloorRing::new(1);
        assert_eq!(ring.floor(), Cycle::ZERO);
        for f in [100u64, 250, 90, 4000] {
            ring.push(Cycle(f));
            assert_eq!(ring.floor(), Cycle(f), "depth 1 floor must be the last push");
        }
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn zero_depth_clamps_to_one() {
        let ring = FloorRing::new(0);
        assert_eq!(ring.depth(), 1);
    }

    #[test]
    fn floor_is_zero_until_full_then_oldest() {
        let mut ring = FloorRing::new(3);
        ring.push(Cycle(10));
        ring.push(Cycle(20));
        assert_eq!(ring.floor(), Cycle::ZERO, "not full yet");
        ring.push(Cycle(30));
        assert_eq!(ring.floor(), Cycle(10));
        ring.push(Cycle(40));
        assert_eq!(ring.floor(), Cycle(20), "oldest floor evicted on push");
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn clear_resets_to_empty() {
        let mut ring = FloorRing::new(2);
        ring.push(Cycle(5));
        ring.push(Cycle(6));
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.floor(), Cycle::ZERO);
    }
}
