//! Discrete-event simulation kernel for the IR-ORAM reproduction.
//!
//! This crate provides the domain-neutral pieces every simulator in the
//! workspace builds on:
//!
//! * [`Cycle`] — a newtype for simulated time, with clock-domain conversion
//!   via [`ClockRatio`] (the CPU runs at 3.2 GHz while DDR3-1600 DRAM runs at
//!   800 MHz in the paper's Table I).
//! * [`SimRng`] — a deterministic, seedable xoshiro256++ generator so every
//!   experiment is exactly reproducible from its seed.
//! * [`EventQueue`] — a stable (FIFO-within-same-time) pending-event set.
//! * [`stats`] — counters, histograms and running statistics with a named
//!   registry used by the experiment harness to export results.
//!
//! # Examples
//!
//! ```
//! use iroram_sim_engine::{Cycle, EventQueue, SimRng};
//!
//! let mut q = EventQueue::new();
//! q.push(Cycle(10), "b");
//! q.push(Cycle(5), "a");
//! assert_eq!(q.pop(), Some((Cycle(5), "a")));
//!
//! let mut rng = SimRng::seed_from(42);
//! let x = rng.gen_range(0..100);
//! assert!(x < 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
mod cycles;
mod events;
mod faults;
mod pipeline;
pub mod profiler;
mod rng;
pub mod stats;

pub use checkpoint::{SnapError, SnapReader, SnapWriter};
pub use cycles::{ClockRatio, Cycle};
pub use events::EventQueue;
pub use faults::{FaultConfig, FaultPlan, InjectedFaults};
pub use pipeline::FloorRing;
pub use rng::SimRng;
