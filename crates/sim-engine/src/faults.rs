//! Deterministic, seeded fault injection.
//!
//! A [`FaultConfig`] describes *rates* for four fault classes; a
//! [`FaultPlan`] turns those rates plus a seed into a concrete, reproducible
//! fault sequence. The plan owns its own [`SimRng`] stream, so enabling
//! faults never perturbs the simulator's other random streams, and a
//! configuration with every rate at zero produces **no plan at all**
//! ([`FaultPlan::new`] returns `None`): a zero-rate run is bit-identical to
//! a run built before this module existed.
//!
//! Determinism contract: the fault sequence is a pure function of
//! `(FaultConfig, base_seed)`. Cells in a parallel sweep each build their
//! plan from their own cell seed, so the same faults strike the same cells
//! at any `--jobs N`. Retries of a transient-faulted cell mix the attempt
//! number into the stream, so attempt 2 deterministically sees a *different*
//! (but still reproducible) fault sequence than attempt 1.
//!
//! The fault classes (the consumer decides what each draw means — this
//! module knows nothing about tree geometry or trace formats):
//!
//! * **DRAM line corruption** — with probability `dram_corruption` per path
//!   slot, one stored line's payload is XORed with a random nonzero mask
//!   (models a bit-flip in off-chip memory; IRO's threat model).
//! * **Transient bank stall** — with probability `bank_stall` per path slot,
//!   the path's DRAM batch arrival is delayed by `bank_stall_dram_cycles`
//!   (models a refresh/thermal stall; pure timing, no data effect).
//! * **Stash-pressure storm** — with probability `stash_storm` per slot, a
//!   storm begins: background eviction is suppressed for `storm_slots`
//!   consecutive slots, forcing the stash to absorb the pressure.
//! * **Trace mangling** — with probability `trace_mangle` per trace record,
//!   the record's address is replaced with an out-of-range value (models a
//!   corrupted trace file the front end must reject gracefully).

use serde::{Deserialize, Serialize};

use crate::checkpoint::{SnapError, SnapReader, SnapWriter};
use crate::SimRng;

/// Fault rates and magnitudes. Plain data, defaulting to all-zero (no
/// faults). Wire it through the system configuration; build a [`FaultPlan`]
/// from it at simulation start.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Salt mixed into the plan's RNG stream (lets two plans built from the
    /// same base seed — e.g. a controller-level and a trace-level plan —
    /// draw independently).
    pub seed: u64,
    /// Retry attempt number, mixed into the stream so a deterministic retry
    /// of a transient-faulted cell sees a fresh fault sequence.
    pub attempt: u32,
    /// Per-path-slot probability of corrupting one stored DRAM line.
    pub dram_corruption: f64,
    /// Per-path-slot probability of a transient bank stall.
    pub bank_stall: f64,
    /// Extra DRAM-clock cycles a stalled path's batch arrival is delayed by.
    pub bank_stall_dram_cycles: u64,
    /// Per-slot probability that a stash-pressure storm begins.
    pub stash_storm: f64,
    /// Number of consecutive slots a storm suppresses background eviction.
    pub storm_slots: u64,
    /// Per-trace-record probability of mangling the record's address.
    pub trace_mangle: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

impl FaultConfig {
    /// No faults: every rate zero. A plan built from this config is `None`.
    pub fn none() -> Self {
        FaultConfig {
            seed: 0,
            attempt: 0,
            dram_corruption: 0.0,
            bank_stall: 0.0,
            bank_stall_dram_cycles: 64,
            stash_storm: 0.0,
            storm_slots: 32,
            trace_mangle: 0.0,
        }
    }

    /// Whether any fault class has a nonzero rate.
    pub fn is_active(&self) -> bool {
        self.dram_corruption > 0.0
            || self.bank_stall > 0.0
            || self.stash_storm > 0.0
            || self.trace_mangle > 0.0
    }
}

/// Counters for faults actually injected by one plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedFaults {
    /// DRAM lines corrupted.
    pub corruptions: u64,
    /// Transient bank stalls injected.
    pub stalls: u64,
    /// Total extra DRAM cycles added by stalls.
    pub stall_cycles: u64,
    /// Stash-pressure storms begun.
    pub storms: u64,
    /// Trace records mangled.
    pub mangled_records: u64,
}

/// A concrete fault sequence: the config's rates bound to one seeded RNG
/// stream. Build with [`FaultPlan::new`]; query once per slot / record.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    // lint: allow(snapshot-drift, configuration, fixed at construction for the whole run)
    cfg: FaultConfig,
    rng: SimRng,
    /// Remaining slots of the storm in progress (0 = no storm).
    storm_left: u64,
    injected: InjectedFaults,
}

impl FaultPlan {
    /// Builds a plan for this config seeded from `base_seed`, or `None` if
    /// every rate is zero (so inactive configs cost nothing and cannot
    /// perturb a run).
    pub fn new(cfg: &FaultConfig, base_seed: u64) -> Option<FaultPlan> {
        if !cfg.is_active() {
            return None;
        }
        let mixed = base_seed
            ^ cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (cfg.attempt as u64).wrapping_mul(0xD134_2543_DE82_EF95);
        Some(FaultPlan {
            cfg: cfg.clone(),
            rng: SimRng::seed_from(mixed),
            storm_left: 0,
            injected: InjectedFaults::default(),
        })
    }

    /// The config this plan was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Counters for faults injected so far.
    pub fn injected(&self) -> InjectedFaults {
        self.injected
    }

    /// Per-slot corruption decision: `Some((pick, mask))` when a line should
    /// be corrupted this slot, where `pick` is a uniform draw in
    /// `[0, u64::MAX]` for the consumer to map onto a storage location, and
    /// `mask` is a nonzero XOR mask for the payload.
    pub fn corrupt_line(&mut self) -> Option<(u64, u64)> {
        if self.cfg.dram_corruption > 0.0 && self.rng.chance(self.cfg.dram_corruption) {
            let pick = self.rng.next_u64();
            let mask = self.rng.next_u64() | 1; // never the identity mask
            self.injected.corruptions += 1;
            Some((pick, mask))
        } else {
            None
        }
    }

    /// Per-slot stall decision: extra DRAM cycles to delay this path's batch
    /// arrival by (0 = no stall).
    pub fn bank_stall(&mut self) -> u64 {
        if self.cfg.bank_stall > 0.0 && self.rng.chance(self.cfg.bank_stall) {
            self.injected.stalls += 1;
            self.injected.stall_cycles += self.cfg.bank_stall_dram_cycles;
            self.cfg.bank_stall_dram_cycles
        } else {
            0
        }
    }

    /// Per-slot storm decision: advances the storm state machine and
    /// returns `true` while a storm is suppressing background eviction.
    pub fn storm_active(&mut self) -> bool {
        if self.storm_left > 0 {
            self.storm_left -= 1;
            return true;
        }
        if self.cfg.stash_storm > 0.0 && self.rng.chance(self.cfg.stash_storm) {
            self.injected.storms += 1;
            self.storm_left = self.cfg.storm_slots.saturating_sub(1);
            return true;
        }
        false
    }

    /// Serializes the plan's mutable cursor (RNG stream position, storm
    /// state, injected counters) for a checkpoint. The config is not
    /// written: a restored plan is rebuilt from the run configuration and
    /// then has this state overlaid.
    pub fn save_state(&self, w: &mut SnapWriter) {
        for s in self.rng.state() {
            w.put_u64(s);
        }
        w.put_u64(self.storm_left);
        w.put_u64(self.injected.corruptions);
        w.put_u64(self.injected.stalls);
        w.put_u64(self.injected.stall_cycles);
        w.put_u64(self.injected.storms);
        w.put_u64(self.injected.mangled_records);
    }

    /// Restores the cursor captured by [`FaultPlan::save_state`], resuming
    /// the fault sequence exactly where the snapshot left it.
    ///
    /// # Errors
    ///
    /// [`SnapError`] if the snapshot bytes are truncated or corrupt.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let s = [r.take_u64()?, r.take_u64()?, r.take_u64()?, r.take_u64()?];
        self.rng = SimRng::from_state(s);
        self.storm_left = r.take_u64()?;
        self.injected = InjectedFaults {
            corruptions: r.take_u64()?,
            stalls: r.take_u64()?,
            stall_cycles: r.take_u64()?,
            storms: r.take_u64()?,
            mangled_records: r.take_u64()?,
        };
        Ok(())
    }

    /// Per-record mangling decision: `Some(raw)` when this trace record's
    /// address should be replaced, where `raw` is a uniform draw the
    /// consumer maps onto an out-of-range address.
    pub fn mangle_record(&mut self) -> Option<u64> {
        if self.cfg.trace_mangle > 0.0 && self.rng.chance(self.cfg.trace_mangle) {
            self.injected.mangled_records += 1;
            Some(self.rng.next_u64())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn active_cfg() -> FaultConfig {
        FaultConfig {
            seed: 7,
            dram_corruption: 0.3,
            bank_stall: 0.2,
            stash_storm: 0.1,
            trace_mangle: 0.05,
            ..FaultConfig::none()
        }
    }

    #[test]
    fn zero_rate_config_builds_no_plan() {
        assert!(!FaultConfig::none().is_active());
        assert!(FaultPlan::new(&FaultConfig::none(), 123).is_none());
    }

    #[test]
    fn same_seed_same_sequence() {
        let cfg = active_cfg();
        let mut a = FaultPlan::new(&cfg, 42).unwrap();
        let mut b = FaultPlan::new(&cfg, 42).unwrap();
        for _ in 0..500 {
            assert_eq!(a.corrupt_line(), b.corrupt_line());
            assert_eq!(a.bank_stall(), b.bank_stall());
            assert_eq!(a.storm_active(), b.storm_active());
            assert_eq!(a.mangle_record(), b.mangle_record());
        }
        assert_eq!(a.injected(), b.injected());
    }

    #[test]
    fn different_attempts_differ() {
        let cfg = active_cfg();
        let retry = FaultConfig {
            attempt: 1,
            ..cfg.clone()
        };
        let mut a = FaultPlan::new(&cfg, 42).unwrap();
        let mut b = FaultPlan::new(&retry, 42).unwrap();
        let seq_a: Vec<_> = (0..64).map(|_| a.corrupt_line()).collect();
        let seq_b: Vec<_> = (0..64).map(|_| b.corrupt_line()).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn storm_runs_for_configured_slots() {
        let cfg = FaultConfig {
            stash_storm: 1.0,
            storm_slots: 4,
            ..FaultConfig::none()
        };
        let mut plan = FaultPlan::new(&cfg, 1).unwrap();
        // Every slot is active: the first draw starts a 4-slot storm, and
        // with rate 1.0 a new storm begins the moment one ends.
        for _ in 0..16 {
            assert!(plan.storm_active());
        }
        // Storms counted once per storm, not per slot: 16 slots / 4 per storm.
        assert_eq!(plan.injected().storms, 4);
    }

    #[test]
    fn masks_are_never_identity() {
        let cfg = FaultConfig {
            dram_corruption: 1.0,
            ..FaultConfig::none()
        };
        let mut plan = FaultPlan::new(&cfg, 9).unwrap();
        for _ in 0..256 {
            let (_, mask) = plan.corrupt_line().unwrap();
            assert_ne!(mask, 0);
        }
        assert_eq!(plan.injected().corruptions, 256);
    }

    #[test]
    fn stall_accounting_matches_draws() {
        let cfg = FaultConfig {
            bank_stall: 1.0,
            bank_stall_dram_cycles: 10,
            ..FaultConfig::none()
        };
        let mut plan = FaultPlan::new(&cfg, 3).unwrap();
        for _ in 0..5 {
            assert_eq!(plan.bank_stall(), 10);
        }
        assert_eq!(plan.injected().stalls, 5);
        assert_eq!(plan.injected().stall_cycles, 50);
    }
}
