//! Fixture bank with a seeded snapshot-coverage gap.

pub struct Bank {
    pub open_row: u64,
    /// Seeded drift: mutated every cycle but absent from the snapshot.
    pub open_cycles: u64,
}

impl Bank {
    pub fn save_state(&self, w: &mut Vec<u64>) {
        w.push(self.open_row);
    }

    pub fn restore_state(&mut self, r: &[u64]) {
        self.open_row = r[0];
    }
}
