//! Fixture crate root.
pub mod bank;
pub mod system;
