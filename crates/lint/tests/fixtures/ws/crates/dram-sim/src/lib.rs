//! Fixture crate root.
pub mod system;
