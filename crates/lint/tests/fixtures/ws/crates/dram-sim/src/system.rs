//! Fixture hot-path file with an annotated (declared-invariant) site.

pub fn peek(v: &[u64]) -> u64 {
    // lint: allow(panic, fixture invariant - v is never empty here)
    v[0]
}
