//! Fixture: clean hot-path module (the KV shard store).

pub fn probe(slot: u64, mask: u64) -> u64 {
    slot & mask
}
