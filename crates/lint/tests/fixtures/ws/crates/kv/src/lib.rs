//! Fixture: clean report-affecting crate (the KV service layer).

pub fn shard_of(key: u64, shards: u64) -> u64 {
    key % shards
}
