//! Fixture journal: fingerprint covers seed and t_interval only.

pub fn fingerprint(seed: u64, t_interval: u64) -> u64 {
    seed ^ t_interval
}
