//! Fixture crate root.
pub mod journal;
pub mod runner;
pub mod workers;
