//! Fixture crate root.
pub mod journal;
pub mod runner;
