//! Fixture runner (no extra CLI strings).

pub fn parse() -> u64 {
    0
}
