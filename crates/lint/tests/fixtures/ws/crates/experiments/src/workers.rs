//! Fixture with a seeded unscoped spawn.

pub fn fan_out() {
    std::thread::spawn(|| {});
}
