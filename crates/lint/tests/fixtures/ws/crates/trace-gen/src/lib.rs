//! Fixture: clean report-affecting crate.

pub fn trace() -> u64 {
    7
}
