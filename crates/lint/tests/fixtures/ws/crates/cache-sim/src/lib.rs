//! Fixture crate root.
pub mod cache;
