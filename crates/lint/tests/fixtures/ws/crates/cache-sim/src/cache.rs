//! Fixture hot-path file, clean (zero budget, zero sites).

pub fn lookup(x: Option<u64>) -> u64 {
    x.unwrap_or(0)
}

/// A stale exemption: nothing near it trips the determinism pass.
pub fn stale() -> u64 {
    // lint: allow(determinism, stale fixture exemption that suppresses nothing)
    9
}
