//! Fixture hot-path file, clean (zero budget, zero sites).

pub fn lookup(x: Option<u64>) -> u64 {
    x.unwrap_or(0)
}
