//! Fixture hot-path file with a seeded secret-dependent branch.

pub fn access() -> u64 {
    4
}

pub fn serve(b: &Block) -> u64 {
    if b.payload > 0 {
        1
    } else {
        0
    }
}
