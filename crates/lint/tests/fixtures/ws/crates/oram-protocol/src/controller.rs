//! Fixture hot-path file, clean.

pub fn access() -> u64 {
    4
}
