//! Fixture crate root.
pub mod controller;
pub mod stash;
