//! Fixture hot-path file with a seeded panic-ratchet regression.

pub fn take(x: Option<u64>) -> u64 {
    x.unwrap()
}
