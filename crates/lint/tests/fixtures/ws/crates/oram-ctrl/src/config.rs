//! Fixture config with a seeded config-drift violation.

pub struct SystemConfig {
    /// Documented and covered everywhere.
    pub seed: u64,
    pub t_interval: u64,
    /// Covered nowhere: the seeded drift.
    pub ghost_knob: u64,
}

impl SystemConfig {
    pub fn set_field(&mut self, key: &str, value: &str) -> Result<(), String> {
        match key {
            "seed" => self.seed = value.parse().map_err(|_| "bad".to_owned())?,
            "t_interval" => self.t_interval = value.parse().map_err(|_| "bad".to_owned())?,
            _ => return Err("unknown".to_owned()),
        }
        Ok(())
    }
}
