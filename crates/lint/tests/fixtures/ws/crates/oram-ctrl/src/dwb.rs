//! Fixture hot-path file, clean.

pub fn convert() -> u64 {
    2
}
