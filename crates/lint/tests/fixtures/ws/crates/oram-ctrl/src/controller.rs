//! Fixture hot-path file, clean.

pub fn step() -> u64 {
    1
}
