//! Fixture hot-path file, clean (and the reach pass's first entry point).

pub fn step() -> u64 {
    1
}

/// Per-slot entry point: reaches the seeded unwrap in
/// `sim-engine/src/reach_helper.rs` through the cross-crate call graph.
pub fn process_slot(x: Option<u64>) -> u64 {
    helper_fetch(x)
}
