//! Fixture crate root.
pub mod config;
pub mod controller;
pub mod dwb;
pub mod rho;
