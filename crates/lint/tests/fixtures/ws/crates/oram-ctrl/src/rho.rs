//! Fixture hot-path file, clean.

pub fn issue() -> u64 {
    3
}
