//! Fixture hot-path file, clean (and the reach pass's second entry point).

pub fn issue() -> u64 {
    3
}

/// Per-slot entry point with no reachable panic sites.
pub fn process_slot() -> u64 {
    issue()
}
