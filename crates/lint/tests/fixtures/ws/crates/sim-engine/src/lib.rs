//! Fixture: report-affecting crate with a seeded determinism violation.

pub fn engine() -> u64 {
    let m = std::collections::HashMap::<u64, u64>::new();
    m.len() as u64
}
