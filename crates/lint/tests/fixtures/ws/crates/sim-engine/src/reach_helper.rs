//! Fixture helper with a seeded panic site reachable from `process_slot`.

pub fn helper_fetch(x: Option<u64>) -> u64 {
    x.unwrap()
}
