//! End-to-end self-tests: run the full lint over the seeded fixture
//! workspace (`tests/fixtures/ws`) and over the real repository.
//!
//! The fixture plants exactly one violation per rule:
//! * determinism — a `HashMap` construction in `sim-engine/src/lib.rs:4`;
//! * panic — one `unwrap` in `oram-protocol/src/stash.rs` against a
//!   zero budget;
//! * config — `SystemConfig::ghost_knob` (line 8) absent from the
//!   fingerprint, the `--set` table, and `DESIGN.md` (three findings);
//! * secret-flow — a branch on `.payload` in
//!   `oram-protocol/src/controller.rs:8`;
//! * snapshot-drift — `Bank::open_cycles` (`dram-sim/src/bank.rs:6`)
//!   absent from both `save_state` and `restore_state`;
//! * panic-reach — an `unwrap` in `sim-engine/src/reach_helper.rs:4`
//!   reachable from `process_slot` against a zero `reach:` budget;
//! * thread-order — a `std::thread::spawn` in
//!   `experiments/src/workers.rs:4`;
//! * annotation — a stale `lint: allow(determinism)` in
//!   `cache-sim/src/cache.rs:9` that suppresses nothing.

use std::path::{Path, PathBuf};

use iroram_lint::{run, Finding};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn by_rule<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn fixture_reports_each_seeded_violation_at_its_line() {
    let out = run(&fixture_root(), false).expect("fixture lint runs");

    let det = by_rule(&out.findings, "determinism");
    assert_eq!(det.len(), 1, "{det:?}");
    assert_eq!(det[0].file, "crates/sim-engine/src/lib.rs");
    assert_eq!(det[0].line, 4);
    assert!(det[0].message.contains("HashMap"));

    let panics = by_rule(&out.findings, "panic");
    assert_eq!(panics.len(), 1, "{panics:?}");
    assert_eq!(panics[0].file, "crates/oram-protocol/src/stash.rs");
    assert!(panics[0].message.contains("1 unannotated `unwrap`"));
    assert!(panics[0].message.contains("ratchet allows 0"));

    let config = by_rule(&out.findings, "config");
    assert_eq!(config.len(), 3, "{config:?}");
    for f in &config {
        assert_eq!(f.file, "crates/oram-ctrl/src/config.rs");
        assert_eq!(f.line, 8, "{f:?}");
        assert!(f.message.contains("ghost_knob"));
    }
    assert!(config.iter().any(|f| f.message.contains("fingerprint")));
    assert!(config.iter().any(|f| f.message.contains("CLI")));
    assert!(config.iter().any(|f| f.message.contains("DESIGN.md")));

    let secret = by_rule(&out.findings, "secret-flow");
    assert_eq!(secret.len(), 1, "{secret:?}");
    assert_eq!(secret[0].file, "crates/oram-protocol/src/controller.rs");
    assert_eq!(secret[0].line, 8);
    assert!(secret[0].message.contains("secret field `.payload`"));
    assert!(secret[0].message.contains("branch condition"));

    let snap = by_rule(&out.findings, "snapshot-drift");
    assert_eq!(snap.len(), 1, "{snap:?}");
    assert_eq!(snap[0].file, "crates/dram-sim/src/bank.rs");
    assert_eq!(snap[0].line, 6);
    assert!(snap[0].message.contains("`open_cycles` of `Bank`"));
    assert!(snap[0].message.contains("save_state and restore_state"));

    let reach = by_rule(&out.findings, "panic-reach");
    assert_eq!(reach.len(), 1, "{reach:?}");
    assert_eq!(reach[0].file, "crates/sim-engine/src/reach_helper.rs");
    assert_eq!(reach[0].line, 4);
    assert!(reach[0].message.contains("1 `unwrap` site(s) reachable"));
    assert!(reach[0].message.contains("ratchet allows 0"));

    let threads = by_rule(&out.findings, "thread-order");
    assert_eq!(threads.len(), 1, "{threads:?}");
    assert_eq!(threads[0].file, "crates/experiments/src/workers.rs");
    assert_eq!(threads[0].line, 4);
    assert!(threads[0].message.contains("`thread::spawn`"));

    let notes = by_rule(&out.findings, "annotation");
    assert_eq!(notes.len(), 1, "{notes:?}");
    assert_eq!(notes[0].file, "crates/cache-sim/src/cache.rs");
    assert_eq!(notes[0].line, 9);
    assert!(notes[0].message.contains("no longer suppresses anything"));

    // Nothing else: the annotated index in dram-sim/system.rs, the
    // `unwrap_or` in cache-sim, the clean `process_slot` chain in rho,
    // and the covered fields are all clean.
    assert_eq!(out.findings.len(), 10, "{:#?}", out.findings);
}

#[test]
fn fixture_findings_are_machine_readable_and_sorted() {
    let out = run(&fixture_root(), false).expect("fixture lint runs");
    let mut sorted = out.findings.clone();
    sorted.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    assert_eq!(out.findings, sorted, "findings must come out sorted");
    for f in &out.findings {
        let line = f.to_string();
        // `file:line rule message`
        let (loc, rest) = line.split_once(' ').expect("has a location field");
        let (file, ln) = loc.rsplit_once(':').expect("location is file:line");
        assert_eq!(file, f.file);
        assert_eq!(ln.parse::<u32>().unwrap(), f.line);
        assert!(rest.starts_with(&f.rule));
    }
}

#[test]
fn json_output_round_trips() {
    let out = run(&fixture_root(), false).expect("fixture lint runs");
    let doc = iroram_lint::json::to_json(&out);
    let parsed = iroram_lint::json::parse_findings(&doc).expect("own JSON parses");
    assert_eq!(parsed, out.findings, "JSON round trip must be lossless");
    assert!(doc.contains("\"files_scanned\""), "{doc}");
}

#[test]
fn fix_ratchet_locks_in_the_seeded_regressions() {
    // Copy the fixture so --fix-ratchet can rewrite its ratchet file.
    let dst = std::env::temp_dir().join(format!("iroram-lint-fix-{}", std::process::id()));
    copy_tree(&fixture_root(), &dst);
    let out = run(&dst, true).expect("fixture lint runs with --fix-ratchet");
    assert!(
        by_rule(&out.findings, "panic").is_empty(),
        "panic pass must be green after --fix-ratchet: {:#?}",
        out.findings
    );
    assert!(
        by_rule(&out.findings, "panic-reach").is_empty(),
        "panic-reach pass must be green after --fix-ratchet: {:#?}",
        out.findings
    );
    // The other passes are untouched by the ratchet rewrite.
    assert_eq!(by_rule(&out.findings, "determinism").len(), 1);
    assert_eq!(by_rule(&out.findings, "config").len(), 3);
    assert_eq!(by_rule(&out.findings, "secret-flow").len(), 1);
    assert_eq!(by_rule(&out.findings, "snapshot-drift").len(), 1);
    assert_eq!(by_rule(&out.findings, "thread-order").len(), 1);
    let locked = std::fs::read_to_string(dst.join("lint-ratchet.toml")).unwrap();
    assert!(locked.contains("unwrap = 1"), "{locked}");
    assert!(
        locked.contains("[\"reach:crates/sim-engine/src/reach_helper.rs\"]"),
        "{locked}"
    );
    std::fs::remove_dir_all(&dst).ok();
}

#[test]
fn the_real_tree_is_clean() {
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf();
    let out = run(&repo_root, false).expect("repo lint runs");
    assert!(
        out.findings.is_empty(),
        "the repository must lint clean:\n{}",
        out.findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(out.files_scanned > 40, "scanned {}", out.files_scanned);
}

fn copy_tree(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.path().is_dir() {
            copy_tree(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}
