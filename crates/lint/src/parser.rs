//! A lightweight item/expression parser on top of the hand-rolled lexer:
//! recovers `fn` items (with body token ranges), `struct` items (with field
//! lists), and `impl`/`trait` block extents — just enough structure for the
//! secret-flow, snapshot-drift and panic-reachability passes to reason
//! about *which function* a token is in, *which type* a method belongs to,
//! and *which fields* a struct declares.
//!
//! Like the lexer, this is deliberately not a full Rust grammar: it tracks
//! bracket depth and a handful of item keywords, and it degrades gracefully
//! (an unparseable construct yields no item, never an error). All ranges
//! are half-open token-index ranges into [`crate::source::SourceFile::tokens`].

use crate::lexer::{TokKind, Token};

/// One `fn` item (free function, method, or trait default method).
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// 1-based line of the name token.
    pub line: u32,
    /// Half-open token range of the body *including* its braces; `None`
    /// for bodyless declarations (trait method signatures).
    pub body: Option<(usize, usize)>,
    /// The `impl`'d type this method belongs to, when declared inside an
    /// inherent or trait `impl` block. `None` for free functions and for
    /// default methods in `trait` declarations.
    pub owner: Option<String>,
}

/// One named field of a struct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// 1-based declaration line.
    pub line: u32,
}

/// One `struct` item. Tuple and unit structs parse with an empty field
/// list.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// 1-based line of the name token.
    pub line: u32,
    /// Named fields, in declaration order.
    pub fields: Vec<FieldDef>,
}

/// The parsed shape of one source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Every `fn` item found, in source order (including nested items and
    /// methods).
    pub fns: Vec<FnDef>,
    /// Every `struct` item found, in source order.
    pub structs: Vec<StructDef>,
}

impl ParsedFile {
    /// All fn defs owned by `type_name` (methods across every `impl` block
    /// for that type in this file).
    pub fn methods_of<'a>(&'a self, type_name: &'a str) -> impl Iterator<Item = &'a FnDef> {
        self.fns
            .iter()
            .filter(move |f| f.owner.as_deref() == Some(type_name))
    }

    /// The struct named `name`, if declared in this file.
    pub fn struct_named(&self, name: &str) -> Option<&StructDef> {
        self.structs.iter().find(|s| s.name == name)
    }

    /// The first fn named `name` that has a body.
    pub fn fn_named(&self, name: &str) -> Option<&FnDef> {
        self.fns.iter().find(|f| f.name == name && f.body.is_some())
    }
}

/// Extent of one `impl` block and the type it targets (used internally to
/// attribute method ownership).
struct ImplSpan {
    type_name: String,
    /// Half-open token range of the impl body including braces.
    body: (usize, usize),
}

/// Parses the token stream of one file.
pub fn parse(tokens: &[Token]) -> ParsedFile {
    let mut out = ParsedFile::default();
    let mut impls: Vec<ImplSpan> = Vec::new();

    // First sweep: impl block extents, so method ownership can be resolved
    // for fns found in the second sweep regardless of nesting order.
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].ident() == Some("impl") {
            if let Some(span) = parse_impl_header(tokens, i) {
                i = span.body.0; // descend into the body (nested impls are rare but legal)
                impls.push(span);
                continue;
            }
        }
        i += 1;
    }

    // Second sweep: fn and struct items.
    let mut i = 0usize;
    while i < tokens.len() {
        match tokens[i].ident() {
            Some("fn") => {
                if let Some((def, next)) = parse_fn(tokens, i, &impls) {
                    // Descend into the body so nested fns/items are found too.
                    i = def.body.map_or(next, |(start, _)| start + 1);
                    out.fns.push(def);
                    continue;
                }
                i += 1;
            }
            Some("struct") => {
                if let Some((def, next)) = parse_struct(tokens, i) {
                    i = next;
                    out.structs.push(def);
                    continue;
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    out
}

/// Parses an `impl` header starting at the `impl` token; returns its span.
fn parse_impl_header(tokens: &[Token], at: usize) -> Option<ImplSpan> {
    // Header runs from after `impl` to the body `{` at bracket depth 0.
    let mut i = at + 1;
    let mut depth = 0i32;
    let mut header_idents: Vec<(usize, String)> = Vec::new();
    let body_open = loop {
        let t = tokens.get(i)?;
        match &t.kind {
            TokKind::Punct(b'(') | TokKind::Punct(b'[') | TokKind::Punct(b'<') => depth += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') => depth -= 1,
            TokKind::Punct(b'>')
                // `->` in an fn-pointer type keeps depth; a bare `>` closes
                // a generic bracket.
                if !tokens.get(i.wrapping_sub(1)).is_some_and(|p| p.is_punct(b'-')) => {
                    depth -= 1;
                }
            TokKind::Punct(b'{') if depth <= 0 => break i,
            TokKind::Punct(b';') if depth <= 0 => return None, // `impl Trait for Type;` — not a block
            TokKind::Ident(s) if depth <= 0 => header_idents.push((i, s.clone())),
            _ => {}
        }
        i += 1;
    };
    // The self type: the last path segment before the body, or — when a
    // `for` is present (`impl Trait for Type`) — the last segment after it.
    let after_for = header_idents
        .iter()
        .position(|(_, s)| s == "for")
        .map(|p| p + 1)
        .unwrap_or(0);
    let type_name = header_idents[after_for..]
        .iter()
        .rfind(|(_, s)| s != "where" && s != "for")
        .map(|(_, s)| s.clone())?;
    let close = matching_brace(tokens, body_open)?;
    Some(ImplSpan {
        type_name,
        body: (body_open, close + 1),
    })
}

/// Parses a `fn` item starting at the `fn` token. Returns the def and the
/// token index to resume scanning at (just past the signature, so callers
/// may descend into the body themselves).
fn parse_fn(tokens: &[Token], at: usize, impls: &[ImplSpan]) -> Option<(FnDef, usize)> {
    let name_tok = tokens.get(at + 1)?;
    let name = name_tok.ident()?.to_owned();
    let line = name_tok.line;
    // Signature runs to a `{` (body) or `;` (bodyless) at bracket depth 0.
    let mut i = at + 2;
    let mut depth = 0i32;
    let body = loop {
        let t = tokens.get(i)?;
        match t.kind {
            TokKind::Punct(b'(') | TokKind::Punct(b'[') | TokKind::Punct(b'<') => depth += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') => depth -= 1,
            TokKind::Punct(b'>')
                if !tokens.get(i.wrapping_sub(1)).is_some_and(|p| p.is_punct(b'-')) => {
                    depth -= 1;
                }
            TokKind::Punct(b'{') if depth <= 0 => {
                let close = matching_brace(tokens, i)?;
                break Some((i, close + 1));
            }
            TokKind::Punct(b';') if depth <= 0 => break None,
            _ => {}
        }
        i += 1;
    };
    let owner = impls
        .iter()
        .filter(|imp| imp.body.0 <= at && at < imp.body.1)
        .min_by_key(|imp| imp.body.1 - imp.body.0) // innermost impl wins
        .map(|imp| imp.type_name.clone());
    let next = body.map_or(i + 1, |(start, _)| start);
    Some((
        FnDef {
            name,
            line,
            body,
            owner,
        },
        next,
    ))
}

/// Parses a `struct` item starting at the `struct` token. Returns the def
/// and the token index just past the item.
fn parse_struct(tokens: &[Token], at: usize) -> Option<(StructDef, usize)> {
    let name_tok = tokens.get(at + 1)?;
    let name = name_tok.ident()?.to_owned();
    let line = name_tok.line;
    // Skip generics / where clause to the body `{`, a tuple `(`, or `;`.
    let mut i = at + 2;
    let mut depth = 0i32;
    loop {
        let t = tokens.get(i)?;
        match t.kind {
            TokKind::Punct(b'<') => depth += 1,
            TokKind::Punct(b'>') => depth -= 1,
            TokKind::Punct(b'{') if depth <= 0 => break,
            TokKind::Punct(b'(') if depth <= 0 => {
                // Tuple struct: skip to the terminating `;`.
                let mut d = 0i32;
                while let Some(t) = tokens.get(i) {
                    match t.kind {
                        TokKind::Punct(b'(') => d += 1,
                        TokKind::Punct(b')') => d -= 1,
                        TokKind::Punct(b';') if d == 0 => {
                            return Some((
                                StructDef {
                                    name,
                                    line,
                                    fields: Vec::new(),
                                },
                                i + 1,
                            ));
                        }
                        _ => {}
                    }
                    i += 1;
                }
                return None;
            }
            TokKind::Punct(b';') if depth <= 0 => {
                // Unit struct.
                return Some((
                    StructDef {
                        name,
                        line,
                        fields: Vec::new(),
                    },
                    i + 1,
                ));
            }
            _ => {}
        }
        i += 1;
    }
    let open = i;
    let close = matching_brace(tokens, open)?;
    let fields = parse_fields(tokens, open + 1, close);
    Some((
        StructDef {
            name,
            line,
            fields,
        },
        close + 1,
    ))
}

/// Parses `pub? name : <type> ,` field declarations between token indices
/// `start` (just after the struct's `{`) and `end` (its `}`), skipping
/// attributes, comments and visibility modifiers.
fn parse_fields(tokens: &[Token], start: usize, end: usize) -> Vec<FieldDef> {
    let mut fields = Vec::new();
    let mut i = start;
    'fields: while i < end {
        // Skip comments, attributes and visibility.
        loop {
            match tokens.get(i).map(|t| &t.kind) {
                Some(TokKind::LineComment(_)) => i += 1,
                Some(TokKind::Punct(b'#')) => {
                    let mut d = 0i32;
                    i += 1;
                    while i < end {
                        match tokens[i].kind {
                            TokKind::Punct(b'[') => d += 1,
                            TokKind::Punct(b']') => {
                                d -= 1;
                                if d == 0 {
                                    i += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        i += 1;
                    }
                }
                Some(TokKind::Ident(s)) if s == "pub" => {
                    i += 1;
                    // `pub(crate)` / `pub(in path)` restriction.
                    if tokens.get(i).is_some_and(|t| t.is_punct(b'(')) {
                        let mut d = 0i32;
                        while i < end {
                            match tokens[i].kind {
                                TokKind::Punct(b'(') => d += 1,
                                TokKind::Punct(b')') => {
                                    d -= 1;
                                    if d == 0 {
                                        i += 1;
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        if i >= end {
            break;
        }
        let Some(name) = tokens[i].ident() else { break };
        let def = FieldDef {
            name: name.to_owned(),
            line: tokens[i].line,
        };
        i += 1;
        if !tokens.get(i).is_some_and(|t| t.is_punct(b':')) {
            break; // not a named-field list after all
        }
        // Skip the type to the `,` at depth 0 (or run out at `end`).
        let mut depth = 0i32;
        while i < end {
            match tokens[i].kind {
                TokKind::Punct(b'(') | TokKind::Punct(b'[') | TokKind::Punct(b'{')
                | TokKind::Punct(b'<') => depth += 1,
                TokKind::Punct(b')') | TokKind::Punct(b']') | TokKind::Punct(b'}') => depth -= 1,
                TokKind::Punct(b'>')
                    if !tokens.get(i.wrapping_sub(1)).is_some_and(|p| p.is_punct(b'-')) => {
                        depth -= 1;
                    }
                TokKind::Punct(b',') if depth <= 0 => {
                    i += 1;
                    fields.push(def);
                    continue 'fields;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(def);
        break;
    }
    fields
}

/// Index of the `}` matching the `{` at `open`.
pub fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        match t.kind {
            TokKind::Punct(b'{') => depth += 1,
            TokKind::Punct(b'}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Iterator over the identifier texts within a half-open token range.
pub fn idents_in(tokens: &[Token], range: (usize, usize)) -> impl Iterator<Item = &str> {
    tokens[range.0..range.1.min(tokens.len())]
        .iter()
        .filter_map(Token::ident)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn free_fns_and_methods_are_attributed() {
        let src = "fn free() { inner(); }\nstruct S { pub a: u64 }\nimpl S {\n    pub fn m(&self) -> u64 { self.a }\n}\nimpl Clone for S {\n    fn clone(&self) -> S { S { a: self.a } }\n}\n";
        let toks = lex(src);
        let p = parse(&toks);
        let names: Vec<(&str, Option<&str>)> = p
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.owner.as_deref()))
            .collect();
        assert_eq!(
            names,
            [("free", None), ("m", Some("S")), ("clone", Some("S"))]
        );
        assert_eq!(p.structs.len(), 1);
        assert_eq!(p.structs[0].fields, [FieldDef { name: "a".into(), line: 2 }]);
    }

    #[test]
    fn impl_with_generics_and_traits_resolves_self_type() {
        let src = "impl<'a, T: Ord> TreeTopStore for FlatTreeTop<T> {\n    fn save_state(&self) {}\n}\nimpl<const N: usize> Ring<N> {\n    fn advance(&mut self) {}\n}\n";
        let p = parse(&lex(src));
        assert_eq!(p.fns[0].owner.as_deref(), Some("FlatTreeTop"));
        assert_eq!(p.fns[1].owner.as_deref(), Some("Ring"));
    }

    #[test]
    fn trait_method_signatures_are_bodyless() {
        let src = "pub trait Store {\n    fn save_state(&self, w: &mut W);\n    fn tag(&self) -> u32 { 0 }\n}\n";
        let p = parse(&lex(src));
        let save = p.fns.iter().find(|f| f.name == "save_state").unwrap();
        assert!(save.body.is_none());
        let tag = p.fns.iter().find(|f| f.name == "tag").unwrap();
        assert!(tag.body.is_some());
        assert_eq!(tag.owner, None, "trait default methods have no impl owner");
    }

    #[test]
    fn fn_body_range_covers_exactly_the_braces() {
        let src = "fn a() -> Result<(), E> { x(); }\nfn b() { y(); }\n";
        let toks = lex(src);
        let p = parse(&toks);
        let a = p.fn_named("a").unwrap();
        let idents: Vec<&str> = idents_in(&toks, a.body.unwrap()).collect();
        assert_eq!(idents, ["x"]);
        let b = p.fn_named("b").unwrap();
        let idents: Vec<&str> = idents_in(&toks, b.body.unwrap()).collect();
        assert_eq!(idents, ["y"]);
    }

    #[test]
    fn nested_fns_are_found() {
        let src = "fn outer() {\n    fn inner() { z(); }\n    inner();\n}\n";
        let p = parse(&lex(src));
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
    }

    #[test]
    fn tuple_unit_and_where_structs_parse() {
        let src = "struct T(u64, u32);\nstruct U;\nstruct W<K> where K: Ord { k: K, v: Vec<(K, K)> }\n";
        let p = parse(&lex(src));
        assert_eq!(p.structs.len(), 3);
        assert!(p.structs[0].fields.is_empty());
        assert!(p.structs[1].fields.is_empty());
        let names: Vec<&str> = p.structs[2].fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["k", "v"]);
    }

    #[test]
    fn fields_with_attrs_comments_and_restricted_vis() {
        let src = "struct S {\n    /// doc\n    #[serde(default)]\n    pub a: u64,\n    // plain comment\n    pub(crate) b: Option<Box<S>>,\n    c: [u8; 4],\n}\n";
        let p = parse(&lex(src));
        let f: Vec<(&str, u32)> = p.structs[0]
            .fields
            .iter()
            .map(|f| (f.name.as_str(), f.line))
            .collect();
        assert_eq!(f, [("a", 4), ("b", 6), ("c", 7)]);
    }

    #[test]
    fn methods_of_groups_across_impl_blocks() {
        let src = "struct S { a: u64 }\nimpl S { fn save_state(&self) { self.a; } }\nimpl S { fn restore_state(&mut self) { self.a = 0; } }\n";
        let p = parse(&lex(src));
        let m: Vec<&str> = p.methods_of("S").map(|f| f.name.as_str()).collect();
        assert_eq!(m, ["save_state", "restore_state"]);
    }
}
