//! The snapshot-drift pass: every field of every type that implements
//! `save_state`/`restore_state` must be referenced in *both* methods.
//!
//! The checkpoint/restore subsystem serializes whole structs field by
//! field, with no `..` rest patterns, precisely so that adding a field
//! without checkpointing it is visible. This pass turns that convention
//! into an enforced rule: a new field is a lint failure until it is either
//! written+read by the snapshot methods or exempted with
//! `// lint: allow(snapshot-drift, <why it is derived or scratch>)` on its
//! declaration line.
//!
//! Method lookup is crate-scoped: a struct's `save_state`/`restore_state`
//! may live in another file of the same crate (`impl` blocks are matched
//! to the type by name).

use crate::parser::idents_in;
use crate::source::SourceFile;
use crate::Finding;

/// The snapshot method pair whose coverage is enforced.
const SAVE: &str = "save_state";
const RESTORE: &str = "restore_state";

/// Runs the snapshot-drift pass over the whole workspace (cross-file,
/// crate-scoped method resolution).
pub fn check(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in files {
        for s in &file.parsed.structs {
            if s.fields.is_empty() {
                continue;
            }
            let save = find_method(files, file, &s.name, SAVE);
            let restore = find_method(files, file, &s.name, RESTORE);
            let (Some(save), Some(restore)) = (save, restore) else {
                continue; // not a snapshotted type
            };
            for field in &s.fields {
                let in_save = body_mentions(save, &field.name);
                let in_restore = body_mentions(restore, &field.name);
                if in_save && in_restore {
                    continue;
                }
                if file.allowed(field.line, "snapshot-drift") {
                    continue;
                }
                let missing = match (in_save, in_restore) {
                    (false, false) => "save_state and restore_state",
                    (false, true) => "save_state",
                    (true, false) => "restore_state",
                    (true, true) => unreachable!(),
                };
                out.push(Finding {
                    file: file.rel_path.clone(),
                    line: field.line,
                    rule: "snapshot-drift".to_owned(),
                    message: format!(
                        "field `{}` of `{}` is not referenced in {missing} — checkpoint the new state (crash-consistency contract) or annotate it with lint: allow(snapshot-drift, <why it is derived or scratch>)",
                        field.name, s.name
                    ),
                });
            }
        }
    }
    out
}

/// The crate prefix (`crates/<name>/`) of a repo-relative path, or the
/// whole path when it does not follow the workspace layout.
fn crate_prefix(rel_path: &str) -> &str {
    let mut slashes = 0usize;
    for (i, b) in rel_path.bytes().enumerate() {
        if b == b'/' {
            slashes += 1;
            if slashes == 2 {
                return &rel_path[..=i];
            }
        }
    }
    rel_path
}

/// Finds `Type::method` (with a body) in the struct's own file first, then
/// anywhere else in the same crate.
fn find_method<'a>(
    files: &'a [SourceFile],
    home: &'a SourceFile,
    type_name: &str,
    method: &str,
) -> Option<(&'a SourceFile, (usize, usize))> {
    let pick = |f: &'a SourceFile| {
        f.parsed
            .methods_of(type_name)
            .find(|m| m.name == method && m.body.is_some())
            .and_then(|m| m.body)
            .map(|b| (f, b))
    };
    if let Some(found) = pick(home) {
        return Some(found);
    }
    let prefix = crate_prefix(&home.rel_path);
    files
        .iter()
        .filter(|f| f.rel_path != home.rel_path && f.rel_path.starts_with(prefix))
        .find_map(pick)
}

/// Whether a method body mentions an identifier (field access, binding,
/// struct-literal key — any mention counts as coverage).
fn body_mentions((file, body): (&SourceFile, (usize, usize)), name: &str) -> bool {
    idents_in(&file.tokens, body).any(|id| id == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(srcs: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(p, s)| SourceFile::new((*p).to_owned(), s))
            .collect();
        check(&files)
    }

    const COVERED: &str = "pub struct Bank { open_row: u64, busy_until: u64 }\nimpl Bank {\n    pub fn save_state(&self, w: &mut W) { w.u64(self.open_row); w.u64(self.busy_until); }\n    pub fn restore_state(&mut self, r: &mut R) { self.open_row = r.u64(); self.busy_until = r.u64(); }\n}\n";

    #[test]
    fn covered_struct_is_clean() {
        assert!(findings(&[("crates/a/src/x.rs", COVERED)]).is_empty());
    }

    #[test]
    fn uncheckpointed_field_is_flagged_at_its_line() {
        let src = "pub struct Bank {\n    open_row: u64,\n    open_cycles: u64,\n}\nimpl Bank {\n    fn save_state(&self, w: &mut W) { w.u64(self.open_row); }\n    fn restore_state(&mut self, r: &mut R) { self.open_row = r.u64(); }\n}\n";
        let f = findings(&[("crates/a/src/x.rs", src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("`open_cycles`"));
        assert!(f[0].message.contains("save_state and restore_state"));
    }

    #[test]
    fn field_missing_from_only_one_side_names_that_side() {
        let src = "pub struct S { a: u64 }\nimpl S {\n    fn save_state(&self, w: &mut W) { w.u64(self.a); }\n    fn restore_state(&mut self, _r: &mut R) {}\n}\n";
        let f = findings(&[("crates/a/src/x.rs", src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("not referenced in restore_state"));
    }

    #[test]
    fn allow_on_the_field_line_exempts_scratch_state() {
        let src = "pub struct S {\n    a: u64,\n    // lint: allow(snapshot-drift, rebuilt from a on restore)\n    cache: u64,\n}\nimpl S {\n    fn save_state(&self, w: &mut W) { w.u64(self.a); }\n    fn restore_state(&mut self, r: &mut R) { self.a = r.u64(); }\n}\n";
        assert!(findings(&[("crates/a/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn types_without_the_method_pair_are_skipped() {
        let src = "pub struct Plain { a: u64 }\npub struct HalfA { b: u64 }\nimpl HalfA { fn save_state(&self, w: &mut W) {} }\n";
        assert!(findings(&[("crates/a/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn methods_in_a_sibling_file_of_the_same_crate_are_found() {
        let def = "pub struct S { a: u64, b: u64 }\n";
        let imp = "impl S {\n    fn save_state(&self, w: &mut W) { w.u64(self.a); }\n    fn restore_state(&mut self, r: &mut R) { self.a = r.u64(); }\n}\n";
        let f = findings(&[
            ("crates/a/src/def.rs", def),
            ("crates/a/src/imp.rs", imp),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].file, "crates/a/src/def.rs");
        assert!(f[0].message.contains("`b`"));
    }

    #[test]
    fn same_name_type_in_another_crate_does_not_pair() {
        let here = "pub struct S { a: u64 }\n";
        let other =
            "pub struct S { z: u64 }\nimpl S {\n    fn save_state(&self, w: &mut W) { w.u64(self.z); }\n    fn restore_state(&mut self, r: &mut R) { self.z = r.u64(); }\n}\n";
        let f = findings(&[
            ("crates/a/src/x.rs", here),
            ("crates/b/src/y.rs", other),
        ]);
        assert!(f.is_empty(), "{f:?}");
    }
}
