//! The panic-freedom pass: inventories panic-capable sites in the
//! designated hot-path modules and compares the counts against the
//! checked-in ratchet (`lint-ratchet.toml`).
//!
//! Counted categories: `.unwrap(`, `.expect(`, `panic!`, `unreachable!`,
//! and slice-indexing expressions (`expr[...]`). Sites inside test code or
//! carrying a reasoned `// lint: allow(panic, <invariant>)` are exempt —
//! an annotated site is a *declared* invariant, not an open hazard. The
//! ratchet only moves down: a count above budget is a regression; a count
//! below budget must be locked in with `--fix-ratchet`.

use std::collections::BTreeMap;

use crate::lexer::TokKind;
use crate::ratchet::Ratchet;
use crate::source::SourceFile;
use crate::Finding;

/// Counts panic-capable sites per category for one file.
/// Rust keywords that can directly precede `[` in real code (type syntax,
/// array literals after control flow) without forming an index expression.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "mut" | "dyn" | "in" | "as" | "return" | "break" | "else" | "match" | "if" | "while"
    )
}

pub fn count(file: &SourceFile) -> BTreeMap<String, u64> {
    let mut counts: BTreeMap<String, u64> = crate::ratchet::CATEGORIES
        .iter()
        .map(|c| ((*c).to_owned(), 0))
        .collect();
    for (cat, _) in sites(file, (0, file.tokens.len())) {
        *counts.get_mut(cat).expect("all categories pre-seeded") += 1;
    }
    counts
}

/// Enumerates unexempted panic-capable sites within a half-open token
/// range as `(category, line)` pairs, in token order. Sites in test code
/// or covered by `lint: allow(panic, ...)` are skipped — shared by the
/// whole-file ratchet count and the panic-reachability pass.
pub fn sites(file: &SourceFile, range: (usize, usize)) -> Vec<(&'static str, u32)> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    for i in range.0..range.1.min(toks.len()) {
        let t = &toks[i];
        if file.in_test(i) || file.allowed(t.line, "panic") {
            continue;
        }
        let cat: Option<&'static str> = match &t.kind {
            TokKind::Ident(s) if s == "unwrap" || s == "expect" => toks
                .get(i + 1)
                .filter(|n| n.is_punct(b'('))
                .map(|_| if s == "unwrap" { "unwrap" } else { "expect" }),
            TokKind::Ident(s) if s == "panic" || s == "unreachable" => toks
                .get(i + 1)
                .filter(|n| n.is_punct(b'!'))
                .map(|_| if s == "panic" { "panic" } else { "unreachable" }),
            // An indexing expression: `[` directly after a value-producing
            // token (identifier, `)`, or `]`). Attribute `#[`, macro
            // `vec![`, types `: [u8; 4]`, and slice patterns follow other
            // token kinds and are not counted. Keywords lex as identifiers
            // but never end a value expression (`&mut [T]`, `return [..]`),
            // so they don't open an index either.
            TokKind::Punct(b'[') if i > 0 => match &toks[i - 1].kind {
                TokKind::Ident(s) if !is_keyword(s) => Some("index"),
                TokKind::Punct(b')') | TokKind::Punct(b']') => Some("index"),
                _ => None,
            },
            _ => None,
        };
        if let Some(cat) = cat {
            out.push((cat, t.line));
        }
    }
    out
}

/// Compares counted hot-path files against the ratchet.
pub fn check_against_ratchet(
    counted: &Ratchet,
    budget: &Ratchet,
    ratchet_path: &str,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for (file, cats) in counted {
        let Some(allowed) = budget.get(file) else {
            out.push(Finding {
                file: file.clone(),
                line: 1,
                rule: "panic".to_owned(),
                message: format!(
                    "hot-path file missing from {ratchet_path}; run --fix-ratchet to budget it"
                ),
            });
            continue;
        };
        for (cat, &have) in cats {
            let want = allowed.get(cat).copied().unwrap_or(0);
            if have > want {
                out.push(Finding {
                    file: file.clone(),
                    line: 1,
                    rule: "panic".to_owned(),
                    message: format!(
                        "{have} unannotated `{cat}` site(s), ratchet allows {want} — remove the new site or annotate its invariant with lint: allow(panic, ...)"
                    ),
                });
            } else if have < want {
                out.push(Finding {
                    file: file.clone(),
                    line: 1,
                    rule: "panic".to_owned(),
                    message: format!(
                        "only {have} `{cat}` site(s) but ratchet still allows {want} — run --fix-ratchet to lock the improvement in"
                    ),
                });
            }
        }
    }
    // Stale ratchet entries for files we no longer count.
    for file in budget.keys() {
        if !counted.contains_key(file) {
            out.push(Finding {
                file: file.clone(),
                line: 1,
                rule: "panic".to_owned(),
                message: format!(
                    "stale entry in {ratchet_path}: file is not a designated hot-path module; run --fix-ratchet"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(src: &str) -> BTreeMap<String, u64> {
        count(&SourceFile::new("f.rs".into(), src))
    }

    #[test]
    fn counts_each_category() {
        let c = counts(
            "fn f(v: &[u64], i: usize) -> u64 {\n  let x = v.get(i).unwrap();\n  let y = o.expect(\"msg\");\n  if bad { panic!(\"boom\") }\n  match z { _ => unreachable!() }\n  v[i] + w[j][k]\n}\n",
        );
        assert_eq!(c["unwrap"], 1);
        assert_eq!(c["expect"], 1);
        assert_eq!(c["panic"], 1);
        assert_eq!(c["unreachable"], 1);
        assert_eq!(c["index"], 3); // v[i], w[j], [k]
    }

    #[test]
    fn non_panicking_lookalikes_do_not_count() {
        let c = counts(
            "let a = x.unwrap_or(0);\nlet b = y.unwrap_or_else(|| 0);\nlet t: [u8; 4] = [0; 4];\n#[derive(Debug)]\nstruct S;\nlet v = vec![1, 2];\nlet w = matches!(q, Some(_));\n",
        );
        assert_eq!(c.values().sum::<u64>(), 0, "{c:?}");
    }

    #[test]
    fn keyword_before_bracket_is_not_an_index() {
        let c = counts(
            "fn f(q: &mut [u64], d: &dyn T) -> [u8; 2] {\n  for x in [1, 2] {}\n  if cond { return [0, 0] } else [9, 9]\n  q[0]\n}\n",
        );
        assert_eq!(c["index"], 1, "{c:?}"); // only q[0]
    }

    #[test]
    fn annotated_and_test_sites_are_exempt() {
        let c = counts(
            "let a = x.unwrap(); // lint: allow(panic, x seeded two lines up)\n#[test]\nfn t() { y.unwrap(); v[0]; }\n",
        );
        assert_eq!(c.values().sum::<u64>(), 0, "{c:?}");
    }

    #[test]
    fn ratchet_comparison_flags_both_directions() {
        let mut counted = Ratchet::new();
        counted.insert("a.rs".into(), counts("x.unwrap();\nv[i];\n"));
        let budget = crate::ratchet::parse("[\"a.rs\"]\nunwrap = 0\nindex = 2\n").unwrap();
        let f = check_against_ratchet(&counted, &budget, "lint-ratchet.toml");
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|x| x.message.contains("ratchet allows 0")));
        assert!(f.iter().any(|x| x.message.contains("lock the improvement in")));
    }

    #[test]
    fn missing_and_stale_entries_are_flagged() {
        let mut counted = Ratchet::new();
        counted.insert("new.rs".into(), counts(""));
        let budget = crate::ratchet::parse("[\"old.rs\"]\nunwrap = 1\n").unwrap();
        let f = check_against_ratchet(&counted, &budget, "lint-ratchet.toml");
        assert!(f.iter().any(|x| x.file == "new.rs" && x.message.contains("missing")));
        assert!(f.iter().any(|x| x.file == "old.rs" && x.message.contains("stale")));
    }

    #[test]
    fn exact_match_is_clean() {
        let mut counted = Ratchet::new();
        counted.insert("a.rs".into(), counts("x.unwrap(); y[0];"));
        let budget = crate::ratchet::parse("[\"a.rs\"]\nunwrap = 1\nindex = 1\n").unwrap();
        assert!(check_against_ratchet(&counted, &budget, "r.toml").is_empty());
    }
}
