//! The `iroram-lint` binary: runs the determinism, panic-ratchet and
//! config-drift passes over the workspace and prints machine-readable
//! findings (`file:line rule message`). Exit 0 = clean, 1 = findings,
//! 2 = usage or I/O error.

use std::path::PathBuf;

const USAGE: &str = "\
usage: iroram-lint [--root DIR] [--fix-ratchet]
  --root DIR     workspace root (default: walk up from the current directory)
  --fix-ratchet  rewrite lint-ratchet.toml from the current hot-path counts
Findings are printed one per line as `file:line rule message`.
Exemptions: `// lint: allow(<rule>, <reason>)` on the flagged line or the
line above it (rules: determinism, panic, config; the reason is mandatory).";

fn main() {
    let mut root: Option<PathBuf> = None;
    let mut fix_ratchet = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fix-ratchet" => fix_ratchet = true,
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => root = Some(PathBuf::from(dir)),
                    None => die(2, "--root requires a directory"),
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => die(2, &format!("unrecognized argument `{other}`")),
        }
        i += 1;
    }
    let root = root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| iroram_lint::find_root(&d))
    });
    let Some(root) = root else {
        die(2, "no workspace root found (pass --root DIR)");
    };
    match iroram_lint::run(&root, fix_ratchet) {
        Ok(outcome) => {
            for f in &outcome.findings {
                println!("{f}");
            }
            eprintln!(
                "iroram-lint: {} file(s) scanned, {} finding(s){}",
                outcome.files_scanned,
                outcome.findings.len(),
                if fix_ratchet { " (ratchet rewritten)" } else { "" }
            );
            std::process::exit(i32::from(!outcome.findings.is_empty()));
        }
        Err(e) => die(2, &e),
    }
}

fn die(code: i32, msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(code);
}
