//! The `iroram-lint` binary: runs the determinism, panic-ratchet,
//! config-drift, secret-flow, snapshot-drift, panic-reach and thread-order
//! passes over the workspace and prints machine-readable findings.
//! Exit 0 = clean, 1 = findings, 2 = usage or I/O error.

use std::path::PathBuf;

const USAGE: &str = "\
usage: iroram-lint [--root DIR] [--fix-ratchet] [--format text|json]
  --root DIR     workspace root (default: walk up from the current directory)
  --fix-ratchet  rewrite lint-ratchet.toml from the current hot-path and
                 reachability counts
  --format FMT   `text` (default): one `file:line rule message` per line;
                 `json`: a stable document with files_scanned and findings
Exemptions: `// lint: allow(<rule>, <reason>)` on the flagged line, the line
above it, or the statement starting there (rules: determinism, panic, config,
secret-flow, snapshot-drift, thread-order; the reason is mandatory).";

enum Format {
    Text,
    Json,
}

fn main() {
    let mut root: Option<PathBuf> = None;
    let mut fix_ratchet = false;
    let mut format = Format::Text;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fix-ratchet" => fix_ratchet = true,
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => root = Some(PathBuf::from(dir)),
                    None => die(2, "--root requires a directory"),
                }
            }
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("text") => format = Format::Text,
                    Some("json") => format = Format::Json,
                    Some(other) => die(2, &format!("unknown format `{other}`")),
                    None => die(2, "--format requires `text` or `json`"),
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => die(2, &format!("unrecognized argument `{other}`")),
        }
        i += 1;
    }
    let root = root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| iroram_lint::find_root(&d))
    });
    let Some(root) = root else {
        die(2, "no workspace root found (pass --root DIR)");
    };
    match iroram_lint::run(&root, fix_ratchet) {
        Ok(outcome) => {
            match format {
                Format::Text => {
                    for f in &outcome.findings {
                        println!("{f}");
                    }
                }
                Format::Json => print!("{}", iroram_lint::json::to_json(&outcome)),
            }
            eprintln!(
                "iroram-lint: {} file(s) scanned, {} finding(s){}",
                outcome.files_scanned,
                outcome.findings.len(),
                if fix_ratchet { " (ratchet rewritten)" } else { "" }
            );
            std::process::exit(i32::from(!outcome.findings.is_empty()));
        }
        Err(e) => die(2, &e),
    }
}

fn die(code: i32, msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(code);
}
