//! The secret-flow pass: intraprocedural taint tracking from secret-typed
//! sources to control flow and indexing.
//!
//! Path ORAM's security argument (Stefanov et al.) requires the DRAM
//! command stream to depend only on uniformly random leaves revealed at
//! access time — never on block *contents*, on *where* the position map
//! currently points, or on how full the stash happens to be. A branch or a
//! data-dependent index on any of those is an access-pattern side channel
//! (or, in this simulator, a place where a refactor can silently make the
//! modeled timing workload-dependent).
//!
//! Sources of taint:
//!
//! * `.payload` / `.leaf` field accesses (block contents and assigned
//!   positions), plus any identifier named `payload` by convention;
//! * calls returning position-map leaves: `.leaf_of(..)`, `.remap(..)`;
//! * calls returning stash metadata: `.stash_len()`, `.max_occupancy()`,
//!   `.over_capacity()`.
//!
//! Taint propagates through `let` / `if let` / `while let` / `for`
//! bindings inside one function (to a fixpoint). `if` / `while` / `match`
//! conditions and index expressions containing a source or a tainted local
//! are flagged. Sanctioned sites — the revealed-leaf path address
//! computation, the documented stash-pressure throttle — carry
//! `// lint: allow(secret-flow, <why the DRAM stream stays oblivious>)`.

use std::collections::BTreeSet;

use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::Finding;

/// Struct fields whose values are secret wherever they flow.
const SECRET_FIELDS: [&str; 2] = ["payload", "leaf"];

/// Method names whose return value is secret.
const SECRET_CALLS: [&str; 5] = [
    "leaf_of",
    "remap",
    "stash_len",
    "max_occupancy",
    "over_capacity",
];

/// Identifier names treated as secret by convention wherever they are
/// bound or used (a local called `payload` holds a payload).
const SECRET_NAMES: [&str; 1] = ["payload"];

/// Runs the secret-flow pass over one file of a report-affecting crate.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let mut out: Vec<Finding> = Vec::new();
    for f in &file.parsed.fns {
        let Some(body) = f.body else { continue };
        check_fn(file, body, &mut out);
    }
    out
}

/// Why a token is considered secret (for the finding message).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Why {
    Field,
    Call,
    Tainted,
}

fn check_fn(file: &SourceFile, body: (usize, usize), out: &mut Vec<Finding>) {
    let tainted = tainted_locals(file, body);
    let toks = &file.tokens;
    let mut i = body.0;
    while i < body.1 {
        let t = &toks[i];
        match &t.kind {
            TokKind::Ident(kw) if kw == "if" || kw == "while" || kw == "match" => {
                let span = skip_let_pattern(file, cond_span(file, i + 1, body.1));
                flag_span(file, span, &tainted, "branch condition", out);
                i += 1;
            }
            // An indexing expression: `[` directly after a value-producing
            // token (same shape the panic pass counts).
            TokKind::Punct(b'[') if i > body.0 => {
                let opens_index = match &toks[i - 1].kind {
                    TokKind::Ident(s) => !is_keyword(s),
                    TokKind::Punct(b')') | TokKind::Punct(b']') => true,
                    _ => false,
                };
                if opens_index {
                    let end = matching_bracket(file, i).unwrap_or(body.1);
                    flag_span(file, (i + 1, end), &tainted, "index expression", out);
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
}

/// Rust keywords that can precede `[` without forming an index expression.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "mut" | "dyn" | "in" | "as" | "return" | "break" | "else" | "match" | "if" | "while"
    )
}

/// Token index of the `]` matching the `[` at `open`.
fn matching_bracket(file: &SourceFile, open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in file.tokens.iter().enumerate().skip(open) {
        match t.kind {
            TokKind::Punct(b'[') => depth += 1,
            TokKind::Punct(b']') => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// The half-open token span of a branch condition starting at `from`: runs
/// to the block's `{` at bracket depth 0, or to a `;` / `=>` terminator
/// (match guards), or to `end`.
fn cond_span(file: &SourceFile, from: usize, end: usize) -> (usize, usize) {
    let toks = &file.tokens;
    let mut depth = 0i32;
    let mut i = from;
    while i < end {
        match toks[i].kind {
            TokKind::Punct(b'(') | TokKind::Punct(b'[') => depth += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') => depth -= 1,
            TokKind::Punct(b'{') if depth <= 0 => return (from, i),
            TokKind::Punct(b'{') => depth += 1,
            TokKind::Punct(b'}') => depth -= 1,
            TokKind::Punct(b';') if depth <= 0 => return (from, i),
            TokKind::Punct(b'>') if depth <= 0
                // `=>` terminates a match-guard condition.
                && toks.get(i.wrapping_sub(1)).is_some_and(|p| p.is_punct(b'=')) => {
                    return (from, i);
                }
            _ => {}
        }
        i += 1;
    }
    (from, end)
}

/// Narrows an `if let` / `while let` condition span to its scrutinee: the
/// idents between `let` and the top-level `=` are fresh pattern bindings,
/// not uses, so only the right-hand side can carry taint into the branch.
fn skip_let_pattern(file: &SourceFile, span: (usize, usize)) -> (usize, usize) {
    let toks = &file.tokens;
    if toks.get(span.0).and_then(|t| t.ident()) != Some("let") {
        return span;
    }
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().take(span.1).skip(span.0 + 1) {
        match t.kind {
            TokKind::Punct(b'(') | TokKind::Punct(b'[') | TokKind::Punct(b'<') => depth += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') | TokKind::Punct(b'>') => depth -= 1,
            TokKind::Punct(b'=') if depth <= 0 => return (i + 1, span.1),
            _ => {}
        }
    }
    span
}

/// Collects the names of locals tainted by secret sources within one fn
/// body: `let` / `if let` / `while let` / `for` patterns whose initializer
/// contains a source or an already-tainted name, iterated to a fixpoint.
fn tainted_locals(file: &SourceFile, body: (usize, usize)) -> BTreeSet<String> {
    let toks = &file.tokens;
    // (pattern idents, rhs token span) per binding.
    let mut bindings: Vec<(Vec<String>, (usize, usize))> = Vec::new();
    let mut i = body.0;
    while i < body.1 {
        match toks[i].ident() {
            Some("let") => {
                // Pattern until `=` at depth 0 (stop early on `;` / `{`).
                let mut depth = 0i32;
                let mut j = i + 1;
                let mut pat = Vec::new();
                while j < body.1 {
                    match &toks[j].kind {
                        TokKind::Punct(b'(') | TokKind::Punct(b'[') | TokKind::Punct(b'<') => {
                            depth += 1;
                        }
                        TokKind::Punct(b')') | TokKind::Punct(b']') | TokKind::Punct(b'>') => {
                            depth -= 1;
                        }
                        TokKind::Punct(b'=') if depth <= 0 => break,
                        TokKind::Punct(b';') | TokKind::Punct(b'{') if depth <= 0 => break,
                        TokKind::Ident(s) if is_binding_ident(s) => pat.push(s.clone()),
                        _ => {}
                    }
                    j += 1;
                }
                if j < body.1 && toks[j].is_punct(b'=') {
                    let rhs_end = rhs_end(file, j + 1, body.1);
                    bindings.push((pat, (j + 1, rhs_end)));
                    i = rhs_end;
                    continue;
                }
                i = j;
            }
            Some("for") => {
                // Pattern until `in` at depth 0, then the iterated
                // expression until the loop `{`.
                let mut j = i + 1;
                let mut pat = Vec::new();
                while j < body.1 {
                    match toks[j].ident() {
                        Some("in") => break,
                        Some(s) if is_binding_ident(s) => pat.push(s.to_owned()),
                        _ => {}
                    }
                    if toks[j].is_punct(b'{') {
                        break;
                    }
                    j += 1;
                }
                if toks.get(j).and_then(|t| t.ident()) == Some("in") {
                    let span = cond_span(file, j + 1, body.1);
                    bindings.push((pat, span));
                    i = span.1;
                    continue;
                }
                i = j;
            }
            _ => i += 1,
        }
    }

    let mut tainted: BTreeSet<String> = BTreeSet::new();
    loop {
        let before = tainted.len();
        for (pat, rhs) in &bindings {
            if span_hits(file, *rhs, &tainted).is_some() {
                tainted.extend(pat.iter().cloned());
            }
        }
        if tainted.len() == before {
            return tainted;
        }
    }
}

/// Whether a pattern identifier introduces a binding (lowercase-initial,
/// not a pattern keyword).
fn is_binding_ident(s: &str) -> bool {
    !matches!(s, "mut" | "ref" | "box" | "_" | "let" | "else" | "move")
        && s.chars().next().is_some_and(|c| c.is_ascii_lowercase() || c == '_')
}

/// End of a `let` initializer starting at `from`: the `;`, a `{` (an
/// `if let`/`while let` body opener — stopping there slightly
/// under-approximates struct-literal initializers, which is the safe
/// direction), or a `let-else`'s `else`, all at bracket depth 0.
fn rhs_end(file: &SourceFile, from: usize, end: usize) -> usize {
    let toks = &file.tokens;
    let mut depth = 0i32;
    let mut i = from;
    while i < end {
        match &toks[i].kind {
            TokKind::Punct(b'(') | TokKind::Punct(b'[') => depth += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') => depth -= 1,
            TokKind::Punct(b';') | TokKind::Punct(b'{') if depth <= 0 => return i,
            TokKind::Ident(s) if s == "else" && depth <= 0 => return i,
            _ => {}
        }
        i += 1;
    }
    end
}

/// First secret hit inside a token span: `(token index, name, why)`.
fn span_hits(
    file: &SourceFile,
    span: (usize, usize),
    tainted: &BTreeSet<String>,
) -> Option<(usize, String, Why)> {
    let toks = &file.tokens;
    for i in span.0..span.1.min(toks.len()) {
        let Some(name) = toks[i].ident() else { continue };
        let after_dot = i > 0 && toks[i - 1].is_punct(b'.');
        let before_call = toks.get(i + 1).is_some_and(|t| t.is_punct(b'('));
        let before_colon = toks.get(i + 1).is_some_and(|t| t.is_punct(b':'));
        if after_dot && SECRET_FIELDS.contains(&name) && !before_call {
            return Some((i, name.to_owned(), Why::Field));
        }
        if after_dot && SECRET_CALLS.contains(&name) && before_call {
            return Some((i, name.to_owned(), Why::Call));
        }
        if !after_dot
            && !before_call
            && !before_colon
            && (tainted.contains(name) || SECRET_NAMES.contains(&name))
        {
            return Some((i, name.to_owned(), Why::Tainted));
        }
    }
    None
}

/// Flags a branch/index span whose tokens carry secret taint.
fn flag_span(
    file: &SourceFile,
    span: (usize, usize),
    tainted: &BTreeSet<String>,
    site: &str,
    out: &mut Vec<Finding>,
) {
    let Some((idx, name, why)) = span_hits(file, span, tainted) else {
        return;
    };
    let line = file.tokens[idx].line;
    if file.in_test(idx) || file.allowed(line, "secret-flow") {
        return;
    }
    let source = match why {
        Why::Field => format!("secret field `.{name}`"),
        Why::Call => format!("secret-returning call `.{name}(..)`"),
        Why::Tainted => format!("tainted value `{name}`"),
    };
    let message = format!(
        "secret-dependent {site} on {source} — the DRAM command stream must depend only on revealed leaves; make the site data-independent or annotate it with lint: allow(secret-flow, <why the access pattern stays oblivious>)"
    );
    if out
        .iter()
        .any(|f| f.line == line && f.message == message && f.file == file.rel_path)
    {
        return;
    }
    out.push(Finding {
        file: file.rel_path.clone(),
        line,
        rule: "secret-flow".to_owned(),
        message,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        check(&SourceFile::new("f.rs".into(), src))
    }

    #[test]
    fn direct_branch_on_secret_field_is_flagged() {
        let f = findings("fn f(b: &Blk) -> u64 {\n    if b.payload == 0 { 1 } else { 0 }\n}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 2);
        assert!(f[0].message.contains("`.payload`"));
        assert!(f[0].message.contains("branch condition"));
    }

    #[test]
    fn taint_propagates_through_let_bindings() {
        let f = findings(
            "fn f(s: &Stash) -> u64 {\n    let occ = s.stash_len();\n    let derived = occ + 1;\n    if derived > 10 { 1 } else { 0 }\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4);
        assert!(f[0].message.contains("`derived`"));
    }

    #[test]
    fn secret_dependent_index_is_flagged() {
        let f = findings(
            "fn f(m: &PosMap, a: BlockAddr, t: &[u64]) -> u64 {\n    let leaf = m.leaf_of(a);\n    t[leaf as usize]\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("index expression"));
    }

    #[test]
    fn match_on_tainted_scrutinee_is_flagged() {
        let f = findings(
            "fn f(b: &Blk) -> u64 {\n    match b.payload {\n        0 => 1,\n        _ => 2,\n    }\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn public_control_flow_is_clean() {
        let f = findings(
            "fn f(addr: u64, n: u64, v: &[u64]) -> u64 {\n    let idx = addr % n;\n    if idx > 4 { return v[idx as usize]; }\n    for leaf in 0..n { let _ = v[leaf as usize]; }\n    0\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allow_with_reason_silences() {
        let f = findings(
            "fn f(s: &Stash) -> u64 {\n    // lint: allow(secret-flow, documented stash-pressure throttle; timing protection restores the fixed schedule)\n    if s.over_capacity() { 1 } else { 0 }\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allow_covers_a_multiline_condition() {
        let f = findings(
            "fn f(s: &Stash, d: bool) -> bool {\n    // lint: allow(secret-flow, degraded admission gate, see DESIGN.md)\n    let throttle = s.over_capacity()\n        || (d && s.max_occupancy() > 4);\n    throttle\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let f = findings(
            "#[cfg(test)]\nmod tests {\n    fn t(b: &Blk) { if b.payload == 0 {} }\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn payload_named_binding_is_secret_by_convention() {
        let f = findings(
            "fn f(c: &Ctl, a: u64) -> u64 {\n    if let Some((served, payload)) = c.front_access(a) {\n        if payload > 0 { 1 } else { 0 }\n    } else { 0 }\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("tainted value `payload`"), "{f:?}");
    }

    #[test]
    fn if_let_pattern_bindings_are_not_condition_uses() {
        // The pattern idents of `if let` are fresh bindings; only the
        // scrutinee (here secret-free) can taint the branch.
        let f = findings(
            "fn f(c: &Ctl, a: u64) -> bool {\n    if let Some((served, payload)) = c.front_access(a) { served } else { false }\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn struct_literal_field_names_are_not_taint_uses() {
        let f = findings(
            "fn f(x: u64) -> Blk {\n    if x > 2 { Blk { payload: 0 } } else { Blk { payload: 1 } }\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
