//! `iroram-lint`: an offline, dependency-free static-analysis engine that
//! enforces the simulator's determinism, panic-freedom, config-coverage,
//! obliviousness, crash-consistency and scheduling contracts (see
//! `DESIGN.md` § "Static guarantees").
//!
//! Seven passes run over the workspace:
//!
//! 1. **determinism** — no `HashMap`/`HashSet`/`Instant`/`SystemTime`/env
//!    reads in report-affecting crates outside test code, unless annotated.
//! 2. **panic** — panic-capable sites in designated hot-path modules are
//!    ratcheted by `lint-ratchet.toml`: counts can only go down.
//! 3. **config** — every `SystemConfig` field participates in the resume
//!    journal fingerprint, the CLI `--set` table, and `DESIGN.md`.
//! 4. **secret-flow** — taint tracking from secret sources (payloads,
//!    PosMap leaves, stash occupancy) to branches and indexing.
//! 5. **snapshot-drift** — every field of a `save_state`/`restore_state`
//!    type is referenced in both methods.
//! 6. **panic-reach** — a cross-crate call-graph walk from the per-slot
//!    entry points budgets transitively reachable panic sites.
//! 7. **thread-order** — parallelism primitives stay confined to the
//!    sanctioned scoped-worker/merge sites.
//!
//! Findings are machine-readable lines (`file:line rule message`) or a
//! JSON document (`--format json`, see [`json`]). Inline exemptions:
//! `// lint: allow(<rule>, <reason>)` on the flagged line, the line above
//! it, or covering the statement that starts there; the reason is
//! mandatory, and allows that no longer suppress anything are themselves
//! findings.

pub mod config;
pub mod determinism;
pub mod json;
pub mod lexer;
pub mod panics;
pub mod parser;
pub mod ratchet;
pub mod reach;
pub mod secret;
pub mod snapshot;
pub mod source;
pub mod threads;

use std::fmt;
use std::path::{Path, PathBuf};

use source::SourceFile;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative file path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name (`determinism`, `panic`, `config`, `annotation`).
    pub rule: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} {} {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Crates whose sources feed reported numbers: nondeterminism anywhere in
/// them can break twin-run byte-identity. (`bench` — timing harnesses and
/// figure binaries' wall-clock — and `lint` itself are exempt.)
pub const REPORT_AFFECTING_CRATES: [&str; 8] = [
    "cache-sim",
    "dram-sim",
    "experiments",
    "kv",
    "oram-ctrl",
    "oram-protocol",
    "sim-engine",
    "trace-gen",
];

/// The designated hot-path modules the panic ratchet covers: code on the
/// per-access / per-slot path of a sweep, where a panic kills the batch.
pub const HOT_PATH_FILES: [&str; 8] = [
    "crates/cache-sim/src/cache.rs",
    "crates/dram-sim/src/system.rs",
    "crates/kv/src/store.rs",
    "crates/oram-ctrl/src/controller.rs",
    "crates/oram-ctrl/src/dwb.rs",
    "crates/oram-ctrl/src/rho.rs",
    "crates/oram-protocol/src/controller.rs",
    "crates/oram-protocol/src/stash.rs",
];

/// Path (from the workspace root) of the file declaring `SystemConfig`.
pub const CONFIG_FILE: &str = "crates/oram-ctrl/src/config.rs";
/// Path of the file holding `fn fingerprint`.
pub const JOURNAL_FILE: &str = "crates/experiments/src/journal.rs";
/// Path of the CLI parsing layer.
pub const RUNNER_FILE: &str = "crates/experiments/src/runner.rs";
/// Path of the design document.
pub const DESIGN_FILE: &str = "DESIGN.md";
/// Path of the panic ratchet.
pub const RATCHET_FILE: &str = "lint-ratchet.toml";

/// The outcome of a lint run.
#[derive(Debug)]
pub struct Outcome {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Files lexed and analyzed.
    pub files_scanned: usize,
}

/// Runs every pass over the workspace at `root`.
///
/// With `fix_ratchet`, `lint-ratchet.toml` is rewritten from the current
/// hot-path counts (and the panic pass is then green by construction).
///
/// # Errors
///
/// Returns a message for I/O-level problems (unreadable root, missing
/// pass-input files, unwritable ratchet) — everything else is a finding.
pub fn run(root: &Path, fix_ratchet: bool) -> Result<Outcome, String> {
    let mut files: Vec<SourceFile> = Vec::new();
    for krate in REPORT_AFFECTING_CRATES {
        let dir = root.join("crates").join(krate).join("src");
        for path in rust_files(&dir)? {
            let rel = rel_path(root, &path);
            let src = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            files.push(SourceFile::new(rel, &src));
        }
    }
    let mut findings: Vec<Finding> = Vec::new();

    // Annotation hygiene everywhere first: a malformed allow must never
    // silently disable another pass.
    for f in &files {
        findings.extend(source::annotation_findings(f));
    }

    // Pass 1: determinism.
    for f in &files {
        findings.extend(determinism::check(f));
    }

    // Pass 2: panic-freedom ratchet over the hot-path files, and pass 6:
    // panic reachability from the per-slot entry points through helper
    // crates. Both budget against `lint-ratchet.toml` (reach counts under
    // `reach:`-prefixed sections), so --fix-ratchet rewrites one combined
    // inventory.
    let mut counted = ratchet::Ratchet::new();
    for hot in HOT_PATH_FILES {
        let Some(f) = files.iter().find(|f| f.rel_path == hot) else {
            return Err(format!("hot-path file {hot} not found under {}", root.display()));
        };
        counted.insert(hot.to_owned(), panics::count(f));
    }
    let reach_analysis = reach::analyze(&files);
    findings.extend(reach_analysis.findings);
    let mut combined = counted.clone();
    for (file, sites) in &reach_analysis.sites {
        combined.insert(
            format!("{}{file}", reach::REACH_PREFIX),
            reach::counts_of(sites),
        );
    }
    let ratchet_path = root.join(RATCHET_FILE);
    if fix_ratchet {
        std::fs::write(&ratchet_path, ratchet::to_string(&combined))
            .map_err(|e| format!("cannot write {}: {e}", ratchet_path.display()))?;
    }
    let budget_text = std::fs::read_to_string(&ratchet_path).unwrap_or_default();
    match ratchet::parse(&budget_text) {
        Ok(budget) => {
            let mut budget_hot = ratchet::Ratchet::new();
            let mut budget_reach = ratchet::Ratchet::new();
            for (file, cats) in budget {
                match file.strip_prefix(reach::REACH_PREFIX) {
                    Some(rest) => budget_reach.insert(rest.to_owned(), cats),
                    None => budget_hot.insert(file, cats),
                };
            }
            findings.extend(panics::check_against_ratchet(
                &counted,
                &budget_hot,
                RATCHET_FILE,
            ));
            findings.extend(reach::check(
                &reach_analysis.sites,
                &budget_reach,
                RATCHET_FILE,
            ));
        }
        Err(e) => findings.push(Finding {
            file: RATCHET_FILE.to_owned(),
            line: 1,
            rule: "panic".to_owned(),
            message: format!("ratchet file unreadable: {e}"),
        }),
    }

    // Pass 3: config drift.
    let get = |rel: &str| -> Result<&SourceFile, String> {
        files
            .iter()
            .find(|f| f.rel_path == rel)
            .ok_or_else(|| format!("{rel} not found under {}", root.display()))
    };
    let design = std::fs::read_to_string(root.join(DESIGN_FILE)).unwrap_or_default();
    findings.extend(config::check(&config::ConfigInputs {
        config: get(CONFIG_FILE)?,
        journal: get(JOURNAL_FILE)?,
        runner: get(RUNNER_FILE)?,
        design: &design,
        design_path: DESIGN_FILE,
    }));

    // Pass 4: secret-flow taint tracking.
    for f in &files {
        findings.extend(secret::check(f));
    }

    // Pass 5: snapshot-drift (cross-file, crate-scoped method lookup).
    findings.extend(snapshot::check(&files));

    // Pass 7: thread-order.
    for f in &files {
        findings.extend(threads::check(f));
    }

    // Annotation hygiene, part two — after every pass has consulted the
    // allows: any reasoned allow that suppressed nothing is stale.
    for f in &files {
        findings.extend(source::unused_allow_findings(f));
    }

    findings.sort_by(|a, b| {
        (&a.file, a.line, &a.rule, &a.message).cmp(&(&b.file, b.line, &b.rule, &b.message))
    });
    Ok(Outcome {
        findings,
        files_scanned: files.len(),
    })
}

/// All `.rs` files under `dir`, recursively, sorted for deterministic
/// finding order.
fn rust_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries =
            std::fs::read_dir(&d).map_err(|e| format!("cannot read {}: {e}", d.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("readdir {}: {e}", d.display()))?;
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// `path` relative to `root`, `/`-separated.
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Locates the workspace root: walks up from `start` until a directory
/// containing both `Cargo.toml` and `crates/` is found.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
