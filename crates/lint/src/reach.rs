//! The panic-reach pass: transitive panic reachability from the per-slot
//! entry points, upgrading the per-file panic ratchet into a call-graph
//! property.
//!
//! The per-file ratchet covers the eight designated hot-path modules; a
//! panic three calls deep in a helper crate still kills the batch just the
//! same. This pass builds a function-level call graph across every
//! report-affecting crate (name-based and unresolved, so it
//! *overapproximates*: a call to `foo` reaches every workspace fn named
//! `foo`), walks it from the per-slot entry points, and budgets the
//! unexempted panic-capable sites reachable in helper files under
//! `reach:`-prefixed sections of `lint-ratchet.toml`. Counts only go
//! down; hot-path files themselves stay under their existing per-file
//! sections.
//!
//! Site-level exemptions reuse `// lint: allow(panic, <invariant>)` — a
//! declared can't-panic invariant means the same thing whether the site is
//! inspected directly or reached transitively.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::panics;
use crate::ratchet::{Ratchet, CATEGORIES};
use crate::source::SourceFile;
use crate::{Finding, HOT_PATH_FILES};

/// The per-slot entry points the reachability walk starts from: one slot
/// of simulated work in the timed controllers.
pub const ENTRY_POINTS: [(&str, &str); 2] = [
    ("crates/oram-ctrl/src/controller.rs", "process_slot"),
    ("crates/oram-ctrl/src/rho.rs", "process_slot"),
];

/// Section-name prefix distinguishing reach budgets from per-file hot-path
/// budgets inside `lint-ratchet.toml`.
pub const REACH_PREFIX: &str = "reach:";

/// The reachability analysis result: per helper file, the unexempted panic
/// sites reachable from the entry points (files with none are absent),
/// plus structural findings (missing entry points).
pub struct Analysis {
    /// file → `(category, line)` sites, in token order.
    pub sites: BTreeMap<String, Vec<(&'static str, u32)>>,
    /// Findings produced by the analysis itself.
    pub findings: Vec<Finding>,
}

/// One call-graph node: a fn with a body.
struct Node {
    file: usize,
    name: String,
    body: (usize, usize),
}

/// Builds the call graph and walks it from [`ENTRY_POINTS`].
pub fn analyze(files: &[SourceFile]) -> Analysis {
    let mut nodes: Vec<Node> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        for d in &f.parsed.fns {
            let Some(body) = d.body else { continue };
            if f.in_test(body.0) {
                continue; // test fns are not on any report path
            }
            nodes.push(Node {
                file: fi,
                name: d.name.clone(),
                body,
            });
        }
    }
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        by_name.entry(n.name.as_str()).or_default().push(i);
    }

    let mut findings = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut reached: BTreeSet<usize> = BTreeSet::new();
    for (entry_file, entry_fn) in ENTRY_POINTS {
        let mut found = false;
        for (i, n) in nodes.iter().enumerate() {
            if n.name == entry_fn && files[n.file].rel_path == entry_file {
                found = true;
                if reached.insert(i) {
                    queue.push_back(i);
                }
            }
        }
        if !found {
            findings.push(Finding {
                file: entry_file.to_owned(),
                line: 1,
                rule: "panic-reach".to_owned(),
                message: format!(
                    "entry point fn `{entry_fn}` not found — the reachability walk has lost its root; update reach::ENTRY_POINTS if the per-slot API moved"
                ),
            });
        }
    }

    while let Some(i) = queue.pop_front() {
        let node = &nodes[i];
        for callee in calls_in(&files[node.file], node.body) {
            for &j in by_name.get(callee).into_iter().flatten() {
                if reached.insert(j) {
                    queue.push_back(j);
                }
            }
        }
    }

    // Collect reachable body ranges per non-hot-path file, merge overlaps
    // (nested fns), and enumerate the unexempted panic sites inside.
    let mut ranges: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new();
    for &i in &reached {
        let n = &nodes[i];
        if HOT_PATH_FILES.contains(&files[n.file].rel_path.as_str()) {
            continue; // already under a per-file ratchet section
        }
        ranges.entry(n.file).or_default().push(n.body);
    }
    let mut sites: BTreeMap<String, Vec<(&'static str, u32)>> = BTreeMap::new();
    for (fi, mut rs) in ranges {
        rs.sort_unstable();
        let mut merged: Vec<(usize, usize)> = Vec::new();
        for r in rs {
            match merged.last_mut() {
                Some(last) if r.0 < last.1 => last.1 = last.1.max(r.1),
                _ => merged.push(r),
            }
        }
        let file = &files[fi];
        let mut file_sites = Vec::new();
        for r in merged {
            file_sites.extend(panics::sites(file, r));
        }
        if !file_sites.is_empty() {
            sites.insert(file.rel_path.clone(), file_sites);
        }
    }
    Analysis { sites, findings }
}

/// Callee names within a fn body: identifiers directly followed by `(`
/// (free calls, method calls, tuple-struct constructors — unresolvable
/// names simply match no node). The name in a nested `fn name(` definition
/// is skipped.
fn calls_in(file: &SourceFile, body: (usize, usize)) -> BTreeSet<&str> {
    let toks = &file.tokens;
    let mut out = BTreeSet::new();
    for i in body.0..body.1.min(toks.len()) {
        let Some(name) = toks[i].ident() else { continue };
        if !toks.get(i + 1).is_some_and(|n| n.is_punct(b'(')) {
            continue;
        }
        if i > 0 && toks[i - 1].ident() == Some("fn") {
            continue;
        }
        out.insert(name);
    }
    out
}

/// Per-category counts for one file's site list.
pub fn counts_of(sites: &[(&'static str, u32)]) -> BTreeMap<String, u64> {
    let mut counts = BTreeMap::new();
    for (cat, _) in sites {
        *counts.entry((*cat).to_owned()).or_insert(0u64) += 1;
    }
    counts
}

/// Compares the reachable-site inventory against the `reach:` budget
/// sections (already stripped of their prefix).
pub fn check(
    sites: &BTreeMap<String, Vec<(&'static str, u32)>>,
    budget: &Ratchet,
    ratchet_path: &str,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for (file, file_sites) in sites {
        let counts = counts_of(file_sites);
        let Some(allowed) = budget.get(file) else {
            out.push(Finding {
                file: file.clone(),
                line: 1,
                rule: "panic-reach".to_owned(),
                message: format!(
                    "helper file with panic site(s) reachable from the per-slot entry points is missing from {ratchet_path}; run --fix-ratchet to budget it"
                ),
            });
            continue;
        };
        for cat in CATEGORIES {
            let have = counts.get(cat).copied().unwrap_or(0);
            let want = allowed.get(cat).copied().unwrap_or(0);
            if have > want {
                let first = file_sites
                    .iter()
                    .filter(|(c, _)| *c == cat)
                    .map(|&(_, line)| line)
                    .min()
                    .unwrap_or(1);
                out.push(Finding {
                    file: file.clone(),
                    line: first,
                    rule: "panic-reach".to_owned(),
                    message: format!(
                        "{have} `{cat}` site(s) reachable from the per-slot entry points, ratchet allows {want} — make the helper total (return a typed error) or annotate its invariant with lint: allow(panic, ...)"
                    ),
                });
            } else if have < want {
                out.push(Finding {
                    file: file.clone(),
                    line: 1,
                    rule: "panic-reach".to_owned(),
                    message: format!(
                        "only {have} reachable `{cat}` site(s) but ratchet still allows {want} — run --fix-ratchet to lock the improvement in"
                    ),
                });
            }
        }
    }
    for file in budget.keys() {
        if !sites.contains_key(file) {
            out.push(Finding {
                file: file.clone(),
                line: 1,
                rule: "panic-reach".to_owned(),
                message: format!(
                    "stale reach entry in {ratchet_path}: no panic sites reachable from the entry points anymore; run --fix-ratchet"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(srcs: &[(&str, &str)]) -> Vec<SourceFile> {
        srcs.iter()
            .map(|(p, s)| SourceFile::new((*p).to_owned(), s))
            .collect()
    }

    const ENTRY_A: &str = "impl Controller {\n    pub fn process_slot(&mut self) -> Result<(), E> {\n        helper_step(self.t);\n        Ok(())\n    }\n}\n";
    const ENTRY_B: &str = "impl RhoController {\n    pub fn process_slot(&mut self) -> Result<(), E> { Ok(()) }\n}\n";

    #[test]
    fn reachable_helper_sites_are_inventoried() {
        let files = ws(&[
            ("crates/oram-ctrl/src/controller.rs", ENTRY_A),
            ("crates/oram-ctrl/src/rho.rs", ENTRY_B),
            (
                "crates/sim-engine/src/util.rs",
                "pub fn helper_step(t: u64) -> u64 {\n    deeper(t)\n}\nfn deeper(t: u64) -> u64 {\n    SLOTS[t as usize].unwrap()\n}\nfn unrelated() {\n    oops.unwrap();\n}\n",
            ),
        ]);
        let a = analyze(&files);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
        let sites = &a.sites["crates/sim-engine/src/util.rs"];
        // deeper: one index + one unwrap, both on line 5; `unrelated` is
        // not reachable so its unwrap is not counted.
        assert_eq!(sites.len(), 2, "{sites:?}");
        assert!(sites.contains(&("index", 5)));
        assert!(sites.contains(&("unwrap", 5)));
    }

    #[test]
    fn hot_path_files_are_not_double_counted() {
        let files = ws(&[
            (
                "crates/oram-ctrl/src/controller.rs",
                "impl C {\n    pub fn process_slot(&mut self) { self.v[0].unwrap(); }\n}\n",
            ),
            ("crates/oram-ctrl/src/rho.rs", ENTRY_B),
        ]);
        let a = analyze(&files);
        assert!(a.sites.is_empty(), "{:?}", a.sites);
    }

    #[test]
    fn allowed_sites_do_not_count() {
        let files = ws(&[
            ("crates/oram-ctrl/src/controller.rs", ENTRY_A),
            ("crates/oram-ctrl/src/rho.rs", ENTRY_B),
            (
                "crates/sim-engine/src/util.rs",
                "pub fn helper_step(t: u64) -> u64 {\n    // lint: allow(panic, t is clamped by the caller)\n    SLOTS[t as usize]\n}\n",
            ),
        ]);
        let a = analyze(&files);
        assert!(a.sites.is_empty(), "{:?}", a.sites);
    }

    #[test]
    fn missing_entry_point_is_a_finding() {
        let files = ws(&[
            ("crates/oram-ctrl/src/controller.rs", ENTRY_A),
            ("crates/oram-ctrl/src/rho.rs", "fn other() {}\n"),
        ]);
        let a = analyze(&files);
        assert_eq!(a.findings.len(), 1, "{:?}", a.findings);
        assert_eq!(a.findings[0].file, "crates/oram-ctrl/src/rho.rs");
        assert!(a.findings[0].message.contains("entry point"));
    }

    #[test]
    fn budget_comparison_flags_over_under_missing_and_stale() {
        let mut sites: BTreeMap<String, Vec<(&'static str, u32)>> = BTreeMap::new();
        sites.insert("a.rs".into(), vec![("unwrap", 9), ("unwrap", 12)]);
        sites.insert("b.rs".into(), vec![("index", 3)]);
        let budget = crate::ratchet::parse(
            "[\"a.rs\"]\nunwrap = 1\n[\"gone.rs\"]\nindex = 2\n",
        )
        .unwrap();
        let f = check(&sites, &budget, "lint-ratchet.toml");
        let over = f
            .iter()
            .find(|x| x.file == "a.rs" && x.message.contains("ratchet allows 1"))
            .expect("over-budget finding");
        assert_eq!(over.line, 9, "anchored at the first offending site");
        assert!(f
            .iter()
            .any(|x| x.file == "b.rs" && x.message.contains("missing from")));
        assert!(f
            .iter()
            .any(|x| x.file == "gone.rs" && x.message.contains("stale reach entry")));
    }

    #[test]
    fn under_budget_asks_for_a_ratchet_fix() {
        let mut sites: BTreeMap<String, Vec<(&'static str, u32)>> = BTreeMap::new();
        sites.insert("a.rs".into(), vec![("unwrap", 4)]);
        let budget = crate::ratchet::parse("[\"a.rs\"]\nunwrap = 3\n").unwrap();
        let f = check(&sites, &budget, "lint-ratchet.toml");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("lock the improvement in"));
    }
}
