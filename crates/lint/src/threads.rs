//! The thread-order pass: intra-run parallelism must stay confined to the
//! sanctioned scoped-worker/merge sites, so scheduling can never reorder
//! anything that feeds a report.
//!
//! The parallel DRAM scheduler (`dram-sim/src/system.rs`), the sweep
//! fan-out (`par_map` in `experiments/src/runner.rs`), and the KV shard
//! workers (`flush` in `kv/src/service.rs`) are the three places allowed
//! to spawn and share state: all join inside the call and merge results
//! in a deterministic order, so reports stay byte-identical at any
//! `sched_threads` / worker count. Everywhere else this pass flags:
//!
//! * `std::thread::spawn` — unscoped threads outlive the call that made
//!   them and are flagged even in the sanctioned files;
//! * `thread::scope` / `.spawn(..)` — scoped parallelism outside the
//!   sanctioned files;
//! * shared-state primitives (`Mutex`, `RwLock`, `Condvar`, `OnceLock`,
//!   `Atomic*`, `mpsc`, `Barrier`) and `static mut` outside the
//!   sanctioned files.
//!
//! `use` declarations are not usage; test code is exempt; sanctioned
//! exceptions elsewhere carry
//! `// lint: allow(thread-order, <why ordering cannot reach a report>)`.

use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::Finding;

/// Files whose scoped-worker/merge structure is the audited, sanctioned
/// home of intra-run parallelism.
pub const SANCTIONED_FILES: [&str; 3] = [
    "crates/dram-sim/src/system.rs",
    "crates/experiments/src/runner.rs",
    "crates/kv/src/service.rs",
];

/// Shared-state primitive type names (and the `mpsc` module) flagged
/// outside the sanctioned files.
const SYNC_IDENTS: [&str; 13] = [
    "Mutex",
    "RwLock",
    "Condvar",
    "OnceLock",
    "Barrier",
    "mpsc",
    "AtomicBool",
    "AtomicU8",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI64",
    "AtomicIsize",
];

/// Runs the thread-order pass over one file of a report-affecting crate.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let sanctioned = SANCTIONED_FILES.contains(&file.rel_path.as_str());
    let toks = &file.tokens;
    let use_spans = use_decl_spans(file);
    let mut out: Vec<Finding> = Vec::new();
    let mut push = |file: &SourceFile, line: u32, what: &str, detail: &str| {
        if file.allowed(line, "thread-order") {
            return;
        }
        let message = format!(
            "{what} outside the sanctioned parallel sites ({}) — {detail}; move it into the scoped-worker/merge path or annotate it with lint: allow(thread-order, <why ordering cannot reach a report>)",
            SANCTIONED_FILES.join(", ")
        );
        if out
            .iter()
            .any(|f: &Finding| f.line == line && f.message == message)
        {
            return;
        }
        out.push(Finding {
            file: file.rel_path.clone(),
            line,
            rule: "thread-order".to_owned(),
            message,
        });
    };
    for (i, t) in toks.iter().enumerate() {
        if file.in_test(i) || use_spans.iter().any(|&(a, b)| a <= i && i < b) {
            continue;
        }
        match &t.kind {
            TokKind::Ident(s) if s == "spawn" => {
                let after_thread_path = i >= 2
                    && toks[i - 1].is_punct(b':')
                    && toks.get(i.wrapping_sub(3)).and_then(|t| t.ident()) == Some("thread");
                let is_call = toks.get(i + 1).is_some_and(|n| n.is_punct(b'('));
                if after_thread_path && is_call {
                    // `thread::spawn` is unscoped: flagged everywhere.
                    push(
                        file,
                        t.line,
                        "`thread::spawn`",
                        "unscoped threads outlive the call and make joins order-dependent; use std::thread::scope",
                    );
                } else if is_call && !sanctioned && toks.get(i.wrapping_sub(1)).is_some_and(|p| p.is_punct(b'.')) {
                    push(
                        file,
                        t.line,
                        "a scoped `.spawn(..)`",
                        "intra-run parallelism is confined to the audited scoped-worker sites",
                    );
                }
            }
            TokKind::Ident(s) if s == "scope" && !sanctioned => {
                let after_thread_path = i >= 2
                    && toks[i - 1].is_punct(b':')
                    && toks.get(i.wrapping_sub(3)).and_then(|t| t.ident()) == Some("thread");
                if after_thread_path {
                    push(
                        file,
                        t.line,
                        "`thread::scope`",
                        "intra-run parallelism is confined to the audited scoped-worker sites",
                    );
                }
            }
            TokKind::Ident(s) if !sanctioned && SYNC_IDENTS.contains(&s.as_str()) => {
                push(
                    file,
                    t.line,
                    &format!("shared-state primitive `{s}`"),
                    "cross-thread state merged in nondeterministic order can leak into reports",
                );
            }
            TokKind::Ident(s) if s == "static" && !sanctioned
                && toks.get(i + 1).and_then(|t| t.ident()) == Some("mut") => {
                    push(
                        file,
                        t.line,
                        "`static mut`",
                        "unsynchronized global mutable state is order-dependent by construction",
                    );
                }
            _ => {}
        }
    }
    out
}

/// Half-open token ranges of `use ...;` declarations: imports are not
/// usage, so `use std::sync::Mutex;` does not by itself trip the pass.
fn use_decl_spans(file: &SourceFile) -> Vec<(usize, usize)> {
    let toks = &file.tokens;
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].ident() == Some("use") {
            let start = i;
            while i < toks.len() && !toks[i].is_punct(b';') {
                i += 1;
            }
            spans.push((start, i + 1));
        }
        i += 1;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(path: &str, src: &str) -> Vec<Finding> {
        check(&SourceFile::new(path.to_owned(), src))
    }

    #[test]
    fn unscoped_spawn_is_flagged_even_in_sanctioned_files() {
        let f = findings(
            "crates/dram-sim/src/system.rs",
            "fn f() {\n    std::thread::spawn(|| work());\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 2);
        assert!(f[0].message.contains("`thread::spawn`"));
    }

    #[test]
    fn scoped_workers_in_sanctioned_file_are_clean() {
        let f = findings(
            "crates/experiments/src/runner.rs",
            "use std::sync::Mutex;\nfn par_map() {\n    let m = Mutex::new(Vec::new());\n    std::thread::scope(|s| { s.spawn(|| {}); });\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn mutex_outside_sanctioned_files_is_flagged() {
        let f = findings(
            "crates/experiments/src/journal.rs",
            "use std::sync::Mutex;\nstatic LOCK: Mutex<()> = Mutex::new(());\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 2);
        assert!(f[0].message.contains("`Mutex`"));
    }

    #[test]
    fn use_declaration_alone_is_not_usage() {
        let f = findings(
            "crates/sim-engine/src/lib.rs",
            "use std::sync::atomic::AtomicU64;\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn scoped_spawn_outside_sanctioned_files_is_flagged() {
        let f = findings(
            "crates/oram-ctrl/src/controller.rs",
            "fn f() {\n    std::thread::scope(|s| {\n        s.spawn(|| {});\n    });\n}\n",
        );
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].message.contains("`thread::scope`"));
        assert!(f[1].message.contains("scoped `.spawn(..)`"));
    }

    #[test]
    fn static_mut_is_flagged() {
        let f = findings("crates/cache-sim/src/cache.rs", "static mut HITS: u64 = 0;\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`static mut`"));
    }

    #[test]
    fn allow_with_reason_silences() {
        let f = findings(
            "crates/experiments/src/journal.rs",
            "// lint: allow(thread-order, append-only log; entries are order-independent records)\nstatic LOG: Mutex<Vec<u8>> = Mutex::new(Vec::new());\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let f = findings(
            "crates/sim-engine/src/lib.rs",
            "#[cfg(test)]\nmod tests {\n    use std::sync::Mutex;\n    #[test]\n    fn t() { let _ = Mutex::new(0); }\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn refcell_and_thread_locals_are_not_flagged() {
        let f = findings(
            "crates/sim-engine/src/lib.rs",
            "use std::cell::RefCell;\nfn f() { let c = RefCell::new(0); c.borrow_mut(); }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
