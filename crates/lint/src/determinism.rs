//! The determinism pass: flags iteration-order and wall-clock/environment
//! nondeterminism hazards in report-affecting crates.
//!
//! Rules (all carried by rule name `determinism` in allow annotations):
//!
//! * `std::collections::HashMap` / `HashSet` anywhere outside test code —
//!   their iteration order is randomized per process, so any report-affecting
//!   iteration breaks twin-run byte-identity. Use `BTreeMap`/`BTreeSet` or
//!   annotate lookup-only maps.
//! * `Instant` / `SystemTime` — wall-clock reads have no place in a
//!   deterministic simulator outside `crates/bench`.
//! * `env::var` / `env::var_os` / `env::vars` — environment reads make the
//!   result depend on invisible ambient state; sanctioned knobs must be
//!   annotated with the contract that documents them.

use crate::source::SourceFile;
use crate::Finding;

/// Identifier tokens flagged wherever they appear (type position, `use`,
/// construction, turbofish — all count: presence is the hazard).
const BANNED_TYPES: [(&str, &str); 4] = [
    (
        "HashMap",
        "std HashMap iteration order is nondeterministic; use BTreeMap or annotate a lookup-only map",
    ),
    (
        "HashSet",
        "std HashSet iteration order is nondeterministic; use BTreeSet or annotate a lookup-only set",
    ),
    (
        "Instant",
        "wall-clock reads (Instant) are nondeterministic; derive all timing from simulated cycles",
    ),
    (
        "SystemTime",
        "wall-clock reads (SystemTime) are nondeterministic; derive all timing from simulated cycles",
    ),
];

/// `env::<read>` method names flagged after an `env ::` path prefix.
const ENV_READS: [&str; 4] = ["var", "var_os", "vars", "vars_os"];

/// Runs the determinism pass over one file of a report-affecting crate.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let mut out: Vec<Finding> = Vec::new();
    let flag = |line: u32, message: String, out: &mut Vec<Finding>| {
        if file.allowed(line, "determinism") {
            return;
        }
        // One finding per (line, message): a declaration plus construction
        // on one line is one hazard to fix, not two.
        if out
            .iter()
            .any(|f: &Finding| f.line == line && f.message == message)
        {
            return;
        }
        out.push(Finding {
            file: file.rel_path.clone(),
            line,
            rule: "determinism".to_owned(),
            message,
        });
    };
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        if file.in_test(i) {
            continue;
        }
        if let Some((_, why)) = BANNED_TYPES.iter().find(|(n, _)| *n == name) {
            flag(t.line, format!("{name}: {why}"), &mut out);
            continue;
        }
        // env :: var / var_os / vars / vars_os
        if name == "env"
            && toks.get(i + 1).is_some_and(|t| t.is_punct(b':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(b':'))
        {
            if let Some(read) = toks.get(i + 3).and_then(|t| t.ident()) {
                if ENV_READS.contains(&read) {
                    flag(
                        t.line,
                        format!(
                            "env::{read}: environment reads are ambient nondeterminism; annotate sanctioned knobs with their documented contract"
                        ),
                        &mut out,
                    );
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        check(&SourceFile::new("f.rs".into(), src))
    }

    #[test]
    fn flags_hashmap_and_hashset_outside_tests() {
        let f = findings("use std::collections::HashMap;\nfn x() { let s = std::collections::HashSet::<u8>::new(); }\n");
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].line, 1);
        assert_eq!(f[1].line, 2);
    }

    #[test]
    fn test_code_is_exempt() {
        let f = findings("#[cfg(test)]\nmod tests {\n use std::collections::HashMap;\n #[test]\n fn t() { let _m: HashMap<u8,u8> = HashMap::new(); }\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn annotation_silences_with_reason_only() {
        let f = findings("let m = HashMap::new(); // lint: allow(determinism, lookup-only oracle)\n");
        assert!(f.is_empty());
        let f = findings("let m = HashMap::new(); // lint: allow(determinism)\n");
        assert_eq!(f.len(), 1, "reasonless annotation must not silence");
    }

    #[test]
    fn flags_clock_and_env_reads() {
        let f = findings("let t = std::time::Instant::now();\nlet v = std::env::var(\"X\");\n");
        assert_eq!(f.len(), 2);
        assert!(f[0].message.contains("Instant"));
        assert!(f[1].message.contains("env::var"));
    }

    #[test]
    fn env_args_is_not_an_env_read() {
        assert!(findings("let a: Vec<String> = std::env::args().collect();\n").is_empty());
    }

    #[test]
    fn hashmap_in_string_or_comment_is_not_flagged() {
        assert!(findings("// a HashMap would be wrong here\nlet s = \"HashMap\";\n").is_empty());
    }

    #[test]
    fn one_finding_per_line_per_hazard() {
        let f = findings("let m: HashMap<u8,u8> = HashMap::new();\n");
        assert_eq!(f.len(), 1);
    }
}
