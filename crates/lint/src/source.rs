//! Per-file analysis state: lexed tokens, parsed items, test-item spans,
//! statement line spans, and `// lint: allow(rule, reason)` annotations.

use std::cell::RefCell;
use std::collections::BTreeMap;

use crate::lexer::{lex, TokKind, Token};
use crate::parser::{self, ParsedFile};

/// A lint-rule name an annotation can reference. (`panic-reach` findings
/// are exempted at the *site* level with `allow(panic, ...)` — a declared
/// can't-panic invariant means the same thing wherever the site is — so it
/// is not a valid annotation rule.)
pub const RULES: [&str; 6] = [
    "determinism",
    "panic",
    "config",
    "secret-flow",
    "snapshot-drift",
    "thread-order",
];

/// One parsed `lint: allow` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule being allowed (one of [`RULES`]).
    pub rule: String,
    /// The justification after the comma (may be empty — the annotation
    /// pass reports empty reasons).
    pub reason: String,
    /// Line the comment sits on.
    pub line: u32,
}

/// A lexed source file plus the derived structures the passes share.
#[derive(Debug)]
pub struct SourceFile {
    /// Repo-relative path, `/`-separated.
    pub rel_path: String,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Item-level parse of the token stream (fns, structs, method owners).
    pub parsed: ParsedFile,
    /// Parsed `lint: allow` annotations, keyed by comment line.
    pub allows: Vec<Allow>,
    /// Token-index ranges (half-open) lexically inside `#[test]` /
    /// `#[cfg(test)]` / `#[bench]` items. Determinism and panic findings
    /// inside these are skipped: test code does not affect reports.
    pub test_spans: Vec<(usize, usize)>,
    /// Statement line extents `(first, last)`: runs of non-comment tokens
    /// between `;` / `{` / `}` boundaries. An allow annotation attaches to
    /// the statement starting on its own or the following line, so one
    /// annotation covers a multi-line expression.
    pub stmt_spans: Vec<(u32, u32)>,
    /// Which allows suppressed at least one would-be finding (indices into
    /// `allows`), recorded as the passes consult [`SourceFile::allowed`].
    used_allows: RefCell<Vec<bool>>,
}

impl SourceFile {
    /// Lexes and parses `src`, deriving annotations, test spans and
    /// statement spans.
    pub fn new(rel_path: String, src: &str) -> Self {
        let tokens = lex(src);
        let parsed = parser::parse(&tokens);
        let allows = parse_allows(&tokens);
        let test_spans = find_test_spans(&tokens);
        let stmt_spans = find_stmt_spans(&tokens);
        let used = RefCell::new(vec![false; allows.len()]);
        SourceFile {
            rel_path,
            tokens,
            parsed,
            allows,
            test_spans,
            stmt_spans,
            used_allows: used,
        }
    }

    /// Whether token index `i` lies inside a test item.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= i && i < b)
    }

    /// Whether `rule` is allowed on `line`. An annotation covers:
    ///
    /// * its own line and the line directly below it (so it can trail the
    ///   flagged code or sit on its own line above it), and
    /// * the full extent of the *statement* that starts on its own line
    ///   (a trailing comment on the statement's first line) or on the line
    ///   directly below it (an annotation on its own line above a
    ///   multi-line statement).
    ///
    /// Consulting this records the annotation as used; `lint: allow`s that
    /// never suppress anything are themselves reported by the annotation
    /// hygiene pass.
    pub fn allowed(&self, line: u32, rule: &str) -> bool {
        let mut hit = false;
        for (idx, a) in self.allows.iter().enumerate() {
            if a.rule != rule || a.reason.is_empty() {
                continue;
            }
            let direct = a.line == line || a.line + 1 == line;
            let via_stmt = self
                .stmt_spans
                .iter()
                .any(|&(s, e)| (s == a.line || s == a.line + 1) && s <= line && line <= e);
            if direct || via_stmt {
                self.used_allows.borrow_mut()[idx] = true;
                hit = true;
            }
        }
        hit
    }

    /// Allows (well-formed: known rule, non-empty reason) that never
    /// suppressed a finding. Only meaningful after every pass has run.
    pub fn unused_allows(&self) -> Vec<&Allow> {
        let used = self.used_allows.borrow();
        self.allows
            .iter()
            .enumerate()
            .filter(|(i, a)| {
                !used[*i] && RULES.contains(&a.rule.as_str()) && !a.reason.is_empty()
            })
            .map(|(_, a)| a)
            .collect()
    }

    /// All string-literal contents in the file.
    pub fn strings(&self) -> impl Iterator<Item = &str> {
        self.tokens.iter().filter_map(|t| match &t.kind {
            TokKind::Str(s) => Some(s.as_str()),
            _ => None,
        })
    }
}

/// Parses `lint: allow(rule, reason)` out of every line comment. The
/// marker may appear anywhere in the comment (`// lint: allow(...)` or
/// `//! ...` both work); one comment may carry one annotation.
fn parse_allows(tokens: &[Token]) -> Vec<Allow> {
    let mut out = Vec::new();
    for t in tokens {
        let TokKind::LineComment(text) = &t.kind else {
            continue;
        };
        let Some(at) = text.find("lint: allow(") else {
            continue;
        };
        let body = &text[at + "lint: allow(".len()..];
        let Some(end) = body.rfind(')') else {
            // Unclosed annotation: record with empty rule so the
            // annotation pass reports it as malformed.
            out.push(Allow {
                rule: String::new(),
                reason: String::new(),
                line: t.line,
            });
            continue;
        };
        let body = &body[..end];
        let (rule, reason) = match body.split_once(',') {
            Some((r, why)) => (r.trim().to_owned(), why.trim().to_owned()),
            None => (body.trim().to_owned(), String::new()),
        };
        out.push(Allow {
            rule,
            reason,
            line: t.line,
        });
    }
    out
}

/// Computes statement line extents: consecutive non-comment tokens between
/// `;` / `{` / `}` boundaries form one statement; its extent is the min and
/// max token line. Comments neither extend nor break a statement, so an
/// annotation above a statement attaches to the whole expression even when
/// it spans lines.
fn find_stmt_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut cur: Option<(u32, u32)> = None;
    for t in tokens {
        match &t.kind {
            TokKind::LineComment(_) => {}
            TokKind::Punct(b';') | TokKind::Punct(b'{') | TokKind::Punct(b'}') => {
                if let Some((s, e)) = cur.take() {
                    spans.push((s, e.max(t.line)));
                }
            }
            _ => {
                cur = Some(match cur {
                    Some((s, e)) => (s.min(t.line), e.max(t.line)),
                    None => (t.line, t.line),
                });
            }
        }
    }
    if let Some(span) = cur {
        spans.push(span);
    }
    spans
}

/// Finds half-open token ranges of items marked `#[test]`, `#[cfg(test)]`
/// or `#[bench]`: from the attribute's `#` through the item's closing `}`
/// (or `;` for bodyless items like `use`).
fn find_test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct(b'#') && tokens.get(i + 1).is_some_and(|t| t.is_punct(b'[')) {
            let attr_start = i;
            // Scan the attribute content to its matching `]`.
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut is_test_attr = false;
            while j < tokens.len() {
                match &tokens[j].kind {
                    TokKind::Punct(b'[') => depth += 1,
                    TokKind::Punct(b']') => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    TokKind::Ident(s) if s == "test" || s == "bench" => is_test_attr = true,
                    _ => {}
                }
                j += 1;
            }
            if !is_test_attr {
                i = j;
                continue;
            }
            // Skip any further attributes (and doc comments) before the item.
            while j < tokens.len() {
                if tokens[j].is_punct(b'#') && tokens.get(j + 1).is_some_and(|t| t.is_punct(b'['))
                {
                    let mut d = 0i32;
                    j += 1;
                    while j < tokens.len() {
                        match tokens[j].kind {
                            TokKind::Punct(b'[') => d += 1,
                            TokKind::Punct(b']') => {
                                d -= 1;
                                if d == 0 {
                                    j += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                } else if matches!(tokens[j].kind, TokKind::LineComment(_)) {
                    j += 1;
                } else {
                    break;
                }
            }
            // Consume the item: a `;` at bracket depth 0 ends a bodyless
            // item; a `{` at depth 0 opens the body (find its match).
            let mut depth = 0i32;
            while j < tokens.len() {
                match tokens[j].kind {
                    TokKind::Punct(b'(') | TokKind::Punct(b'[') => depth += 1,
                    TokKind::Punct(b')') | TokKind::Punct(b']') => depth -= 1,
                    TokKind::Punct(b';') if depth == 0 => {
                        j += 1;
                        break;
                    }
                    TokKind::Punct(b'{') if depth == 0 => {
                        let mut braces = 0i32;
                        while j < tokens.len() {
                            match tokens[j].kind {
                                TokKind::Punct(b'{') => braces += 1,
                                TokKind::Punct(b'}') => {
                                    braces -= 1;
                                    if braces == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            j += 1;
                        }
                        j += 1;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            spans.push((attr_start, j));
            i = j;
        } else {
            i += 1;
        }
    }
    spans
}

/// Annotation hygiene findings, part one (run before the other passes):
/// every `lint: allow` must name a known rule and carry a non-empty reason.
pub fn annotation_findings(file: &SourceFile) -> Vec<crate::Finding> {
    let mut out = Vec::new();
    for a in &file.allows {
        if !RULES.contains(&a.rule.as_str()) {
            out.push(crate::Finding {
                file: file.rel_path.clone(),
                line: a.line,
                rule: "annotation".to_owned(),
                message: format!(
                    "unknown lint rule `{}` in allow annotation (known: {})",
                    a.rule,
                    RULES.join(", ")
                ),
            });
        } else if a.reason.is_empty() {
            out.push(crate::Finding {
                file: file.rel_path.clone(),
                line: a.line,
                rule: "annotation".to_owned(),
                message: format!(
                    "lint: allow({}) without a reason — annotations must justify the exemption",
                    a.rule
                ),
            });
        }
    }
    out
}

/// Annotation hygiene findings, part two (run after every other pass):
/// well-formed allows that suppressed nothing are stale and must be
/// removed, so the annotation inventory stays an honest map of the
/// sanctioned exemptions.
pub fn unused_allow_findings(file: &SourceFile) -> Vec<crate::Finding> {
    file.unused_allows()
        .into_iter()
        .map(|a| crate::Finding {
            file: file.rel_path.clone(),
            line: a.line,
            rule: "annotation".to_owned(),
            message: format!(
                "lint: allow({}) no longer suppresses anything — remove the stale exemption",
                a.rule
            ),
        })
        .collect()
}

/// Map from file line to allow annotations (diagnostic helper for tests).
pub fn allows_by_line(file: &SourceFile) -> BTreeMap<u32, Vec<String>> {
    let mut m: BTreeMap<u32, Vec<String>> = BTreeMap::new();
    for a in &file.allows {
        m.entry(a.line).or_default().push(a.rule.clone());
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_is_a_test_span() {
        let src = "pub fn real() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    #[test]\n    fn t() { let m: HashMap<u8, u8> = HashMap::new(); }\n}\n";
        let f = SourceFile::new("x.rs".into(), src);
        // Every HashMap identifier token is inside a test span.
        for (i, t) in f.tokens.iter().enumerate() {
            if t.ident() == Some("HashMap") {
                assert!(f.in_test(i), "token at line {} not in test span", t.line);
            }
            if t.ident() == Some("real") {
                assert!(!f.in_test(i));
            }
        }
    }

    #[test]
    fn test_fn_span_covers_body_only() {
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn real() { y.unwrap(); }\n";
        let f = SourceFile::new("x.rs".into(), src);
        let unwraps: Vec<(usize, u32)> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.ident() == Some("unwrap"))
            .map(|(i, t)| (i, t.line))
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(f.in_test(unwraps[0].0));
        assert!(!f.in_test(unwraps[1].0));
    }

    #[test]
    fn bodyless_cfg_test_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn real(m: HashMap<u8,u8>) {}\n";
        let f = SourceFile::new("x.rs".into(), src);
        let hm: Vec<(usize, u32)> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.ident() == Some("HashMap"))
            .map(|(i, t)| (i, t.line))
            .collect();
        assert_eq!(hm.len(), 2);
        assert!(f.in_test(hm[0].0));
        assert!(!f.in_test(hm[1].0));
    }

    #[test]
    fn allow_parses_rule_and_reason() {
        let src = "let m = HashMap::new(); // lint: allow(determinism, lookup only)\n";
        let f = SourceFile::new("x.rs".into(), src);
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].rule, "determinism");
        assert_eq!(f.allows[0].reason, "lookup only");
        assert!(f.allowed(1, "determinism"));
        assert!(!f.allowed(1, "panic"));
    }

    #[test]
    fn allow_covers_own_line_and_next() {
        let src = "// lint: allow(panic, invariant holds)\nx.unwrap();\ny.unwrap();\n";
        let f = SourceFile::new("x.rs".into(), src);
        assert!(f.allowed(1, "panic"));
        assert!(f.allowed(2, "panic"));
        assert!(!f.allowed(3, "panic"));
    }

    #[test]
    fn allow_covers_the_full_multiline_statement() {
        // The allow sits above a statement spanning three lines: every
        // line of that statement is covered, the next statement is not.
        let src = "// lint: allow(secret-flow, fixture)\nlet throttle = occupancy > limit\n    || (degraded\n        && gate);\nlet other = 1;\n";
        let f = SourceFile::new("x.rs".into(), src);
        assert!(f.allowed(2, "secret-flow"));
        assert!(f.allowed(3, "secret-flow"));
        assert!(f.allowed(4, "secret-flow"));
        assert!(!f.allowed(5, "secret-flow"));
    }

    #[test]
    fn trailing_allow_covers_the_statement_it_starts() {
        let src = "let x = first() // lint: allow(thread-order, fixture)\n    .second();\nlet y = 2;\n";
        let f = SourceFile::new("x.rs".into(), src);
        assert!(f.allowed(1, "thread-order"));
        assert!(f.allowed(2, "thread-order"));
        assert!(!f.allowed(3, "thread-order"));
    }

    #[test]
    fn allow_above_one_struct_field_does_not_leak_to_the_next() {
        // Field declarations are separated by commas, not semicolons, but
        // the statement-span rule only extends an allow to a statement that
        // *starts* adjacent to it — the field list started earlier, so only
        // the direct-line rule applies.
        let src = "struct S {\n    a: u64,\n    // lint: allow(snapshot-drift, scratch)\n    b: u64,\n    c: u64,\n}\n";
        let f = SourceFile::new("x.rs".into(), src);
        assert!(f.allowed(4, "snapshot-drift"));
        assert!(!f.allowed(5, "snapshot-drift"), "must not cover field c");
        assert!(!f.allowed(2, "snapshot-drift"), "must not cover field a");
    }

    #[test]
    fn missing_reason_is_reported() {
        let src = "x.unwrap(); // lint: allow(panic)\n";
        let f = SourceFile::new("x.rs".into(), src);
        let findings = annotation_findings(&f);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("without a reason"));
        // ...and the annotation does NOT silence the rule.
        assert!(!f.allowed(1, "panic"));
    }

    #[test]
    fn unknown_rule_is_reported() {
        let src = "// lint: allow(speed, because)\n";
        let f = SourceFile::new("x.rs".into(), src);
        let findings = annotation_findings(&f);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("unknown lint rule"));
    }

    #[test]
    fn unused_allows_are_reported_after_the_passes_ran() {
        let src = "// lint: allow(panic, nothing here panics anymore)\nlet a = 1;\nx.unwrap(); // lint: allow(panic, covered by the is_some above)\n";
        let f = SourceFile::new("x.rs".into(), src);
        // Simulate the panic pass consulting line 3 only.
        assert!(f.allowed(3, "panic"));
        let unused = unused_allow_findings(&f);
        assert_eq!(unused.len(), 1, "{unused:?}");
        assert_eq!(unused[0].line, 1);
        assert!(unused[0].message.contains("no longer suppresses"));
    }

    #[test]
    fn malformed_allows_are_not_double_reported_as_unused() {
        let src = "// lint: allow(panic)\n// lint: allow(bogus, reason)\n";
        let f = SourceFile::new("x.rs".into(), src);
        assert!(unused_allow_findings(&f).is_empty());
    }

    #[test]
    fn reason_may_contain_commas_and_parens() {
        let src = "x.unwrap(); // lint: allow(panic, guarded by is_some() above, see docs)\n";
        let f = SourceFile::new("x.rs".into(), src);
        assert_eq!(f.allows[0].reason, "guarded by is_some() above, see docs");
        assert!(f.allowed(1, "panic"));
    }
}
