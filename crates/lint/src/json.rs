//! A dependency-free JSON codec for lint outcomes: `--format json` output
//! for CI artifacts, plus a minimal parser so the round trip is testable
//! without pulling in serde.
//!
//! The emitted document is stable and sorted (findings come pre-sorted
//! from [`crate::run`]):
//!
//! ```json
//! {
//!   "files_scanned": 61,
//!   "findings": [
//!     {"file": "crates/x/src/y.rs", "line": 7, "rule": "panic", "message": "..."}
//!   ]
//! }
//! ```

use crate::{Finding, Outcome};

/// Serializes an outcome as a stable, human-diffable JSON document.
pub fn to_json(outcome: &Outcome) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"files_scanned\": {},\n",
        outcome.files_scanned
    ));
    out.push_str("  \"findings\": [");
    for (i, f) in outcome.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"file\": {}, ", quote(&f.file)));
        out.push_str(&format!("\"line\": {}, ", f.line));
        out.push_str(&format!("\"rule\": {}, ", quote(&f.rule)));
        out.push_str(&format!("\"message\": {}", quote(&f.message)));
        out.push('}');
    }
    if !outcome.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// JSON string quoting: escapes `"`, `\` and control characters.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses a document produced by [`to_json`] back into findings — the
/// round-trip half used by the self-tests and available to CI consumers.
///
/// # Errors
///
/// Returns a description of the first structural problem (this is a
/// purpose-built reader for the emitted shape, not a general JSON parser,
/// but it is whitespace-insensitive and escape-correct).
pub fn parse_findings(text: &str) -> Result<Vec<Finding>, String> {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
    };
    p.expect(b'{')?;
    let mut findings = Vec::new();
    loop {
        let key = p.string()?;
        p.expect(b':')?;
        match key.as_str() {
            "files_scanned" => {
                p.number()?;
            }
            "findings" => {
                p.expect(b'[')?;
                if p.peek()? == b']' {
                    p.expect(b']')?;
                } else {
                    loop {
                        findings.push(p.finding()?);
                        match p.next_tok()? {
                            b',' => {}
                            b']' => break,
                            c => return Err(format!("expected , or ] after finding, got {}", c as char)),
                        }
                    }
                }
            }
            other => return Err(format!("unknown key `{other}`")),
        }
        match p.next_tok()? {
            b',' => {}
            b'}' => break,
            c => return Err(format!("expected , or }} at top level, got {}", c as char)),
        }
    }
    Ok(findings)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.b
            .get(self.i)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_owned())
    }

    fn next_tok(&mut self) -> Result<u8, String> {
        let c = self.peek()?;
        self.i += 1;
        Ok(c)
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        let got = self.next_tok()?;
        if got != want {
            return Err(format!("expected {}, got {}", want as char, got as char));
        }
        Ok(())
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self
                .b
                .get(self.i)
                .ok_or_else(|| "unterminated string".to_owned())?;
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .b
                        .get(self.i)
                        .ok_or_else(|| "unterminated escape".to_owned())?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .ok_or_else(|| "truncated \\u escape".to_owned())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-utf8 \\u escape".to_owned())?;
                            let v = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            out.push(
                                char::from_u32(v)
                                    .ok_or_else(|| format!("invalid codepoint {v}"))?,
                            );
                            self.i += 4;
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: find the char boundary and push it.
                    let start = self.i - 1;
                    let mut end = self.i;
                    while end < self.b.len() && self.b[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.b[start..end])
                        .map_err(|_| "invalid utf-8 in string".to_owned())?;
                    out.push_str(s);
                    self.i = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i].is_ascii_digit() {
            self.i += 1;
        }
        if start == self.i {
            return Err("expected a number".to_owned());
        }
        std::str::from_utf8(&self.b[start..self.i])
            .map_err(|_| "bad number".to_owned())?
            .parse()
            .map_err(|_| "number out of range".to_owned())
    }

    fn finding(&mut self) -> Result<Finding, String> {
        self.expect(b'{')?;
        let mut f = Finding {
            file: String::new(),
            line: 0,
            rule: String::new(),
            message: String::new(),
        };
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            match key.as_str() {
                "file" => f.file = self.string()?,
                "line" => f.line = u32::try_from(self.number()?).map_err(|_| "line out of range")?,
                "rule" => f.rule = self.string()?,
                "message" => f.message = self.string()?,
                other => return Err(format!("unknown finding key `{other}`")),
            }
            match self.next_tok()? {
                b',' => {}
                b'}' => return Ok(f),
                c => return Err(format!("expected , or }} in finding, got {}", c as char)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(findings: Vec<Finding>) -> Outcome {
        Outcome {
            findings,
            files_scanned: 3,
        }
    }

    #[test]
    fn empty_outcome_round_trips() {
        let text = to_json(&outcome(vec![]));
        assert!(text.contains("\"files_scanned\": 3"));
        assert_eq!(parse_findings(&text).unwrap(), vec![]);
    }

    #[test]
    fn findings_round_trip_with_escapes() {
        let f = vec![
            Finding {
                file: "crates/a/src/x.rs".into(),
                line: 42,
                rule: "secret-flow".into(),
                message: "branch on `.payload` — \"quoted\"\nand a newline \\ backslash".into(),
            },
            Finding {
                file: "b.rs".into(),
                line: 1,
                rule: "panic".into(),
                message: "plain".into(),
            },
        ];
        let text = to_json(&outcome(f.clone()));
        assert_eq!(parse_findings(&text).unwrap(), f);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_findings("not json").is_err());
        assert!(parse_findings("{\"findings\": [{]}").is_err());
        assert!(parse_findings("{\"unknown\": 1}").is_err());
    }
}
