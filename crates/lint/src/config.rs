//! The config-drift pass: every `SystemConfig` field must participate in
//! the resume-journal cell fingerprint, be reachable from the CLI override
//! table, and be documented in `DESIGN.md`.
//!
//! Rationale: the resume journal answers cells by fingerprint. A config
//! knob that the fingerprint ignores makes two *different* cells alias the
//! same journal line, silently replaying stale results; a knob the CLI
//! cannot name cannot be swept; a knob `DESIGN.md` does not mention is
//! invisible to reviewers. A field can opt out with
//! `// lint: allow(config, <reason>)` on its declaration line.

use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::Finding;

/// One parsed struct field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Declaration line in the config source file.
    pub line: u32,
}

/// Extracts the named struct's fields from its source file. Returns `None`
/// when the struct is not found.
pub fn struct_fields(file: &SourceFile, struct_name: &str) -> Option<Vec<Field>> {
    let toks = &file.tokens;
    let mut i = 0usize;
    // Find `struct <name> ... {`.
    let mut body = None;
    while i + 1 < toks.len() {
        if toks[i].ident() == Some("struct") && toks[i + 1].ident() == Some(struct_name) {
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct(b'{') {
                j += 1;
            }
            body = Some(j + 1);
            break;
        }
        i += 1;
    }
    let mut i = body?;
    let mut fields = Vec::new();
    // Parse `pub? name : <type> ,` at depth 0 of the struct body, skipping
    // attributes; a `}` at depth 0 ends the struct.
    loop {
        // Skip comments and attributes.
        loop {
            match toks.get(i)?.kind {
                TokKind::LineComment(_) => i += 1,
                TokKind::Punct(b'#') => {
                    // Skip to matching `]`.
                    let mut d = 0i32;
                    i += 1;
                    while i < toks.len() {
                        match toks[i].kind {
                            TokKind::Punct(b'[') => d += 1,
                            TokKind::Punct(b']') => {
                                d -= 1;
                                if d == 0 {
                                    i += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        i += 1;
                    }
                }
                _ => break,
            }
        }
        if toks.get(i)?.is_punct(b'}') {
            return Some(fields);
        }
        if toks.get(i)?.ident() == Some("pub") {
            i += 1;
        }
        let name_tok = toks.get(i)?;
        let name = name_tok.ident()?.to_owned();
        let line = name_tok.line;
        i += 1;
        if !toks.get(i)?.is_punct(b':') {
            return Some(fields); // not a field list (e.g. tuple struct)
        }
        // Skip the type up to a `,` at depth 0 or the closing `}`.
        let mut depth = 0i32;
        loop {
            let t = toks.get(i)?;
            match t.kind {
                TokKind::Punct(b'(') | TokKind::Punct(b'[') | TokKind::Punct(b'{')
                | TokKind::Punct(b'<') => depth += 1,
                TokKind::Punct(b')') | TokKind::Punct(b']') | TokKind::Punct(b'>') => depth -= 1,
                TokKind::Punct(b'}') => {
                    if depth == 0 {
                        fields.push(Field { name, line });
                        return Some(fields);
                    }
                    depth -= 1;
                }
                TokKind::Punct(b',') if depth <= 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, line });
    }
}

/// Identifiers appearing inside `fn <name>(...) { ... }` in `file`.
pub fn fn_idents(file: &SourceFile, fn_name: &str) -> Option<Vec<String>> {
    let toks = &file.tokens;
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if toks[i].ident() == Some("fn") && toks[i + 1].ident() == Some(fn_name) {
            // Find the body's `{` then its matching `}`.
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct(b'{') {
                j += 1;
            }
            let mut depth = 0i32;
            let mut idents = Vec::new();
            while j < toks.len() {
                match &toks[j].kind {
                    TokKind::Punct(b'{') => depth += 1,
                    TokKind::Punct(b'}') => {
                        depth -= 1;
                        if depth == 0 {
                            return Some(idents);
                        }
                    }
                    TokKind::Ident(s) => idents.push(s.clone()),
                    _ => {}
                }
                j += 1;
            }
            return Some(idents);
        }
        i += 1;
    }
    None
}

/// Inputs the config-drift pass compares against.
pub struct ConfigInputs<'a> {
    /// The file declaring `SystemConfig` (also holds the CLI override
    /// table, `SystemConfig::set_field`).
    pub config: &'a SourceFile,
    /// The file holding `fn fingerprint` (resume-journal cell identity).
    pub journal: &'a SourceFile,
    /// The CLI parsing layer (its string literals also count as CLI
    /// references).
    pub runner: &'a SourceFile,
    /// Full text of `DESIGN.md`.
    pub design: &'a str,
    /// Display path of the design doc for messages.
    pub design_path: &'a str,
}

/// Runs the config-drift pass.
pub fn check(inputs: &ConfigInputs<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    let Some(fields) = struct_fields(inputs.config, "SystemConfig") else {
        return vec![Finding {
            file: inputs.config.rel_path.clone(),
            line: 1,
            rule: "config".to_owned(),
            message: "struct SystemConfig not found — config-drift pass cannot run".to_owned(),
        }];
    };
    let Some(fp_idents) = fn_idents(inputs.journal, "fingerprint") else {
        return vec![Finding {
            file: inputs.journal.rel_path.clone(),
            line: 1,
            rule: "config".to_owned(),
            message: "fn fingerprint not found — config-drift pass cannot run".to_owned(),
        }];
    };
    let cli_strings: Vec<&str> = inputs
        .config
        .strings()
        .chain(inputs.runner.strings())
        .collect();
    for f in fields {
        if inputs.config.allowed(f.line, "config") {
            continue;
        }
        if !fp_idents.iter().any(|s| s == &f.name) {
            out.push(Finding {
                file: inputs.config.rel_path.clone(),
                line: f.line,
                rule: "config".to_owned(),
                message: format!(
                    "SystemConfig::{} is not referenced in fn fingerprint ({}) — two configs differing only in it would alias the same resume-journal cell",
                    f.name, inputs.journal.rel_path
                ),
            });
        }
        if !cli_strings.iter().any(|s| *s == f.name) {
            out.push(Finding {
                file: inputs.config.rel_path.clone(),
                line: f.line,
                rule: "config".to_owned(),
                message: format!(
                    "SystemConfig::{} has no CLI reference — add a \"{}\" arm to SystemConfig::set_field (the --set override table) or an explicit not-settable arm",
                    f.name, f.name
                ),
            });
        }
        if !inputs.design.contains(&format!("`{}`", f.name)) {
            out.push(Finding {
                file: inputs.config.rel_path.clone(),
                line: f.line,
                rule: "config".to_owned(),
                message: format!(
                    "SystemConfig::{} is not documented in {} (expected `{}` in backticks)",
                    f.name, inputs.design_path, f.name
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_file(src: &str) -> SourceFile {
        SourceFile::new("config.rs".into(), src)
    }

    const CFG: &str = "pub struct SystemConfig {\n    /// doc\n    pub scheme: Scheme,\n    #[serde(default)]\n    pub seed: u64,\n    pub knobs: Vec<(String, String)>,\n}\nimpl SystemConfig {\n    pub fn set_field(&mut self, k: &str) { match k { \"scheme\" => {}, \"seed\" => {}, \"knobs\" => {}, _ => {} } }\n}\n";

    #[test]
    fn parses_fields_with_attrs_and_generics() {
        let f = struct_fields(&cfg_file(CFG), "SystemConfig").unwrap();
        let names: Vec<&str> = f.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, ["scheme", "seed", "knobs"]);
        assert_eq!(f[0].line, 3);
        assert_eq!(f[1].line, 5);
    }

    #[test]
    fn clean_when_everything_is_referenced() {
        let config = cfg_file(CFG);
        let journal = SourceFile::new(
            "journal.rs".into(),
            "pub fn fingerprint(c: &SystemConfig) -> u64 {\n let SystemConfig { scheme, seed, knobs } = c;\n 0\n}\n",
        );
        let runner = SourceFile::new("runner.rs".into(), "");
        let f = check(&ConfigInputs {
            config: &config,
            journal: &journal,
            runner: &runner,
            design: "fields: `scheme`, `seed`, `knobs`",
            design_path: "DESIGN.md",
        });
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn each_drift_direction_is_reported_with_field_line() {
        let config = cfg_file(CFG);
        let journal = SourceFile::new(
            "journal.rs".into(),
            "pub fn fingerprint(c: &SystemConfig) -> u64 { let _ = (c.scheme, c.seed); 0 }\n",
        );
        let runner = SourceFile::new("runner.rs".into(), "");
        let f = check(&ConfigInputs {
            config: &config,
            journal: &journal,
            runner: &runner,
            design: "documented: `scheme` and `seed`",
            design_path: "DESIGN.md",
        });
        // knobs: missing from fingerprint AND design (CLI arm exists).
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.line == 6));
        assert!(f.iter().any(|x| x.message.contains("fingerprint")));
        assert!(f.iter().any(|x| x.message.contains("DESIGN.md")));
    }

    #[test]
    fn allow_on_declaration_line_exempts_field() {
        let src = CFG.replace(
            "pub knobs: Vec<(String, String)>,",
            "pub knobs: Vec<(String, String)>, // lint: allow(config, derived at run time)",
        );
        let config = cfg_file(&src);
        let journal = SourceFile::new(
            "journal.rs".into(),
            "pub fn fingerprint(c: &SystemConfig) -> u64 { let _ = (c.scheme, c.seed); 0 }\n",
        );
        let runner = SourceFile::new("runner.rs".into(), "");
        let f = check(&ConfigInputs {
            config: &config,
            journal: &journal,
            runner: &runner,
            design: "`scheme` `seed`",
            design_path: "DESIGN.md",
        });
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn missing_struct_or_fingerprint_is_its_own_finding() {
        let config = cfg_file("pub struct Other { pub a: u8 }\n");
        let journal = SourceFile::new("journal.rs".into(), "fn fingerprint() {}\n");
        let runner = SourceFile::new("runner.rs".into(), "");
        let f = check(&ConfigInputs {
            config: &config,
            journal: &journal,
            runner: &runner,
            design: "",
            design_path: "DESIGN.md",
        });
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("SystemConfig not found"));
    }

    #[test]
    fn fn_idents_scopes_to_the_named_fn() {
        let f = SourceFile::new(
            "j.rs".into(),
            "fn other() { let not_me = 1; }\nfn fingerprint() { let scheme = 2; }\n",
        );
        let ids = fn_idents(&f, "fingerprint").unwrap();
        assert!(ids.contains(&"scheme".to_owned()));
        assert!(!ids.contains(&"not_me".to_owned()));
    }
}
