//! The panic-freedom ratchet file (`lint-ratchet.toml`): a checked-in
//! budget of panic-capable sites per hot-path file, written and read by a
//! hand-rolled TOML-subset codec (section headers + `key = integer`
//! pairs), so counts can only go down over time.

use std::collections::BTreeMap;

/// Per-file, per-category budget. Both maps are ordered so the serialized
/// file is deterministic.
pub type Ratchet = BTreeMap<String, BTreeMap<String, u64>>;

/// The categories the panic pass counts, in serialization order.
pub const CATEGORIES: [&str; 5] = ["expect", "index", "panic", "unreachable", "unwrap"];

/// Serializes a ratchet to the checked-in file format.
pub fn to_string(r: &Ratchet) -> String {
    let mut out = String::new();
    out.push_str("# iroram-lint panic-freedom ratchet: per-file budgets for panic-capable\n");
    out.push_str("# sites (unwrap/expect/panic!/unreachable!/slice-indexing) in hot-path\n");
    out.push_str("# modules, plus `reach:`-prefixed sections budgeting sites transitively\n");
    out.push_str("# reachable from the per-slot entry points through helper crates.\n");
    out.push_str("# Counts may only go down; regenerate after removing sites with:\n");
    out.push_str("#   cargo run -p lint --release -- --fix-ratchet\n");
    for (file, cats) in r {
        out.push('\n');
        out.push_str(&format!("[\"{file}\"]\n"));
        for cat in CATEGORIES {
            let v = cats.get(cat).copied().unwrap_or(0);
            out.push_str(&format!("{cat} = {v}\n"));
        }
    }
    out
}

/// Parses the ratchet file. Unknown keys and malformed lines are errors —
/// the ratchet is a contract, not a log.
pub fn parse(text: &str) -> Result<Ratchet, String> {
    let mut out = Ratchet::new();
    let mut current: Option<String> = None;
    for (n, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let inner = rest
                .strip_suffix(']')
                .ok_or_else(|| format!("line {}: unterminated section header", n + 1))?;
            let name = inner.trim().trim_matches('"').to_owned();
            if name.is_empty() {
                return Err(format!("line {}: empty section name", n + 1));
            }
            out.entry(name.clone()).or_default();
            current = Some(name);
            continue;
        }
        let (k, v) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected `key = value`", n + 1))?;
        let key = k.trim();
        if !CATEGORIES.contains(&key) {
            return Err(format!(
                "line {}: unknown category `{key}` (known: {})",
                n + 1,
                CATEGORIES.join(", ")
            ));
        }
        let val: u64 = v
            .trim()
            .parse()
            .map_err(|_| format!("line {}: `{}` is not a count", n + 1, v.trim()))?;
        let section = current
            .as_ref()
            .ok_or_else(|| format!("line {}: key outside any [section]", n + 1))?;
        out.get_mut(section)
            .expect("section inserted on header")
            .insert(key.to_owned(), val);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut r = Ratchet::new();
        let mut c = BTreeMap::new();
        c.insert("unwrap".to_owned(), 3);
        c.insert("index".to_owned(), 12);
        r.insert("crates/a/src/x.rs".to_owned(), c);
        let text = to_string(&r);
        let back = parse(&text).unwrap();
        assert_eq!(back["crates/a/src/x.rs"]["unwrap"], 3);
        assert_eq!(back["crates/a/src/x.rs"]["index"], 12);
        // Unset categories serialize as explicit zeros.
        assert_eq!(back["crates/a/src/x.rs"]["panic"], 0);
    }

    #[test]
    fn rejects_unknown_category_and_garbage() {
        assert!(parse("[\"f.rs\"]\nfoo = 1\n").is_err());
        assert!(parse("[\"f.rs\"]\nunwrap = many\n").is_err());
        assert!(parse("unwrap = 1\n").is_err());
        assert!(parse("[\"f.rs\"\nunwrap = 1\n").is_err());
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let r = parse("# header\n\n[\"f.rs\"]\n# inner\nunwrap = 2\n").unwrap();
        assert_eq!(r["f.rs"]["unwrap"], 2);
    }
}
