//! A small hand-rolled Rust lexer — just enough structure for the lint
//! passes: identifiers, punctuation, string/char literals, line comments
//! (kept, so `// lint: allow(...)` annotations survive), block comments
//! (skipped), raw strings, lifetimes, and numbers, each tagged with its
//! 1-based source line.
//!
//! This is deliberately not a full Rust grammar. The passes only need to
//! recognize token *shapes* (`HashMap` as an identifier, `.unwrap(`,
//! `ident[`), and a lexer — unlike a regex over raw text — cannot be fooled
//! by occurrences inside strings, comments, or doc text.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokKind,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// Token kinds the lint passes distinguish.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `fn`, `unwrap`, ...).
    Ident(String),
    /// A string literal's decoded-enough content (escapes left verbatim).
    Str(String),
    /// A character literal (content irrelevant to the passes).
    Char,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// A numeric literal.
    Num,
    /// One punctuation byte (`#`, `[`, `(`, `!`, `.`, ...).
    Punct(u8),
    /// A `//` line comment, full text after the slashes, untrimmed.
    LineComment(String),
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when this token is the punctuation byte `c`.
    pub fn is_punct(&self, c: u8) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// Lexes `src` into tokens. Unrecognized bytes are skipped (the passes only
/// care about the shapes above), so lexing never fails.
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                toks.push(Token {
                    kind: TokKind::LineComment(src[start..i].to_owned()),
                    line,
                });
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Block comment, nested per Rust rules. Skipped entirely:
                // annotations must be `//` line comments.
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let tok_line = line;
                let (s, ni, nl) = lex_string(src, i + 1, line);
                toks.push(Token {
                    kind: TokKind::Str(s),
                    line: tok_line,
                });
                i = ni;
                line = nl;
            }
            b'r' | b'b'
                if is_raw_string_start(b, i) =>
            {
                let tok_line = line;
                let (s, ni, nl) = lex_raw_string(src, i, line);
                toks.push(Token {
                    kind: TokKind::Str(s),
                    line: tok_line,
                });
                i = ni;
                line = nl;
            }
            b'b' if b.get(i + 1) == Some(&b'"') => {
                let tok_line = line;
                let (s, ni, nl) = lex_string(src, i + 2, line);
                toks.push(Token {
                    kind: TokKind::Str(s),
                    line: tok_line,
                });
                i = ni;
                line = nl;
            }
            b'b' if b.get(i + 1) == Some(&b'\'') => {
                toks.push(Token {
                    kind: TokKind::Char,
                    line,
                });
                i = lex_char(b, i + 2);
            }
            b'\'' => {
                // Lifetime vs char literal: a lifetime is `'` + ident NOT
                // followed by a closing `'` (so `'a'` is a char, `'a` a
                // lifetime, `'\n'` a char).
                let mut j = i + 1;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                if j > i + 1 && b.get(j) != Some(&b'\'') {
                    toks.push(Token {
                        kind: TokKind::Lifetime,
                        line,
                    });
                    i = j;
                } else {
                    toks.push(Token {
                        kind: TokKind::Char,
                        line,
                    });
                    i = lex_char(b, i + 1);
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                toks.push(Token {
                    kind: TokKind::Ident(src[start..i].to_owned()),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                while i < b.len()
                    && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                {
                    // `0..10` range: do not swallow the second dot.
                    if b[i] == b'.' && b.get(i + 1) == Some(&b'.') {
                        break;
                    }
                    i += 1;
                }
                toks.push(Token {
                    kind: TokKind::Num,
                    line,
                });
            }
            c => {
                toks.push(Token {
                    kind: TokKind::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    toks
}

/// True when position `i` starts a raw string (`r"`, `r#`, `br"`, `br#`).
fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    let j = if b[i] == b'b' { i + 1 } else { i };
    if b.get(j) != Some(&b'r') {
        return false;
    }
    matches!(b.get(j + 1), Some(&b'"') | Some(&b'#'))
}

/// Lexes a normal string body starting just after the opening quote.
/// Returns (content, next index, next line).
fn lex_string(src: &str, mut i: usize, mut line: u32) -> (String, usize, u32) {
    let b = src.as_bytes();
    let start = i;
    while i < b.len() {
        match b[i] {
            b'"' => return (src[start..i].to_owned(), i + 1, line),
            b'\\' => {
                // A line-continuation escape (`\` before a newline) still
                // ends a source line: count it or every token after the
                // string reports a too-small line number.
                if b.get(i + 1) == Some(&b'\n') {
                    line += 1;
                }
                i += 2;
            }
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (src[start..i.min(src.len())].to_owned(), i, line)
}

/// Lexes a raw string starting at its `r`/`br`. Returns (content, next
/// index, next line).
fn lex_raw_string(src: &str, mut i: usize, mut line: u32) -> (String, usize, u32) {
    let b = src.as_bytes();
    if b[i] == b'b' {
        i += 1;
    }
    i += 1; // the `r`
    let mut hashes = 0usize;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    let start = i;
    while i < b.len() {
        if b[i] == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if b[i] == b'"' {
            let mut ok = true;
            for k in 0..hashes {
                if b.get(i + 1 + k) != Some(&b'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                return (src[start..i].to_owned(), i + 1 + hashes, line);
            }
        }
        i += 1;
    }
    (src[start..i.min(src.len())].to_owned(), i, line)
}

/// Skips a char-literal body starting just after the opening quote,
/// returning the index after the closing quote.
fn lex_char(b: &[u8], mut i: usize) -> usize {
    if b.get(i) == Some(&b'\\') {
        // Past the escape introducer; the scan below absorbs the rest
        // (including `\u{...}` bodies) up to the closing quote.
        i += 2;
    } else {
        // One (possibly multi-byte) character.
        i += 1;
    }
    while i < b.len() && b[i] != b'\'' {
        i += 1;
    }
    i + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn identifiers_and_lines() {
        let toks = lex("fn main() {\n  let x = 1;\n}");
        let main = toks.iter().find(|t| t.ident() == Some("main")).unwrap();
        assert_eq!(main.line, 1);
        let x = toks.iter().find(|t| t.ident() == Some("x")).unwrap();
        assert_eq!(x.line, 2);
    }

    #[test]
    fn strings_do_not_leak_identifiers() {
        assert_eq!(idents(r#"let s = "HashMap in a string";"#), ["let", "s"]);
        assert_eq!(idents("let s = r#\"HashMap raw\"#;"), ["let", "s"]);
        assert_eq!(idents(r#"let s = b"HashMap bytes";"#), ["let", "s"]);
        assert_eq!(
            idents("let s = \"escaped \\\" quote HashMap\";"),
            ["let", "s"]
        );
    }

    #[test]
    fn comments_do_not_leak_identifiers() {
        assert_eq!(idents("// HashMap here\nlet x = 1;"), ["let", "x"]);
        assert_eq!(idents("/* HashMap /* nested */ still */ let x = 1;"), ["let", "x"]);
    }

    #[test]
    fn line_comments_are_kept_with_text() {
        let toks = lex("let x = 1; // lint: allow(panic, why)\n");
        let c = toks
            .iter()
            .find_map(|t| match &t.kind {
                TokKind::LineComment(s) => Some(s.clone()),
                _ => None,
            })
            .unwrap();
        assert!(c.contains("lint: allow(panic, why)"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str, c: char) { let y = 'z'; let n = '\\n'; }");
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
        // 'static too
        let toks = lex("x: &'static str");
        assert!(toks.iter().any(|t| t.kind == TokKind::Lifetime));
    }

    #[test]
    fn multiline_string_advances_line_numbers() {
        let toks = lex("let s = \"a\nb\nc\";\nlet y = 2;");
        let y = toks.iter().find(|t| t.ident() == Some("y")).unwrap();
        assert_eq!(y.line, 4);
    }

    #[test]
    fn numbers_including_ranges() {
        let toks = lex("for i in 0..10 { a[i] = 1.5; }");
        let nums = toks.iter().filter(|t| t.kind == TokKind::Num).count();
        assert_eq!(nums, 3); // 0, 10, 1.5
    }

    #[test]
    fn string_literal_content_is_captured() {
        let toks = lex(r#"m.insert("t_interval", 1);"#);
        assert!(toks
            .iter()
            .any(|t| matches!(&t.kind, TokKind::Str(s) if s == "t_interval")));
    }

    #[test]
    fn line_continuation_escape_counts_the_newline() {
        let toks = lex("let s = \"a\\\nb\";\nlet x = 1;\n");
        let x = toks.iter().find(|t| t.ident() == Some("x")).unwrap();
        assert_eq!(x.line, 3);
    }
}
