//! Hashing primitives for the IR-ORAM reproduction.
//!
//! The paper's IR-Stash indexes its set-associative `S-Stash` "using MD5 of
//! their addresses" (Section IV-C) to spread block addresses evenly across
//! cache sets. This crate provides:
//!
//! * [`Md5`] — a from-scratch RFC 1321 MD5 implementation (no external crypto
//!   crates), plus the convenience [`md5_u64`] used for set indexing.
//! * [`mix64`] / [`mix32`] — fast avalanche mixers for hot-path hashing where
//!   full MD5 would be wasteful in a simulator.
//! * [`FeistelCipher`] — a small, invertible toy block cipher used by the
//!   functional ORAM model to "encrypt" block payloads, so tests can assert
//!   that data round-trips through the tree in non-cleartext form. It is a
//!   *simulation stand-in*, not a secure cipher.
//!
//! # Examples
//!
//! ```
//! use iroram_hash::{md5_hex, md5_u64, FeistelCipher};
//!
//! assert_eq!(md5_hex(b""), "d41d8cd98f00b204e9800998ecf8427e");
//! let set_index = md5_u64(0xdead_beef) % 1024;
//! assert!(set_index < 1024);
//!
//! let cipher = FeistelCipher::new(0x1234);
//! let ct = cipher.encrypt(42);
//! assert_ne!(ct, 42);
//! assert_eq!(cipher.decrypt(ct), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod feistel;
mod md5;
mod mixers;

pub use feistel::FeistelCipher;
pub use md5::{md5, md5_hex, md5_u64, Md5};
pub use mixers::{mix32, mix64};
