//! Fast avalanche mixers for hot-path hashing.
//!
//! The simulators hash addresses millions of times per run (PLB indexing,
//! DRAM address interleaving checks, trace synthesis). Full MD5 there would
//! dominate runtime, so these finalizer-style mixers are used instead where
//! cryptographic pedigree is irrelevant.

/// Moremur/SplitMix-style 64-bit finalizer: a bijective avalanche mix.
///
/// # Examples
///
/// ```
/// use iroram_hash::mix64;
/// assert_ne!(mix64(1), mix64(2));
/// ```
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// 32-bit variant (Murmur3 finalizer), also bijective.
///
/// # Examples
///
/// ```
/// use iroram_hash::mix32;
/// assert_ne!(mix32(0), mix32(1));
/// ```
#[inline]
pub fn mix32(mut x: u32) -> u32 {
    x ^= x >> 16;
    x = x.wrapping_mul(0x85EB_CA6B);
    x ^= x >> 13;
    x = x.wrapping_mul(0xC2B2_AE35);
    x ^= x >> 16;
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mix64_injective_on_sample() {
        let outs: HashSet<u64> = (0..10_000u64).map(mix64).collect();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn mix32_injective_on_sample() {
        let outs: HashSet<u32> = (0..10_000u32).map(mix32).collect();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn mixers_avalanche_low_bits() {
        // Consecutive inputs should differ in roughly half the output bits.
        let mut total = 0u32;
        for i in 0..1000u64 {
            total += (mix64(i) ^ mix64(i + 1)).count_ones();
        }
        let avg = total as f64 / 1000.0;
        assert!((24.0..40.0).contains(&avg), "avg flipped bits {avg}");
    }
}
