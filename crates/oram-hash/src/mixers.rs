//! Fast avalanche mixers for hot-path hashing.
//!
//! The simulators hash addresses millions of times per run (PLB indexing,
//! DRAM address interleaving checks, trace synthesis). Full MD5 there would
//! dominate runtime, so these finalizer-style mixers are used instead where
//! cryptographic pedigree is irrelevant.

/// Moremur/SplitMix-style 64-bit finalizer: a bijective avalanche mix.
///
/// # Examples
///
/// ```
/// use iroram_hash::mix64;
/// assert_ne!(mix64(1), mix64(2));
/// ```
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// 32-bit variant (Murmur3 finalizer), also bijective.
///
/// # Examples
///
/// ```
/// use iroram_hash::mix32;
/// assert_ne!(mix32(0), mix32(1));
/// ```
#[inline]
pub fn mix32(mut x: u32) -> u32 {
    x ^= x >> 16;
    x = x.wrapping_mul(0x85EB_CA6B);
    x ^= x >> 13;
    x = x.wrapping_mul(0xC2B2_AE35);
    x ^= x >> 16;
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mix64_injective_on_sample() {
        let outs: HashSet<u64> = (0..10_000u64).map(mix64).collect();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn mix32_injective_on_sample() {
        let outs: HashSet<u32> = (0..10_000u32).map(mix32).collect();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn mixers_avalanche_low_bits() {
        // Consecutive inputs should differ in roughly half the output bits.
        let mut total = 0u32;
        for i in 0..1000u64 {
            total += (mix64(i) ^ mix64(i + 1)).count_ones();
        }
        let avg = total as f64 / 1000.0;
        assert!((24.0..40.0).contains(&avg), "avg flipped bits {avg}");
    }

    /// Chi-square statistic of `n` keys hashed into `buckets` bins by
    /// `bin`. Under uniformity it concentrates around its mean `df =
    /// buckets - 1` with standard deviation `sqrt(2 df)`.
    fn chi_square(n: u64, buckets: usize, bin: impl Fn(u64) -> usize) -> f64 {
        let mut counts = vec![0u64; buckets];
        for key in 1..=n {
            counts[bin(key)] += 1;
        }
        let expect = n as f64 / buckets as f64;
        counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expect;
                d * d / expect
            })
            .sum()
    }

    /// `df + 6 sqrt(2 df)`: six standard deviations above the mean — an
    /// astronomically unlikely level for a uniform hash, but trips
    /// immediately on structured skew (e.g. hashing only low bits).
    fn chi_bound(buckets: usize) -> f64 {
        let df = (buckets - 1) as f64;
        df + 6.0 * (2.0 * df).sqrt()
    }

    #[test]
    fn mix64_slot_distribution_uniform_at_1m_keys() {
        // The KV layer's slot choice: `mix64(key ^ salt)` masked to a
        // power-of-two table, driven by 1M sequential keys (the worst
        // realistic case: maximally structured input).
        for salt in [0u64, 0x9E37_79B9_7F4A_7C15, 0xC2B2_AE3D_27D4_EB4F] {
            let buckets = 4096usize;
            let x = chi_square(1_000_000, buckets, |k| {
                (mix64(k ^ salt) & (buckets as u64 - 1)) as usize
            });
            assert!(
                x < chi_bound(buckets),
                "salt {salt:#x}: chi-square {x:.1} exceeds {:.1}",
                chi_bound(buckets)
            );
        }
    }

    #[test]
    fn mix64_shard_distribution_uniform_at_1m_keys() {
        // The KV layer's shard directory: `mix64(key ^ salt) % shards`
        // for non-power-of-two shard counts too.
        for shards in [2usize, 3, 4, 7, 16] {
            let x = chi_square(1_000_000, shards, |k| {
                (mix64(k ^ 0x85EB_CA77_C2B2_AE63) % shards as u64) as usize
            });
            assert!(
                x < chi_bound(shards),
                "{shards} shards: chi-square {x:.1} exceeds {:.1}",
                chi_bound(shards)
            );
        }
    }

    #[test]
    fn mix64_high_bits_are_as_uniform_as_low_bits() {
        // Slot masking uses low bits; make sure nothing degenerate hides
        // in the high half either (the directory uses `%`, which folds
        // high bits in).
        let buckets = 1024usize;
        let x = chi_square(1_000_000, buckets, |k| (mix64(k) >> 54) as usize);
        assert!(x < chi_bound(buckets), "high-bit chi-square {x:.1}");
    }
}
