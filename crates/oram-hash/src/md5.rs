//! RFC 1321 MD5, implemented from scratch.
//!
//! IR-Stash uses MD5 of the block address to index `S-Stash` sets; the paper
//! reports this "evenly distributes the blocks". We implement the real
//! algorithm so the distribution claim can be checked rather than assumed.

/// Per-round left-rotate amounts.
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// Binary integer parts of abs(sin(i+1)) * 2^32 (the RFC 1321 T table).
const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613,
    0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193,
    0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d,
    0x02441453, 0xd8a1e681, 0xe7d3fbc8, 0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
    0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122,
    0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665, 0xf4292244,
    0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb,
    0xeb86d391,
];

/// Incremental MD5 hasher.
///
/// # Examples
///
/// ```
/// use iroram_hash::Md5;
/// let mut h = Md5::new();
/// h.update(b"abc");
/// assert_eq!(h.finalize(), [
///     0x90, 0x01, 0x50, 0x98, 0x3c, 0xd2, 0x4f, 0xb0,
///     0xd6, 0x96, 0x3f, 0x7d, 0x28, 0xe1, 0x7f, 0x72,
/// ]);
/// ```
#[derive(Debug, Clone)]
pub struct Md5 {
    state: [u32; 4],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Md5 {
    /// Creates a hasher in the RFC initial state.
    pub fn new() -> Self {
        Md5 {
            state: [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476],
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finishes the hash, returning the 16-byte digest.
    pub fn finalize(mut self) -> [u8; 16] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80 then zeros until 56 mod 64, then the 64-bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Appending the length must not be double-counted in total_len, but
        // since we no longer read total_len after this point it is harmless.
        self.update(&bit_len.to_le_bytes());
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; 16];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            m[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(K[i])
                    .wrapping_add(m[g])
                    .rotate_left(S[i]),
            );
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

impl Default for Md5 {
    fn default() -> Self {
        Md5::new()
    }
}

/// One-shot MD5 of `data`.
pub fn md5(data: &[u8]) -> [u8; 16] {
    let mut h = Md5::new();
    h.update(data);
    h.finalize()
}

/// One-shot MD5 rendered as a lowercase hex string.
pub fn md5_hex(data: &[u8]) -> String {
    md5(data)
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect::<String>()
}

/// MD5 of a 64-bit address, folded to 64 bits — the hash IR-Stash uses for
/// S-Stash set selection.
pub fn md5_u64(addr: u64) -> u64 {
    let d = md5(&addr.to_le_bytes());
    let lo = u64::from_le_bytes(d[..8].try_into().expect("8-byte slice"));
    let hi = u64::from_le_bytes(d[8..].try_into().expect("8-byte slice"));
    lo ^ hi
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        let cases: [(&[u8], &str); 7] = [
            (b"", "d41d8cd98f00b204e9800998ecf8427e"),
            (b"a", "0cc175b9c0f1b6a831c399e269772661"),
            (b"abc", "900150983cd24fb0d6963f7d28e17f72"),
            (b"message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                b"abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(md5_hex(input), want, "input {:?}", String::from_utf8_lossy(input));
        }
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for split in [0usize, 1, 17, 63, 64, 65, 128, 999, 1000] {
            let mut h = Md5::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), md5(&data), "split at {split}");
        }
    }

    #[test]
    fn exactly_block_sized_inputs() {
        // 55/56/57 bytes straddle the padding boundary; 64/128 are full blocks.
        for len in [55usize, 56, 57, 64, 119, 120, 128] {
            let data = vec![0xabu8; len];
            let one = md5(&data);
            let mut h = Md5::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), one, "len {len}");
        }
    }

    #[test]
    fn md5_u64_spreads_sets() {
        // The paper's claim: MD5 indexing evenly distributes block addresses
        // across S-Stash sets. Check a chi-square-ish bound for sequential
        // addresses (the pathological input for naive modulo indexing).
        const SETS: usize = 64;
        let mut buckets = [0u32; SETS];
        let n = 64_000u64;
        for addr in 0..n {
            buckets[(md5_u64(addr) % SETS as u64) as usize] += 1;
        }
        let expected = n as f64 / SETS as f64;
        let chi2: f64 = buckets
            .iter()
            .map(|&o| {
                let d = o as f64 - expected;
                d * d / expected
            })
            .sum();
        // 63 degrees of freedom: p=0.001 critical value ~103.4.
        assert!(chi2 < 103.4, "chi-square {chi2} too high; not uniform");
    }

    #[test]
    fn default_is_new() {
        assert_eq!(Md5::default().finalize(), Md5::new().finalize());
    }
}
