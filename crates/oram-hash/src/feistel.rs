//! A toy Feistel block cipher for functional-mode encryption modelling.
//!
//! Path ORAM stores every bucket slot encrypted so that real and dummy blocks
//! are indistinguishable. The timing simulators only need to *count* the
//! crypto work, but the functional protocol model carries payloads through
//! the tree; encrypting them with an invertible permutation lets tests assert
//! that (a) data round-trips and (b) stored payloads differ from cleartext.
//!
//! This is explicitly **not** a secure cipher — four rounds of a mixed
//! Feistel network over 64-bit blocks — but it is a permutation, which is the
//! property the model needs.

use crate::mixers::mix64;

/// A keyed, invertible 64-bit block permutation (4-round Feistel network).
///
/// # Examples
///
/// ```
/// use iroram_hash::FeistelCipher;
/// let c = FeistelCipher::new(0xfeed_f00d);
/// let pt = 123_456_789u64;
/// assert_eq!(c.decrypt(c.encrypt(pt)), pt);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeistelCipher {
    round_keys: [u64; 4],
}

impl FeistelCipher {
    /// Derives round keys from `key`.
    pub fn new(key: u64) -> Self {
        let mut round_keys = [0u64; 4];
        let mut k = key;
        for rk in &mut round_keys {
            k = mix64(k ^ 0x9E37_79B9_7F4A_7C15);
            *rk = k;
        }
        FeistelCipher { round_keys }
    }

    #[inline]
    fn round(half: u32, key: u64) -> u32 {
        mix64(half as u64 ^ key) as u32
    }

    /// Encrypts one 64-bit block.
    #[inline]
    pub fn encrypt(&self, block: u64) -> u64 {
        let mut l = (block >> 32) as u32;
        let mut r = block as u32;
        for &rk in &self.round_keys {
            let next_r = l ^ Self::round(r, rk);
            l = r;
            r = next_r;
        }
        ((l as u64) << 32) | r as u64
    }

    /// Decrypts one 64-bit block.
    #[inline]
    pub fn decrypt(&self, block: u64) -> u64 {
        let mut l = (block >> 32) as u32;
        let mut r = block as u32;
        for &rk in self.round_keys.iter().rev() {
            let next_l = r ^ Self::round(l, rk);
            r = l;
            l = next_l;
        }
        ((l as u64) << 32) | r as u64
    }

    /// Encrypts a whole slice in place — the batch form the controllers
    /// feed a path's payloads through. Processed in fixed-width chunks so
    /// the independent per-block permutations pipeline (no branches or
    /// data dependences between lanes inside a chunk).
    pub fn encrypt_slice(&self, blocks: &mut [u64]) {
        let mut chunks = blocks.chunks_exact_mut(4);
        for c in &mut chunks {
            let [a, b, d, e] = [
                self.encrypt(c[0]),
                self.encrypt(c[1]),
                self.encrypt(c[2]),
                self.encrypt(c[3]),
            ];
            c[0] = a;
            c[1] = b;
            c[2] = d;
            c[3] = e;
        }
        for v in chunks.into_remainder() {
            *v = self.encrypt(*v);
        }
    }

    /// Decrypts a whole slice in place (inverse of
    /// [`FeistelCipher::encrypt_slice`]).
    pub fn decrypt_slice(&self, blocks: &mut [u64]) {
        let mut chunks = blocks.chunks_exact_mut(4);
        for c in &mut chunks {
            let [a, b, d, e] = [
                self.decrypt(c[0]),
                self.decrypt(c[1]),
                self.decrypt(c[2]),
                self.decrypt(c[3]),
            ];
            c[0] = a;
            c[1] = b;
            c[2] = d;
            c[3] = e;
        }
        for v in chunks.into_remainder() {
            *v = self.decrypt(*v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_sample() {
        let c = FeistelCipher::new(42);
        for pt in [0u64, 1, u64::MAX, 0xDEAD_BEEF_CAFE_BABE] {
            let ct = c.encrypt(pt);
            assert_ne!(ct, pt, "ciphertext equals plaintext for {pt:#x}");
            assert_eq!(c.decrypt(ct), pt);
        }
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        let a = FeistelCipher::new(1);
        let b = FeistelCipher::new(2);
        assert_ne!(a.encrypt(7), b.encrypt(7));
    }

    #[test]
    fn slice_forms_match_scalar_at_every_length() {
        // Lengths straddling the chunk width exercise both the unrolled
        // body and the remainder tail.
        let c = FeistelCipher::new(0xABCD);
        for n in 0..13usize {
            let pts: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
            let mut enc = pts.clone();
            c.encrypt_slice(&mut enc);
            let scalar: Vec<u64> = pts.iter().map(|&v| c.encrypt(v)).collect();
            assert_eq!(enc, scalar, "encrypt_slice diverged at n={n}");
            let mut dec = enc.clone();
            c.decrypt_slice(&mut dec);
            assert_eq!(dec, pts, "decrypt_slice is not the inverse at n={n}");
        }
    }

    proptest! {
        #[test]
        fn prop_bijective(pt in any::<u64>(), key in any::<u64>()) {
            let c = FeistelCipher::new(key);
            prop_assert_eq!(c.decrypt(c.encrypt(pt)), pt);
            prop_assert_eq!(c.encrypt(c.decrypt(pt)), pt);
        }
    }
}
