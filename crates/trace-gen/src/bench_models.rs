//! Per-benchmark workload models calibrated to the paper's Table II.

use serde::{Deserialize, Serialize};

use crate::synth::Pattern;

/// The benchmarks of the paper's Table II, plus the synthetic workloads its
/// methodology sections use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Bench {
    /// SPEC gcc — light, mixed, moderately local.
    Gcc,
    /// SPEC mcf — read-dominated pointer chasing (19.5 read MPKI).
    Mcf,
    /// SPEC xz — heavy mixed read/write streaming (24.9 / 29.6 MPKI).
    Xz,
    /// SPEC xalancbmk — very light.
    Xal,
    /// SPEC deepsjeng — write-leaning, moderate (5.7 write MPKI).
    Dee,
    /// SPEC bwaves — streaming writer (20.7 write MPKI).
    Bwa,
    /// SPEC lbm — the heaviest streaming writer (45.3 write MPKI).
    Lbm,
    /// SPEC cam4 — streaming writer (8.8 write MPKI).
    Cam,
    /// SPEC imagick — light writer with some reads.
    Ima,
    /// SPEC roms — streaming writer (23.0 write MPKI).
    Rom,
    /// PARSEC blackscholes — moderate reader.
    Bla,
    /// PARSEC streamcluster — moderate reader.
    Str,
    /// PARSEC freqmine — moderate reader.
    Fre,
    /// The paper's `mix` bar: three benchmarks interleaved (mcf, lbm, gcc).
    Mix,
    /// Uniform random reads over the whole data space (the worst case used
    /// for Fig. 3's trace tail, the Z search, and Fig. 16).
    RandomUniform,
}

/// All thirteen Table II benchmarks (excluding the synthetic entries).
pub const ALL_BENCHES: [Bench; 13] = [
    Bench::Gcc,
    Bench::Mcf,
    Bench::Xz,
    Bench::Xal,
    Bench::Dee,
    Bench::Bwa,
    Bench::Lbm,
    Bench::Cam,
    Bench::Ima,
    Bench::Rom,
    Bench::Bla,
    Bench::Str,
    Bench::Fre,
];

impl Bench {
    /// The short name used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Bench::Gcc => "gcc",
            Bench::Mcf => "mcf",
            Bench::Xz => "xz",
            Bench::Xal => "xal",
            Bench::Dee => "dee",
            Bench::Bwa => "bwa",
            Bench::Lbm => "lbm",
            Bench::Cam => "cam",
            Bench::Ima => "ima",
            Bench::Rom => "rom",
            Bench::Bla => "bla",
            Bench::Str => "str",
            Bench::Fre => "fre",
            Bench::Mix => "mix",
            Bench::RandomUniform => "random",
        }
    }

    /// Table II read MPKI target.
    pub fn read_mpki(self) -> f64 {
        match self {
            Bench::Gcc => 0.1,
            Bench::Mcf => 19.5,
            Bench::Xz => 24.9,
            Bench::Xal => 0.05,
            Bench::Dee => 0.0,
            Bench::Bwa => 0.0,
            Bench::Lbm => 0.0,
            Bench::Cam => 0.01,
            Bench::Ima => 0.3,
            Bench::Rom => 0.02,
            Bench::Bla => 2.6,
            Bench::Str => 2.7,
            Bench::Fre => 2.1,
            Bench::Mix => (19.5 + 0.0 + 0.1) / 3.0,
            Bench::RandomUniform => 40.0,
        }
    }

    /// Table II write MPKI target.
    pub fn write_mpki(self) -> f64 {
        match self {
            Bench::Gcc => 0.3,
            Bench::Mcf => 0.1,
            Bench::Xz => 29.6,
            Bench::Xal => 0.1,
            Bench::Dee => 5.7,
            Bench::Bwa => 20.7,
            Bench::Lbm => 45.3,
            Bench::Cam => 8.8,
            Bench::Ima => 2.9,
            Bench::Rom => 23.0,
            Bench::Bla => 0.4,
            Bench::Str => 0.5,
            Bench::Fre => 0.4,
            Bench::Mix => (0.1 + 45.3 + 0.3) / 3.0,
            Bench::RandomUniform => 0.0,
        }
    }

    /// Combined MPKI target.
    pub fn total_mpki(self) -> f64 {
        self.read_mpki() + self.write_mpki()
    }

    /// The workload model for this benchmark over `n_data` protected
    /// blocks.
    pub fn spec(self, n_data: u64) -> WorkloadSpec {
        WorkloadSpec::for_bench(self, n_data)
    }
}

/// Parameters of a synthetic workload.
///
/// The model: a core retires `mem_ops_per_kinst` memory operations per 1000
/// instructions. Each op targets the *cold* region with probability
/// `cold_frac` (these miss the LLC by construction: the cold region is far
/// larger than the cache) and the hot set otherwise (cache-resident). The
/// cold pattern is benchmark-specific. Cold read/write mix follows the
/// Table II ratio.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Which benchmark this models.
    pub bench: Bench,
    /// Memory operations per kilo-instruction.
    pub mem_ops_per_kinst: f64,
    /// Fraction of ops that target the cold (missing) region.
    pub cold_frac: f64,
    /// Fraction of *cold* ops that are reads.
    pub cold_read_frac: f64,
    /// Fraction of *hot* ops that are reads.
    pub hot_read_frac: f64,
    /// Cold-region access pattern.
    pub pattern: Pattern,
    /// Cold region size in blocks.
    pub cold_blocks: u64,
    /// Hot set size in blocks (must fit the L1 comfortably).
    pub hot_blocks: u64,
}

impl WorkloadSpec {
    /// Builds the calibrated model for `bench` over `n_data` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `n_data < 64`.
    pub fn for_bench(bench: Bench, n_data: u64) -> WorkloadSpec {
        assert!(n_data >= 64, "data space too small for workload models");
        // Memory intensity scales with the miss target so that cold_frac
        // stays in a plausible 0..0.45 band.
        let total = bench.total_mpki().max(0.02);
        let mem_ops_per_kinst = (total * 3.0).clamp(50.0, 200.0);
        let cold_frac = (total / mem_ops_per_kinst).min(0.45);
        let r = bench.read_mpki();
        let w = bench.write_mpki();
        let cold_read_frac = if r + w > 0.0 { r / (r + w) } else { 1.0 };
        let pattern = match bench {
            // Pointer-chasing reader.
            Bench::Mcf => Pattern::PointerChase,
            // Streaming writers sweep large arrays sequentially.
            Bench::Lbm | Bench::Bwa | Bench::Rom | Bench::Cam | Bench::Dee => {
                Pattern::Streaming { streams: 4 }
            }
            // xz mixes streaming with dictionary randomness.
            Bench::Xz => Pattern::Streaming { streams: 8 },
            // Light/irregular benchmarks reuse a skewed working set.
            Bench::Gcc | Bench::Xal | Bench::Ima | Bench::Fre => Pattern::Zipf { theta: 0.8 },
            // PARSEC kernels scan moderate working sets.
            Bench::Bla | Bench::Str => Pattern::Streaming { streams: 2 },
            Bench::Mix => Pattern::Uniform, // unused: Mix interleaves members
            Bench::RandomUniform => Pattern::Uniform,
        };
        // Cold working sets: streaming sweeps most of the space; irregular
        // benchmarks reuse a few percent of it.
        let cold_blocks = match bench {
            Bench::Gcc | Bench::Xal | Bench::Ima | Bench::Fre => (n_data / 16).max(64),
            Bench::Mcf => (n_data / 2).max(64),
            Bench::Bla | Bench::Str => (n_data / 8).max(64),
            _ => n_data,
        };
        WorkloadSpec {
            bench,
            mem_ops_per_kinst,
            cold_frac,
            cold_read_frac,
            hot_read_frac: 0.7,
            pattern,
            cold_blocks: cold_blocks.min(n_data),
            hot_blocks: 8,
        }
    }

    /// Mean instruction gap between memory operations.
    pub fn mean_gap(&self) -> f64 {
        1000.0 / self.mem_ops_per_kinst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_targets_match_paper() {
        assert_eq!(Bench::Mcf.read_mpki(), 19.5);
        assert_eq!(Bench::Lbm.write_mpki(), 45.3);
        assert_eq!(Bench::Xz.total_mpki(), 54.5);
        assert_eq!(Bench::Gcc.total_mpki(), 0.4);
    }

    #[test]
    fn all_benches_have_distinct_names() {
        let names: std::collections::HashSet<&str> =
            ALL_BENCHES.iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), ALL_BENCHES.len());
    }

    #[test]
    fn specs_are_sane() {
        for b in ALL_BENCHES {
            let s = b.spec(1 << 18);
            assert!(s.cold_frac > 0.0 && s.cold_frac <= 0.45, "{b:?}");
            assert!((0.0..=1.0).contains(&s.cold_read_frac), "{b:?}");
            assert!(s.cold_blocks >= 64 && s.cold_blocks <= 1 << 18, "{b:?}");
            assert!(s.mean_gap() >= 5.0, "{b:?}");
        }
    }

    #[test]
    fn read_write_leanings() {
        // mcf is read-dominated; lbm write-dominated.
        assert!(Bench::Mcf.spec(1 << 18).cold_read_frac > 0.9);
        assert!(Bench::Lbm.spec(1 << 18).cold_read_frac < 0.05);
    }

    #[test]
    fn intensity_ordering_follows_mpki() {
        let light = Bench::Xal.spec(1 << 18);
        let heavy = Bench::Xz.spec(1 << 18);
        assert!(
            heavy.cold_frac * heavy.mem_ops_per_kinst
                > 50.0 * light.cold_frac * light.mem_ops_per_kinst
        );
    }
}
