//! Synthetic access-pattern generators.

use serde::{Deserialize, Serialize};

use iroram_hash::mix64;
use iroram_sim_engine::{SimRng, SnapError, SnapReader, SnapWriter};

use crate::{Bench, TraceRecord, WorkloadSpec};

/// Cold-region access patterns.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Pattern {
    /// `streams` parallel sequential sweeps (streaming array kernels; high
    /// spatial locality → PosMap₁ and DRAM-row friendliness).
    Streaming {
        /// Number of concurrent streams.
        streams: usize,
    },
    /// Uniform random over the cold region (no locality at all).
    Uniform,
    /// Zipf-distributed reuse (skewed working sets such as gcc).
    Zipf {
        /// Skew parameter θ (0 = uniform, →1 = heavily skewed).
        theta: f64,
    },
    /// Serialized random dependent loads (mcf-style pointer chasing).
    PointerChase,
}

/// A deterministic workload generator.
///
/// Produces an infinite stream of [`TraceRecord`]s following a
/// [`WorkloadSpec`]; [`Bench::Mix`] interleaves mcf, lbm and gcc round-robin
/// over disjoint thirds of the address space (the paper's `mix` bar).
///
/// # Examples
///
/// ```
/// use iroram_trace::{Bench, WorkloadGen};
/// let mut g = WorkloadGen::for_bench(Bench::Lbm, 1 << 16, 7);
/// let first = g.next_record();
/// let second = g.next_record();
/// assert!(first.addr < 1 << 16 && second.addr < 1 << 16);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadGen {
    // lint: allow(snapshot-drift, configuration, fixed at construction for the whole run)
    spec: WorkloadSpec,
    rng: SimRng,
    // lint: allow(snapshot-drift, derived from the spec at construction)
    base: u64,
    /// Per-stream cursors for streaming mode.
    stream_pos: Vec<u64>,
    /// Pointer-chase state.
    chase: u64,
    /// Zipf sampling tables (none for other patterns).
    // lint: allow(snapshot-drift, sampling table derived from the spec at construction)
    zipf: Option<ZipfTable>,
    /// Sub-generators for Mix.
    mix: Vec<WorkloadGen>,
    mix_next: usize,
}

#[derive(Debug, Clone)]
struct ZipfTable {
    /// Cumulative probabilities over rank buckets.
    cdf: Vec<f64>,
    region: u64,
}

impl ZipfTable {
    /// Builds a bucketed Zipf CDF: 64 geometric rank buckets over `region`
    /// blocks — O(1) memory for arbitrarily large regions.
    fn new(region: u64, theta: f64) -> Self {
        const BUCKETS: usize = 64;
        let mut weights = Vec::with_capacity(BUCKETS);
        let mut lo = 0u64;
        for i in 0..BUCKETS {
            let hi = ((region as f64) * ((i + 1) as f64 / BUCKETS as f64).powf(2.0)) as u64;
            let hi = hi.clamp(lo + 1, region);
            // Zipf weight of ranks (lo, hi]: integral of r^-theta.
            let w = if theta == 1.0 {
                ((hi + 1) as f64 / (lo + 1) as f64).ln()
            } else {
                ((hi + 1) as f64).powf(1.0 - theta) - ((lo + 1) as f64).powf(1.0 - theta)
            };
            weights.push((w.max(0.0), lo, hi));
            lo = hi;
            if lo >= region {
                break;
            }
        }
        let total: f64 = weights.iter().map(|(w, _, _)| w).sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|(w, _, _)| {
                acc += w / total;
                acc
            })
            .collect();
        ZipfTable { cdf, region }
    }

    fn ranges(&self) -> Vec<(u64, u64)> {
        // Recompute the bucket boundaries the same way new() did.
        const BUCKETS: usize = 64;
        let mut out = Vec::new();
        let mut lo = 0u64;
        for i in 0..BUCKETS {
            let hi = ((self.region as f64) * ((i + 1) as f64 / BUCKETS as f64).powf(2.0)) as u64;
            let hi = hi.clamp(lo + 1, self.region);
            out.push((lo, hi));
            lo = hi;
            if lo >= self.region {
                break;
            }
        }
        out
    }

    fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = rng.next_f64();
        let idx = self
            .cdf
            .iter()
            .position(|&c| u <= c)
            .unwrap_or(self.cdf.len() - 1);
        let (lo, hi) = self.ranges()[idx];
        // Rank within the bucket, then a rank→address permutation so hot
        // ranks are scattered across the region (no artificial clustering).
        let rank = lo + rng.next_below(hi - lo);
        mix64(rank) % self.region
    }
}

impl WorkloadGen {
    /// Creates the generator for `bench` over `n_data` blocks, seeded
    /// deterministically.
    pub fn for_bench(bench: Bench, n_data: u64, seed: u64) -> Self {
        if bench == Bench::Mix {
            let third = n_data / 3;
            let members = [Bench::Mcf, Bench::Lbm, Bench::Gcc];
            let mix = members
                .iter()
                .enumerate()
                .map(|(i, &b)| {
                    let mut g = WorkloadGen::for_bench(b, third.max(64), seed ^ (i as u64 + 1));
                    g.base = third * i as u64;
                    g
                })
                .collect();
            let spec = WorkloadSpec::for_bench(bench, n_data);
            return WorkloadGen {
                spec,
                rng: SimRng::seed_from(seed),
                base: 0,
                stream_pos: Vec::new(),
                chase: 0,
                zipf: None,
                mix,
                mix_next: 0,
            };
        }
        let spec = WorkloadSpec::for_bench(bench, n_data);
        Self::from_spec(spec, seed)
    }

    /// Creates a generator from an explicit spec.
    pub fn from_spec(spec: WorkloadSpec, seed: u64) -> Self {
        let mut rng = SimRng::seed_from(seed ^ mix64(spec.bench.name().len() as u64));
        let stream_pos = match spec.pattern {
            Pattern::Streaming { streams } => (0..streams)
                .map(|_| rng.next_below(spec.cold_blocks))
                .collect(),
            _ => Vec::new(),
        };
        let zipf = match spec.pattern {
            Pattern::Zipf { theta } => Some(ZipfTable::new(spec.cold_blocks, theta)),
            _ => None,
        };
        let chase = rng.next_below(spec.cold_blocks.max(1));
        WorkloadGen {
            spec,
            rng,
            base: 0,
            stream_pos,
            chase,
            zipf,
            mix: Vec::new(),
            mix_next: 0,
        }
    }

    /// The spec driving this generator.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Produces the next trace record.
    pub fn next_record(&mut self) -> TraceRecord {
        if !self.mix.is_empty() {
            let i = self.mix_next;
            self.mix_next = (self.mix_next + 1) % self.mix.len();
            let inner = &mut self.mix[i];
            let mut rec = inner.next_record();
            rec.addr += inner.base;
            return rec;
        }
        let spec = &self.spec;
        // Instruction gap: geometric-ish jitter around the mean.
        let mean = spec.mean_gap();
        let gap = (mean * (0.5 + self.rng.next_f64())) as u32;
        let cold = self.rng.chance(spec.cold_frac);
        if !cold {
            // Hot set: a tiny L1-resident region at the top of the space.
            let addr = self.spec.cold_blocks.saturating_sub(spec.hot_blocks)
                + self.rng.next_below(spec.hot_blocks);
            let is_write = !self.rng.chance(spec.hot_read_frac);
            return TraceRecord {
                addr: addr % spec.cold_blocks,
                is_write,
                gap,
            };
        }
        let is_write = !self.rng.chance(spec.cold_read_frac);
        let addr = match spec.pattern {
            Pattern::Streaming { .. } => {
                let s = self.rng.next_below(self.stream_pos.len() as u64) as usize;
                let a = self.stream_pos[s];
                self.stream_pos[s] = (a + 1) % spec.cold_blocks;
                a
            }
            Pattern::Uniform => self.rng.next_below(spec.cold_blocks),
            Pattern::Zipf { .. } => self
                .zipf
                .as_ref()
                .expect("zipf pattern has a table")
                .sample(&mut self.rng),
            Pattern::PointerChase => {
                // A serialized walk through a pseudo-random *sequence* of
                // nodes. (Iterating `mix(cur)` directly would fall into the
                // short cycles of a random functional graph; stepping a
                // counter through a mixer visits the whole region.)
                self.chase = self.chase.wrapping_add(1);
                mix64(self.chase) % spec.cold_blocks
            }
        };
        TraceRecord {
            addr,
            is_write,
            gap,
        }
    }

    /// Collects `n` records into a vector.
    pub fn take_records(&mut self, n: usize) -> Vec<TraceRecord> {
        (0..n).map(|_| self.next_record()).collect()
    }

    /// Serializes the generator's mutable cursors (RNG stream, per-stream
    /// positions, chase cursor, mix rotation) for a checkpoint, recursing
    /// into mix sub-generators. The spec, base offset, and Zipf tables are
    /// configuration-derived and are not written.
    pub fn save_state(&self, w: &mut SnapWriter) {
        for s in self.rng.state() {
            w.put_u64(s);
        }
        w.put_usize(self.stream_pos.len());
        for &p in &self.stream_pos {
            w.put_u64(p);
        }
        w.put_u64(self.chase);
        w.put_usize(self.mix.len());
        for g in &self.mix {
            g.save_state(w);
        }
        w.put_usize(self.mix_next);
    }

    /// Restores cursors written by [`WorkloadGen::save_state`] into this
    /// generator, which must have been built from the same bench/spec/seed.
    ///
    /// # Errors
    ///
    /// Any [`SnapError`] on truncation, or [`SnapError::Corrupt`] when the
    /// stream/mix counts disagree with this generator's configuration.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let mut rng_state = [0u64; 4];
        for s in &mut rng_state {
            *s = r.take_u64()?;
        }
        self.rng = SimRng::from_state(rng_state);
        let n = r.take_seq_len(8)?;
        if n != self.stream_pos.len() {
            return Err(SnapError::Corrupt("stream cursor count mismatch"));
        }
        for p in self.stream_pos.iter_mut() {
            *p = r.take_u64()?;
        }
        self.chase = r.take_u64()?;
        let n = r.take_seq_len(8)?;
        if n != self.mix.len() {
            return Err(SnapError::Corrupt("mix sub-generator count mismatch"));
        }
        for g in self.mix.iter_mut() {
            g.restore_state(r)?;
        }
        let next = r.take_usize()?;
        if !self.mix.is_empty() && next >= self.mix.len() {
            return Err(SnapError::Corrupt("mix rotation out of range"));
        }
        self.mix_next = next;
        Ok(())
    }
}

impl Iterator for WorkloadGen {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        Some(self.next_record())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_stay_in_range() {
        for bench in crate::ALL_BENCHES {
            let mut g = WorkloadGen::for_bench(bench, 1 << 14, 3);
            for _ in 0..5000 {
                let r = g.next_record();
                assert!(r.addr < 1 << 14, "{bench:?} addr {}", r.addr);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<_> = WorkloadGen::for_bench(Bench::Xz, 1 << 14, 9)
            .take(100)
            .collect();
        let b: Vec<_> = WorkloadGen::for_bench(Bench::Xz, 1 << 14, 9)
            .take(100)
            .collect();
        assert_eq!(a, b);
        let c: Vec<_> = WorkloadGen::for_bench(Bench::Xz, 1 << 14, 10)
            .take(100)
            .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn streaming_pattern_is_sequential() {
        let mut g = WorkloadGen::for_bench(Bench::Lbm, 1 << 14, 5);
        // Collect cold accesses; within a stream consecutive addresses
        // should frequently be +1 apart. Check global sequential fraction.
        let recs = g.take_records(20_000);
        let mut last_by_region: std::collections::HashMap<u64, u64> = Default::default();
        let mut seq = 0usize;
        let mut cold = 0usize;
        for r in recs {
            let region = r.addr >> 10;
            if let Some(prev) = last_by_region.insert(region, r.addr) {
                if r.addr == prev + 1 {
                    seq += 1;
                }
            }
            cold += 1;
        }
        assert!(seq * 3 > cold / 4, "streaming should look sequential ({seq}/{cold})");
    }

    #[test]
    fn write_fraction_tracks_table2() {
        let count_writes = |bench: Bench| {
            let mut g = WorkloadGen::for_bench(bench, 1 << 14, 11);
            let recs = g.take_records(50_000);
            recs.iter().filter(|r| r.is_write).count() as f64 / 50_000.0
        };
        assert!(count_writes(Bench::Lbm) > count_writes(Bench::Mcf));
        assert!(count_writes(Bench::Bla) < 0.5);
    }

    #[test]
    fn zipf_is_skewed() {
        let mut g = WorkloadGen::for_bench(Bench::Gcc, 1 << 14, 13);
        let mut counts: std::collections::HashMap<u64, u32> = Default::default();
        for r in g.take_records(50_000) {
            *counts.entry(r.addr).or_insert(0) += 1;
        }
        let mut freqs: Vec<u32> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u32 = freqs.iter().take(10).sum();
        let total: u32 = freqs.iter().sum();
        assert!(
            top10 as f64 / total as f64 > 0.05,
            "zipf should concentrate mass ({top10}/{total})"
        );
    }

    #[test]
    fn mix_interleaves_three_regions() {
        let n = 3u64 << 12;
        let mut g = WorkloadGen::for_bench(Bench::Mix, n, 17);
        let recs = g.take_records(30_000);
        let third = n / 3;
        let mut seen = [false; 3];
        for r in &recs {
            assert!(r.addr < n);
            seen[(r.addr / third).min(2) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all three sub-regions touched");
    }

    #[test]
    fn gaps_reflect_intensity() {
        let heavy: u64 = WorkloadGen::for_bench(Bench::Xz, 1 << 14, 1)
            .take(10_000)
            .map(|r| r.gap as u64)
            .sum();
        let light: u64 = WorkloadGen::for_bench(Bench::Xal, 1 << 14, 1)
            .take(10_000)
            .map(|r| r.gap as u64)
            .sum();
        assert!(
            light > heavy,
            "lighter benchmark has larger gaps ({light} vs {heavy})"
        );
    }

    #[test]
    fn save_restore_resumes_every_bench_identically() {
        for bench in crate::ALL_BENCHES {
            let mut a = WorkloadGen::for_bench(bench, 1 << 14, 21);
            a.take_records(777);
            let mut w = SnapWriter::new();
            a.save_state(&mut w);
            let bytes = w.into_bytes();
            let mut b = WorkloadGen::for_bench(bench, 1 << 14, 21);
            let mut r = SnapReader::new(&bytes);
            b.restore_state(&mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(a.take_records(500), b.take_records(500), "{bench:?}");
        }
    }

    #[test]
    fn restore_rejects_mismatched_generator_shape() {
        let mut a = WorkloadGen::for_bench(Bench::Mix, 3 << 12, 21);
        a.take_records(10);
        let mut w = SnapWriter::new();
        a.save_state(&mut w);
        let bytes = w.into_bytes();
        // A non-mix generator has no sub-generators: shape mismatch.
        let mut b = WorkloadGen::for_bench(Bench::Mcf, 3 << 12, 21);
        let mut r = SnapReader::new(&bytes);
        assert!(b.restore_state(&mut r).is_err());
    }

    #[test]
    fn iterator_interface() {
        let g = WorkloadGen::for_bench(Bench::RandomUniform, 1 << 12, 2);
        assert_eq!(g.take(5).count(), 5);
    }
}
