//! Binary trace file IO.
//!
//! A simple length-prefixed binary format so traces can be captured once
//! (e.g. a calibrated workload) and replayed by the `trace_replay` example:
//!
//! ```text
//! magic  "IRTR"            (4 bytes)
//! version u32 LE           (4 bytes)
//! count   u64 LE           (8 bytes)
//! records: addr u64 LE | flags u8 (bit0 = write) | gap u32 LE
//! ```
//!
//! Reading validates strictly and reports a typed [`TraceError`] naming
//! the offending byte or record, so a corrupt trace file fails with a
//! diagnosable message instead of feeding garbage into a simulation.

use std::io::{self, Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::TraceRecord;

const MAGIC: &[u8; 4] = b"IRTR";
const VERSION: u32 = 1;
const RECORD_BYTES: usize = 13;

/// A malformed or unreadable IRTR trace file.
#[derive(Debug)]
pub enum TraceError {
    /// The underlying reader failed.
    Io(io::Error),
    /// The file does not start with the `IRTR` magic.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The format version is not one this reader understands.
    BadVersion {
        /// The version field's value.
        found: u32,
    },
    /// The file ends inside the 16-byte header.
    TruncatedHeader {
        /// Bytes actually present.
        len: usize,
    },
    /// The file ends inside the record array.
    TruncatedBody {
        /// Zero-based index of the first record not fully present.
        record_index: u64,
        /// Records the header promised.
        expected: u64,
    },
    /// A record's flags byte has bits set that the format does not define.
    BadFlags {
        /// Zero-based index of the offending record.
        record_index: u64,
        /// The flags byte found.
        flags: u8,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace IO error: {e}"),
            TraceError::BadMagic { found } => {
                write!(f, "bad trace magic {found:02x?} (expected \"IRTR\")")
            }
            TraceError::BadVersion { found } => {
                write!(f, "unsupported trace version {found} (expected {VERSION})")
            }
            TraceError::TruncatedHeader { len } => {
                write!(f, "truncated trace header: {len} of 16 bytes")
            }
            TraceError::TruncatedBody {
                record_index,
                expected,
            } => write!(
                f,
                "truncated trace body: record {record_index} of {expected} is incomplete"
            ),
            TraceError::BadFlags {
                record_index,
                flags,
            } => write!(
                f,
                "record {record_index} has undefined flag bits: {flags:#04x}"
            ),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl From<TraceError> for io::Error {
    fn from(e: TraceError) -> Self {
        match e {
            TraceError::Io(e) => e,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Serializes `records` to `writer` in the IRTR format.
///
/// # Errors
///
/// Propagates any IO error from `writer`.
pub fn write_trace<W: Write>(mut writer: W, records: &[TraceRecord]) -> io::Result<()> {
    let mut buf = BytesMut::with_capacity(16 + records.len() * RECORD_BYTES);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(records.len() as u64);
    for r in records {
        buf.put_u64_le(r.addr);
        buf.put_u8(u8::from(r.is_write));
        buf.put_u32_le(r.gap);
    }
    writer.write_all(&buf)
}

/// Reads an IRTR trace from `reader`, validating magic, version, length,
/// and every record's flags byte.
///
/// # Errors
///
/// Returns a [`TraceError`] naming the defect (with the record index for
/// per-record problems), or `TraceError::Io` for reader failures.
pub fn read_trace<R: Read>(mut reader: R) -> Result<Vec<TraceRecord>, TraceError> {
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    let mut buf = Bytes::from(raw);
    if buf.remaining() < 16 {
        return Err(TraceError::TruncatedHeader {
            len: buf.remaining(),
        });
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(TraceError::BadMagic { found: magic });
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(TraceError::BadVersion { found: version });
    }
    let count = buf.get_u64_le();
    let have = buf.remaining() as u64 / RECORD_BYTES as u64;
    if have < count {
        return Err(TraceError::TruncatedBody {
            record_index: have,
            expected: count,
        });
    }
    let mut out = Vec::with_capacity(count as usize);
    for record_index in 0..count {
        let addr = buf.get_u64_le();
        let flags = buf.get_u8();
        let gap = buf.get_u32_le();
        if flags & !1 != 0 {
            return Err(TraceError::BadFlags {
                record_index,
                flags,
            });
        }
        out.push(TraceRecord {
            addr,
            is_write: flags & 1 != 0,
            gap,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let records = vec![
            TraceRecord::load(0, 5),
            TraceRecord::store(u64::MAX - 1, 0),
            TraceRecord::load(42, u32::MAX),
        ];
        let mut buf = Vec::new();
        write_trace(&mut buf, &records).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).unwrap();
        assert!(read_trace(&buf[..]).unwrap().is_empty());
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_trace(&b"NOPE\0\0\0\0\0\0\0\0\0\0\0\0"[..]).unwrap_err();
        assert!(matches!(err, TraceError::BadMagic { found } if &found == b"NOPE"));
        // The io::Error conversion keeps the diagnosis.
        let io_err: io::Error = err.into();
        assert_eq!(io_err.kind(), io::ErrorKind::InvalidData);
        assert!(io_err.to_string().contains("magic"));
    }

    #[test]
    fn rejects_truncation_with_record_index() {
        let records = vec![TraceRecord::load(1, 1); 10];
        let mut buf = Vec::new();
        write_trace(&mut buf, &records).unwrap();
        buf.truncate(buf.len() - 5);
        match read_trace(&buf[..]).unwrap_err() {
            TraceError::TruncatedBody {
                record_index,
                expected,
            } => {
                assert_eq!(record_index, 9);
                assert_eq!(expected, 10);
            }
            other => panic!("wrong error: {other}"),
        }
        assert!(matches!(
            read_trace(&buf[..8]).unwrap_err(),
            TraceError::TruncatedHeader { len: 8 }
        ));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).unwrap();
        buf[4] = 99;
        let err = read_trace(&buf[..]).unwrap_err();
        assert!(matches!(err, TraceError::BadVersion { found: 99 }));
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn rejects_undefined_flag_bits_naming_the_record() {
        let records = vec![TraceRecord::load(1, 1); 4];
        let mut buf = Vec::new();
        write_trace(&mut buf, &records).unwrap();
        // Record 2's flags byte: header (16) + 2 records (26) + addr (8).
        buf[16 + 2 * 13 + 8] = 0x82;
        match read_trace(&buf[..]).unwrap_err() {
            TraceError::BadFlags {
                record_index,
                flags,
            } => {
                assert_eq!(record_index, 2);
                assert_eq!(flags, 0x82);
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn flipped_count_reads_as_truncation_not_allocation_bomb() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[TraceRecord::load(1, 1)]).unwrap();
        // Corrupt the count field to a huge value.
        buf[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            read_trace(&buf[..]).unwrap_err(),
            TraceError::TruncatedBody { .. }
        ));
    }
}
