//! Binary trace file IO.
//!
//! A simple length-prefixed binary format so traces can be captured once
//! (e.g. a calibrated workload) and replayed by the `trace_replay` example:
//!
//! ```text
//! magic  "IRTR"            (4 bytes)
//! version u32 LE           (4 bytes)
//! count   u64 LE           (8 bytes)
//! records: addr u64 LE | flags u8 (bit0 = write) | gap u32 LE
//! ```

use std::io::{self, Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::TraceRecord;

const MAGIC: &[u8; 4] = b"IRTR";
const VERSION: u32 = 1;

/// Serializes `records` to `writer` in the IRTR format.
///
/// # Errors
///
/// Propagates any IO error from `writer`.
pub fn write_trace<W: Write>(mut writer: W, records: &[TraceRecord]) -> io::Result<()> {
    let mut buf = BytesMut::with_capacity(16 + records.len() * 13);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(records.len() as u64);
    for r in records {
        buf.put_u64_le(r.addr);
        buf.put_u8(u8::from(r.is_write));
        buf.put_u32_le(r.gap);
    }
    writer.write_all(&buf)
}

/// Reads an IRTR trace from `reader`.
///
/// # Errors
///
/// Returns `InvalidData` on magic/version mismatch or truncation, and
/// propagates IO errors from `reader`.
pub fn read_trace<R: Read>(mut reader: R) -> io::Result<Vec<TraceRecord>> {
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    let mut buf = Bytes::from(raw);
    if buf.remaining() < 16 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "truncated header"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported trace version {version}"),
        ));
    }
    let count = buf.get_u64_le() as usize;
    if buf.remaining() < count * 13 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "truncated body"));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let addr = buf.get_u64_le();
        let flags = buf.get_u8();
        let gap = buf.get_u32_le();
        out.push(TraceRecord {
            addr,
            is_write: flags & 1 != 0,
            gap,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let records = vec![
            TraceRecord::load(0, 5),
            TraceRecord::store(u64::MAX - 1, 0),
            TraceRecord::load(42, u32::MAX),
        ];
        let mut buf = Vec::new();
        write_trace(&mut buf, &records).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).unwrap();
        assert!(read_trace(&buf[..]).unwrap().is_empty());
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_trace(&b"NOPE\0\0\0\0\0\0\0\0\0\0\0\0"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncation() {
        let records = vec![TraceRecord::load(1, 1); 10];
        let mut buf = Vec::new();
        write_trace(&mut buf, &records).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(read_trace(&buf[..]).is_err());
        assert!(read_trace(&buf[..8]).is_err());
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).unwrap();
        buf[4] = 99;
        let err = read_trace(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("version"));
    }
}
