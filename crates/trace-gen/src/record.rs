//! Trace records.

use serde::{Deserialize, Serialize};

/// One memory operation of a workload trace.
///
/// Addresses are cache-line (= ORAM block) granular and index the protected
/// data space `[0, n_data)`. `gap` is the number of non-memory instructions
/// the core retires before this operation — the quantity the trace-driven
/// CPU model uses to advance time (the paper's traces are Pin instruction
/// traces reduced the same way).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Block address within the protected data space.
    pub addr: u64,
    /// Whether this is a store.
    pub is_write: bool,
    /// Instructions retired since the previous memory operation.
    pub gap: u32,
}

impl TraceRecord {
    /// A load of `addr` after `gap` instructions.
    pub fn load(addr: u64, gap: u32) -> Self {
        TraceRecord {
            addr,
            is_write: false,
            gap,
        }
    }

    /// A store to `addr` after `gap` instructions.
    pub fn store(addr: u64, gap: u32) -> Self {
        TraceRecord {
            addr,
            is_write: true,
            gap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let l = TraceRecord::load(5, 10);
        assert!(!l.is_write);
        assert_eq!(l.addr, 5);
        assert_eq!(l.gap, 10);
        let s = TraceRecord::store(6, 0);
        assert!(s.is_write);
    }
}
