//! The recursive position map (Freecursive \[8\]) and its lookaside buffer.
//!
//! Path ORAM must map every block address to its current leaf. The map is
//! too large to keep on-chip, so it is split recursively: PosMap₁ blocks
//! (16 leaf entries each, one 64 B line per block) map data blocks; PosMap₂
//! blocks map PosMap₁ blocks; PosMap₃ is small enough to stay on-chip.
//! Following Freecursive, PosMap₁/₂ blocks live *in the same ORAM tree* as
//! data — fetching one is a normal, indistinguishable path access — and the
//! PLB (PosMap lookaside buffer) caches recently used PosMap blocks so most
//! translations need no extra path.
//!
//! Modelling note: the authoritative address→leaf table is held here as a
//! flat vector (the "contents" of all PosMap levels); PosMap blocks in the
//! tree are tag-only. A PLB *hit* on a PosMap block means the translation it
//! serves is available; a miss requires a real path access for that block.
//! PLB evictions are free — the evicted block's content is, by construction,
//! the authoritative table, and the block itself still lives in the tree,
//! which is exactly the accounting the paper uses (PosMap paths arise only
//! from PLB misses).

use serde::{Deserialize, Serialize};

use iroram_cache::{CacheConfig, SetAssocCache};
use iroram_sim_engine::{SimRng, SnapError, SnapReader, SnapWriter};

use crate::{BlockAddr, BlockKind, Leaf};

/// Entries per PosMap block: a 64 B line holds 16 × 4 B leaf indices.
pub const ENTRIES_PER_BLOCK: u64 = 16;

/// Sentinel for "not currently mapped" (delayed-remap blocks living in the
/// LLC).
const UNMAPPED: u64 = u64::MAX;

/// The unified (Freecursive-merged) block address space.
///
/// Data blocks occupy `[0, n_data)`, PosMap₁ `[n_data, n_data+n_pm1)` and
/// PosMap₂ the range after that. PosMap₃ (one leaf entry per PosMap₂ block)
/// is on-chip and occupies no block addresses.
///
/// # Examples
///
/// ```
/// use iroram_protocol::AddressSpace;
/// let s = AddressSpace::new(4096);
/// assert_eq!(s.n_pm1(), 256);
/// assert_eq!(s.n_pm2(), 16);
/// assert_eq!(s.total_blocks(), 4096 + 256 + 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressSpace {
    n_data: u64,
    n_pm1: u64,
    n_pm2: u64,
}

impl AddressSpace {
    /// Creates the address space for `n_data` data blocks.
    ///
    /// # Panics
    ///
    /// Panics if `n_data == 0`.
    pub fn new(n_data: u64) -> Self {
        assert!(n_data > 0, "need at least one data block");
        let n_pm1 = n_data.div_ceil(ENTRIES_PER_BLOCK).max(1);
        let n_pm2 = n_pm1.div_ceil(ENTRIES_PER_BLOCK).max(1);
        AddressSpace {
            n_data,
            n_pm1,
            n_pm2,
        }
    }

    /// Number of data blocks.
    pub fn n_data(&self) -> u64 {
        self.n_data
    }

    /// Number of PosMap₁ blocks.
    pub fn n_pm1(&self) -> u64 {
        self.n_pm1
    }

    /// Number of PosMap₂ blocks (= on-chip PosMap₃ entries).
    pub fn n_pm2(&self) -> u64 {
        self.n_pm2
    }

    /// Total blocks stored in the merged ORAM tree.
    pub fn total_blocks(&self) -> u64 {
        self.n_data + self.n_pm1 + self.n_pm2
    }

    /// Classifies an address.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the space.
    pub fn kind_of(&self, addr: BlockAddr) -> BlockKind {
        let a = addr.0;
        if a < self.n_data {
            BlockKind::Data
        } else if a < self.n_data + self.n_pm1 {
            BlockKind::PosMap1
        } else if a < self.total_blocks() {
            BlockKind::PosMap2
        } else {
            panic!("address {a} outside the block address space");
        }
    }

    /// The PosMap₁ block holding the leaf entry of data block `addr`.
    pub fn pm1_block_of(&self, addr: BlockAddr) -> BlockAddr {
        debug_assert_eq!(self.kind_of(addr), BlockKind::Data);
        BlockAddr(self.n_data + addr.0 / ENTRIES_PER_BLOCK)
    }

    /// The PosMap₂ block holding the leaf entry of PosMap₁ block `addr`.
    pub fn pm2_block_of(&self, addr: BlockAddr) -> BlockAddr {
        debug_assert_eq!(self.kind_of(addr), BlockKind::PosMap1);
        BlockAddr(self.n_data + self.n_pm1 + (addr.0 - self.n_data) / ENTRIES_PER_BLOCK)
    }
}

/// How far PLB state can translate a data address right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlbStatus {
    /// PosMap₁ block resident: translation is free.
    Hit,
    /// PosMap₁ misses but PosMap₂ is resident: one extra path (Pos1).
    MissPm1,
    /// Both miss: two extra paths (Pos2 then Pos1).
    MissBoth,
}

impl PlbStatus {
    /// Number of extra PosMap path accesses this status implies.
    pub fn extra_paths(self) -> u32 {
        match self {
            PlbStatus::Hit => 0,
            PlbStatus::MissPm1 => 1,
            PlbStatus::MissBoth => 2,
        }
    }
}

/// The complete position-map subsystem: authoritative leaf table, on-chip
/// PosMap₃, and the PLB.
#[derive(Debug, Clone)]
pub struct PosMapSystem {
    // lint: allow(snapshot-drift, configuration, fixed at construction for the whole run)
    space: AddressSpace,
    leaf_of: Vec<u64>,
    plb: SetAssocCache,
    // lint: allow(snapshot-drift, configuration, fixed at construction for the whole run)
    num_leaves: u64,
    /// PLB lookups that hit (PosMap₁ resolved without a path access).
    pub plb_hits: u64,
    /// PLB lookups that missed.
    pub plb_misses: u64,
}

impl PosMapSystem {
    /// Creates the subsystem with every block mapped to a uniformly random
    /// leaf.
    pub fn new(space: AddressSpace, num_leaves: u64, plb_cfg: CacheConfig, rng: &mut SimRng) -> Self {
        assert!(num_leaves > 0);
        let leaf_of = (0..space.total_blocks())
            .map(|_| rng.next_below(num_leaves))
            .collect();
        PosMapSystem {
            space,
            leaf_of,
            plb: SetAssocCache::new(plb_cfg),
            num_leaves,
            plb_hits: 0,
            plb_misses: 0,
        }
    }

    /// The address space.
    pub fn space(&self) -> &AddressSpace {
        &self.space
    }

    /// Number of leaves in the tree this map targets.
    pub fn num_leaves(&self) -> u64 {
        self.num_leaves
    }

    /// The current leaf of `addr`, or `None` if unmapped (delayed-remap
    /// block held by the LLC).
    pub fn leaf_of(&self, addr: BlockAddr) -> Option<Leaf> {
        let v = self.leaf_of[addr.0 as usize];
        (v != UNMAPPED).then_some(Leaf(v))
    }

    /// Remaps `addr` to a fresh uniformly random leaf, returning it.
    pub fn remap(&mut self, addr: BlockAddr, rng: &mut SimRng) -> Leaf {
        let leaf = rng.next_below(self.num_leaves);
        self.leaf_of[addr.0 as usize] = leaf;
        Leaf(leaf)
    }

    /// Discards `addr`'s mapping (delayed-remap policy: the block leaves the
    /// ORAM tree when fetched). Returns the old leaf if it was mapped.
    pub fn unmap(&mut self, addr: BlockAddr) -> Option<Leaf> {
        let old = self.leaf_of[addr.0 as usize];
        self.leaf_of[addr.0 as usize] = UNMAPPED;
        (old != UNMAPPED).then_some(Leaf(old))
    }

    /// Whether `addr` currently has a mapping.
    pub fn is_mapped(&self, addr: BlockAddr) -> bool {
        self.leaf_of[addr.0 as usize] != UNMAPPED
    }

    /// Serializes the authoritative leaf table, the PLB and the hit/miss
    /// counters for a checkpoint (the address space and PLB geometry come
    /// from configuration).
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_usize(self.leaf_of.len());
        for &l in &self.leaf_of {
            w.put_u64(l);
        }
        self.plb.save_state(w);
        w.put_u64(self.plb_hits);
        w.put_u64(self.plb_misses);
    }

    /// Restores the state captured by [`PosMapSystem::save_state`] into a
    /// subsystem built from the same configuration.
    ///
    /// # Errors
    ///
    /// [`SnapError::Corrupt`] on a geometry mismatch; any [`SnapError`] on
    /// truncation.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.take_seq_len(8)?;
        if n != self.leaf_of.len() {
            return Err(SnapError::Corrupt("position-map size mismatch"));
        }
        for l in &mut self.leaf_of {
            *l = r.take_u64()?;
        }
        self.plb.restore_state(r)?;
        self.plb_hits = r.take_u64()?;
        self.plb_misses = r.take_u64()?;
        Ok(())
    }

    /// Non-perturbing PLB state for translating data block `addr`.
    ///
    /// PosMap₂ blocks themselves always resolve through the on-chip PosMap₃.
    pub fn plb_status(&self, addr: BlockAddr) -> PlbStatus {
        let pm1 = self.space.pm1_block_of(addr);
        if self.plb.probe(pm1.0).is_some() {
            PlbStatus::Hit
        } else if self.plb.probe(self.space.pm2_block_of(pm1).0).is_some() {
            PlbStatus::MissPm1
        } else {
            PlbStatus::MissBoth
        }
    }

    /// Performs the PLB lookups for translating `addr`, updating LRU state
    /// and hit/miss counters, and returns the PosMap blocks that must be
    /// fetched through the ORAM, **outermost first** (PosMap₂ before
    /// PosMap₁).
    pub fn resolve(&mut self, addr: BlockAddr) -> Vec<BlockAddr> {
        let pm1 = self.space.pm1_block_of(addr);
        if self.plb.access(pm1.0, false) {
            self.plb_hits += 1;
            return Vec::new();
        }
        self.plb_misses += 1;
        let pm2 = self.space.pm2_block_of(pm1);
        if self.plb.access(pm2.0, false) {
            self.plb_hits += 1;
            vec![pm1]
        } else {
            self.plb_misses += 1;
            vec![pm2, pm1]
        }
    }

    /// Fills the PLB with a just-fetched PosMap block. Evictions are free
    /// (see the module docs).
    pub fn plb_fill(&mut self, pm_addr: BlockAddr) {
        debug_assert_ne!(self.space.kind_of(pm_addr), BlockKind::Data);
        let _ = self.plb.insert(pm_addr.0, false);
    }

    /// Whether the PLB currently holds `pm_addr` (for tests/invariants).
    pub fn plb_contains(&self, pm_addr: BlockAddr) -> bool {
        self.plb.probe(pm_addr.0).is_some()
    }

    /// Flushes the PLB (context switch).
    pub fn plb_flush(&mut self) {
        let _ = self.plb.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(n_data: u64) -> PosMapSystem {
        let mut rng = SimRng::seed_from(7);
        PosMapSystem::new(
            AddressSpace::new(n_data),
            64,
            CacheConfig::new(4, 2),
            &mut rng,
        )
    }

    #[test]
    fn address_space_partitions() {
        let s = AddressSpace::new(4096);
        assert_eq!(s.kind_of(BlockAddr(0)), BlockKind::Data);
        assert_eq!(s.kind_of(BlockAddr(4095)), BlockKind::Data);
        assert_eq!(s.kind_of(BlockAddr(4096)), BlockKind::PosMap1);
        assert_eq!(s.kind_of(BlockAddr(4096 + 255)), BlockKind::PosMap1);
        assert_eq!(s.kind_of(BlockAddr(4096 + 256)), BlockKind::PosMap2);
        assert_eq!(s.kind_of(BlockAddr(4096 + 256 + 15)), BlockKind::PosMap2);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn address_space_bounds() {
        let s = AddressSpace::new(4096);
        let _ = s.kind_of(BlockAddr(s.total_blocks()));
    }

    #[test]
    fn pm_block_mapping() {
        let s = AddressSpace::new(4096);
        assert_eq!(s.pm1_block_of(BlockAddr(0)), BlockAddr(4096));
        assert_eq!(s.pm1_block_of(BlockAddr(15)), BlockAddr(4096));
        assert_eq!(s.pm1_block_of(BlockAddr(16)), BlockAddr(4097));
        let pm1 = BlockAddr(4096);
        assert_eq!(s.pm2_block_of(pm1), BlockAddr(4096 + 256));
        assert_eq!(s.pm2_block_of(BlockAddr(4096 + 16)), BlockAddr(4096 + 257));
    }

    #[test]
    fn tiny_space_has_minimum_pm_levels() {
        let s = AddressSpace::new(8);
        assert_eq!(s.n_pm1(), 1);
        assert_eq!(s.n_pm2(), 1);
    }

    #[test]
    fn initial_mapping_in_range() {
        let p = sys(256);
        for a in 0..p.space().total_blocks() {
            let leaf = p.leaf_of(BlockAddr(a)).expect("mapped at init");
            assert!(leaf.0 < 64);
        }
    }

    #[test]
    fn remap_changes_distribution() {
        let mut p = sys(256);
        let mut rng = SimRng::seed_from(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            seen.insert(p.remap(BlockAddr(0), &mut rng).0);
        }
        assert!(seen.len() > 20, "remaps should cover many leaves");
    }

    #[test]
    fn unmap_round_trip() {
        let mut p = sys(256);
        assert!(p.is_mapped(BlockAddr(5)));
        let old = p.unmap(BlockAddr(5)).unwrap();
        assert!(old.0 < 64);
        assert!(!p.is_mapped(BlockAddr(5)));
        assert_eq!(p.leaf_of(BlockAddr(5)), None);
        assert_eq!(p.unmap(BlockAddr(5)), None);
        let mut rng = SimRng::seed_from(4);
        p.remap(BlockAddr(5), &mut rng);
        assert!(p.is_mapped(BlockAddr(5)));
    }

    #[test]
    fn resolve_miss_chain() {
        let mut p = sys(4096);
        // Cold: both levels miss → fetch pm2 then pm1.
        let need = p.resolve(BlockAddr(0));
        assert_eq!(need.len(), 2);
        assert_eq!(p.space().kind_of(need[0]), BlockKind::PosMap2);
        assert_eq!(p.space().kind_of(need[1]), BlockKind::PosMap1);
        p.plb_fill(need[0]);
        p.plb_fill(need[1]);
        // Warm: hit.
        assert!(p.resolve(BlockAddr(0)).is_empty());
        assert_eq!(p.plb_status(BlockAddr(0)), PlbStatus::Hit);
        // Sibling data block under the same pm1 block also hits.
        assert!(p.resolve(BlockAddr(15)).is_empty());
        // A block under a different pm1 but same pm2 needs only pm1.
        let need2 = p.resolve(BlockAddr(16));
        assert_eq!(need2.len(), 1);
        assert_eq!(p.space().kind_of(need2[0]), BlockKind::PosMap1);
        assert_eq!(p.plb_status(BlockAddr(16)), PlbStatus::MissPm1);
    }

    #[test]
    fn plb_status_is_non_perturbing() {
        let p = sys(4096);
        let before_hits = p.plb_hits;
        for _ in 0..10 {
            assert_eq!(p.plb_status(BlockAddr(0)), PlbStatus::MissBoth);
        }
        assert_eq!(p.plb_hits, before_hits);
    }

    #[test]
    fn status_extra_paths() {
        assert_eq!(PlbStatus::Hit.extra_paths(), 0);
        assert_eq!(PlbStatus::MissPm1.extra_paths(), 1);
        assert_eq!(PlbStatus::MissBoth.extra_paths(), 2);
    }

    #[test]
    fn save_restore_round_trips_mappings_and_plb() {
        let mut p = sys(4096);
        let need = p.resolve(BlockAddr(0));
        for n in need {
            p.plb_fill(n);
        }
        p.unmap(BlockAddr(7));
        let mut w = SnapWriter::new();
        p.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut fresh = sys(4096); // different random init, fully overwritten
        let mut r = SnapReader::new(&bytes);
        fresh.restore_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(fresh.leaf_of(BlockAddr(3)), p.leaf_of(BlockAddr(3)));
        assert!(!fresh.is_mapped(BlockAddr(7)));
        assert_eq!(fresh.plb_status(BlockAddr(0)), PlbStatus::Hit);
        assert_eq!((fresh.plb_hits, fresh.plb_misses), (p.plb_hits, p.plb_misses));
    }

    #[test]
    fn plb_flush_clears() {
        let mut p = sys(4096);
        let need = p.resolve(BlockAddr(0));
        for n in need {
            p.plb_fill(n);
        }
        assert_eq!(p.plb_status(BlockAddr(0)), PlbStatus::Hit);
        p.plb_flush();
        assert_eq!(p.plb_status(BlockAddr(0)), PlbStatus::MissBoth);
    }
}
