//! Protocol invariant checking.
//!
//! Path ORAM's correctness rests on two structural invariants (Stefanov et
//! al. \[27\]):
//!
//! 1. **Single residence** — every mapped block exists in exactly one place:
//!    the in-memory tree, the tree-top store, or the stash. Escrowed blocks
//!    (delayed remap) exist nowhere in the ORAM.
//! 2. **Path consistency** — a block stored at `(level, bucket)` lies on
//!    the path to its mapped leaf, and its recorded leaf matches the
//!    position map.
//!
//! The checker walks the whole structure (O(total slots)), so it is meant
//! for tests and property-based fuzzing, not hot loops.

use std::collections::BTreeMap;
use std::fmt;

use crate::{BlockAddr, PathOram};

/// A violated protocol invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantError {
    /// A block appears in more than one place.
    DuplicateResidence {
        /// The offending block.
        addr: BlockAddr,
        /// Human-readable locations.
        first: String,
        /// Second location found.
        second: String,
    },
    /// A stored block is not on the path to its mapped leaf.
    OffPath {
        /// The offending block.
        addr: BlockAddr,
        /// Level it was found at.
        level: usize,
        /// Bucket it was found in.
        bucket: u64,
    },
    /// A stored block's leaf disagrees with the position map.
    LeafMismatch {
        /// The offending block.
        addr: BlockAddr,
    },
    /// A mapped block was not found anywhere.
    Missing {
        /// The missing block.
        addr: BlockAddr,
    },
    /// An escrowed block was found inside the ORAM.
    EscrowedButStored {
        /// The offending block.
        addr: BlockAddr,
    },
    /// A bucket holds more blocks than its level's `Z` allocation allows
    /// (the IR-Alloc per-level bound).
    BucketOverflow {
        /// Level of the overflowing bucket.
        level: usize,
        /// Bucket index within the level.
        bucket: u64,
        /// Blocks found in the bucket.
        len: usize,
        /// The level's configured `Z`.
        cap: u32,
    },
    /// The tree-top store's internal indices are incoherent (e.g. a
    /// dangling or duplicated S-Stash TT pointer).
    StoreIncoherent {
        /// Description from the store's self-check.
        detail: String,
    },
}

impl fmt::Display for InvariantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantError::DuplicateResidence {
                addr,
                first,
                second,
            } => {
                write!(f, "{addr} resides in both {first} and {second}")
            }
            InvariantError::OffPath {
                addr,
                level,
                bucket,
            } => write!(
                f,
                "{addr} stored at level {level} bucket {bucket} is off its mapped path"
            ),
            InvariantError::LeafMismatch { addr } => {
                write!(f, "{addr} stored leaf disagrees with the position map")
            }
            InvariantError::Missing { addr } => write!(f, "mapped block {addr} not found"),
            InvariantError::EscrowedButStored { addr } => {
                write!(f, "escrowed block {addr} still stored in the ORAM")
            }
            InvariantError::BucketOverflow {
                level,
                bucket,
                len,
                cap,
            } => write!(
                f,
                "bucket at level {level} index {bucket} holds {len} blocks, Z allows {cap}"
            ),
            InvariantError::StoreIncoherent { detail } => {
                write!(f, "tree-top store incoherent: {detail}")
            }
        }
    }
}

impl std::error::Error for InvariantError {}

impl PathOram {
    /// Verifies the structural invariants, returning the first violation.
    ///
    /// # Errors
    ///
    /// Returns an [`InvariantError`] describing the first inconsistency
    /// found; `Ok(())` when the structure is sound.
    pub fn check_invariants(&self) -> Result<(), InvariantError> {
        let layout = self.layout();
        let mut seen: BTreeMap<u64, String> = BTreeMap::new();
        let mut record = |addr: BlockAddr, place: String| -> Result<(), InvariantError> {
            if let Some(first) = seen.insert(addr.0, place.clone()) {
                return Err(InvariantError::DuplicateResidence {
                    addr,
                    first,
                    second: place,
                });
            }
            Ok(())
        };

        // Tree blocks: position + leaf consistency + per-level Z bounds.
        let mut bucket_fill: BTreeMap<(usize, u64), usize> = BTreeMap::new();
        for (level, bucket, block) in self.tree().iter_blocks() {
            record(block.addr, format!("tree L{level}/B{bucket}"))?;
            let fill = bucket_fill.entry((level, bucket)).or_insert(0);
            *fill += 1;
            if *fill > layout.z_of(level) as usize {
                return Err(InvariantError::BucketOverflow {
                    level,
                    bucket,
                    len: *fill,
                    cap: layout.z_of(level),
                });
            }
            // lint: allow(secret-flow, functional-oracle invariant audit; runs off the timed path and issues no DRAM traffic)
            if layout.bucket_on_path(block.leaf, level) != bucket {
                return Err(InvariantError::OffPath {
                    addr: block.addr,
                    level,
                    bucket,
                });
            }
            // lint: allow(secret-flow, functional-oracle invariant audit; runs off the timed path and issues no DRAM traffic)
            if self.posmap().leaf_of(block.addr) != Some(block.leaf) {
                return Err(InvariantError::LeafMismatch { addr: block.addr });
            }
        }
        // Tree-top blocks: same position/leaf checks plus the store's own
        // deep coherence (S-Stash TT↔entry agreement, Z bounds).
        if let Some(top) = self.treetop_store() {
            if let Err(detail) = top.check_coherence() {
                return Err(InvariantError::StoreIncoherent { detail });
            }
            let mut top_fill: BTreeMap<(usize, u64), usize> = BTreeMap::new();
            for (level, bucket, block) in top.blocks() {
                record(block.addr, format!("top L{level}/B{bucket}"))?;
                let fill = top_fill.entry((level, bucket)).or_insert(0);
                *fill += 1;
                if *fill > layout.z_of(level) as usize {
                    return Err(InvariantError::BucketOverflow {
                        level,
                        bucket,
                        len: *fill,
                        cap: layout.z_of(level),
                    });
                }
                // lint: allow(secret-flow, functional-oracle invariant audit; runs off the timed path and issues no DRAM traffic)
                if layout.bucket_on_path(block.leaf, level) != bucket {
                    return Err(InvariantError::OffPath {
                        addr: block.addr,
                        level,
                        bucket,
                    });
                }
                // lint: allow(secret-flow, functional-oracle invariant audit; runs off the timed path and issues no DRAM traffic)
                if self.posmap().leaf_of(block.addr) != Some(block.leaf) {
                    return Err(InvariantError::LeafMismatch { addr: block.addr });
                }
            }
        }
        // Stash blocks (leaf must agree with the map; position free).
        for block in self.stash().iter() {
            record(block.addr, "stash".to_owned())?;
            // lint: allow(secret-flow, functional-oracle invariant audit; runs off the timed path and issues no DRAM traffic)
            if self.posmap().leaf_of(block.addr) != Some(block.leaf) {
                return Err(InvariantError::LeafMismatch { addr: block.addr });
            }
        }
        // Escrow: must NOT be stored, and must be unmapped.
        for addr in self.escrowed() {
            if seen.contains_key(&addr.0) {
                return Err(InvariantError::EscrowedButStored { addr });
            }
            seen.insert(addr.0, "escrow".to_owned());
        }
        // Completeness: every block address is somewhere.
        for a in 0..self.posmap().space().total_blocks() {
            if !seen.contains_key(&a) {
                return Err(InvariantError::Missing {
                    addr: BlockAddr(a),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OramConfig, PathOram, RemapPolicy, TreeTopMode};

    #[test]
    fn fresh_oram_is_sound() {
        let oram = PathOram::new(OramConfig::tiny());
        oram.check_invariants().unwrap();
    }

    #[test]
    fn invariants_hold_across_workloads() {
        for treetop in [
            TreeTopMode::None,
            TreeTopMode::Dedicated { levels: 3 },
            TreeTopMode::IrStash {
                levels: 3,
                sets: 16,
                ways: 4,
            },
        ] {
            for remap in [RemapPolicy::Immediate, RemapPolicy::Delayed] {
                let cfg = OramConfig {
                    treetop,
                    remap,
                    ..OramConfig::tiny()
                };
                let mut oram = PathOram::new(cfg);
                for i in 0..200u64 {
                    oram.run_access(crate::BlockAddr((i * 37) % 256), Some(i));
                    if i % 50 == 0 {
                        oram.check_invariants()
                            .unwrap_or_else(|e| panic!("{treetop:?} {remap:?}: {e}"));
                    }
                }
                oram.check_invariants().unwrap();
            }
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = InvariantError::Missing {
            addr: crate::BlockAddr(7),
        };
        assert!(e.to_string().contains("blk#7"));
        let d = InvariantError::DuplicateResidence {
            addr: crate::BlockAddr(1),
            first: "stash".into(),
            second: "tree L2/B1".into(),
        };
        assert!(d.to_string().contains("stash") && d.to_string().contains("tree"));
    }
}
