//! Core protocol value types.

use iroram_sim_engine::{SnapError, SnapReader, SnapWriter};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A block address in the unified (Freecursive-merged) block address space.
///
/// Data blocks occupy `[0, n_data)`; PosMap₁ blocks follow them; PosMap₂
/// blocks follow those (see [`crate::AddressSpace`]). One block = one 64 B
/// cache line in the paper's configuration.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct BlockAddr(pub u64);

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk#{}", self.0)
    }
}

impl From<u64> for BlockAddr {
    fn from(v: u64) -> Self {
        BlockAddr(v)
    }
}

/// A path identifier: the index of a leaf bucket, in `[0, 2^(L-1))` for an
/// `L`-level tree. Accessing path `l` touches every bucket from the root to
/// leaf `l`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Leaf(pub u64);

impl fmt::Display for Leaf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "leaf#{}", self.0)
    }
}

impl From<u64> for Leaf {
    fn from(v: u64) -> Self {
        Leaf(v)
    }
}

/// What role a block address plays in the Freecursive-merged tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockKind {
    /// User data block.
    Data,
    /// First-level position-map block (maps 16 data blocks to leaves).
    PosMap1,
    /// Second-level position-map block (maps 16 PosMap₁ blocks to leaves).
    PosMap2,
}

/// A block as stored in the stash, tree, or tree-top cache.
///
/// The `payload` carries user data through the protocol so correctness tests
/// can verify read-your-writes end to end; it is stored "encrypted" (a keyed
/// permutation) inside the tree by the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoredBlock {
    /// The block's address.
    pub addr: BlockAddr,
    /// The path the block is currently mapped to.
    pub leaf: Leaf,
    /// 64-bit payload standing in for the 64 B line contents.
    pub payload: u64,
}

impl StoredBlock {
    /// Fixed serialized size in bytes (three `u64` fields).
    pub const SNAP_BYTES: usize = 24;

    /// Serializes the block for a checkpoint.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_u64(self.addr.0);
        w.put_u64(self.leaf.0);
        w.put_u64(self.payload);
    }

    /// Reads one block back from a checkpoint payload.
    ///
    /// # Errors
    ///
    /// Any [`SnapError`] on a truncated payload.
    pub fn restore_state(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(StoredBlock {
            addr: BlockAddr(r.take_u64()?),
            leaf: Leaf(r.take_u64()?),
            payload: r.take_u64()?,
        })
    }
}

/// The externally observable classification of one ORAM path access.
///
/// *Inside* the trusted controller these types exist; *outside* they are
/// indistinguishable (Section III-A: "an attacker cannot determine the type
/// of a particular path access outside of the TCB"). The obliviousness tests
/// assert that the externally visible trace — leaf choice and per-level
/// block counts — has the same distribution for every variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PathType {
    /// `PT_p` fetching a PosMap₁ block (paper's "Pos1").
    Pos1,
    /// `PT_p` fetching a PosMap₂ block (paper's "Pos2").
    Pos2,
    /// `PT_d` fetching the requested data block.
    Data,
    /// A background-eviction path draining the stash (Ren et al. \[25\]).
    BgEvict,
    /// `PT_m` dummy path inserted for timing protection.
    Dummy,
    /// A dummy slot converted by IR-DWB into useful early write-back work.
    DwbConverted,
}

impl PathType {
    /// Whether this is a position-map (`PT_p`) path.
    pub fn is_posmap(self) -> bool {
        matches!(self, PathType::Pos1 | PathType::Pos2)
    }
}

/// One path access performed by the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathRecord {
    /// The leaf (path ID) accessed.
    pub leaf: Leaf,
    /// The internal type of the access.
    pub ptype: PathType,
}

/// A small list of [`PathRecord`]s with inline storage.
///
/// Every logical access returns its performed paths by value; a `Vec`
/// here meant one heap allocation per access on the simulator's hottest
/// boundary. A record is 16 bytes and an access performs at most
/// `1 (data) + 2 (PosMap) + max_bg_evicts_per_access` paths, so the list
/// stays inline in practice and only spills to the heap beyond
/// [`PathList::INLINE`] entries. Dereferences to `[PathRecord]`, so slice
/// reads (`first`, `len`, indexing, iteration) look exactly like the old
/// `Vec` field.
#[derive(Clone, Serialize, Deserialize)]
pub struct PathList {
    len: u8,
    inline: [PathRecord; Self::INLINE],
    spill: Vec<PathRecord>,
}

impl PathList {
    /// Inline capacity; pushes beyond this move the list to the heap.
    pub const INLINE: usize = 12;

    const FILLER: PathRecord = PathRecord {
        leaf: Leaf(0),
        ptype: PathType::Dummy,
    };

    /// An empty list (no allocation).
    pub fn new() -> Self {
        PathList {
            len: 0,
            inline: [Self::FILLER; Self::INLINE],
            spill: Vec::new(),
        }
    }

    /// A one-element list (no allocation).
    pub fn one(rec: PathRecord) -> Self {
        let mut l = Self::new();
        l.push(rec);
        l
    }

    /// Appends a record.
    pub fn push(&mut self, rec: PathRecord) {
        if !self.spill.is_empty() {
            self.spill.push(rec);
        } else if (self.len as usize) < Self::INLINE {
            self.inline[self.len as usize] = rec;
            self.len += 1;
        } else {
            // Spill: move everything to the heap and continue there.
            self.spill.extend_from_slice(&self.inline);
            self.spill.push(rec);
            self.len = 0;
        }
    }

    fn as_slice(&self) -> &[PathRecord] {
        if self.spill.is_empty() {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }
}

impl Default for PathList {
    fn default() -> Self {
        PathList::new()
    }
}

impl std::ops::Deref for PathList {
    type Target = [PathRecord];

    fn deref(&self) -> &[PathRecord] {
        self.as_slice()
    }
}

impl std::fmt::Debug for PathList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

// Manual equality over the live prefix: the unused inline tail holds
// stale filler that must not participate.
impl PartialEq for PathList {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for PathList {}

impl Extend<PathRecord> for PathList {
    fn extend<T: IntoIterator<Item = PathRecord>>(&mut self, iter: T) {
        for r in iter {
            self.push(r);
        }
    }
}

impl IntoIterator for PathList {
    type Item = PathRecord;
    type IntoIter = PathListIter;

    fn into_iter(self) -> PathListIter {
        PathListIter { list: self, pos: 0 }
    }
}

impl<'a> IntoIterator for &'a PathList {
    type Item = &'a PathRecord;
    type IntoIter = std::slice::Iter<'a, PathRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// By-value iterator over a [`PathList`].
#[derive(Debug)]
pub struct PathListIter {
    list: PathList,
    pos: usize,
}

impl Iterator for PathListIter {
    type Item = PathRecord;

    fn next(&mut self) -> Option<PathRecord> {
        let r = self.list.as_slice().get(self.pos).copied();
        self.pos += r.is_some() as usize;
        r
    }
}

/// Where a requested block was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServedFrom {
    /// The small fully-associative stash (F-Stash).
    FStash,
    /// The set-associative S-Stash, hit by block address (IR-Stash only).
    SStash,
    /// The on-chip tree-top store, found after PosMap resolution.
    TreeTop {
        /// The cached tree level the block was found at.
        level: usize,
    },
    /// The in-memory portion of the ORAM tree.
    Tree {
        /// The tree level the block was found at.
        level: usize,
    },
    /// The block is escrowed outside the ORAM (delayed-remap policy: the
    /// LLC holds the only copy).
    Escrow,
}

impl ServedFrom {
    /// The tree level for tree/tree-top hits (stash hits report `None`).
    pub fn level(self) -> Option<usize> {
        match self {
            ServedFrom::TreeTop { level } | ServedFrom::Tree { level } => Some(level),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(BlockAddr(7).to_string(), "blk#7");
        assert_eq!(Leaf(3).to_string(), "leaf#3");
    }

    #[test]
    fn path_type_classification() {
        assert!(PathType::Pos1.is_posmap());
        assert!(PathType::Pos2.is_posmap());
        assert!(!PathType::Data.is_posmap());
        assert!(!PathType::Dummy.is_posmap());
    }

    #[test]
    fn served_from_level() {
        assert_eq!(ServedFrom::Tree { level: 5 }.level(), Some(5));
        assert_eq!(ServedFrom::TreeTop { level: 2 }.level(), Some(2));
        assert_eq!(ServedFrom::FStash.level(), None);
        assert_eq!(ServedFrom::Escrow.level(), None);
    }

    #[test]
    fn conversions() {
        assert_eq!(BlockAddr::from(4u64), BlockAddr(4));
        assert_eq!(Leaf::from(9u64), Leaf(9));
    }
}
