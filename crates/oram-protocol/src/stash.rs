//! The fully-associative stash (the paper's F-Stash).

use serde::{Deserialize, Serialize};
// lint: allow(determinism, hot-path lookup map; every iteration sorts keys before use)
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use iroram_hash::mix64;
use iroram_sim_engine::{SnapError, SnapReader, SnapWriter};

use crate::{BlockAddr, Leaf, StoredBlock, TreeLayout};

/// A deterministic single-multiply hasher for block addresses. The stash
/// map is keyed by `u64` addresses and sits on the per-path hot loop, where
/// the default SipHash costs more than the lookup it guards; one `mix64`
/// round spreads addresses fine. Determinism is *not* load-bearing here —
/// no report-visible output depends on map iteration order (write-back
/// planning sorts its candidates) — but a fixed hasher keeps the whole
/// simulator free of per-process randomness.
#[derive(Debug, Default, Clone)]
pub(crate) struct AddrHasher(u64);

impl Hasher for AddrHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-u64 keys (unused by the stash): FNV-1a.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = mix64(v);
    }
}

// lint: allow(determinism, lookup-only map with a fixed keyed hasher; every report-visible iteration sorts in plan_writeback_into)
pub(crate) type AddrMap<V> = HashMap<u64, V, BuildHasherDefault<AddrHasher>>;

/// The small fully-associative on-chip buffer holding in-flight blocks.
///
/// Path ORAM temporarily parks blocks here between the read and write
/// phases, and blocks that cannot be pushed into the tree accumulate here
/// until background eviction drains them (Ren et al. \[25\]). Capacity is a
/// *soft* threshold: occupancy may exceed it transiently (the protocol then
/// schedules background-eviction paths), mirroring how the paper converts
/// stash overflow from a correctness failure into a performance cost.
///
/// # Examples
///
/// ```
/// use iroram_protocol::{Stash, StoredBlock, BlockAddr, Leaf};
/// let mut s = Stash::new(200);
/// s.insert(StoredBlock { addr: BlockAddr(1), leaf: Leaf(0), payload: 9 });
/// assert!(s.contains(BlockAddr(1)));
/// assert_eq!(s.take(BlockAddr(1)).unwrap().payload, 9);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Stash {
    /// Resident blocks, kept sorted by address. Peak occupancy in any
    /// configured run stays well under a hundred blocks, so a
    /// binary-search-plus-memmove vector beats a hash map on the per-path
    /// hot loop *and* hands the write-back planner an address-ordered
    /// iteration for free (its counting sort becomes fully
    /// comparison-free).
    blocks: Vec<StoredBlock>,
    // lint: allow(snapshot-drift, configuration, fixed at construction for the whole run)
    capacity: usize,
    max_occupancy: usize,
    // Write-back planning scratch, kept across calls so the per-path hot
    // loop allocates nothing. Not logical state: always left consistent but
    // meaningless between calls.
    // lint: allow(snapshot-drift, per-call scratch, cleared before each use)
    cands: Vec<(u32, u32)>,
    // lint: allow(snapshot-drift, per-call scratch, cleared before each use)
    sorted: Vec<(u32, u32)>,
    // lint: allow(snapshot-drift, per-call scratch, cleared before each use)
    offsets: Vec<usize>,
    // lint: allow(snapshot-drift, per-call scratch, cleared before each use)
    placed: Vec<bool>,
    // lint: allow(snapshot-drift, per-call scratch, cleared before each use)
    skipped: Vec<(u32, u32)>,
}

/// A reusable write-back plan: the per-level block lists
/// [`Stash::plan_writeback_into`] fills (index 0 = the plan's `top_level`).
///
/// Holding one plan per controller and re-filling it each path access keeps
/// the write phase free of `Vec<Vec<_>>` churn: the inner vectors keep their
/// capacity across accesses.
#[derive(Debug, Clone, Default)]
pub struct WritebackPlan {
    levels: Vec<Vec<StoredBlock>>,
    len: usize,
}

impl WritebackPlan {
    /// An empty plan.
    pub fn new() -> Self {
        WritebackPlan::default()
    }

    /// Number of levels in the current plan.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the current plan covers zero levels.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The blocks planned for plan level `i`.
    pub fn level(&self, i: usize) -> &[StoredBlock] {
        assert!(i < self.len, "plan level {i} out of range {}", self.len);
        &self.levels[i]
    }

    /// Mutable access to plan level `i` (the write phase drains these).
    pub fn level_mut(&mut self, i: usize) -> &mut Vec<StoredBlock> {
        assert!(i < self.len, "plan level {i} out of range {}", self.len);
        &mut self.levels[i]
    }

    /// Total blocks across all levels of the current plan.
    pub fn total_planned(&self) -> usize {
        self.levels[..self.len].iter().map(Vec::len).sum()
    }

    /// Clears the plan and sizes it to `n` levels, keeping allocations.
    fn reset(&mut self, n: usize) {
        if self.levels.len() < n {
            self.levels.resize_with(n, Vec::new);
        }
        for lvl in &mut self.levels[..n] {
            lvl.clear();
        }
        self.len = n;
    }

    /// Consumes the plan into plain per-level vectors (compatibility path
    /// for callers that do not reuse plans).
    fn into_level_vecs(mut self) -> Vec<Vec<StoredBlock>> {
        self.levels.truncate(self.len);
        self.levels
    }
}

impl Stash {
    /// Creates an empty stash with soft capacity `capacity` (the paper uses
    /// 200 entries, Table I).
    pub fn new(capacity: usize) -> Self {
        Stash {
            blocks: Vec::new(),
            capacity,
            max_occupancy: 0,
            cands: Vec::new(),
            sorted: Vec::new(),
            offsets: Vec::new(),
            placed: Vec::new(),
            skipped: Vec::new(),
        }
    }

    /// Position of `addr` in the sorted block vector (`Err` = insertion
    /// point).
    #[inline]
    fn pos(&self, addr: u64) -> Result<usize, usize> {
        self.blocks.binary_search_by_key(&addr, |b| b.addr.0)
    }

    /// The soft capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the stash is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The high-water mark of occupancy over the stash's lifetime.
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }

    /// Whether occupancy exceeds the soft capacity (background eviction
    /// should run).
    pub fn over_capacity(&self) -> bool {
        self.blocks.len() > self.capacity
    }

    /// Inserts a block (replacing any stale copy of the same address).
    pub fn insert(&mut self, block: StoredBlock) {
        match self.pos(block.addr.0) {
            // lint: allow(panic, index returned by binary_search is in range)
            Ok(i) => self.blocks[i] = block,
            Err(i) => self.blocks.insert(i, block),
        }
        self.max_occupancy = self.max_occupancy.max(self.blocks.len());
    }

    /// Inserts every block of `incoming` (clearing it). Equivalent to one
    /// [`Stash::insert`] per element, but a single O(n + k) backward merge
    /// replaces k O(n) shifted inserts — the read phase of a path access
    /// lands a whole path's worth of blocks at once, and per-element
    /// insertion was the stash's largest memmove source.
    pub fn insert_batch(&mut self, incoming: &mut Vec<StoredBlock>) {
        if incoming.is_empty() {
            return;
        }
        incoming.sort_unstable_by_key(|b| b.addr.0);
        debug_assert!(
            incoming.windows(2).all(|w| w[0].addr.0 != w[1].addr.0),
            "insert_batch: duplicate addresses within one batch"
        );
        let n = self.blocks.len();
        let k = incoming.len();
        // lint: allow(panic, k >= 1 checked above)
        let filler = incoming[k - 1];
        self.blocks.resize(n + k, filler);
        let (mut i, mut j, mut w) = (n, k, n + k);
        while j > 0 {
            w -= 1;
            // lint: allow(panic, i <= n and j <= k and w < n + k throughout the merge)
            if i > 0 && self.blocks[i - 1].addr.0 > incoming[j - 1].addr.0 {
                // lint: allow(panic, i >= 1 and w < n + k)
                self.blocks[w] = self.blocks[i - 1];
                i -= 1;
            } else {
                // lint: allow(panic, i >= 1 inside the guard; j >= 1 from the loop condition)
                if i > 0 && self.blocks[i - 1].addr.0 == incoming[j - 1].addr.0 {
                    i -= 1; // stale copy replaced by the incoming block
                }
                // lint: allow(panic, j >= 1 from the loop condition and w < n + k)
                self.blocks[w] = incoming[j - 1];
                j -= 1;
            }
        }
        if w > i {
            // Address collisions dropped stale copies, leaving a gap
            // between the untouched prefix and the merged tail; close it.
            let dropped = w - i;
            self.blocks.copy_within(w.., i);
            self.blocks.truncate(n + k - dropped);
        }
        incoming.clear();
        self.max_occupancy = self.max_occupancy.max(self.blocks.len());
    }

    /// Whether a block with `addr` is resident.
    pub fn contains(&self, addr: BlockAddr) -> bool {
        self.pos(addr.0).is_ok()
    }

    /// Immutable view of a resident block.
    pub fn get(&self, addr: BlockAddr) -> Option<&StoredBlock> {
        self.pos(addr.0).ok().and_then(|i| self.blocks.get(i))
    }

    /// Mutable view of a resident block (for payload updates and remaps).
    pub fn get_mut(&mut self, addr: BlockAddr) -> Option<&mut StoredBlock> {
        match self.pos(addr.0) {
            // lint: allow(panic, index returned by binary_search is in range)
            Ok(i) => Some(&mut self.blocks[i]),
            Err(_) => None,
        }
    }

    /// Removes and returns the block with `addr`.
    pub fn take(&mut self, addr: BlockAddr) -> Option<StoredBlock> {
        self.pos(addr.0).ok().map(|i| self.blocks.remove(i))
    }

    /// Iterates over resident blocks in ascending address order.
    pub fn iter(&self) -> impl Iterator<Item = &StoredBlock> {
        self.blocks.iter()
    }

    /// Serializes the resident blocks and the occupancy high-water mark for
    /// a checkpoint (capacity is configuration; the write-back scratch is
    /// meaningless between calls and not written).
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_usize(self.blocks.len());
        for b in &self.blocks {
            b.save_state(w);
        }
        w.put_usize(self.max_occupancy);
    }

    /// Restores the state captured by [`Stash::save_state`].
    ///
    /// # Errors
    ///
    /// [`SnapError::Corrupt`] if the serialized blocks are not in ascending
    /// address order (the vector's invariant); any [`SnapError`] on
    /// truncation.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.take_seq_len(StoredBlock::SNAP_BYTES)?;
        self.blocks.clear();
        for _ in 0..n {
            let b = StoredBlock::restore_state(r)?;
            if self.blocks.last().is_some_and(|prev| prev.addr.0 >= b.addr.0) {
                return Err(SnapError::Corrupt("stash blocks out of order"));
            }
            self.blocks.push(b);
        }
        self.max_occupancy = r.take_usize()?;
        Ok(())
    }

    /// Plans the write-back of a path to `leaf`: selects, for each level in
    /// `[top_level, L)`, up to `Z_level` stash blocks that may legally live
    /// in that level's bucket on this path, **removing them from the stash**.
    ///
    /// Returns one `Vec<StoredBlock>` per level (index 0 of the result is
    /// `top_level`). Blocks are pushed as deep as possible (the Path ORAM
    /// eviction rule); the greedy deepest-first order is optimal for
    /// maximizing placed blocks. `exclude` (the just-requested block under
    /// the immediate-remap policy, which returns to the program) is never
    /// selected.
    ///
    /// `cap_override` lets the caller shrink a level's usable capacity (used
    /// by IR-Stash when an S-Stash set is full: those blocks are "skipped
    /// this round", paper Section IV-C); a `None` entry means use
    /// `layout.z_of(level)`.
    pub fn plan_writeback(
        &mut self,
        layout: &TreeLayout,
        leaf: Leaf,
        top_level: usize,
        may_place: impl FnMut(usize, &StoredBlock) -> bool,
    ) -> Vec<Vec<StoredBlock>> {
        let mut plan = WritebackPlan::new();
        self.plan_writeback_into(layout, leaf, top_level, may_place, &mut plan);
        plan.into_level_vecs()
    }

    /// Allocation-free variant of [`Stash::plan_writeback`]: fills `plan`
    /// in place, reusing both the plan's level vectors and the stash's
    /// internal candidate scratch across calls.
    ///
    /// Candidates are ordered deepest-common-depth first (ties broken by
    /// ascending address) via a **stable counting sort** over depths: the
    /// block vector is already address-sorted, the scatter preserves the
    /// source order inside each depth segment, so the final order is
    /// (depth desc, addr asc) with no comparison sort at all. Selection is
    /// mark-and-sweep — placed blocks are flagged and removed in one
    /// compaction pass at the end, so the greedy fill itself never shifts
    /// the vector.
    pub fn plan_writeback_into(
        &mut self,
        layout: &TreeLayout,
        leaf: Leaf,
        top_level: usize,
        mut may_place: impl FnMut(usize, &StoredBlock) -> bool,
        plan: &mut WritebackPlan,
    ) {
        let levels = layout.levels();
        plan.reset(levels - top_level);

        // --- Stable counting sort of (common depth, index), deepest first.
        self.cands.clear();
        self.offsets.clear();
        self.offsets.resize(levels, 0);
        for (i, b) in self.blocks.iter().enumerate() {
            let depth = layout.common_depth(b.leaf, leaf);
            // lint: allow(secret-flow, on-chip write-back planning; the path is read and written in full regardless of placement)
            self.offsets[depth] += 1;
            self.cands.push((depth as u32, i as u32));
        }
        let n = self.cands.len();
        let mut acc = 0usize;
        for depth in (0..levels).rev() {
            // lint: allow(secret-flow, on-chip write-back planning; the path is read and written in full regardless of placement)
            let count = self.offsets[depth];
            // lint: allow(secret-flow, on-chip write-back planning; the path is read and written in full regardless of placement)
            self.offsets[depth] = acc;
            acc += count;
        }
        self.sorted.clear();
        self.sorted.resize(n, (0, 0));
        for i in 0..n {
            let (depth, idx) = self.cands[i];
            // lint: allow(secret-flow, on-chip write-back planning; the path is read and written in full regardless of placement)
            let pos = self.offsets[depth as usize];
            // lint: allow(secret-flow, on-chip write-back planning; the path is read and written in full regardless of placement)
            self.offsets[depth as usize] += 1;
            // lint: allow(secret-flow, on-chip write-back planning; the path is read and written in full regardless of placement)
            self.sorted[pos] = (depth, idx);
        }
        self.placed.clear();
        self.placed.resize(n, false);
        self.skipped.clear();

        // --- Greedy deepest-first fill (unchanged placement rule). ---
        //
        // An entry the cursor passes without placing was rejected by
        // `may_place`; it lands on the `skipped` list (in cursor order, i.e.
        // global candidate order) so shallower levels can revisit exactly
        // those entries instead of rescanning the whole prefix — every
        // unplaced entry before the cursor is on the list by construction.
        let mut cursor = 0usize;
        for level in (top_level..levels).rev() {
            let cap = layout.z_of(level) as usize;
            let slot_idx = level - top_level;
            // Blocks with common depth ≥ level can live at `level` (or
            // deeper, but deeper levels were already filled).
            while cursor < n && plan.levels[slot_idx].len() < cap {
                // lint: allow(panic, cursor < n and indices come from enumerate)
                let (depth, idx) = self.sorted[cursor];
                // lint: allow(secret-flow, on-chip write-back planning; the path is read and written in full regardless of placement)
                if (depth as usize) < level {
                    break;
                }
                cursor += 1;
                // lint: allow(panic, idx comes from enumerate over blocks)
                let b = &self.blocks[idx as usize];
                if !may_place(level, b) {
                    // Skipped this round (e.g. S-Stash set full); still a
                    // candidate for shallower levels.
                    self.skipped.push((depth, idx));
                    continue;
                }
                plan.levels[slot_idx].push(*b);
                // lint: allow(panic, idx < n by construction)
                self.placed[idx as usize] = true;
            }
            // Give passed-over candidates another chance at this level:
            // they were rejected by may_place at deeper levels (or at this
            // one, if a deeper set freed up mid-fill) and remain eligible.
            if plan.levels[slot_idx].len() < cap {
                for k in 0..self.skipped.len() {
                    if plan.levels[slot_idx].len() >= cap {
                        break;
                    }
                    // lint: allow(panic, k < skipped.len())
                    let (depth, idx) = self.skipped[k];
                    // lint: allow(secret-flow, on-chip write-back planning; the path is read and written in full regardless of placement)
                    if (depth as usize) < level {
                        continue;
                    }
                    // lint: allow(panic, idx < n by construction)
                    if self.placed[idx as usize] {
                        continue;
                    }
                    // lint: allow(panic, idx comes from enumerate over blocks)
                    let b = &self.blocks[idx as usize];
                    if !may_place(level, b) {
                        continue;
                    }
                    plan.levels[slot_idx].push(*b);
                    // lint: allow(panic, idx < n by construction)
                    self.placed[idx as usize] = true;
                }
            }
        }

        // --- Sweep: drop every placed block, preserving address order. ---
        let mut w = 0usize;
        for r in 0..n {
            // lint: allow(panic, r < n = blocks.len = placed.len)
            if !self.placed[r] {
                if w != r {
                    // lint: allow(panic, w <= r < n)
                    self.blocks[w] = self.blocks[r];
                }
                w += 1;
            }
        }
        self.blocks.truncate(w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ZAllocation;

    fn blk(addr: u64, leaf: u64) -> StoredBlock {
        StoredBlock {
            addr: BlockAddr(addr),
            leaf: Leaf(leaf),
            payload: addr * 100,
        }
    }

    fn layout4() -> TreeLayout {
        // 4 levels, Z=1 for visibility of placement decisions.
        TreeLayout::new(ZAllocation::uniform(4, 1))
    }

    #[test]
    fn insert_get_take() {
        let mut s = Stash::new(10);
        s.insert(blk(1, 3));
        assert_eq!(s.len(), 1);
        assert!(s.contains(BlockAddr(1)));
        assert_eq!(s.get(BlockAddr(1)).unwrap().leaf, Leaf(3));
        s.get_mut(BlockAddr(1)).unwrap().payload = 7;
        assert_eq!(s.take(BlockAddr(1)).unwrap().payload, 7);
        assert!(s.is_empty());
    }

    #[test]
    fn insert_replaces_same_address() {
        let mut s = Stash::new(10);
        s.insert(blk(1, 3));
        s.insert(blk(1, 5));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(BlockAddr(1)).unwrap().leaf, Leaf(5));
    }

    #[test]
    fn occupancy_tracking() {
        let mut s = Stash::new(2);
        s.insert(blk(1, 0));
        s.insert(blk(2, 0));
        assert!(!s.over_capacity());
        s.insert(blk(3, 0));
        assert!(s.over_capacity());
        assert_eq!(s.max_occupancy(), 3);
        s.take(BlockAddr(1));
        s.take(BlockAddr(2));
        assert_eq!(s.max_occupancy(), 3, "high-water mark persists");
    }

    #[test]
    fn writeback_pushes_deepest() {
        let mut s = Stash::new(10);
        // Block mapped to the accessed leaf itself: can go to leaf level.
        s.insert(blk(1, 5));
        // Block sharing only the root with leaf 5 (leaf 1 differs in top bit).
        s.insert(blk(2, 1));
        let layout = layout4();
        let plan = s.plan_writeback(&layout, Leaf(5), 0, |_, _| true);
        assert_eq!(plan.len(), 4);
        assert_eq!(plan[3], vec![blk(1, 5)], "own-leaf block at leaf level");
        assert_eq!(plan[0], vec![blk(2, 1)], "distant block at root");
        assert!(s.is_empty());
    }

    #[test]
    fn writeback_respects_capacity() {
        let mut s = Stash::new(10);
        // Three blocks all mapped to leaf 5; Z=1 per level: they can occupy
        // levels 3, 2, 1, 0 (all on the same path).
        for a in 1..=5 {
            s.insert(blk(a, 5));
        }
        let layout = layout4();
        let plan = s.plan_writeback(&layout, Leaf(5), 0, |_, _| true);
        let placed: usize = plan.iter().map(Vec::len).sum();
        assert_eq!(placed, 4, "one block per level fits");
        assert_eq!(s.len(), 1, "one block left in stash");
    }

    #[test]
    fn writeback_excludes_via_predicate() {
        let mut s = Stash::new(10);
        s.insert(blk(1, 5));
        let layout = layout4();
        let plan = s.plan_writeback(&layout, Leaf(5), 0, |_, b| b.addr != BlockAddr(1));
        assert!(plan.iter().all(Vec::is_empty));
        assert!(s.contains(BlockAddr(1)));
    }

    #[test]
    fn writeback_honours_top_level_offset() {
        let mut s = Stash::new(10);
        s.insert(blk(1, 5)); // could go to leaf level
        s.insert(blk(2, 1)); // only the root — below top_level=1, unplaceable
        let layout = layout4();
        let plan = s.plan_writeback(&layout, Leaf(5), 1, |_, _| true);
        assert_eq!(plan.len(), 3, "levels 1..4");
        let placed: usize = plan.iter().map(Vec::len).sum();
        assert_eq!(placed, 1);
        assert!(s.contains(BlockAddr(2)), "root-only block stays in stash");
    }

    #[test]
    fn writeback_skip_then_place_shallower() {
        // A block skipped at the leaf level (e.g. S-Stash conflict) must
        // still be eligible for shallower levels.
        let mut s = Stash::new(10);
        s.insert(blk(1, 5));
        let layout = layout4();
        let plan = s.plan_writeback(&layout, Leaf(5), 0, |level, _| level != 3);
        assert!(plan[3].is_empty());
        let placed: usize = plan.iter().map(Vec::len).sum();
        assert_eq!(placed, 1, "placed at a shallower level instead");
        assert!(s.is_empty());
    }

    #[test]
    fn writeback_empty_stash() {
        let mut s = Stash::new(10);
        let layout = layout4();
        let plan = s.plan_writeback(&layout, Leaf(0), 0, |_, _| true);
        assert!(plan.iter().all(Vec::is_empty));
    }

    /// Builds a populated stash from a deterministic pseudo-random mix.
    fn mixed_stash(seed: u64, count: u64, leaves: u64) -> Stash {
        let mut s = Stash::new(1024);
        let mut x = seed;
        for a in 0..count {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s.insert(blk(a, (x >> 33) % leaves));
        }
        s
    }

    #[test]
    fn save_restore_round_trips_blocks_and_watermark() {
        let layout = TreeLayout::new(ZAllocation::uniform(6, 4));
        let mut s = mixed_stash(13, 40, layout.num_leaves());
        for a in 0..30 {
            s.take(BlockAddr(a)); // drop below the watermark
        }
        let mut w = SnapWriter::new();
        s.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut fresh = Stash::new(1024);
        let mut r = SnapReader::new(&bytes);
        fresh.restore_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(fresh.len(), s.len());
        assert_eq!(fresh.max_occupancy(), 40);
        // Identical future planning behaviour.
        let a = s.plan_writeback(&layout, Leaf(3), 0, |_, _| true);
        let b = fresh.plan_writeback(&layout, Leaf(3), 0, |_, _| true);
        assert_eq!(a, b);
    }

    #[test]
    fn restore_rejects_unsorted_blocks() {
        let mut w = SnapWriter::new();
        w.put_usize(2);
        blk(5, 0).save_state(&mut w);
        blk(3, 0).save_state(&mut w);
        w.put_usize(2);
        let bytes = w.into_bytes();
        let mut s = Stash::new(8);
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(
            s.restore_state(&mut r),
            Err(SnapError::Corrupt(_))
        ));
    }

    #[test]
    fn writeback_into_matches_allocating_variant() {
        let layout = TreeLayout::new(ZAllocation::uniform(6, 4));
        let leaves = layout.num_leaves();
        let mut plan = WritebackPlan::new();
        for seed in 1..6u64 {
            let mut a = mixed_stash(seed, 120, leaves);
            let mut b = a.clone();
            let expect = a.plan_writeback(&layout, Leaf(seed % leaves), 1, |_, _| true);
            b.plan_writeback_into(&layout, Leaf(seed % leaves), 1, |_, _| true, &mut plan);
            assert_eq!(plan.len(), expect.len());
            for (i, lvl) in expect.iter().enumerate() {
                assert_eq!(plan.level(i), &lvl[..], "seed {seed} level {i}");
            }
            assert_eq!(plan.total_planned(), expect.iter().map(Vec::len).sum::<usize>());
            assert_eq!(a.len(), b.len(), "both variants drain identically");
        }
    }

    #[test]
    fn writeback_reused_plan_is_deterministic() {
        // The same stash contents must plan identically regardless of the
        // HashMap's internal order or leftover scratch from earlier calls.
        let layout = TreeLayout::new(ZAllocation::uniform(6, 2));
        let leaves = layout.num_leaves();
        let mut plan = WritebackPlan::new();
        // Dirty the scratch with an unrelated big plan first.
        let mut warmup = mixed_stash(99, 300, leaves);
        warmup.plan_writeback_into(&layout, Leaf(0), 0, |_, _| true, &mut plan);

        let run = |plan: &mut WritebackPlan| {
            let mut s = Stash::new(1024);
            // Insertion order differs from address order on purpose.
            for &(a, l) in &[(9u64, 3u64), (2, 3), (7, 3), (1, 5), (4, 5), (3, 0)] {
                s.insert(blk(a, l));
            }
            s.plan_writeback_into(&layout, Leaf(3), 0, |_, _| true, plan);
            (0..plan.len()).map(|i| plan.level(i).to_vec()).collect::<Vec<_>>()
        };
        let first = run(&mut plan);
        let mut fresh = WritebackPlan::new();
        let second = run(&mut fresh);
        assert_eq!(first, second);
        // Within-depth ties must come out in ascending address order.
        for lvl in &first {
            for pair in lvl.windows(2) {
                let d0 = layout.common_depth(pair[0].leaf, Leaf(3));
                let d1 = layout.common_depth(pair[1].leaf, Leaf(3));
                if d0 == d1 {
                    assert!(pair[0].addr.0 < pair[1].addr.0);
                }
            }
        }
    }
}
