//! The fully-associative stash (the paper's F-Stash).

use serde::{Deserialize, Serialize};
// lint: allow(determinism, hot-path lookup map; every iteration sorts keys before use)
use std::collections::HashMap;

use crate::{BlockAddr, Leaf, StoredBlock, TreeLayout};

/// The small fully-associative on-chip buffer holding in-flight blocks.
///
/// Path ORAM temporarily parks blocks here between the read and write
/// phases, and blocks that cannot be pushed into the tree accumulate here
/// until background eviction drains them (Ren et al. \[25\]). Capacity is a
/// *soft* threshold: occupancy may exceed it transiently (the protocol then
/// schedules background-eviction paths), mirroring how the paper converts
/// stash overflow from a correctness failure into a performance cost.
///
/// # Examples
///
/// ```
/// use iroram_protocol::{Stash, StoredBlock, BlockAddr, Leaf};
/// let mut s = Stash::new(200);
/// s.insert(StoredBlock { addr: BlockAddr(1), leaf: Leaf(0), payload: 9 });
/// assert!(s.contains(BlockAddr(1)));
/// assert_eq!(s.take(BlockAddr(1)).unwrap().payload, 9);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Stash {
    // lint: allow(determinism, hot-path lookup map; write-back planning sorts candidates)
    blocks: HashMap<u64, StoredBlock>,
    capacity: usize,
    max_occupancy: usize,
    // Write-back planning scratch, kept across calls so the per-path hot
    // loop allocates nothing. Not logical state: always left consistent but
    // meaningless between calls.
    cands: Vec<(u32, u64)>,
    sorted: Vec<(u32, u64)>,
    offsets: Vec<usize>,
}

/// A reusable write-back plan: the per-level block lists
/// [`Stash::plan_writeback_into`] fills (index 0 = the plan's `top_level`).
///
/// Holding one plan per controller and re-filling it each path access keeps
/// the write phase free of `Vec<Vec<_>>` churn: the inner vectors keep their
/// capacity across accesses.
#[derive(Debug, Clone, Default)]
pub struct WritebackPlan {
    levels: Vec<Vec<StoredBlock>>,
    len: usize,
}

impl WritebackPlan {
    /// An empty plan.
    pub fn new() -> Self {
        WritebackPlan::default()
    }

    /// Number of levels in the current plan.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the current plan covers zero levels.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The blocks planned for plan level `i`.
    pub fn level(&self, i: usize) -> &[StoredBlock] {
        assert!(i < self.len, "plan level {i} out of range {}", self.len);
        &self.levels[i]
    }

    /// Mutable access to plan level `i` (the write phase drains these).
    pub fn level_mut(&mut self, i: usize) -> &mut Vec<StoredBlock> {
        assert!(i < self.len, "plan level {i} out of range {}", self.len);
        &mut self.levels[i]
    }

    /// Total blocks across all levels of the current plan.
    pub fn total_planned(&self) -> usize {
        self.levels[..self.len].iter().map(Vec::len).sum()
    }

    /// Clears the plan and sizes it to `n` levels, keeping allocations.
    fn reset(&mut self, n: usize) {
        if self.levels.len() < n {
            self.levels.resize_with(n, Vec::new);
        }
        for lvl in &mut self.levels[..n] {
            lvl.clear();
        }
        self.len = n;
    }

    /// Consumes the plan into plain per-level vectors (compatibility path
    /// for callers that do not reuse plans).
    fn into_level_vecs(mut self) -> Vec<Vec<StoredBlock>> {
        self.levels.truncate(self.len);
        self.levels
    }
}

impl Stash {
    /// Creates an empty stash with soft capacity `capacity` (the paper uses
    /// 200 entries, Table I).
    pub fn new(capacity: usize) -> Self {
        Stash {
            // lint: allow(determinism, hot-path lookup map; iteration order never observed)
            blocks: HashMap::new(),
            capacity,
            max_occupancy: 0,
            cands: Vec::new(),
            sorted: Vec::new(),
            offsets: Vec::new(),
        }
    }

    /// The soft capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the stash is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The high-water mark of occupancy over the stash's lifetime.
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }

    /// Whether occupancy exceeds the soft capacity (background eviction
    /// should run).
    pub fn over_capacity(&self) -> bool {
        self.blocks.len() > self.capacity
    }

    /// Inserts a block (replacing any stale copy of the same address).
    pub fn insert(&mut self, block: StoredBlock) {
        self.blocks.insert(block.addr.0, block);
        self.max_occupancy = self.max_occupancy.max(self.blocks.len());
    }

    /// Whether a block with `addr` is resident.
    pub fn contains(&self, addr: BlockAddr) -> bool {
        self.blocks.contains_key(&addr.0)
    }

    /// Immutable view of a resident block.
    pub fn get(&self, addr: BlockAddr) -> Option<&StoredBlock> {
        self.blocks.get(&addr.0)
    }

    /// Mutable view of a resident block (for payload updates and remaps).
    pub fn get_mut(&mut self, addr: BlockAddr) -> Option<&mut StoredBlock> {
        self.blocks.get_mut(&addr.0)
    }

    /// Removes and returns the block with `addr`.
    pub fn take(&mut self, addr: BlockAddr) -> Option<StoredBlock> {
        self.blocks.remove(&addr.0)
    }

    /// Iterates over resident blocks in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &StoredBlock> {
        self.blocks.values()
    }

    /// Plans the write-back of a path to `leaf`: selects, for each level in
    /// `[top_level, L)`, up to `Z_level` stash blocks that may legally live
    /// in that level's bucket on this path, **removing them from the stash**.
    ///
    /// Returns one `Vec<StoredBlock>` per level (index 0 of the result is
    /// `top_level`). Blocks are pushed as deep as possible (the Path ORAM
    /// eviction rule); the greedy deepest-first order is optimal for
    /// maximizing placed blocks. `exclude` (the just-requested block under
    /// the immediate-remap policy, which returns to the program) is never
    /// selected.
    ///
    /// `cap_override` lets the caller shrink a level's usable capacity (used
    /// by IR-Stash when an S-Stash set is full: those blocks are "skipped
    /// this round", paper Section IV-C); a `None` entry means use
    /// `layout.z_of(level)`.
    pub fn plan_writeback(
        &mut self,
        layout: &TreeLayout,
        leaf: Leaf,
        top_level: usize,
        may_place: impl FnMut(usize, &StoredBlock) -> bool,
    ) -> Vec<Vec<StoredBlock>> {
        let mut plan = WritebackPlan::new();
        self.plan_writeback_into(layout, leaf, top_level, may_place, &mut plan);
        plan.into_level_vecs()
    }

    /// Allocation-free variant of [`Stash::plan_writeback`]: fills `plan`
    /// in place, reusing both the plan's level vectors and the stash's
    /// internal candidate scratch across calls.
    ///
    /// Candidates are ordered deepest-common-depth first (ties broken by
    /// ascending address) via a counting sort over depths — the depth domain
    /// is tiny (`layout.levels()`), so this replaces the old
    /// `O(n log n)` comparison sort with `O(n + levels)` work plus small
    /// per-depth address sorts that exist only to pin down a deterministic
    /// total order (`HashMap` iteration order is arbitrary).
    pub fn plan_writeback_into(
        &mut self,
        layout: &TreeLayout,
        leaf: Leaf,
        top_level: usize,
        mut may_place: impl FnMut(usize, &StoredBlock) -> bool,
        plan: &mut WritebackPlan,
    ) {
        let levels = layout.levels();
        plan.reset(levels - top_level);

        // --- Counting sort of (common depth, addr), deepest depth first. ---
        self.cands.clear();
        self.offsets.clear();
        self.offsets.resize(levels, 0);
        for b in self.blocks.values() {
            let depth = layout.common_depth(b.leaf, leaf);
            self.offsets[depth] += 1;
            self.cands.push((depth as u32, b.addr.0));
        }
        let n = self.cands.len();
        let mut acc = 0usize;
        for depth in (0..levels).rev() {
            let count = self.offsets[depth];
            self.offsets[depth] = acc;
            acc += count;
        }
        self.sorted.clear();
        self.sorted.resize(n, (0, 0));
        for i in 0..n {
            let (depth, addr) = self.cands[i];
            let pos = self.offsets[depth as usize];
            self.offsets[depth as usize] += 1;
            self.sorted[pos] = (depth, addr);
        }
        // Pin the address order inside each depth segment: the scatter above
        // preserved HashMap iteration order, which is arbitrary, and the
        // greedy fill below must see one deterministic total order.
        let mut seg = 0usize;
        while seg < n {
            let depth = self.sorted[seg].0;
            let mut end = seg + 1;
            while end < n && self.sorted[end].0 == depth {
                end += 1;
            }
            self.sorted[seg..end].sort_unstable_by_key(|&(_, addr)| addr);
            seg = end;
        }

        // --- Greedy deepest-first fill (unchanged placement rule). ---
        let mut cursor = 0usize;
        for level in (top_level..levels).rev() {
            let cap = layout.z_of(level) as usize;
            let slot_idx = level - top_level;
            // Blocks with common depth ≥ level can live at `level` (or
            // deeper, but deeper levels were already filled).
            while cursor < n && plan.levels[slot_idx].len() < cap {
                let (depth, addr) = self.sorted[cursor];
                if (depth as usize) < level {
                    break;
                }
                cursor += 1;
                let block = self.blocks[&addr];
                if !may_place(level, &block) {
                    continue; // skipped this round (e.g. S-Stash set full)
                }
                let taken = self.blocks.remove(&addr).expect("candidate resident");
                plan.levels[slot_idx].push(taken);
            }
            // Skipped blocks with depth ≥ level may still fit at a
            // shallower level; re-scan is handled by the shallower levels
            // because their depth also satisfies depth ≥ shallower level.
            // (cursor has moved past them, so re-insert logic below.)
            if plan.levels[slot_idx].len() < cap {
                // Give passed-over candidates another chance at this level:
                // they were skipped by may_place at deeper levels, or left
                // behind by capacity; both remain eligible here.
                for i in 0..cursor {
                    if plan.levels[slot_idx].len() >= cap {
                        break;
                    }
                    let (depth, addr) = self.sorted[i];
                    if (depth as usize) < level || !self.blocks.contains_key(&addr) {
                        continue;
                    }
                    let block = self.blocks[&addr];
                    if !may_place(level, &block) {
                        continue;
                    }
                    let taken = self.blocks.remove(&addr).expect("candidate resident");
                    plan.levels[slot_idx].push(taken);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ZAllocation;

    fn blk(addr: u64, leaf: u64) -> StoredBlock {
        StoredBlock {
            addr: BlockAddr(addr),
            leaf: Leaf(leaf),
            payload: addr * 100,
        }
    }

    fn layout4() -> TreeLayout {
        // 4 levels, Z=1 for visibility of placement decisions.
        TreeLayout::new(ZAllocation::uniform(4, 1))
    }

    #[test]
    fn insert_get_take() {
        let mut s = Stash::new(10);
        s.insert(blk(1, 3));
        assert_eq!(s.len(), 1);
        assert!(s.contains(BlockAddr(1)));
        assert_eq!(s.get(BlockAddr(1)).unwrap().leaf, Leaf(3));
        s.get_mut(BlockAddr(1)).unwrap().payload = 7;
        assert_eq!(s.take(BlockAddr(1)).unwrap().payload, 7);
        assert!(s.is_empty());
    }

    #[test]
    fn insert_replaces_same_address() {
        let mut s = Stash::new(10);
        s.insert(blk(1, 3));
        s.insert(blk(1, 5));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(BlockAddr(1)).unwrap().leaf, Leaf(5));
    }

    #[test]
    fn occupancy_tracking() {
        let mut s = Stash::new(2);
        s.insert(blk(1, 0));
        s.insert(blk(2, 0));
        assert!(!s.over_capacity());
        s.insert(blk(3, 0));
        assert!(s.over_capacity());
        assert_eq!(s.max_occupancy(), 3);
        s.take(BlockAddr(1));
        s.take(BlockAddr(2));
        assert_eq!(s.max_occupancy(), 3, "high-water mark persists");
    }

    #[test]
    fn writeback_pushes_deepest() {
        let mut s = Stash::new(10);
        // Block mapped to the accessed leaf itself: can go to leaf level.
        s.insert(blk(1, 5));
        // Block sharing only the root with leaf 5 (leaf 1 differs in top bit).
        s.insert(blk(2, 1));
        let layout = layout4();
        let plan = s.plan_writeback(&layout, Leaf(5), 0, |_, _| true);
        assert_eq!(plan.len(), 4);
        assert_eq!(plan[3], vec![blk(1, 5)], "own-leaf block at leaf level");
        assert_eq!(plan[0], vec![blk(2, 1)], "distant block at root");
        assert!(s.is_empty());
    }

    #[test]
    fn writeback_respects_capacity() {
        let mut s = Stash::new(10);
        // Three blocks all mapped to leaf 5; Z=1 per level: they can occupy
        // levels 3, 2, 1, 0 (all on the same path).
        for a in 1..=5 {
            s.insert(blk(a, 5));
        }
        let layout = layout4();
        let plan = s.plan_writeback(&layout, Leaf(5), 0, |_, _| true);
        let placed: usize = plan.iter().map(Vec::len).sum();
        assert_eq!(placed, 4, "one block per level fits");
        assert_eq!(s.len(), 1, "one block left in stash");
    }

    #[test]
    fn writeback_excludes_via_predicate() {
        let mut s = Stash::new(10);
        s.insert(blk(1, 5));
        let layout = layout4();
        let plan = s.plan_writeback(&layout, Leaf(5), 0, |_, b| b.addr != BlockAddr(1));
        assert!(plan.iter().all(Vec::is_empty));
        assert!(s.contains(BlockAddr(1)));
    }

    #[test]
    fn writeback_honours_top_level_offset() {
        let mut s = Stash::new(10);
        s.insert(blk(1, 5)); // could go to leaf level
        s.insert(blk(2, 1)); // only the root — below top_level=1, unplaceable
        let layout = layout4();
        let plan = s.plan_writeback(&layout, Leaf(5), 1, |_, _| true);
        assert_eq!(plan.len(), 3, "levels 1..4");
        let placed: usize = plan.iter().map(Vec::len).sum();
        assert_eq!(placed, 1);
        assert!(s.contains(BlockAddr(2)), "root-only block stays in stash");
    }

    #[test]
    fn writeback_skip_then_place_shallower() {
        // A block skipped at the leaf level (e.g. S-Stash conflict) must
        // still be eligible for shallower levels.
        let mut s = Stash::new(10);
        s.insert(blk(1, 5));
        let layout = layout4();
        let plan = s.plan_writeback(&layout, Leaf(5), 0, |level, _| level != 3);
        assert!(plan[3].is_empty());
        let placed: usize = plan.iter().map(Vec::len).sum();
        assert_eq!(placed, 1, "placed at a shallower level instead");
        assert!(s.is_empty());
    }

    #[test]
    fn writeback_empty_stash() {
        let mut s = Stash::new(10);
        let layout = layout4();
        let plan = s.plan_writeback(&layout, Leaf(0), 0, |_, _| true);
        assert!(plan.iter().all(Vec::is_empty));
    }

    /// Builds a populated stash from a deterministic pseudo-random mix.
    fn mixed_stash(seed: u64, count: u64, leaves: u64) -> Stash {
        let mut s = Stash::new(1024);
        let mut x = seed;
        for a in 0..count {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s.insert(blk(a, (x >> 33) % leaves));
        }
        s
    }

    #[test]
    fn writeback_into_matches_allocating_variant() {
        let layout = TreeLayout::new(ZAllocation::uniform(6, 4));
        let leaves = layout.num_leaves();
        let mut plan = WritebackPlan::new();
        for seed in 1..6u64 {
            let mut a = mixed_stash(seed, 120, leaves);
            let mut b = a.clone();
            let expect = a.plan_writeback(&layout, Leaf(seed % leaves), 1, |_, _| true);
            b.plan_writeback_into(&layout, Leaf(seed % leaves), 1, |_, _| true, &mut plan);
            assert_eq!(plan.len(), expect.len());
            for (i, lvl) in expect.iter().enumerate() {
                assert_eq!(plan.level(i), &lvl[..], "seed {seed} level {i}");
            }
            assert_eq!(plan.total_planned(), expect.iter().map(Vec::len).sum::<usize>());
            assert_eq!(a.len(), b.len(), "both variants drain identically");
        }
    }

    #[test]
    fn writeback_reused_plan_is_deterministic() {
        // The same stash contents must plan identically regardless of the
        // HashMap's internal order or leftover scratch from earlier calls.
        let layout = TreeLayout::new(ZAllocation::uniform(6, 2));
        let leaves = layout.num_leaves();
        let mut plan = WritebackPlan::new();
        // Dirty the scratch with an unrelated big plan first.
        let mut warmup = mixed_stash(99, 300, leaves);
        warmup.plan_writeback_into(&layout, Leaf(0), 0, |_, _| true, &mut plan);

        let run = |plan: &mut WritebackPlan| {
            let mut s = Stash::new(1024);
            // Insertion order differs from address order on purpose.
            for &(a, l) in &[(9u64, 3u64), (2, 3), (7, 3), (1, 5), (4, 5), (3, 0)] {
                s.insert(blk(a, l));
            }
            s.plan_writeback_into(&layout, Leaf(3), 0, |_, _| true, plan);
            (0..plan.len()).map(|i| plan.level(i).to_vec()).collect::<Vec<_>>()
        };
        let first = run(&mut plan);
        let mut fresh = WritebackPlan::new();
        let second = run(&mut fresh);
        assert_eq!(first, second);
        // Within-depth ties must come out in ascending address order.
        for lvl in &first {
            for pair in lvl.windows(2) {
                let d0 = layout.common_depth(pair[0].leaf, Leaf(3));
                let d1 = layout.common_depth(pair[1].leaf, Leaf(3));
                if d0 == d1 {
                    assert!(pair[0].addr.0 < pair[1].addr.0);
                }
            }
        }
    }
}
